// A full virtual fault-simulation campaign on a multi-block design: the
// user composes symbolic fault lists, obtains per-pattern detection tables,
// injects erroneous outputs, and tracks the coverage curve — then validates
// the outcome against the full-disclosure serial baseline (which only this
// example, owning all netlists, can construct).
#include <cstdio>

#include <fstream>

#include "fault/block_design.hpp"
#include "fault/report.hpp"
#include "fault/serial_sim.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "ip/remote_component.hpp"

using namespace vcad;

int main() {
  Rng rng(2026);

  // --- the design: PIs -> adder block -> IP comparator -> outputs ---------
  fault::BlockDesign d;
  const int w = 4;
  for (int i = 0; i < 2 * w; ++i) d.addPrimaryInput("pi" + std::to_string(i));
  const int adder = d.addBlock(
      "ADD", std::make_shared<const gate::Netlist>(gate::makeRippleCarryAdder(w)));
  const int parity = d.addBlock(
      "PAR", std::make_shared<const gate::Netlist>(gate::makeParityTree(w + 1)));
  const int mux = d.addBlock(
      "MUX", std::make_shared<const gate::Netlist>(gate::makeMux(2)));
  for (int i = 0; i < 2 * w; ++i) d.connect({-1, i}, adder, i);
  for (int i = 0; i < w + 1; ++i) d.connect({adder, i}, parity, i);
  // Mux data inputs: adder sum bits; selects: adder low bits.
  d.connect({adder, 0}, mux, 0);
  d.connect({adder, 1}, mux, 1);
  d.connect({adder, 2}, mux, 2);
  d.connect({adder, 3}, mux, 3);
  d.connect({adder, 1}, mux, 4);
  d.connect({adder, 2}, mux, 5);
  d.markPrimaryOutput(parity, 0, "PARITY");
  d.markPrimaryOutput(mux, 0, "MUXOUT");
  d.markPrimaryOutput(adder, w, "COUT");

  auto inst = d.instantiate();

  // --- local fault clients for the user-owned blocks ---------------------
  std::vector<std::unique_ptr<fault::FaultClient>> owned;
  owned.push_back(std::make_unique<fault::LocalFaultBlock>(
      *inst.blockModules[static_cast<size_t>(adder)], true,
      fault::FaultScope{false, true}));
  owned.push_back(std::make_unique<fault::LocalFaultBlock>(
      *inst.blockModules[static_cast<size_t>(parity)], true,
      fault::FaultScope{false, true}));
  owned.push_back(std::make_unique<fault::LocalFaultBlock>(
      *inst.blockModules[static_cast<size_t>(mux)], true,
      fault::FaultScope{false, true}));

  std::vector<fault::FaultClient*> comps;
  for (auto& cl : owned) comps.push_back(cl.get());

  // --- random test patterns --------------------------------------------
  std::vector<Word> patterns;
  for (int i = 0; i < 24; ++i) patterns.push_back(Word::fromUint(2 * w, rng.next()));

  fault::VirtualFaultSimulator vsim(*inst.circuit, comps, inst.piConns,
                                    inst.poConns);
  const auto res = vsim.runPacked(patterns);

  std::printf("fault list: %zu collapsed faults across %zu blocks\n",
              res.faultList.size(), comps.size());
  std::printf("coverage curve (pattern -> detected):\n");
  for (size_t p = 0; p < res.detectedAfterPattern.size(); ++p) {
    if (p % 4 == 0 || p + 1 == res.detectedAfterPattern.size()) {
      std::printf("  %3zu  %4zu / %zu  (%5.1f%%)\n", p + 1,
                  res.detectedAfterPattern[p], res.faultList.size(),
                  100.0 * static_cast<double>(res.detectedAfterPattern[p]) /
                      static_cast<double>(res.faultList.size()));
    }
  }
  std::printf("protocol effort: %llu detection tables, %llu injections\n",
              static_cast<unsigned long long>(res.detectionTablesRequested),
              static_cast<unsigned long long>(res.injections));

  // --- validate against the full-disclosure baseline ---------------------
  const gate::Netlist flat = d.flatten();
  std::vector<gate::StuckFault> faults;
  for (const auto& qs : res.faultList) {
    faults.push_back(fault::flatFaultOf(flat, qs));
  }
  fault::SerialFaultSimulator serial(flat, faults, res.faultList);
  const auto gold = serial.run(patterns);
  const bool match = gold.detected == res.detected;
  std::printf("virtual == full-disclosure serial: %s (%zu faults detected, "
              "%.1f%% coverage)\n",
              match ? "YES" : "NO", res.detected.size(), 100.0 * res.coverage());

  // --- sign-off artifacts ------------------------------------------------
  {
    std::ofstream md("fault_campaign_report.md");
    fault::writeMarkdownReport(md, res, "Virtual fault campaign sign-off");
    std::ofstream csv("fault_campaign_coverage.csv");
    fault::writeCoverageCsv(csv, res);
  }
  std::printf("reports written to fault_campaign_report.md / "
              "fault_campaign_coverage.csv\n");
  return match ? 0 : 1;
}
