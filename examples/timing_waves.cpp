// Event-driven timing simulation: a netlist expanded into per-gate modules
// with transport delays, showing signal ripple and a real hazard (glitch),
// with the waveforms exported to VCD.
//
// Circuit: a 4-bit ripple-carry adder. A single low-bit input change makes
// the carry chain ripple across the slice delays; the sum bits glitch
// through intermediate values before settling — visible in the VCD.
#include <cstdio>

#include "core/sim_controller.hpp"
#include "core/wiring.hpp"
#include "gate/gate_module.hpp"
#include "gate/generators.hpp"
#include "rtl/modules.hpp"
#include "rtl/vcd.hpp"

using namespace vcad;

int main() {
  const int w = 4;
  const gate::Netlist adder = gate::makeRippleCarryAdder(w);

  Circuit top("timing");
  auto exp = gate::expandNetlist(top, adder, /*delay=*/2);

  // Observe each sum bit and the carry with history probes.
  std::vector<rtl::PrimaryOutput*> probes;
  for (size_t i = 0; i < exp.outputs.size(); ++i) {
    auto& tapConn = top.makeBit("tap" + std::to_string(i));
    top.make<Buffer>("tapbuf" + std::to_string(i), *exp.outputs[i], tapConn);
    probes.push_back(
        &top.make<rtl::PrimaryOutput>("probe" + std::to_string(i), tapConn));
  }

  SimulationController sim(top);
  auto applyOperands = [&](std::uint64_t a, std::uint64_t b) {
    for (int i = 0; i < w; ++i) {
      sim.inject(*exp.inputs[static_cast<size_t>(i)],
                 Word::fromLogic(fromBool(((a >> i) & 1) != 0)));
      sim.inject(*exp.inputs[static_cast<size_t>(w + i)],
                 Word::fromLogic(fromBool(((b >> i) & 1) != 0)));
    }
    sim.start();
  };

  applyOperands(0b0111, 0b0001);  // 7 + 1: full carry ripple when b0 set
  std::printf("7 + 1 settled at t=%llu (carry ripples one slice per 2-tick "
              "gate delay)\n",
              static_cast<unsigned long long>(sim.scheduler().now()));

  applyOperands(0b0111, 0b0000);  // drop b0: ripple back
  applyOperands(0b1111, 0b0001);  // 15 + 1: the longest carry chain
  std::printf("15 + 1 settled at t=%llu\n",
              static_cast<unsigned long long>(sim.scheduler().now()));

  SimContext ctx{sim.scheduler(), nullptr};
  std::size_t transitions = 0;
  for (auto* p : probes) transitions += p->sampleCount(ctx);
  std::printf("observed %zu output transitions across %zu nets (glitches "
              "included)\n",
              transitions, probes.size());

  rtl::VcdWriter vcd("1ns");
  const char* names[] = {"s0", "s1", "s2", "s3", "cout"};
  for (size_t i = 0; i < probes.size(); ++i) {
    vcd.addTrack(names[i], *probes[i], ctx);
  }
  vcd.writeFile("timing_waves.vcd");
  std::printf("waveforms written to timing_waves.vcd\n");

  // Show the final sum is correct despite all the rippling.
  Word sum(static_cast<int>(probes.size()));
  for (size_t i = 0; i < probes.size(); ++i) {
    sum.setBit(static_cast<int>(i), probes[i]->last(ctx).scalar());
  }
  std::printf("final outputs (cout s3..s0): %s  (15 + 1 = 16)\n",
              sum.toString().c_str());
  return sum.toUint() == 16 ? 0 : 1;
}
