// Higher-abstraction-level example: a behavioral DSP-style stream source
// (the kind of abstract design representation the paper sketches for video
// signals) drives a remote gain stage (IP multiplier), after the user
// *negotiates* the power estimator interactively with the provider — the
// paper's declared future development. The resulting waveforms are dumped
// to a standard VCD file.
#include <cstdio>

#include "core/sim_controller.hpp"
#include "gate/generators.hpp"
#include "ip/negotiation.hpp"
#include "ip/remote_component.hpp"
#include "rtl/behavioral.hpp"
#include "rtl/modules.hpp"
#include "rtl/vcd.hpp"

using namespace vcad;

int main() {
  const int width = 8;

  // --- provider --------------------------------------------------------
  LogSink log;
  ip::ProviderServer server("dsp-ip.example", &log);
  {
    ip::IpComponentSpec spec;
    spec.name = "GainStage";
    spec.description = "multiplier-based programmable gain";
    spec.minWidth = 4;
    spec.maxWidth = 16;
    spec.functional = ip::ModelLevel::Static;
    spec.power = ip::ModelLevel::Dynamic;
    spec.hasLinearPowerModel = true;
    spec.fees.perPowerPatternCents = 0.05;
    server.registerComponent(
        spec,
        [](std::uint64_t w) {
          return std::make_shared<const gate::Netlist>(
              gate::makeArrayMultiplier(static_cast<int>(w)));
        },
        [](std::uint64_t w) {
          ip::PublicPart pub;
          pub.functional = [w](const Word& in, const rmi::Sandbox&) {
            const int wd = static_cast<int>(w);
            const Word a = in.slice(0, wd);
            const Word b = in.slice(wd, wd);
            if (!a.isFullyKnown() || !b.isFullyKnown()) {
              return Word::allX(2 * wd);
            }
            return Word::fromUint(2 * wd, a.toUint() * b.toUint());
          };
          return pub;
        });
  }
  rmi::RmiChannel channel(server, net::NetworkProfile::lan(), &log);
  ip::ProviderHandle provider(channel);

  // --- the design --------------------------------------------------------
  Circuit c("dsp");
  Connector& sample = c.makeWord(width, "sample");
  Connector& gain = c.makeWord(width, "gain");
  Connector& scaled = c.makeWord(2 * width, "scaled");

  // Behavioral stream source: a triangle wave with a slow gain ramp —
  // entirely abstract, no structural model.
  c.make<rtl::BehavioralProcess>(
      "stream", std::vector<std::pair<std::string, Connector*>>{},
      std::vector<std::pair<std::string, Connector*>>{{"sample", &sample},
                                                      {"gain", &gain}},
      [](rtl::BehavioralProcess::Activation& act) {
        Word& phase = act.memory(0, 16);
        const std::uint64_t t = phase.isFullyKnown() ? phase.toUint() : 0;
        if (t >= 64) {  // end of stream
          act.stopPeriodic();
          return;
        }
        phase = Word::fromUint(16, t + 1);
        const std::uint64_t tri =
            (t % 32) < 16 ? (t % 16) * 16 : (15 - (t % 16)) * 16;
        act.drive(0, Word::fromUint(8, tri));
        act.drive(1, Word::fromUint(8, 1 + t / 8));
      },
      /*period=*/10);

  ip::RemoteConfig cfg;
  cfg.patternBufferCapacity = 8;
  auto& gainStage = c.make<ip::RemoteComponent>(
      "GAIN", provider, "GainStage", width,
      std::vector<std::pair<std::string, Connector*>>{{"a", &sample},
                                                      {"b", &gain}},
      std::vector<std::pair<std::string, Connector*>>{{"o", &scaled}}, cfg);
  auto& out = c.make<rtl::PrimaryOutput>("OUT", scaled);

  // --- interactive estimator negotiation ---------------------------------
  std::printf("negotiating a power estimator (want <=15%% error):\n");
  auto round1 = ip::negotiateEstimator(provider, gainStage.instanceId(),
                                       ParamKind::AvgPower,
                                       /*maxCost=*/0.0, /*maxError=*/15.0);
  if (round1.outcome == ip::NegotiationResult::Outcome::CounterOffer) {
    std::printf("  provider counter-offer: %s at %.2f cents/use\n",
                round1.offer.name.c_str(), round1.offer.costPerUseCents);
    auto round2 = ip::negotiateEstimator(provider, gainStage.instanceId(),
                                         ParamKind::AvgPower,
                                         round1.offer.costPerUseCents, 15.0);
    std::printf("  accepted: %s (%.0f%% error, %.2f cents/use)\n",
                round2.offer.name.c_str(), round2.offer.errorPct,
                round2.offer.costPerUseCents);
  } else {
    std::printf("  accepted immediately: %s\n", round1.offer.name.c_str());
  }

  // --- simulate -----------------------------------------------------------
  SimulationController sim(c);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};

  const auto power = gainStage.finishPowerEstimation(ctx);
  std::printf("\nstreamed %zu samples; last scaled value %s\n",
              out.sampleCount(ctx), out.last(ctx).toString().c_str());
  std::printf("remote power estimate: %.3f mW; fees: %.2f cents\n",
              power.value_or(0.0),
              server.sessionFeesCents(provider.session()));

  // --- waveform dump ---------------------------------------------------
  rtl::VcdWriter vcd("1ns");
  vcd.addTrack("scaled", out, ctx);
  const std::string path = "dsp_stream.vcd";
  vcd.writeFile(path);
  std::printf("waveform written to %s (open with any VCD viewer)\n",
              path.c_str());
  return 0;
}
