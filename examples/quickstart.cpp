// Quickstart: the paper's Figure 2 design.
//
// An IP user wires two proprietary registers around a high-performance
// low-power multiplier sold by a remote IP provider, then simulates 100
// random patterns while the provider's gate-level power estimator runs
// server-side on buffered pattern batches. The provider never ships its
// netlist; the user never ships anything but the multiplier's own port
// values.
#include <cstdio>

#include "core/sim_controller.hpp"
#include "gate/generators.hpp"
#include "ip/remote_component.hpp"
#include "rtl/modules.hpp"

using namespace vcad;

namespace {

/// The provider's side: registers the parametric multiplier macro.
void setUpProvider(ip::ProviderServer& server) {
  ip::IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.description = "high-performance, low-power array multiplier";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ip::ModelLevel::Static;   // public part released
  spec.power = ip::ModelLevel::Dynamic;       // accurate estimation, for a fee
  spec.timing = ip::ModelLevel::Dynamic;
  spec.area = ip::ModelLevel::Dynamic;
  spec.testability = ip::ModelLevel::Dynamic;
  spec.staticPowerMw = 25.0;                  // data-sheet number
  spec.fees.perPowerPatternCents = 0.1;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t w) {
        // The private part: the gate-level implementation, built on demand
        // for the requested width. Never leaves the server.
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      [](std::uint64_t w) {
        // The public part: an accurate *behavioral* model the user may run
        // locally — functionality without structure.
        ip::PublicPart pub;
        pub.functional = [w](const Word& in, const rmi::Sandbox&) {
          const int width = static_cast<int>(w);
          const Word a = in.slice(0, width);
          const Word b = in.slice(width, width);
          if (!a.isFullyKnown() || !b.isFullyKnown()) {
            return Word::allX(2 * width);
          }
          return Word::fromUint(2 * width, a.toUint() * b.toUint());
        };
        return pub;
      });
}

}  // namespace

int main() {
  const int width = 16;
  const std::size_t nPatterns = 100;

  // --- provider side -----------------------------------------------------
  LogSink log;
  ip::ProviderServer server("provider.host.name", &log);
  setUpProvider(server);

  // --- user side: connect over a (simulated) WAN --------------------------
  rmi::RmiChannel channel(server, net::NetworkProfile::wan(), &log);
  ip::ProviderHandle provider(channel);

  // The Figure 2 design.
  Circuit c("Example");
  Connector& A = c.makeWord(width, "A");
  Connector& AR = c.makeWord(width, "AR");
  Connector& B = c.makeWord(width, "B");
  Connector& BR = c.makeWord(width, "BR");
  Connector& O = c.makeWord(2 * width, "O");
  c.make<rtl::RandomPrimaryInput>("INA", width, A, nPatterns, 10, 0xA);
  c.make<rtl::Register>("REGA", A, AR);
  c.make<rtl::RandomPrimaryInput>("INB", width, B, nPatterns, 10, 0xB);
  c.make<rtl::Register>("REGB", B, BR);
  ip::RemoteConfig cfg;
  cfg.mode = ip::RemoteMode::EstimatorRemote;
  cfg.patternBufferCapacity = 5;  // buffer five patterns per RMI batch
  cfg.nonblockingEstimation = true;
  auto& mult = c.make<ip::RemoteComponent>(
      "MULT", provider, "MultFastLowPower", width,
      std::vector<std::pair<std::string, Connector*>>{{"a", &AR}, {"b", &BR}},
      std::vector<std::pair<std::string, Connector*>>{{"o", &O}}, cfg);
  auto& out = c.make<rtl::PrimaryOutput>("OUT", O);

  // --- simulate --------------------------------------------------------
  SimulationController s(c);
  s.start();
  SimContext ctx{s.scheduler(), nullptr};

  std::printf("simulated %zu patterns, last product = %s\n",
              out.sampleCount(ctx), out.last(ctx).toString().c_str());

  const auto powerMw = mult.finishPowerEstimation(ctx);
  const auto& stats = channel.stats();
  std::printf("remote gate-level power estimate : %8.3f mW\n",
              powerMw.value_or(0.0));
  std::printf("RMI calls                        : %8llu (%llu async)\n",
              static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.asyncCalls));
  std::printf("bytes sent / received            : %8llu / %llu\n",
              static_cast<unsigned long long>(stats.bytesSent),
              static_cast<unsigned long long>(stats.bytesReceived));
  std::printf("simulated network+server stall   : %8.3f s (blocking)\n",
              stats.blockingWallSec);
  std::printf("latency hidden by new threads    : %8.3f s (non-blocking)\n",
              stats.nonblockingWallSec);
  std::printf("provider fees charged            : %8.2f cents\n",
              server.sessionFeesCents(provider.session()));
  std::printf("remote errors                    : %8llu\n",
              static_cast<unsigned long long>(mult.remoteErrors()));
  return mult.remoteErrors() == 0 ? 0 : 1;
}
