// The Figure 1 scenario: a design under development instantiates IP
// components from two different providers with *different* model
// availability, negotiates estimators through setup controllers, and
// settles fees.
//
//   Provider 1 ("fast-silicon.example"): functional model released, dynamic
//       power and timing models on the server, static area data.
//   Provider 2 ("cheap-cores.example"): functional model only — no power,
//       timing, or area models at all (the paper's "Power model 0" case).
//
// A best-accuracy power setup binds the gate-level remote estimator on the
// provider-1 component and falls back to the null estimator (with a logged
// warning) on the provider-2 component, so partial estimation proceeds.
#include <cstdio>

#include "core/sim_controller.hpp"
#include "gate/generators.hpp"
#include "ip/remote_component.hpp"
#include "rtl/modules.hpp"

using namespace vcad;

namespace {

ip::PublicPart multiplierPublicPart(std::uint64_t w) {
  ip::PublicPart pub;
  pub.functional = [w](const Word& in, const rmi::Sandbox&) {
    const int width = static_cast<int>(w);
    const Word a = in.slice(0, width);
    const Word b = in.slice(width, width);
    if (!a.isFullyKnown() || !b.isFullyKnown()) return Word::allX(2 * width);
    return Word::fromUint(2 * width, a.toUint() * b.toUint());
  };
  return pub;
}

ip::PublicPart adderPublicPart(std::uint64_t w) {
  ip::PublicPart pub;
  pub.functional = [w](const Word& in, const rmi::Sandbox&) {
    const int width = static_cast<int>(w);
    const Word a = in.slice(0, width);
    const Word b = in.slice(width, width);
    if (!a.isFullyKnown() || !b.isFullyKnown()) return Word::allX(width + 1);
    return Word::fromUint(width + 1, a.toUint() + b.toUint());
  };
  return pub;
}

void setUpProvider1(ip::ProviderServer& server) {
  ip::IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.description = "low-power array multiplier";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ip::ModelLevel::Static;
  spec.power = ip::ModelLevel::Dynamic;
  spec.timing = ip::ModelLevel::Dynamic;
  spec.area = ip::ModelLevel::Static;
  spec.staticPowerMw = 25.0;
  spec.staticAreaUm2 = 5200.0;
  spec.fees.perPowerPatternCents = 0.1;
  server.registerComponent(
      spec,
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      multiplierPublicPart);
}

void setUpProvider2(ip::ProviderServer& server) {
  ip::IpComponentSpec spec;
  spec.name = "AdderBudget";
  spec.description = "budget ripple-carry adder, functional model only";
  spec.minWidth = 2;
  spec.maxWidth = 32;
  spec.functional = ip::ModelLevel::Static;
  spec.power = ip::ModelLevel::None;   // "Power model 0"
  spec.timing = ip::ModelLevel::None;
  spec.area = ip::ModelLevel::None;
  server.registerComponent(
      spec,
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeRippleCarryAdder(static_cast<int>(w)));
      },
      adderPublicPart);
}

}  // namespace

int main() {
  const int width = 8;
  LogSink log;

  ip::ProviderServer provider1("fast-silicon.example", &log);
  ip::ProviderServer provider2("cheap-cores.example", &log);
  setUpProvider1(provider1);
  setUpProvider2(provider2);

  rmi::RmiChannel ch1(provider1, net::NetworkProfile::wan(), &log);
  rmi::RmiChannel ch2(provider2, net::NetworkProfile::lan(), &log);
  ip::ProviderHandle h1(ch1);
  ip::ProviderHandle h2(ch2);

  // --- browse the catalogs ------------------------------------------------
  for (auto* h : {&h1, &h2}) {
    for (const auto& spec : h->catalog()) {
      std::printf("catalog: %-18s power=%-7s timing=%-7s area=%-7s  (%s)\n",
                  spec.name.c_str(), ip::toString(spec.power).c_str(),
                  ip::toString(spec.timing).c_str(),
                  ip::toString(spec.area).c_str(), spec.description.c_str());
    }
  }

  // --- the user's design: product accumulated into a sum -----------------
  Circuit c("marketplace");
  Connector& A = c.makeWord(width, "A");
  Connector& B = c.makeWord(width, "B");
  Connector& P = c.makeWord(2 * width, "P");
  Connector& PL = c.makeWord(width, "PL");   // low half of the product
  Connector& CARRY = c.makeWord(width, "CIN");
  Connector& S = c.makeWord(width + 1, "S");
  c.make<rtl::RandomPrimaryInput>("INA", width, A, 50, 10, 11);
  c.make<rtl::RandomPrimaryInput>("INB", width, B, 50, 10, 22);
  c.make<rtl::RandomPrimaryInput>("INC", width, CARRY, 50, 10, 33);

  ip::RemoteConfig cfg;
  cfg.patternBufferCapacity = 5;
  auto& mult = c.make<ip::RemoteComponent>(
      "MULT", h1, "MultFastLowPower", width,
      std::vector<std::pair<std::string, Connector*>>{{"a", &A}, {"b", &B}},
      std::vector<std::pair<std::string, Connector*>>{{"o", &P}}, cfg);
  // Interface module: take the low half of the product into the adder.
  struct LowHalf : Module {
    LowHalf(std::string n, Connector& in, Connector& out, int w)
        : Module(std::move(n)), w_(w) {
      in_ = &addInput("in", in);
      out_ = &addOutput("out", out);
    }
    void processInputEvent(const SignalToken& t, SimContext& ctx) override {
      emit(ctx, *out_, t.value().slice(0, w_));
    }
    Port* in_;
    Port* out_;
    int w_;
  };
  c.make<LowHalf>("LOW", P, PL, width);
  ip::RemoteConfig cfg2;
  cfg2.collectPower = false;  // provider 2 has no power model anyway
  auto& add = c.make<ip::RemoteComponent>(
      "ADD", h2, "AdderBudget", width,
      std::vector<std::pair<std::string, Connector*>>{{"a", &PL},
                                                      {"b", &CARRY}},
      std::vector<std::pair<std::string, Connector*>>{{"s", &S}}, cfg2);
  auto& out = c.make<rtl::PrimaryOutput>("OUT", S);

  // --- negotiate estimators via a setup controller ------------------------
  ip::attachSpecEstimators(mult, h1.catalog()[0], &mult);
  ip::attachSpecEstimators(add, h2.catalog()[0], &add);

  SetupController setup(&log);
  setup.set(ParamKind::AvgPower, {Criterion::BestAccuracy});
  setup.set(ParamKind::Area, {Criterion::BestAccuracy});
  const std::size_t fallbacks = setup.apply(c);
  std::printf("\nsetup negotiated: %zu (module, parameter) pairs fell back to "
              "the null estimator\n", fallbacks);
  std::printf("MULT power estimator: %s\n",
              mult.boundEstimator(setup.id(), ParamKind::AvgPower)->name().c_str());
  std::printf("ADD  power estimator: %s\n",
              add.boundEstimator(setup.id(), ParamKind::AvgPower)->name().c_str());

  // --- simulate and collect what estimates exist --------------------------
  SimulationController sim(c, &setup);
  sim.start();
  SimContext ctx{sim.scheduler(), &setup};
  std::printf("\nsimulated 50 patterns; last sum = %s\n",
              out.last(ctx).toString().c_str());

  CollectingSink sink;
  sim.estimateAll(ParamKind::Area, sink);
  std::printf("total known area (partial estimate): %.1f um2 (%zu modules "
              "reported null)\n",
              sink.sum(ParamKind::Area), sink.nullCount());

  const auto mw = mult.finishPowerEstimation(ctx);
  std::printf("MULT remote power estimate: %.3f mW\n", mw.value_or(0.0));

  std::printf("\nfees: provider1 = %.2f cents, provider2 = %.2f cents\n",
              provider1.sessionFeesCents(h1.session()),
              provider2.sessionFeesCents(h2.session()));
  std::printf("warnings logged: %zu\n", log.count(Severity::Warning));
  return 0;
}
