// The paper's Figure 4/5 walkthrough: virtual fault simulation of a
// half-adder design containing the protected IP block IP1.
//
// Prints IP1's published symbolic fault list, its detection table for input
// configuration (IIP1,IIP2) = (1,0), and then demonstrates that test
// pattern ABCD=1100 misses the sum-path fault (D=0 masks it at
// O1 = OIP1 AND D) while ABCD=1101 detects it.
#include <cstdio>

#include "fault/block_design.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

using namespace vcad;
using fault::BlockDesign;

namespace {

gate::Netlist makeFrontBlock() {  // E = AND(A, B)
  gate::Netlist nl;
  const auto a = nl.addInput("a");
  const auto b = nl.addInput("b");
  nl.markOutput(nl.addGate(gate::GateType::And, {a, b}, "E"));
  return nl;
}

gate::Netlist makeBackBlock() {  // O1 = AND(OIP1, D); O2 = BUF(OIP2)
  gate::Netlist nl;
  const auto oip1 = nl.addInput("oip1");
  const auto d = nl.addInput("d");
  const auto oip2 = nl.addInput("oip2");
  nl.markOutput(nl.addGate(gate::GateType::And, {oip1, d}, "O1"));
  nl.markOutput(nl.addGate(gate::GateType::Buf, {oip2}, "O2"));
  return nl;
}

std::vector<Word> pattern(const std::string& abcd) {
  std::vector<Word> p;
  for (char ch : abcd) p.push_back(Word::fromLogic(logicFromChar(ch)));
  return p;
}

}  // namespace

int main() {
  // --- build the design of Figure 4 -----------------------------------
  BlockDesign d;
  const int A = d.addPrimaryInput("A");
  const int B = d.addPrimaryInput("B");
  const int C = d.addPrimaryInput("C");
  const int D = d.addPrimaryInput("D");
  const int front = d.addBlock(
      "FRONT", std::make_shared<const gate::Netlist>(makeFrontBlock()));
  const int ip1 = d.addBlock(
      "IP1", std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder()));
  const int back = d.addBlock(
      "BACK", std::make_shared<const gate::Netlist>(makeBackBlock()));
  d.connect({-1, A}, front, 0);
  d.connect({-1, B}, front, 1);
  d.connect({front, 0}, ip1, 0);
  d.connect({-1, C}, ip1, 1);
  d.connect({ip1, 0}, back, 0);
  d.connect({-1, D}, back, 1);
  d.connect({ip1, 1}, back, 2);
  d.markPrimaryOutput(back, 0, "O1");
  d.markPrimaryOutput(back, 1, "O2");

  auto inst = d.instantiate();
  std::vector<std::unique_ptr<fault::LocalFaultBlock>> clients;
  for (int blk : {front, ip1, back}) {
    clients.push_back(std::make_unique<fault::LocalFaultBlock>(
        *inst.blockModules[static_cast<size_t>(blk)]));
  }

  // --- Phase 1: the provider publishes IP1's symbolic fault list ---------
  std::printf("IP1 symbolic fault list (collapsed, internal only):\n  {");
  bool first = true;
  for (const std::string& f : clients[1]->faultList()) {
    std::printf("%s%s", first ? "" : ", ", f.c_str());
    first = false;
  }
  std::printf("}\n\n");

  // --- the detection table of Figure 4(b) ---------------------------------
  const auto table = clients[1]->detectionTable(Word::fromString("01"));
  std::printf("IP1 detection table for IIP1=1, IIP2=0 (fault-free OIP=%s):\n",
              table.faultFreeOutput().toString().c_str());
  for (const auto& row : table.rows()) {
    std::printf("  faulty output (OIP2,OIP1)=%s  <-  {",
                row.faultyOutput.toString().c_str());
    for (size_t i = 0; i < row.faults.size(); ++i) {
      std::printf("%s%s", i != 0 ? ", " : "", row.faults[i].c_str());
    }
    std::printf("}\n");
  }

  // --- Phase 2: the two patterns of the paper ---------------------------
  std::vector<fault::FaultClient*> comps;
  for (auto& c : clients) comps.push_back(c.get());

  const std::string sumFault =
      "IP1/" + clients[1]->detectionTable(Word::fromString("01"))
                   .faultsFor(Word::fromString("00"))
                   .front();

  for (const char* abcd : {"1100", "1101"}) {
    fault::VirtualFaultSimulator sim(*inst.circuit, comps, inst.piConns,
                                     inst.poConns);
    const auto res = sim.run({pattern(abcd)});
    std::printf("\npattern ABCD=%s: %zu/%zu faults detected:", abcd,
                res.detected.size(), res.faultList.size());
    for (const auto& f : res.detected) std::printf(" %s", f.c_str());
    std::printf("\n  sum-path fault %s %s\n", sumFault.c_str(),
                res.detected.count(sumFault) != 0u
                    ? "DETECTED (error reaches O1 because D=1)"
                    : "missed (D=0 blocks propagation to O1)");
  }
  return 0;
}
