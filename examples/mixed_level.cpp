// Mixed-level system description: part of the design at the RTL (word
// level), part at the gate level, bridged by interface modules — plus two
// concurrent simulations of the same design running on separate threads
// under different schedulers, without interference.
//
// Structure:  clock -> counter-ish RTL datapath -> word/bit Splitter ->
//             gate-level parity tree -> bit/word Merger -> observer.
#include <cstdio>

#include "core/sim_controller.hpp"
#include "core/wiring.hpp"
#include "gate/generators.hpp"
#include "gate/netlist_module.hpp"
#include "rtl/modules.hpp"

using namespace vcad;

int main() {
  const int width = 8;
  const std::size_t nPatterns = 64;

  Circuit c("mixed");

  // RTL region: random stimulus through a register.
  Connector& raw = c.makeWord(width, "raw");
  Connector& reg = c.makeWord(width, "reg");
  c.make<rtl::RandomPrimaryInput>("SRC", width, raw, nPatterns, 10, 0xC0FFEE);
  c.make<rtl::Register>("REG", raw, reg);

  // Interface: explode the word into bits for the gate-level region.
  std::vector<Connector*> bits;
  for (int i = 0; i < width; ++i) {
    bits.push_back(&c.makeBit("bit" + std::to_string(i)));
  }
  c.make<rtl::Splitter>("SPLIT", reg, bits);

  // Gate-level region: a parity tree netlist.
  auto parity = std::make_shared<const gate::Netlist>(
      gate::makeParityTree(width));
  Connector& parityOut = c.makeBit("parity");
  auto& parityMod = static_cast<gate::NetlistModule&>(
      c.adopt(gate::makeBitLevelModule("PARITY", parity, bits, {&parityOut})));

  // Back to the word level for observation.
  Connector& parityWord = c.makeWord(1, "parityWord");
  c.make<Buffer>("BR", parityOut, parityWord);
  auto& out = c.make<rtl::PrimaryOutput>("OUT", parityWord);

  // --- two concurrent simulations over the same design ------------------
  SimulationController simA(c);
  SimulationController simB(c);
  runConcurrently({&simA, &simB});

  SimContext ctxA{simA.scheduler(), nullptr};
  SimContext ctxB{simB.scheduler(), nullptr};
  std::printf("scheduler A: %zu parity samples, %llu netlist evaluations\n",
              out.sampleCount(ctxA),
              static_cast<unsigned long long>(parityMod.evaluations(ctxA)));
  std::printf("scheduler B: %zu parity samples, %llu netlist evaluations\n",
              out.sampleCount(ctxB),
              static_cast<unsigned long long>(parityMod.evaluations(ctxB)));

  // The two runs used the same seed, so their streams must agree — proof
  // that per-scheduler state lookup tables kept them from interfering.
  const auto& ha = out.history(ctxA);
  const auto& hb = out.history(ctxB);
  bool identical = ha.size() == hb.size();
  for (size_t i = 0; identical && i < ha.size(); ++i) {
    identical = ha[i].value == hb[i].value;
  }
  std::printf("concurrent runs identical: %s\n", identical ? "yes" : "NO");

  std::printf("gate-level activity: %llu net toggles, %.2f pJ switched\n",
              static_cast<unsigned long long>(parityMod.netToggles(ctxA)),
              parityMod.switchingEnergyPj(ctxA));
  return identical ? 0 : 1;
}
