// Sequential virtual fault simulation — the extension the paper declares
// feasible ("extensions to general fault models and sequential circuits").
//
// Detection tables do not suffice for sequential machines: a fault corrupts
// the *state*, so its effect depends on the whole input history. The
// protocol therefore moves from per-pattern tables to per-fault *shadow
// machines*: the provider keeps, next to the fault-free instance, one
// faulty instance per symbolic fault the user asks about, each stepped with
// the user's cycle-by-cycle inputs. The user compares observable outputs
// and declares the fault detected at the first differing cycle. IP
// protection is preserved: only port-level data (inputs in, outputs back)
// ever crosses the channel, and faults remain symbolic names.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fault/model.hpp"
#include "gate/seq_netlist.hpp"

namespace vcad::fault {

/// The user's per-component window for sequential fault simulation.
class SeqFaultClient {
 public:
  virtual ~SeqFaultClient() = default;

  /// Symbolic fault list (collapsed, internal faults of the combinational
  /// core).
  virtual std::vector<std::string> faultList() = 0;

  /// Fault-free machine.
  virtual void resetGood() = 0;
  virtual Word stepGood(const Word& inputs) = 0;

  /// Faulty shadow machine for `symbol` (created on first use).
  virtual void resetFaulty(const std::string& symbol) = 0;
  virtual Word stepFaulty(const std::string& symbol, const Word& inputs) = 0;
};

/// Local implementation: the user owns the machine's netlist.
class LocalSeqFaultBlock final : public SeqFaultClient {
 public:
  explicit LocalSeqFaultBlock(const gate::SeqNetlist& seq,
                              bool dominance = true);

  std::vector<std::string> faultList() override;
  void resetGood() override;
  Word stepGood(const Word& inputs) override;
  void resetFaulty(const std::string& symbol) override;
  Word stepFaulty(const std::string& symbol, const Word& inputs) override;

  const CollapsedFaults& collapsed() const { return collapsed_; }

 private:
  gate::SeqEvaluator& shadowFor(const std::string& symbol);

  const gate::SeqNetlist& seq_;
  CollapsedFaults collapsed_;
  std::map<std::string, StuckFault> faultOf_;
  gate::SeqEvaluator good_;
  std::map<std::string, gate::SeqEvaluator> shadows_;
};

struct SeqCampaignResult {
  std::vector<std::string> faultList;
  /// First cycle (0-based) at which each detected fault produced an
  /// observable output difference.
  std::map<std::string, std::size_t> detectedAtCycle;
  std::uint64_t goodSteps = 0;
  std::uint64_t faultySteps = 0;

  std::size_t detectedCount() const { return detectedAtCycle.size(); }
  double coverage() const {
    return faultList.empty() ? 0.0
                             : static_cast<double>(detectedAtCycle.size()) /
                                   static_cast<double>(faultList.size());
  }
};

/// Runs a sequential fault campaign: the fault-free reference response is
/// computed once; every fault's shadow machine is stepped until its outputs
/// first diverge (then dropped — sequential fault dropping) or the sequence
/// ends.
SeqCampaignResult runSeqCampaign(SeqFaultClient& client,
                                 const std::vector<Word>& inputSequence);

}  // namespace vcad::fault
