#include "fault/model.hpp"

#include <algorithm>
#include <numeric>

namespace vcad::fault {

using gate::GateNode;
using gate::GateType;

std::string symbolOf(const Netlist& nl, const StuckFault& f) {
  return nl.netName(f.net) + (f.stuck == Logic::L0 ? "sa0" : "sa1");
}

std::vector<StuckFault> enumerateFaults(const Netlist& nl,
                                        bool includePrimaryInputs,
                                        bool includePrimaryOutputNets) {
  std::vector<StuckFault> out;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    if (!includePrimaryInputs && nl.isPrimaryInput(n)) continue;
    if (!includePrimaryOutputNets && nl.isPrimaryOutput(n)) continue;
    out.push_back(StuckFault{n, Logic::L0});
    out.push_back(StuckFault{n, Logic::L1});
  }
  return out;
}

namespace {

/// Union-find over fault indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// For equivalence across a gate boundary, the input net must feed only
/// this gate (fanout exactly 1 and not observed as a primary output):
/// otherwise the input fault also disturbs other readers and is not
/// equivalent to the output fault.
bool soleReader(const Netlist& nl, NetId in) { return nl.fanoutOf(in) == 1; }

}  // namespace

CollapsedFaults collapseEquivalent(const Netlist& nl,
                                   const std::vector<StuckFault>& universe) {
  std::map<StuckFault, std::size_t> index;
  for (std::size_t i = 0; i < universe.size(); ++i) index[universe[i]] = i;
  auto idx = [&](NetId net, Logic v) -> int {
    auto it = index.find(StuckFault{net, v});
    return it == index.end() ? -1 : static_cast<int>(it->second);
  };

  UnionFind uf(universe.size());
  auto unite = [&](int a, int b) {
    if (a >= 0 && b >= 0) uf.unite(static_cast<std::size_t>(a),
                                   static_cast<std::size_t>(b));
  };

  for (const GateNode& g : nl.gates()) {
    const NetId out = g.output;
    switch (g.type) {
      case GateType::Buf:
        if (soleReader(nl, g.inputs[0])) {
          unite(idx(g.inputs[0], Logic::L0), idx(out, Logic::L0));
          unite(idx(g.inputs[0], Logic::L1), idx(out, Logic::L1));
        }
        break;
      case GateType::Not:
        if (soleReader(nl, g.inputs[0])) {
          unite(idx(g.inputs[0], Logic::L0), idx(out, Logic::L1));
          unite(idx(g.inputs[0], Logic::L1), idx(out, Logic::L0));
        }
        break;
      case GateType::And:
      case GateType::Nand: {
        const Logic outVal =
            g.type == GateType::And ? Logic::L0 : Logic::L1;
        for (NetId in : g.inputs) {
          if (soleReader(nl, in)) unite(idx(in, Logic::L0), idx(out, outVal));
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const Logic outVal = g.type == GateType::Or ? Logic::L1 : Logic::L0;
        for (NetId in : g.inputs) {
          if (soleReader(nl, in)) unite(idx(in, Logic::L1), idx(out, outVal));
        }
        break;
      }
      default:
        break;  // XOR/XNOR/consts: no gate-local equivalences
    }
  }

  // Pick a deterministic representative per class: lowest (level, net, sa).
  const std::vector<int> level = nl.levels();
  auto better = [&](const StuckFault& a, const StuckFault& b) {
    const int la = level[static_cast<std::size_t>(a.net)];
    const int lb = level[static_cast<std::size_t>(b.net)];
    if (la != lb) return la < lb;
    return a < b;
  };

  std::map<std::size_t, StuckFault> best;  // class root -> representative
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto it = best.find(root);
    if (it == best.end() || better(universe[i], it->second)) {
      best[root] = universe[i];
    }
  }

  // Deterministic order of representatives.
  std::vector<std::pair<StuckFault, std::size_t>> reps;
  for (const auto& [root, f] : best) reps.emplace_back(f, root);
  std::sort(reps.begin(), reps.end(),
            [&](const auto& a, const auto& b) { return better(a.first, b.first); });

  CollapsedFaults out;
  std::map<std::size_t, int> repIdxOfRoot;
  for (const auto& [f, root] : reps) {
    repIdxOfRoot[root] = static_cast<int>(out.representatives.size());
    out.representatives.push_back(f);
    out.classes.emplace_back();
  }
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const int r = repIdxOfRoot.at(uf.find(i));
    out.repIndexOf[universe[i]] = r;
    out.classes[static_cast<std::size_t>(r)].push_back(universe[i]);
  }
  return out;
}

CollapsedFaults collapseDominance(const Netlist& nl,
                                  const CollapsedFaults& equiv) {
  // A gate-output fault is dropped when some gate input with a kept fault
  // guarantees detection: AND output sa1 is detected by any test for an
  // input sa1 (and dually). Conservatively require the input fault to be a
  // surviving representative class member.
  std::vector<bool> drop(equiv.representatives.size(), false);

  auto repIdx = [&](NetId net, Logic v) -> int {
    auto it = equiv.repIndexOf.find(StuckFault{net, v});
    return it == equiv.repIndexOf.end() ? -1 : it->second;
  };

  for (const GateNode& g : nl.gates()) {
    Logic outFault;
    Logic inFault;
    switch (g.type) {
      case GateType::And:
        outFault = Logic::L1;
        inFault = Logic::L1;
        break;
      case GateType::Nand:
        outFault = Logic::L0;
        inFault = Logic::L1;
        break;
      case GateType::Or:
        outFault = Logic::L0;
        inFault = Logic::L0;
        break;
      case GateType::Nor:
        outFault = Logic::L1;
        inFault = Logic::L0;
        break;
      default:
        continue;
    }
    const int outRep = repIdx(g.output, outFault);
    if (outRep < 0) continue;
    // The output fault must be the representative of a singleton class
    // (otherwise dropping it would drop merged equivalent faults too).
    if (equiv.representatives[static_cast<std::size_t>(outRep)] !=
        StuckFault{g.output, outFault}) {
      continue;
    }
    if (equiv.classes[static_cast<std::size_t>(outRep)].size() != 1) continue;
    // Every input must carry a kept fault of the dominating polarity.
    bool allInputsKept = true;
    for (NetId in : g.inputs) {
      const int r = repIdx(in, inFault);
      if (r < 0 || drop[static_cast<std::size_t>(r)]) {
        allInputsKept = false;
        break;
      }
    }
    if (allInputsKept) drop[static_cast<std::size_t>(outRep)] = true;
  }

  CollapsedFaults out;
  std::vector<int> newIdx(equiv.representatives.size(), -1);
  for (std::size_t r = 0; r < equiv.representatives.size(); ++r) {
    if (drop[r]) continue;
    newIdx[r] = static_cast<int>(out.representatives.size());
    out.representatives.push_back(equiv.representatives[r]);
    out.classes.push_back(equiv.classes[r]);
  }
  for (const auto& [f, r] : equiv.repIndexOf) {
    out.repIndexOf[f] = r >= 0 ? newIdx[static_cast<std::size_t>(r)] : -1;
  }
  return out;
}

CollapsedFaults collapseAll(const Netlist& nl, bool dominance,
                            bool includePrimaryInputs,
                            bool includePrimaryOutputNets) {
  const auto universe =
      enumerateFaults(nl, includePrimaryInputs, includePrimaryOutputNets);
  CollapsedFaults c = collapseEquivalent(nl, universe);
  if (dominance) c = collapseDominance(nl, c);
  return c;
}

std::vector<std::string> symbolicFaultList(const Netlist& nl,
                                           const CollapsedFaults& collapsed) {
  std::vector<std::string> out;
  out.reserve(collapsed.representatives.size());
  for (const StuckFault& f : collapsed.representatives) {
    out.push_back(symbolOf(nl, f));
  }
  return out;
}

}  // namespace vcad::fault
