#include "fault/serial_sim.hpp"

#include <stdexcept>

namespace vcad::fault {

SerialFaultSimulator::SerialFaultSimulator(const Netlist& netlist,
                                           std::vector<StuckFault> faults,
                                           std::vector<std::string> symbols)
    : netlist_(netlist),
      eval_(netlist),
      faults_(std::move(faults)),
      symbols_(std::move(symbols)) {
  if (faults_.size() != symbols_.size()) {
    throw std::invalid_argument(
        "SerialFaultSimulator: faults/symbols size mismatch");
  }
}

SerialFaultSimulator::SerialFaultSimulator(const Netlist& netlist,
                                           bool dominance)
    : netlist_(netlist), eval_(netlist) {
  const CollapsedFaults c = collapseAll(netlist, dominance);
  faults_ = c.representatives;
  for (const StuckFault& f : faults_) symbols_.push_back(symbolOf(netlist, f));
}

CampaignResult SerialFaultSimulator::run(const std::vector<Word>& patterns) {
  CampaignResult res;
  res.faultList = symbols_;
  std::vector<bool> detected(faults_.size(), false);

  for (const Word& pattern : patterns) {
    const Word golden = eval_.evalOutputs(pattern);
    ++res.faultSimEvaluations;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (detected[i]) continue;  // fault dropping
      const Word faulty = eval_.evalOutputs(pattern, faults_[i]);
      ++res.faultSimEvaluations;
      if (faulty != golden) {
        detected[i] = true;
        res.detected.insert(symbols_[i]);
      }
    }
    res.detectedAfterPattern.push_back(res.detected.size());
  }
  return res;
}

StuckFault flatFaultOf(const Netlist& flat, const std::string& qualifiedSymbol) {
  if (qualifiedSymbol.size() < 4) {
    throw std::invalid_argument("bad fault symbol: " + qualifiedSymbol);
  }
  const std::string suffix = qualifiedSymbol.substr(qualifiedSymbol.size() - 3);
  if (suffix != "sa0" && suffix != "sa1") {
    throw std::invalid_argument("bad fault symbol suffix: " + qualifiedSymbol);
  }
  const std::string netName =
      qualifiedSymbol.substr(0, qualifiedSymbol.size() - 3);
  const NetId net = flat.findNet(netName);
  if (net == gate::kNoNet) {
    throw std::invalid_argument("no net '" + netName +
                                "' in flattened netlist");
  }
  return StuckFault{net, suffix == "sa0" ? Logic::L0 : Logic::L1};
}

}  // namespace vcad::fault
