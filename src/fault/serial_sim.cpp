#include "fault/serial_sim.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace vcad::fault {

SerialFaultSimulator::SerialFaultSimulator(const Netlist& netlist,
                                           std::vector<StuckFault> faults,
                                           std::vector<std::string> symbols)
    : netlist_(netlist),
      eval_(netlist),
      packed_(netlist),
      faults_(std::move(faults)),
      symbols_(std::move(symbols)) {
  if (faults_.size() != symbols_.size()) {
    throw std::invalid_argument(
        "SerialFaultSimulator: faults/symbols size mismatch");
  }
}

SerialFaultSimulator::SerialFaultSimulator(const Netlist& netlist,
                                           bool dominance)
    : netlist_(netlist), eval_(netlist), packed_(netlist) {
  const CollapsedFaults c = collapseAll(netlist, dominance);
  faults_ = c.representatives;
  for (const StuckFault& f : faults_) symbols_.push_back(symbolOf(netlist, f));
}

CampaignResult SerialFaultSimulator::run(const std::vector<Word>& patterns) {
  CampaignResult res;
  res.faultList = symbols_;
  constexpr std::size_t kUndetected = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> firstDetectedAt(faults_.size(), kUndetected);

  std::vector<gate::LanePlanes> golden, faulty;
  for (std::size_t base = 0; base < patterns.size();
       base += gate::PackedEvaluator::kLanes) {
    const std::size_t lanes = std::min<std::size_t>(
        gate::PackedEvaluator::kLanes, patterns.size() - base);
    const auto block = packed_.pack(patterns, base, lanes);
    packed_.evaluate(block, golden);
    res.faultSimEvaluations += lanes;  // one fault-free pass per pattern
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (firstDetectedAt[i] != kUndetected) continue;  // fault dropping
      packed_.evaluate(block, faulty, &faults_[i]);
      const std::uint64_t diff = packed_.outputDiffMask(
          golden, faulty, static_cast<int>(lanes));
      if (diff != 0) {
        const int lane = std::countr_zero(diff);
        firstDetectedAt[i] = base + static_cast<std::size_t>(lane);
        res.detected.insert(symbols_[i]);
        // Scalar schedule: evaluated at every pattern up to detection.
        res.faultSimEvaluations += static_cast<std::uint64_t>(lane) + 1;
      } else {
        res.faultSimEvaluations += lanes;
      }
    }
  }

  // Cumulative per-pattern coverage curve from the detection lanes.
  std::vector<std::size_t> newlyAt(patterns.size(), 0);
  for (std::size_t at : firstDetectedAt) {
    if (at != kUndetected) ++newlyAt[at];
  }
  std::size_t cumulative = 0;
  res.detectedAfterPattern.reserve(patterns.size());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    cumulative += newlyAt[p];
    res.detectedAfterPattern.push_back(cumulative);
  }
  return res;
}

CampaignResult SerialFaultSimulator::runScalar(
    const std::vector<Word>& patterns) {
  CampaignResult res;
  res.faultList = symbols_;
  std::vector<bool> detected(faults_.size(), false);

  for (const Word& pattern : patterns) {
    const Word golden = eval_.evalOutputs(pattern);
    ++res.faultSimEvaluations;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (detected[i]) continue;  // fault dropping
      const Word faulty = eval_.evalOutputs(pattern, faults_[i]);
      ++res.faultSimEvaluations;
      if (faulty != golden) {
        detected[i] = true;
        res.detected.insert(symbols_[i]);
      }
    }
    res.detectedAfterPattern.push_back(res.detected.size());
  }
  return res;
}

StuckFault flatFaultOf(const Netlist& flat, const std::string& qualifiedSymbol) {
  if (qualifiedSymbol.size() < 4) {
    throw std::invalid_argument("bad fault symbol: " + qualifiedSymbol);
  }
  const std::string suffix = qualifiedSymbol.substr(qualifiedSymbol.size() - 3);
  if (suffix != "sa0" && suffix != "sa1") {
    throw std::invalid_argument("bad fault symbol suffix: " + qualifiedSymbol);
  }
  const std::string netName =
      qualifiedSymbol.substr(0, qualifiedSymbol.size() - 3);
  const NetId net = flat.findNet(netName);
  if (net == gate::kNoNet) {
    throw std::invalid_argument("no net '" + netName +
                                "' in flattened netlist");
  }
  return StuckFault{net, suffix == "sa0" ? Logic::L0 : Logic::L1};
}

}  // namespace vcad::fault
