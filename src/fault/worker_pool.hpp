// Minimal persistent worker pool shared by the campaign engines.
//
// parallelFor shards [0, count) across the workers via an atomic index and
// blocks the caller until every worker has drained the range. Persistent
// threads avoid per-pattern spawn churn, which would otherwise eat the
// speedup on small designs. The first exception a job throws is captured
// and rethrown on the calling thread.
//
// Jobs receive (workerIdx, jobIdx): workerIdx identifies the executing lane
// (0 <= workerIdx < max(1, threads)), stable for the lifetime of the pool,
// which is what lets campaign engines pin one pooled SimulationController
// per lane — the slot arena's thread-ownership rule holds because lane w is
// only ever driven by pool thread w (or by the caller in inline mode).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcad::fault {

class WorkerPool {
 public:
  /// `threads` == 0 builds an inline pool: parallelFor runs every job on
  /// the calling thread as lane 0.
  explicit WorkerPool(std::size_t threads) {
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this, i] { workerLoop(i); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of lanes a caller must provision state for: the worker count,
  /// or 1 for an inline pool.
  std::size_t lanes() const { return threads_.empty() ? 1 : threads_.size(); }

  void parallelFor(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn) {
    if (count == 0) return;
    if (threads_.empty()) {
      for (std::size_t i = 0; i < count; ++i) fn(0, i);
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    remaining_ = threads_.size();
    ++generation_;
    wake_.notify_all();
    // remaining_ hits zero only after every worker has both observed this
    // generation and exhausted the index range, so the job/count references
    // stay valid for exactly as long as any worker can touch them.
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void workerLoop(std::size_t workerIdx) {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::function<void(std::size_t, std::size_t)>* job = job_;
      const std::size_t count = count_;
      lock.unlock();
      for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
           i < count; i = next_.fetch_add(1, std::memory_order_relaxed)) {
        try {
          (*job)(workerIdx, i);
        } catch (...) {
          std::lock_guard<std::mutex> g(mutex_);
          if (!error_) error_ = std::current_exception();
        }
      }
      lock.lock();
      if (--remaining_ == 0) done_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace vcad::fault
