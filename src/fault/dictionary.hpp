// Fault dictionary: the *static* alternative to the dynamic detection-table
// protocol, made concrete so the paper's central argument can be measured.
//
// The paper: providers could "supply complete information about each IP
// component's detection properties — namely, the output pattern produced by
// the component corresponding to any possible input configuration or any
// possible component fault. This is a huge amount of information;
// worst-case extraction time and representation size grow exponentially
// with the number of inputs ... users exploit only a small subset of such
// information during a typical fault-simulation experiment."
//
// A FaultDictionary is exactly that precharacterized bundle: one detection
// table per input configuration. DictionaryFaultClient then runs virtual
// fault simulation with zero runtime provider contact. The ablation bench
// compares dictionary bytes against the bytes the dynamic protocol actually
// ships.
#pragma once

#include "fault/fault_client.hpp"
#include "net/serialize.hpp"

namespace vcad::fault {

class FaultDictionary {
 public:
  /// Exhaustively characterizes a component: 2^inputs detection tables.
  /// Refuses netlists wider than `maxInputBits` (the exponential wall).
  static FaultDictionary build(const gate::Netlist& netlist,
                               const CollapsedFaults& collapsed,
                               int maxInputBits = 16);

  int inputBits() const { return inputBits_; }
  std::size_t tableCount() const { return tables_.size(); }

  /// The precomputed table for a fully-known input configuration.
  const DetectionTable& tableFor(const Word& inputs) const;

  const std::vector<std::string>& faultList() const { return faultList_; }

  /// Serialized size: what the provider would have to ship up front.
  std::size_t sizeBytes() const;

  void serialize(net::ByteBuffer& buf) const;
  static FaultDictionary deserialize(net::ByteBuffer& buf);

 private:
  int inputBits_ = 0;
  std::vector<std::string> faultList_;
  std::vector<DetectionTable> tables_;  // indexed by the input word's value
};

/// FaultClient answering phase-1 and phase-2 queries from a shipped
/// dictionary — no provider round trips, at the price of the exponential
/// precharacterization.
class DictionaryFaultClient final : public FaultClient {
 public:
  DictionaryFaultClient(Module& module, FaultDictionary dictionary);

  Module& module() override { return module_; }
  std::vector<std::string> faultList() override;
  DetectionTable detectionTable(const Word& inputs) override;

 private:
  Module& module_;
  FaultDictionary dict_;
};

}  // namespace vcad::fault
