#include "fault/detection.hpp"

#include <algorithm>
#include <bit>
#include <map>

namespace vcad::fault {

const Word* DetectionTable::faultyOutputFor(const std::string& symbol) const {
  for (const Row& row : rows_) {
    if (std::find(row.faults.begin(), row.faults.end(), symbol) !=
        row.faults.end()) {
      return &row.faultyOutput;
    }
  }
  return nullptr;
}

std::vector<std::string> DetectionTable::faultsFor(
    const Word& faultyOutput) const {
  for (const Row& row : rows_) {
    if (row.faultyOutput == faultyOutput) return row.faults;
  }
  return {};
}

std::size_t DetectionTable::excitedFaultCount() const {
  std::size_t n = 0;
  for (const Row& row : rows_) n += row.faults.size();
  return n;
}

std::string DetectionTable::toString() const {
  std::string s = "DetectionTable(in=" + inputs_.toString() +
                  ", fault-free=" + faultFree_.toString() + ")";
  for (const Row& row : rows_) {
    s += "\n  " + row.faultyOutput.toString() + " <- {";
    for (std::size_t i = 0; i < row.faults.size(); ++i) {
      if (i != 0) s += ", ";
      s += row.faults[i];
    }
    s += "}";
  }
  return s;
}

void DetectionTable::serialize(net::ByteBuffer& buf) const {
  buf.writeWord(inputs_);
  buf.writeWord(faultFree_);
  buf.writeU32(static_cast<std::uint32_t>(rows_.size()));
  for (const Row& row : rows_) {
    buf.writeWord(row.faultyOutput);
    buf.writeU32(static_cast<std::uint32_t>(row.faults.size()));
    for (const std::string& f : row.faults) buf.writeString(f);
  }
}

DetectionTable DetectionTable::deserialize(net::ByteBuffer& buf) {
  const Word inputs = buf.readWord();
  const Word faultFree = buf.readWord();
  const std::uint32_t nRows = buf.readU32();
  std::vector<Row> rows;
  rows.reserve(nRows);
  for (std::uint32_t r = 0; r < nRows; ++r) {
    Row row;
    row.faultyOutput = buf.readWord();
    const std::uint32_t nFaults = buf.readU32();
    for (std::uint32_t i = 0; i < nFaults; ++i) {
      row.faults.push_back(buf.readString());
    }
    rows.push_back(std::move(row));
  }
  return DetectionTable(inputs, faultFree, std::move(rows));
}

DetectionTable buildDetectionTable(const gate::NetlistEvaluator& eval,
                                   const CollapsedFaults& collapsed,
                                   const Word& inputs) {
  const Word faultFree = eval.evalOutputs(inputs);
  std::map<std::string, DetectionTable::Row> byOutput;
  const Netlist& nl = eval.netlist();
  for (const StuckFault& f : collapsed.representatives) {
    const Word out = eval.evalOutputs(inputs, f);
    if (out == faultFree) continue;  // fault not excited by this pattern
    auto& row = byOutput[out.toString()];
    row.faultyOutput = out;
    row.faults.push_back(symbolOf(nl, f));
  }
  std::vector<DetectionTable::Row> rows;
  rows.reserve(byOutput.size());
  for (auto& [key, row] : byOutput) {
    std::sort(row.faults.begin(), row.faults.end());
    rows.push_back(std::move(row));
  }
  return DetectionTable(inputs, faultFree, std::move(rows));
}

std::vector<DetectionTable> buildDetectionTables(
    const gate::PackedEvaluator& packed, const CollapsedFaults& collapsed,
    const std::vector<Word>& inputs) {
  const Netlist& nl = packed.netlist();
  std::vector<std::string> symbols;
  symbols.reserve(collapsed.representatives.size());
  for (const StuckFault& f : collapsed.representatives) {
    symbols.push_back(symbolOf(nl, f));
  }

  std::vector<DetectionTable> tables;
  tables.reserve(inputs.size());
  std::vector<gate::LanePlanes> golden, faulty;
  for (std::size_t base = 0; base < inputs.size();
       base += gate::PackedEvaluator::kLanes) {
    const std::size_t lanes = std::min<std::size_t>(
        gate::PackedEvaluator::kLanes, inputs.size() - base);
    const auto block = packed.pack(inputs, base, lanes);
    packed.evaluate(block, golden);

    std::vector<std::map<std::string, DetectionTable::Row>> byOutput(lanes);
    for (std::size_t i = 0; i < collapsed.representatives.size(); ++i) {
      packed.evaluate(block, faulty, &collapsed.representatives[i]);
      std::uint64_t diff =
          packed.outputDiffMask(golden, faulty, static_cast<int>(lanes));
      while (diff != 0) {
        const int lane = std::countr_zero(diff);
        diff &= diff - 1;
        const Word out = packed.outputsOf(faulty, lane);
        auto& row = byOutput[static_cast<std::size_t>(lane)][out.toString()];
        row.faultyOutput = out;
        row.faults.push_back(symbols[i]);
      }
    }

    for (std::size_t lane = 0; lane < lanes; ++lane) {
      std::vector<DetectionTable::Row> rows;
      rows.reserve(byOutput[lane].size());
      for (auto& [key, row] : byOutput[lane]) {
        std::sort(row.faults.begin(), row.faults.end());
        rows.push_back(std::move(row));
      }
      tables.emplace_back(inputs[base + lane],
                          packed.outputsOf(golden, static_cast<int>(lane)),
                          std::move(rows));
    }
  }
  return tables;
}

}  // namespace vcad::fault
