#include "fault/detection.hpp"

#include <algorithm>
#include <map>

namespace vcad::fault {

const Word* DetectionTable::faultyOutputFor(const std::string& symbol) const {
  for (const Row& row : rows_) {
    if (std::find(row.faults.begin(), row.faults.end(), symbol) !=
        row.faults.end()) {
      return &row.faultyOutput;
    }
  }
  return nullptr;
}

std::vector<std::string> DetectionTable::faultsFor(
    const Word& faultyOutput) const {
  for (const Row& row : rows_) {
    if (row.faultyOutput == faultyOutput) return row.faults;
  }
  return {};
}

std::size_t DetectionTable::excitedFaultCount() const {
  std::size_t n = 0;
  for (const Row& row : rows_) n += row.faults.size();
  return n;
}

std::string DetectionTable::toString() const {
  std::string s = "DetectionTable(in=" + inputs_.toString() +
                  ", fault-free=" + faultFree_.toString() + ")";
  for (const Row& row : rows_) {
    s += "\n  " + row.faultyOutput.toString() + " <- {";
    for (std::size_t i = 0; i < row.faults.size(); ++i) {
      if (i != 0) s += ", ";
      s += row.faults[i];
    }
    s += "}";
  }
  return s;
}

void DetectionTable::serialize(net::ByteBuffer& buf) const {
  buf.writeWord(inputs_);
  buf.writeWord(faultFree_);
  buf.writeU32(static_cast<std::uint32_t>(rows_.size()));
  for (const Row& row : rows_) {
    buf.writeWord(row.faultyOutput);
    buf.writeU32(static_cast<std::uint32_t>(row.faults.size()));
    for (const std::string& f : row.faults) buf.writeString(f);
  }
}

DetectionTable DetectionTable::deserialize(net::ByteBuffer& buf) {
  const Word inputs = buf.readWord();
  const Word faultFree = buf.readWord();
  const std::uint32_t nRows = buf.readU32();
  std::vector<Row> rows;
  rows.reserve(nRows);
  for (std::uint32_t r = 0; r < nRows; ++r) {
    Row row;
    row.faultyOutput = buf.readWord();
    const std::uint32_t nFaults = buf.readU32();
    for (std::uint32_t i = 0; i < nFaults; ++i) {
      row.faults.push_back(buf.readString());
    }
    rows.push_back(std::move(row));
  }
  return DetectionTable(inputs, faultFree, std::move(rows));
}

DetectionTable buildDetectionTable(const gate::NetlistEvaluator& eval,
                                   const CollapsedFaults& collapsed,
                                   const Word& inputs) {
  const Word faultFree = eval.evalOutputs(inputs);
  std::map<std::string, DetectionTable::Row> byOutput;
  const Netlist& nl = eval.netlist();
  for (const StuckFault& f : collapsed.representatives) {
    const Word out = eval.evalOutputs(inputs, f);
    if (out == faultFree) continue;  // fault not excited by this pattern
    auto& row = byOutput[out.toString()];
    row.faultyOutput = out;
    row.faults.push_back(symbolOf(nl, f));
  }
  std::vector<DetectionTable::Row> rows;
  rows.reserve(byOutput.size());
  for (auto& [key, row] : byOutput) {
    std::sort(row.faults.begin(), row.faults.end());
    rows.push_back(std::move(row));
  }
  return DetectionTable(inputs, faultFree, std::move(rows));
}

}  // namespace vcad::fault
