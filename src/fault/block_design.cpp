#include "fault/block_design.hpp"

#include <map>
#include <stdexcept>

#include "core/wiring.hpp"

namespace vcad::fault {

using gate::NetId;
using gate::Netlist;
using gate::NetlistModule;

int BlockDesign::addBlock(std::string name,
                          std::shared_ptr<const Netlist> netlist) {
  if (!netlist) throw std::invalid_argument("addBlock: null netlist");
  netlist->validate();
  Block b;
  b.name = std::move(name);
  b.inputDrivers.assign(static_cast<size_t>(netlist->inputCount()),
                        Pin{-2, 0});
  b.netlist = std::move(netlist);
  blocks_.push_back(std::move(b));
  return static_cast<int>(blocks_.size()) - 1;
}

int BlockDesign::addPrimaryInput(std::string name) {
  piNames_.push_back(std::move(name));
  return static_cast<int>(piNames_.size()) - 1;
}

void BlockDesign::connect(Pin source, int block, int inPin) {
  auto& b = blocks_.at(static_cast<size_t>(block));
  auto& slot = b.inputDrivers.at(static_cast<size_t>(inPin));
  if (slot.block != -2) {
    throw std::logic_error("block '" + b.name + "' input pin " +
                           std::to_string(inPin) + " already driven");
  }
  if (source.block == -1) {
    if (source.pin < 0 || source.pin >= primaryInputCount()) {
      throw std::out_of_range("connect: bad primary input index");
    }
  } else {
    const auto& src = blocks_.at(static_cast<size_t>(source.block));
    if (source.pin < 0 || source.pin >= src.netlist->outputCount()) {
      throw std::out_of_range("connect: bad source output pin");
    }
  }
  slot = source;
}

void BlockDesign::markPrimaryOutput(int block, int outPin, std::string name) {
  const auto& b = blocks_.at(static_cast<size_t>(block));
  if (outPin < 0 || outPin >= b.netlist->outputCount()) {
    throw std::out_of_range("markPrimaryOutput: bad output pin");
  }
  if (name.empty()) {
    name = b.name + "/" +
           b.netlist->netName(b.netlist->primaryOutputs()[static_cast<size_t>(outPin)]);
  }
  pos_.push_back(PrimaryOutput{block, outPin, std::move(name)});
}

void BlockDesign::validate() const {
  for (const Block& b : blocks_) {
    for (size_t i = 0; i < b.inputDrivers.size(); ++i) {
      if (b.inputDrivers[i].block == -2) {
        throw std::logic_error("block '" + b.name + "' input pin " +
                               std::to_string(i) + " is undriven");
      }
    }
  }
  if (pos_.empty()) {
    throw std::logic_error("design has no primary outputs");
  }
  (void)topoBlocks();
}

std::vector<int> BlockDesign::topoBlocks() const {
  std::vector<int> state(blocks_.size(), 0);  // 0 new, 1 visiting, 2 done
  std::vector<int> order;
  // Iterative DFS.
  for (int start = 0; start < blockCount(); ++start) {
    if (state[static_cast<size_t>(start)] != 0) continue;
    std::vector<std::pair<int, size_t>> stack{{start, 0}};
    state[static_cast<size_t>(start)] = 1;
    while (!stack.empty()) {
      auto& [b, edge] = stack.back();
      const Block& blk = blocks_[static_cast<size_t>(b)];
      bool descended = false;
      while (edge < blk.inputDrivers.size()) {
        const Pin src = blk.inputDrivers[edge++];
        if (src.block < 0) continue;
        const int dep = src.block;
        if (state[static_cast<size_t>(dep)] == 1) {
          throw std::logic_error("block graph contains a cycle through '" +
                                 blocks_[static_cast<size_t>(dep)].name + "'");
        }
        if (state[static_cast<size_t>(dep)] == 0) {
          state[static_cast<size_t>(dep)] = 1;
          stack.emplace_back(dep, 0);
          descended = true;
          break;
        }
      }
      if (!descended && edge >= blk.inputDrivers.size()) {
        state[static_cast<size_t>(b)] = 2;
        order.push_back(b);
        stack.pop_back();
      }
    }
  }
  return order;
}

Netlist BlockDesign::flatten() const {
  validate();
  Netlist out;
  std::vector<NetId> piNets;
  piNets.reserve(piNames_.size());
  for (const std::string& n : piNames_) piNets.push_back(out.addInput(n));

  // For each block, the flat net carrying each of its nets.
  std::vector<std::vector<NetId>> blockNet(
      blocks_.size(), std::vector<NetId>());

  for (int b : topoBlocks()) {
    const Block& blk = blocks_[static_cast<size_t>(b)];
    const Netlist& nl = *blk.netlist;
    auto& map = blockNet[static_cast<size_t>(b)];
    map.assign(static_cast<size_t>(nl.netCount()), gate::kNoNet);

    // Bind block inputs to their flat driver nets.
    for (size_t pin = 0; pin < blk.inputDrivers.size(); ++pin) {
      const Pin src = blk.inputDrivers[pin];
      NetId flat;
      if (src.block == -1) {
        flat = piNets[static_cast<size_t>(src.pin)];
      } else {
        const Netlist& srcNl = *blocks_[static_cast<size_t>(src.block)].netlist;
        const NetId srcNet =
            srcNl.primaryOutputs()[static_cast<size_t>(src.pin)];
        flat = blockNet[static_cast<size_t>(src.block)]
                       [static_cast<size_t>(srcNet)];
      }
      map[static_cast<size_t>(nl.primaryInputs()[pin])] = flat;
    }

    // Clone internal nets and gates in topological order.
    for (int g : nl.topoOrder()) {
      const gate::GateNode& gn = nl.gates()[static_cast<size_t>(g)];
      std::vector<NetId> ins;
      ins.reserve(gn.inputs.size());
      for (NetId in : gn.inputs) {
        ins.push_back(map[static_cast<size_t>(in)]);
      }
      const NetId flatOut = out.addGate(
          gn.type, std::move(ins), blk.name + "/" + nl.netName(gn.output));
      map[static_cast<size_t>(gn.output)] = flatOut;
    }
  }

  for (const PrimaryOutput& po : pos_) {
    const Netlist& nl = *blocks_[static_cast<size_t>(po.block)].netlist;
    const NetId net = nl.primaryOutputs()[static_cast<size_t>(po.pin)];
    out.markOutput(
        blockNet[static_cast<size_t>(po.block)][static_cast<size_t>(net)]);
  }
  out.validate();
  return out;
}

BlockDesign::Instantiation BlockDesign::instantiate() const {
  validate();
  Instantiation inst;
  inst.circuit = std::make_unique<Circuit>("design");
  Circuit& c = *inst.circuit;

  // Consumers of every source pin (design PI or block output), so fanout
  // modules can be created where needed.
  struct Consumer {
    int block;
    int inPin;
  };
  std::map<std::pair<int, int>, std::vector<Consumer>> consumers;
  for (int b = 0; b < blockCount(); ++b) {
    const Block& blk = blocks_[static_cast<size_t>(b)];
    for (size_t pin = 0; pin < blk.inputDrivers.size(); ++pin) {
      const Pin src = blk.inputDrivers[pin];
      consumers[{src.block, src.pin}].push_back(
          Consumer{b, static_cast<int>(pin)});
    }
  }
  std::map<std::pair<int, int>, int> poCount;
  for (const PrimaryOutput& po : pos_) ++poCount[{po.block, po.pin}];

  // Per block-input connector, to be filled as sources are laid out.
  std::vector<std::vector<Connector*>> blockInConn(blocks_.size());
  for (int b = 0; b < blockCount(); ++b) {
    blockInConn[static_cast<size_t>(b)].assign(
        blocks_[static_cast<size_t>(b)].inputDrivers.size(), nullptr);
  }

  // Routes one source connector to all its consumers (+ optional PO taps),
  // inserting a fanout module when there is more than one destination.
  auto route = [&](Connector& srcConn, const std::string& srcName,
                   const std::vector<Consumer>& dests, int poTaps,
                   std::vector<Connector*>& poOut) {
    const int total = static_cast<int>(dests.size()) + poTaps;
    if (total == 0) return;
    if (total == 1 && poTaps == 0) {
      const Consumer& d = dests[0];
      blockInConn[static_cast<size_t>(d.block)][static_cast<size_t>(d.inPin)] =
          &srcConn;
      return;
    }
    if (total == 1 && poTaps == 1) {
      poOut.push_back(&srcConn);
      return;
    }
    std::vector<Fanout::Branch> branches;
    std::vector<Connector*> branchConns;
    for (int i = 0; i < total; ++i) {
      Connector& bc = c.makeBit(srcName + "#" + std::to_string(i));
      branches.push_back({&bc, 0});
      branchConns.push_back(&bc);
    }
    c.make<Fanout>("fan:" + srcName, srcConn, std::move(branches));
    int next = 0;
    for (const Consumer& d : dests) {
      blockInConn[static_cast<size_t>(d.block)][static_cast<size_t>(d.inPin)] =
          branchConns[static_cast<size_t>(next++)];
    }
    for (int i = 0; i < poTaps; ++i) {
      poOut.push_back(branchConns[static_cast<size_t>(next++)]);
    }
  };

  // Primary-output connectors are gathered per (block, pin) first, then
  // ordered to match pos_.
  std::map<std::pair<int, int>, std::vector<Connector*>> poConnsOf;

  // Design PIs.
  for (int pi = 0; pi < primaryInputCount(); ++pi) {
    Connector& src = c.makeBit(piNames_[static_cast<size_t>(pi)]);
    inst.piConns.push_back(&src);
    auto it = consumers.find({-1, pi});
    static const std::vector<Consumer> kNone;
    std::vector<Connector*> unusedPo;
    route(src, piNames_[static_cast<size_t>(pi)],
          it != consumers.end() ? it->second : kNone, 0, unusedPo);
  }

  // Block output connectors + routing.
  std::vector<std::vector<Connector*>> blockOutConn(blocks_.size());
  for (int b = 0; b < blockCount(); ++b) {
    const Block& blk = blocks_[static_cast<size_t>(b)];
    for (int pin = 0; pin < blk.netlist->outputCount(); ++pin) {
      const std::string name = blk.name + "." + std::to_string(pin);
      Connector& src = c.makeBit(name);
      blockOutConn[static_cast<size_t>(b)].push_back(&src);
      auto it = consumers.find({b, pin});
      static const std::vector<Consumer> kNone;
      const int taps = poCount.count({b, pin}) ? poCount[{b, pin}] : 0;
      std::vector<Connector*> poOut;
      route(src, name, it != consumers.end() ? it->second : kNone, taps,
            poOut);
      if (taps > 0) poConnsOf[{b, pin}] = poOut;
    }
  }

  // Blocks themselves.
  for (int b = 0; b < blockCount(); ++b) {
    const Block& blk = blocks_[static_cast<size_t>(b)];
    auto mod = gate::makeBitLevelModule(
        blk.name, blk.netlist, blockInConn[static_cast<size_t>(b)],
        blockOutConn[static_cast<size_t>(b)]);
    inst.blockModules.push_back(mod.get());
    c.adopt(std::move(mod));
  }

  // Primary outputs, in declaration order.
  std::map<std::pair<int, int>, std::size_t> taken;
  for (const PrimaryOutput& po : pos_) {
    auto& pool = poConnsOf.at({po.block, po.pin});
    inst.poConns.push_back(pool.at(taken[{po.block, po.pin}]++));
  }
  return inst;
}

}  // namespace vcad::fault
