// ParallelFaultSimulator: the worker-pool variant of the virtual
// fault-simulation campaign.
//
// The serial VirtualFaultSimulator is a triple loop — one injection at a
// time, one blocking detection-table round trip per (pattern, component).
// Over a WAN profile the campaign is latency-bound exactly the way the
// paper's buffering section warns against. This engine removes both
// bottlenecks while producing bit-identical results:
//
//   * Batched table fetch: patterns are processed in batches; per component,
//     the batch's unseen input configurations ship in ONE GetDetectionTables
//     round trip (the paper's pattern-buffering mechanism applied to fault
//     characterization). The NetworkModel is charged one message pair per
//     batch instead of one per configuration.
//   * Parallel injection: the per-row fault-injection jobs of each pattern
//     shard across N worker threads. Each worker pins one pooled
//     SimulationController — one slot of the state arena — for the whole
//     campaign and reset()s it between jobs (an O(1) generation renew), so
//     the backplane isolates the concurrent runs with no save/restore and
//     no per-injection controller churn, exactly the paper's
//     multi-scheduler guarantee. Per-job detection verdicts are recorded
//     lock-free and merged after the pattern's pool barrier.
//
// Equivalence to the serial path: fault list, detected set, and the
// per-pattern coverage curve (detectedAfterPattern) are identical. Patterns
// are still committed in order — a pattern's injection jobs are built from
// the detected set as of the previous pattern — and detection only ever adds
// faults, so intra-pattern ordering cannot change the outcome. Only the
// `injections` effort counter may exceed the serial run's, because rows are
// not dropped mid-pattern by their concurrent siblings.
#pragma once

#include <cstddef>
#include <vector>

#include "core/sim_controller.hpp"
#include "fault/fault_client.hpp"
#include "fault/virtual_sim.hpp"

namespace vcad::fault {

struct ParallelCampaignConfig {
  std::size_t threads = 4;    // injection worker threads (<= 1 runs inline)
  std::size_t batchSize = 4;  // patterns whose detection tables are fetched
                              // per round trip (1 = unbatched)
  bool cacheTables = true;    // client-side detection-table cache
  // Round batchSize up to a multiple of gate::PackedEvaluator::kLanes (64)
  // so each provider-side GetDetectionTables batch fills whole lanes of the
  // packed bit-parallel table builder. Off by default: round-trip counts are
  // part of the protocol-cost experiments and must not shift silently.
  bool alignBatchesToPackWidth = false;
};

class ParallelFaultSimulator {
 public:
  /// Same contract as VirtualFaultSimulator: `components` are the design's
  /// fault-participating blocks, `primaryInputs`/`primaryOutputs` the
  /// connectors where patterns are applied and responses observed.
  ParallelFaultSimulator(Circuit& design, std::vector<FaultClient*> components,
                         std::vector<Connector*> primaryInputs,
                         std::vector<Connector*> primaryOutputs,
                         ParallelCampaignConfig config = {});

  /// Runs the two-phase campaign over the given patterns (one word per
  /// primary-input connector per pattern).
  CampaignResult run(const std::vector<std::vector<Word>>& patterns);

  /// Convenience for all-single-bit primary inputs: bit i of each packed
  /// word drives primaryInputs[i].
  CampaignResult runPacked(const std::vector<Word>& packedPatterns);

  const ParallelCampaignConfig& config() const { return config_; }

 private:
  void applyPattern(SimulationController& sim,
                    const std::vector<Word>& pattern);

  Circuit& design_;
  std::vector<FaultClient*> components_;
  std::vector<Connector*> pis_;
  std::vector<Connector*> pos_;
  ParallelCampaignConfig config_;
};

}  // namespace vcad::fault
