// Stuck-at fault model: fault universe enumeration and structural
// collapsing.
//
// Providers precharacterize each IP component's fault list and publish it
// under *symbolic names* ("I3sa0"): the names identify faults without
// revealing the gate structure around them. Collapsing (gate-local
// equivalence, then classic dominance) shrinks the list the provider must
// characterize — the paper's "the provider exploits basic fault dominance".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gate/netlist.hpp"

namespace vcad::fault {

using gate::Netlist;
using gate::NetId;
using gate::StuckFault;

/// Display / symbolic name of a fault: "<net>sa0" or "<net>sa1".
std::string symbolOf(const Netlist& nl, const StuckFault& f);

/// All stuck-at faults of a netlist (two per net). Flags exclude faults on
/// primary inputs/outputs — per the paper, "the user directly handles faults
/// affecting input or output signals", so an IP provider publishes internal
/// faults only.
std::vector<StuckFault> enumerateFaults(const Netlist& nl,
                                        bool includePrimaryInputs = true,
                                        bool includePrimaryOutputNets = true);

/// Result of structural collapsing over a fault universe.
struct CollapsedFaults {
  /// One representative per surviving equivalence class, in a deterministic
  /// order (topological level, then net id, then stuck value).
  std::vector<StuckFault> representatives;

  /// Every universe fault -> index into `representatives`, or -1 when the
  /// fault was removed by dominance (it is implicitly covered by tests for
  /// a kept fault).
  std::map<StuckFault, int> repIndexOf;

  /// The full membership of each representative's equivalence class.
  std::vector<std::vector<StuckFault>> classes;

  std::size_t size() const { return representatives.size(); }
};

/// Gate-local equivalence collapsing: e.g. any AND input sa0 is equivalent
/// to the output sa0; NOT input sa0 is equivalent to output sa1. Applied
/// only across nets with fanout 1 (stem/branch safety).
CollapsedFaults collapseEquivalent(const Netlist& nl,
                                   const std::vector<StuckFault>& universe);

/// Dominance collapsing on top of equivalence: drops the dominating gate
/// output fault when all tests for a kept input fault also detect it
/// (AND: output sa1, NAND: output sa0, OR: output sa0, NOR: output sa1).
/// Dropped faults map to repIndexOf = -1.
CollapsedFaults collapseDominance(const Netlist& nl,
                                  const CollapsedFaults& equiv);

/// Convenience: enumerate + equivalence (+ optional dominance).
CollapsedFaults collapseAll(const Netlist& nl, bool dominance = true,
                            bool includePrimaryInputs = true,
                            bool includePrimaryOutputNets = true);

/// Symbolic fault list of a component as published by its provider:
/// internal faults only, collapsed, names only.
std::vector<std::string> symbolicFaultList(const Netlist& nl,
                                           const CollapsedFaults& collapsed);

}  // namespace vcad::fault
