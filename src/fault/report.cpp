#include "fault/report.hpp"

#include <algorithm>
#include <ostream>

namespace vcad::fault {

void writeMarkdownReport(std::ostream& os, const CampaignResult& result,
                         const std::string& title) {
  os << "# " << title << "\n\n";
  os << "- faults (collapsed): " << result.faultList.size() << "\n";
  os << "- detected: " << result.detected.size() << " ("
     << static_cast<int>(100.0 * result.coverage() + 0.5) << "%)\n";
  os << "- patterns applied: " << result.detectedAfterPattern.size() << "\n";
  os << "- detection tables fetched: " << result.detectionTablesRequested
     << " (+" << result.tableCacheHits << " cache hits)\n";
  os << "- injections simulated: " << result.injections << "\n\n";

  os << "## Coverage curve\n\n| pattern | detected | coverage |\n|---|---|---|\n";
  for (std::size_t p = 0; p < result.detectedAfterPattern.size(); ++p) {
    const double cov =
        result.faultList.empty()
            ? 0.0
            : 100.0 * static_cast<double>(result.detectedAfterPattern[p]) /
                  static_cast<double>(result.faultList.size());
    os << "| " << (p + 1) << " | " << result.detectedAfterPattern[p] << " | "
       << static_cast<int>(cov + 0.5) << "% |\n";
  }

  os << "\n## Undetected faults\n\n";
  bool any = false;
  for (const std::string& f : result.faultList) {
    if (result.detected.count(f) == 0) {
      os << "- `" << f << "`\n";
      any = true;
    }
  }
  if (!any) os << "(none)\n";
}

void writeCoverageCsv(std::ostream& os, const CampaignResult& result) {
  os << "pattern_index,detected,total,coverage_pct\n";
  for (std::size_t p = 0; p < result.detectedAfterPattern.size(); ++p) {
    const double cov =
        result.faultList.empty()
            ? 0.0
            : 100.0 * static_cast<double>(result.detectedAfterPattern[p]) /
                  static_cast<double>(result.faultList.size());
    os << (p + 1) << "," << result.detectedAfterPattern[p] << ","
       << result.faultList.size() << "," << cov << "\n";
  }
}

void writeMarkdownReport(std::ostream& os, const SeqCampaignResult& result,
                         const std::string& title) {
  os << "# " << title << "\n\n";
  os << "- faults (collapsed): " << result.faultList.size() << "\n";
  os << "- detected: " << result.detectedCount() << " ("
     << static_cast<int>(100.0 * result.coverage() + 0.5) << "%)\n";
  os << "- good-machine steps: " << result.goodSteps << "\n";
  os << "- shadow-machine steps: " << result.faultySteps << "\n";

  if (!result.detectedAtCycle.empty()) {
    std::vector<std::size_t> latencies;
    for (const auto& [sym, cycle] : result.detectedAtCycle) {
      latencies.push_back(cycle);
    }
    std::sort(latencies.begin(), latencies.end());
    os << "- detection latency (cycles): min " << latencies.front()
       << ", median " << latencies[latencies.size() / 2] << ", max "
       << latencies.back() << "\n";
  }

  os << "\n## Undetected faults\n\n";
  bool any = false;
  for (const std::string& f : result.faultList) {
    if (result.detectedAtCycle.count(f) == 0) {
      os << "- `" << f << "`\n";
      any = true;
    }
  }
  if (!any) os << "(none)\n";
}

}  // namespace vcad::fault
