// SerialFaultSimulator: the classic full-disclosure baseline.
//
// Operates on a single flat netlist (which only someone owning every
// component could construct) and simulates each fault explicitly per
// pattern. Used to (a) validate that virtual fault simulation detects
// exactly the same faults, and (b) quantify what the virtual protocol costs
// relative to unrestricted access.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "fault/model.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/packed_eval.hpp"

namespace vcad::fault {

class SerialFaultSimulator {
 public:
  /// Simulates the given fault set (named by `symbols`, parallel to
  /// `faults`) on the flat netlist.
  SerialFaultSimulator(const Netlist& netlist, std::vector<StuckFault> faults,
                       std::vector<std::string> symbols);

  /// Convenience: faults = collapsed fault universe of the netlist itself.
  SerialFaultSimulator(const Netlist& netlist, bool dominance = true);

  /// Runs the campaign: for each pattern, fault-free evaluation plus one
  /// faulty evaluation per undetected fault (with fault dropping).
  ///
  /// Executes on the packed bit-parallel engine — patterns are processed in
  /// 64-wide blocks, one fault propagated across all lanes per pass — and
  /// produces a CampaignResult identical field-for-field to runScalar():
  /// same detected set, same per-pattern coverage curve, and the same
  /// faultSimEvaluations count (a fault detected at pattern p is charged
  /// one evaluation for every pattern up to and including p, exactly the
  /// scalar dropping schedule).
  CampaignResult run(const std::vector<Word>& patterns);

  /// The classic one-pattern-at-a-time reference path, kept as the golden
  /// oracle for the packed engine.
  CampaignResult runScalar(const std::vector<Word>& patterns);

  const std::vector<StuckFault>& faults() const { return faults_; }
  const std::vector<std::string>& symbols() const { return symbols_; }

 private:
  const Netlist& netlist_;
  gate::NetlistEvaluator eval_;
  gate::PackedEvaluator packed_;
  std::vector<StuckFault> faults_;
  std::vector<std::string> symbols_;
};

/// Maps a component-qualified fault symbol ("MULT/n42sa0") to the
/// corresponding stuck-at fault in a flattened BlockDesign netlist (net
/// "MULT/n42"). Throws when the net does not exist.
StuckFault flatFaultOf(const Netlist& flat, const std::string& qualifiedSymbol);

}  // namespace vcad::fault
