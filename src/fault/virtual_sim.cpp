#include "fault/virtual_sim.hpp"

#include <cassert>
#include <map>
#include <stdexcept>

#include "core/slot_registry.hpp"
#include "fault/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::fault {

namespace {
struct CampaignMetrics {
  obs::Registry::MetricId runs, patterns, faults, detected, injections,
      tablesRequested, tableRoundTrips, tableCacheHits, slotsLeased,
      schedulerResets;
  obs::Registry::MetricId peakConcurrentSchedulers;

  static const CampaignMetrics& get() {
    static const CampaignMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return CampaignMetrics{r.counter("campaign.runs"),
                             r.counter("campaign.patterns"),
                             r.counter("campaign.faults"),
                             r.counter("campaign.detected"),
                             r.counter("campaign.injections"),
                             r.counter("campaign.tablesRequested"),
                             r.counter("campaign.tableRoundTrips"),
                             r.counter("campaign.tableCacheHits"),
                             r.counter("campaign.slotsLeased"),
                             r.counter("campaign.schedulerResets"),
                             r.gauge("campaign.peakConcurrentSchedulers")};
    }();
    return m;
  }
};
}  // namespace

void recordCampaignMetrics(const CampaignResult& res) {
  const CampaignMetrics& ids = CampaignMetrics::get();
  obs::Registry& reg = obs::Registry::global();
  reg.add(ids.runs);
  reg.add(ids.patterns, res.detectedAfterPattern.size());
  reg.add(ids.faults, res.faultList.size());
  reg.add(ids.detected, res.detected.size());
  reg.add(ids.injections, res.injections);
  reg.add(ids.tablesRequested, res.detectionTablesRequested);
  reg.add(ids.tableRoundTrips, res.tableFetchRoundTrips);
  reg.add(ids.tableCacheHits, res.tableCacheHits);
  reg.add(ids.slotsLeased, res.slotsLeased);
  reg.add(ids.schedulerResets, res.schedulerResets);
  reg.maxGauge(ids.peakConcurrentSchedulers,
               static_cast<std::int64_t>(res.peakConcurrentSchedulers));
}

VirtualFaultSimulator::VirtualFaultSimulator(
    Circuit& design, std::vector<FaultClient*> components,
    std::vector<Connector*> primaryInputs,
    std::vector<Connector*> primaryOutputs)
    : design_(design),
      components_(std::move(components)),
      pis_(std::move(primaryInputs)),
      pos_(std::move(primaryOutputs)) {
  if (components_.empty()) {
    throw std::invalid_argument("VirtualFaultSimulator: no components");
  }
  if (pis_.empty() || pos_.empty()) {
    throw std::invalid_argument(
        "VirtualFaultSimulator: need primary inputs and outputs");
  }
}

void VirtualFaultSimulator::applyPattern(SimulationController& sim,
                                         const std::vector<Word>& pattern) {
  if (pattern.size() != pis_.size()) {
    throw std::invalid_argument("pattern arity does not match primary inputs");
  }
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    sim.inject(*pis_[i], pattern[i]);
  }
  sim.start();
}

CampaignResult VirtualFaultSimulator::run(
    const std::vector<std::vector<Word>>& patterns) {
  return injectionWorkers_ == 0 ? runSerialInjection(patterns)
                                : runPooled(patterns);
}

CampaignResult VirtualFaultSimulator::runSerialInjection(
    const std::vector<std::vector<Word>>& patterns) {
  SlotRegistry& registry = SlotRegistry::global();
  const std::uint64_t leasesBefore = registry.totalLeases();
  registry.restartPeakTracking();

  obs::SpanScope campaignSpan("campaign.serial", "campaign");
  CampaignResult res;

  // --- Phase 1: compose the symbolic fault lists -------------------------
  std::vector<std::vector<std::string>> qualified(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const std::string prefix = components_[c]->module().name() + "/";
    for (const std::string& s : components_[c]->faultList()) {
      qualified[c].push_back(prefix + s);
      res.faultList.push_back(prefix + s);
    }
  }

  // --- Phase 2: per-pattern dynamic estimation ----------------------------
  // Per-component detection-table cache keyed by the component's observed
  // input configuration.
  std::vector<std::map<std::string, DetectionTable>> tableCache(
      components_.size());
  std::size_t patternIndex = 0;
  for (const std::vector<Word>& pattern : patterns) {
    obs::SpanScope patternSpan("campaign.pattern", "campaign");
    patternSpan.arg("pattern", static_cast<double>(patternIndex++));
    const std::uint64_t injectionsBefore = res.injections;
    // Fault-free reference run.
    SimulationController ff(design_);
    applyPattern(ff, pattern);
    const SimContext ffCtx{ff.scheduler(), nullptr};
    std::vector<Word> goldenPo;
    goldenPo.reserve(pos_.size());
    for (Connector* po : pos_) goldenPo.push_back(po->value(ff.scheduler().id()));

    for (std::size_t c = 0; c < components_.size(); ++c) {
      FaultClient& comp = *components_[c];
      const std::string prefix = comp.module().name() + "/";
      const Word inputs = comp.observedInputs(ffCtx);
      const std::string cacheKey = inputs.toString();
      auto& cache = tableCache[c];
      // Bind the table by reference: copying a cached DetectionTable for
      // every (pattern, component) pair was pure per-pattern overhead.
      DetectionTable fetched;
      const DetectionTable* table = nullptr;
      if (cacheTables_) {
        auto cached = cache.find(cacheKey);
        if (cached == cache.end()) {
          cached = cache.emplace(cacheKey, comp.detectionTable(inputs)).first;
          ++res.detectionTablesRequested;
          ++res.tableFetchRoundTrips;
        } else {
          ++res.tableCacheHits;
        }
        table = &cached->second;
      } else {
        fetched = comp.detectionTable(inputs);
        ++res.detectionTablesRequested;
        ++res.tableFetchRoundTrips;
        table = &fetched;
      }

      for (const DetectionTable::Row& row : table->rows()) {
        // Skip rows whose faults are all already detected.
        bool anyUndetected = false;
        for (const std::string& f : row.faults) {
          if (res.detected.find(prefix + f) == res.detected.end()) {
            anyUndetected = true;
            break;
          }
        }
        if (!anyUndetected) continue;

        // Inject the erroneous output configuration: a fresh single-instant
        // controller with the component's event handling overridden.
        SimulationController inj(design_);
        inj.forceOutputs(comp.module(), comp.overridesFor(row.faultyOutput));
        applyPattern(inj, pattern);
        ++res.injections;
        if (obs::Tracer::global().verbose()) {
          obs::Tracer::global().instant(
              "campaign.inject", "campaign",
              {{"component", static_cast<double>(c)},
               {"rowFaults", static_cast<double>(row.faults.size())}});
        }

        bool observable = false;
        for (std::size_t j = 0; j < pos_.size(); ++j) {
          if (pos_[j]->value(inj.scheduler().id()) != goldenPo[j]) {
            observable = true;
            break;
          }
        }
        if (observable) {
          for (const std::string& f : row.faults) res.detected.insert(prefix + f);
        }
        design_.clearSchedulerState(inj.scheduler().id());
      }
    }
    design_.clearSchedulerState(ff.scheduler().id());
    assert(design_.residualStateCount(ff.scheduler().slot()) == 0 &&
           "clearSchedulerState left live state behind");
    res.detectedAfterPattern.push_back(res.detected.size());
    patternSpan.arg("injections",
                    static_cast<double>(res.injections - injectionsBefore));
    patternSpan.arg("detected", static_cast<double>(res.detected.size()));
  }

  res.slotsLeased = registry.totalLeases() - leasesBefore;
  res.peakConcurrentSchedulers = registry.peakLeased();
  campaignSpan.arg("patterns", static_cast<double>(patterns.size()));
  campaignSpan.arg("faults", static_cast<double>(res.faultList.size()));
  campaignSpan.arg("detected", static_cast<double>(res.detected.size()));
  campaignSpan.arg("injections", static_cast<double>(res.injections));
  recordCampaignMetrics(res);
  return res;
}

CampaignResult VirtualFaultSimulator::runPooled(
    const std::vector<std::vector<Word>>& patterns) {
  SlotRegistry& registry = SlotRegistry::global();
  const std::uint64_t leasesBefore = registry.totalLeases();
  registry.restartPeakTracking();

  obs::SpanScope campaignSpan("campaign.pooled", "campaign");
  campaignSpan.arg("workers", static_cast<double>(injectionWorkers_));
  CampaignResult res;

  // --- Phase 1: identical to the serial engine ---------------------------
  std::vector<std::string> prefixes(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    prefixes[c] = components_[c]->module().name() + "/";
    for (const std::string& s : components_[c]->faultList()) {
      res.faultList.push_back(prefixes[c] + s);
    }
  }

  // --- Phase 2: pooled concurrent injection ------------------------------
  // One pinned controller per pool lane plus one for the fault-free
  // reference run; all are leased once and reset-and-reused, so a whole
  // campaign consumes injectionWorkers_ + 1 slots no matter how many
  // patterns and injections it executes.
  WorkerPool pool(injectionWorkers_ > 1 ? injectionWorkers_ : 0);
  std::vector<std::unique_ptr<SimulationController>> lanes(pool.lanes());
  for (auto& lane : lanes) {
    lane = std::make_unique<SimulationController>(design_);
  }
  SimulationController ff(design_);
  res.injectionWorkers = injectionWorkers_;
  res.workerInjections.assign(pool.lanes(), 0);

  std::vector<std::map<std::string, DetectionTable>> tableCache(
      components_.size());

  struct Job {
    std::size_t comp;
    const DetectionTable::Row* row;
    bool observable = false;
  };

  bool firstPattern = true;
  std::size_t patternIndex = 0;
  for (const std::vector<Word>& pattern : patterns) {
    obs::SpanScope patternSpan("campaign.pattern", "campaign");
    patternSpan.arg("pattern", static_cast<double>(patternIndex++));
    // Fault-free reference run on the pinned ff controller.
    if (!firstPattern) {
      ff.reset();
      ++res.schedulerResets;
    }
    firstPattern = false;
    applyPattern(ff, pattern);
    const SimContext ffCtx{ff.scheduler(), nullptr};
    std::vector<Word> goldenPo;
    goldenPo.reserve(pos_.size());
    for (Connector* po : pos_) {
      goldenPo.push_back(po->value(ff.scheduler().id()));
    }

    // Table fetch stays serial on the coordinator, in component order, so
    // the round-trip/cache accounting matches the serial engine exactly.
    // Uncached tables must outlive this pattern's injection jobs; reserve
    // keeps the row pointers stable.
    std::vector<DetectionTable> freshTables;
    freshTables.reserve(components_.size());
    std::vector<Job> jobs;
    for (std::size_t c = 0; c < components_.size(); ++c) {
      FaultClient& comp = *components_[c];
      const Word inputs = comp.observedInputs(ffCtx);
      const DetectionTable* table = nullptr;
      if (cacheTables_) {
        auto& cache = tableCache[c];
        const std::string cacheKey = inputs.toString();
        auto cached = cache.find(cacheKey);
        if (cached == cache.end()) {
          cached = cache.emplace(cacheKey, comp.detectionTable(inputs)).first;
          ++res.detectionTablesRequested;
          ++res.tableFetchRoundTrips;
        } else {
          ++res.tableCacheHits;
        }
        table = &cached->second;
      } else {
        freshTables.push_back(comp.detectionTable(inputs));
        ++res.detectionTablesRequested;
        ++res.tableFetchRoundTrips;
        table = &freshTables.back();
      }

      // Row skip decisions use the detected set as of pattern start. This
      // reproduces the serial engine's per-row decisions exactly: rows of
      // one table are fault-disjoint (a fault's faulty output under fixed
      // inputs is unique, so each fault appears in exactly one row) and
      // component fault names carry distinct "<module>/" prefixes, so
      // nothing detected mid-pattern can overlap another pending row of
      // the same pattern.
      for (const DetectionTable::Row& row : table->rows()) {
        bool anyUndetected = false;
        for (const std::string& f : row.faults) {
          if (res.detected.find(prefixes[c] + f) == res.detected.end()) {
            anyUndetected = true;
            break;
          }
        }
        if (anyUndetected) jobs.push_back(Job{c, &row, false});
      }
    }

    // Row injections shard across the lanes; lane w is only ever driven by
    // pool thread w, so per-slot arena state needs no locks. Each job
    // resets its lane (O(1) generation renew) instead of constructing a
    // controller.
    std::vector<std::uint64_t> laneResets(lanes.size(), 0);
    pool.parallelFor(jobs.size(), [&](std::size_t w, std::size_t j) {
      Job& job = jobs[j];
      FaultClient& comp = *components_[job.comp];
      SimulationController& inj = *lanes[w];
      inj.reset();
      ++laneResets[w];
      inj.forceOutputs(comp.module(), comp.overridesFor(job.row->faultyOutput));
      applyPattern(inj, pattern);
      if (obs::Tracer::global().verbose()) {
        obs::Tracer::global().instant(
            "campaign.inject", "campaign",
            {{"lane", static_cast<double>(w)},
             {"component", static_cast<double>(job.comp)},
             {"rowFaults", static_cast<double>(job.row->faults.size())}});
      }
      for (std::size_t k = 0; k < pos_.size(); ++k) {
        if (pos_[k]->value(inj.scheduler().slot(),
                           inj.scheduler().slotGeneration()) != goldenPo[k]) {
          job.observable = true;
          break;
        }
      }
      ++res.workerInjections[w];
    });

    // Merge after the pool barrier, in job order (set union is
    // order-independent, but determinism keeps this auditable).
    for (const Job& job : jobs) {
      if (!job.observable) continue;
      for (const std::string& f : job.row->faults) {
        res.detected.insert(prefixes[job.comp] + f);
      }
    }
    res.injections += jobs.size();
    for (std::uint64_t r : laneResets) res.schedulerResets += r;
    res.detectedAfterPattern.push_back(res.detected.size());
    patternSpan.arg("injections", static_cast<double>(jobs.size()));
    patternSpan.arg("detected", static_cast<double>(res.detected.size()));
  }

  // Pooled lanes are logically clean after every reset; physically release
  // their arena entries before the controllers die so a finished campaign
  // leaves nothing behind, then verify it.
  design_.clearSchedulerState(ff.scheduler().id());
  assert(design_.residualStateCount(ff.scheduler().slot()) == 0 &&
         "clearSchedulerState left live ff state behind");
  for (auto& lane : lanes) {
    design_.clearSchedulerState(lane->scheduler().id());
    assert(design_.residualStateCount(lane->scheduler().slot()) == 0 &&
           "clearSchedulerState left live lane state behind");
  }

  res.slotsLeased = registry.totalLeases() - leasesBefore;
  res.peakConcurrentSchedulers = registry.peakLeased();
  campaignSpan.arg("patterns", static_cast<double>(patterns.size()));
  campaignSpan.arg("faults", static_cast<double>(res.faultList.size()));
  campaignSpan.arg("detected", static_cast<double>(res.detected.size()));
  campaignSpan.arg("injections", static_cast<double>(res.injections));
  recordCampaignMetrics(res);
  return res;
}

CampaignResult VirtualFaultSimulator::runPacked(
    const std::vector<Word>& packedPatterns) {
  return run(unpackPatterns(packedPatterns, pis_.size()));
}

std::vector<std::vector<Word>> unpackPatterns(
    const std::vector<Word>& packedPatterns, std::size_t primaryInputs) {
  std::vector<std::vector<Word>> unpacked;
  unpacked.reserve(packedPatterns.size());
  for (const Word& w : packedPatterns) {
    if (w.width() != static_cast<int>(primaryInputs)) {
      throw std::invalid_argument("packed pattern width != primary inputs");
    }
    std::vector<Word> p;
    p.reserve(primaryInputs);
    for (std::size_t i = 0; i < primaryInputs; ++i) {
      p.push_back(Word::fromLogic(w.bit(static_cast<int>(i))));
    }
    unpacked.push_back(std::move(p));
  }
  return unpacked;
}

}  // namespace vcad::fault
