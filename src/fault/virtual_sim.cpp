#include "fault/virtual_sim.hpp"

#include <map>
#include <stdexcept>

namespace vcad::fault {

VirtualFaultSimulator::VirtualFaultSimulator(
    Circuit& design, std::vector<FaultClient*> components,
    std::vector<Connector*> primaryInputs,
    std::vector<Connector*> primaryOutputs)
    : design_(design),
      components_(std::move(components)),
      pis_(std::move(primaryInputs)),
      pos_(std::move(primaryOutputs)) {
  if (components_.empty()) {
    throw std::invalid_argument("VirtualFaultSimulator: no components");
  }
  if (pis_.empty() || pos_.empty()) {
    throw std::invalid_argument(
        "VirtualFaultSimulator: need primary inputs and outputs");
  }
}

void VirtualFaultSimulator::applyPattern(SimulationController& sim,
                                         const std::vector<Word>& pattern) {
  if (pattern.size() != pis_.size()) {
    throw std::invalid_argument("pattern arity does not match primary inputs");
  }
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    sim.inject(*pis_[i], pattern[i]);
  }
  sim.start();
}

CampaignResult VirtualFaultSimulator::run(
    const std::vector<std::vector<Word>>& patterns) {
  CampaignResult res;

  // --- Phase 1: compose the symbolic fault lists -------------------------
  std::vector<std::vector<std::string>> qualified(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const std::string prefix = components_[c]->module().name() + "/";
    for (const std::string& s : components_[c]->faultList()) {
      qualified[c].push_back(prefix + s);
      res.faultList.push_back(prefix + s);
    }
  }

  // --- Phase 2: per-pattern dynamic estimation ----------------------------
  // Per-component detection-table cache keyed by the component's observed
  // input configuration.
  std::vector<std::map<std::string, DetectionTable>> tableCache(
      components_.size());
  for (const std::vector<Word>& pattern : patterns) {
    // Fault-free reference run.
    SimulationController ff(design_);
    applyPattern(ff, pattern);
    const SimContext ffCtx{ff.scheduler(), nullptr};
    std::vector<Word> goldenPo;
    goldenPo.reserve(pos_.size());
    for (Connector* po : pos_) goldenPo.push_back(po->value(ff.scheduler().id()));

    for (std::size_t c = 0; c < components_.size(); ++c) {
      FaultClient& comp = *components_[c];
      const std::string prefix = comp.module().name() + "/";
      const Word inputs = comp.observedInputs(ffCtx);
      const std::string cacheKey = inputs.toString();
      auto& cache = tableCache[c];
      // Bind the table by reference: copying a cached DetectionTable for
      // every (pattern, component) pair was pure per-pattern overhead.
      DetectionTable fetched;
      const DetectionTable* table = nullptr;
      if (cacheTables_) {
        auto cached = cache.find(cacheKey);
        if (cached == cache.end()) {
          cached = cache.emplace(cacheKey, comp.detectionTable(inputs)).first;
          ++res.detectionTablesRequested;
          ++res.tableFetchRoundTrips;
        } else {
          ++res.tableCacheHits;
        }
        table = &cached->second;
      } else {
        fetched = comp.detectionTable(inputs);
        ++res.detectionTablesRequested;
        ++res.tableFetchRoundTrips;
        table = &fetched;
      }

      for (const DetectionTable::Row& row : table->rows()) {
        // Skip rows whose faults are all already detected.
        bool anyUndetected = false;
        for (const std::string& f : row.faults) {
          if (res.detected.find(prefix + f) == res.detected.end()) {
            anyUndetected = true;
            break;
          }
        }
        if (!anyUndetected) continue;

        // Inject the erroneous output configuration: a fresh single-instant
        // controller with the component's event handling overridden.
        SimulationController inj(design_);
        inj.forceOutputs(comp.module(), comp.overridesFor(row.faultyOutput));
        applyPattern(inj, pattern);
        ++res.injections;

        bool observable = false;
        for (std::size_t j = 0; j < pos_.size(); ++j) {
          if (pos_[j]->value(inj.scheduler().id()) != goldenPo[j]) {
            observable = true;
            break;
          }
        }
        if (observable) {
          for (const std::string& f : row.faults) res.detected.insert(prefix + f);
        }
        design_.clearSchedulerState(inj.scheduler().id());
      }
    }
    design_.clearSchedulerState(ff.scheduler().id());
    res.detectedAfterPattern.push_back(res.detected.size());
  }
  return res;
}

CampaignResult VirtualFaultSimulator::runPacked(
    const std::vector<Word>& packedPatterns) {
  return run(unpackPatterns(packedPatterns, pis_.size()));
}

std::vector<std::vector<Word>> unpackPatterns(
    const std::vector<Word>& packedPatterns, std::size_t primaryInputs) {
  std::vector<std::vector<Word>> unpacked;
  unpacked.reserve(packedPatterns.size());
  for (const Word& w : packedPatterns) {
    if (w.width() != static_cast<int>(primaryInputs)) {
      throw std::invalid_argument("packed pattern width != primary inputs");
    }
    std::vector<Word> p;
    p.reserve(primaryInputs);
    for (std::size_t i = 0; i < primaryInputs; ++i) {
      p.push_back(Word::fromLogic(w.bit(static_cast<int>(i))));
    }
    unpacked.push_back(std::move(p));
  }
  return unpacked;
}

}  // namespace vcad::fault
