// BlockDesign: a structural description of a design as a DAG of gate-level
// blocks (some local, some destined to be IP components).
//
// One description, two realizations:
//  - instantiate(): a backplane Circuit of NetlistModules joined by bit
//    connectors (with explicit fanout modules), the form virtual fault
//    simulation operates on; and
//  - flatten(): a single merged Netlist — the *full-disclosure* view only
//    someone owning every block could build, used as the golden baseline the
//    virtual flow must match.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/circuit.hpp"
#include "gate/netlist_module.hpp"
#include "rtl/modules.hpp"

namespace vcad::fault {

class BlockDesign {
 public:
  struct Pin {
    int block = -1;  // -1: a design primary input
    int pin = 0;     // PI index when block == -1, block output pin otherwise
  };

  /// Adds a block; returns its index. The block name prefixes net names in
  /// the flattened view and module names in the instantiated view.
  int addBlock(std::string name, std::shared_ptr<const gate::Netlist> netlist);

  /// Declares a design primary input; returns its index.
  int addPrimaryInput(std::string name);

  /// Drives block input pin (`block`, `inPin`) from `source` (a design PI or
  /// another block's output pin). Each block input has exactly one driver.
  void connect(Pin source, int block, int inPin);

  /// Marks a block output pin as a design primary output.
  void markPrimaryOutput(int block, int outPin, std::string name = "");

  int blockCount() const { return static_cast<int>(blocks_.size()); }
  int primaryInputCount() const { return static_cast<int>(piNames_.size()); }
  int primaryOutputCount() const { return static_cast<int>(pos_.size()); }
  const std::string& blockName(int b) const { return blocks_.at(static_cast<size_t>(b)).name; }
  const gate::Netlist& blockNetlist(int b) const {
    return *blocks_.at(static_cast<size_t>(b)).netlist;
  }
  std::shared_ptr<const gate::Netlist> blockNetlistPtr(int b) const {
    return blocks_.at(static_cast<size_t>(b)).netlist;
  }

  /// Checks completeness (every block input driven) and acyclicity.
  /// Throws std::logic_error on violation.
  void validate() const;

  /// Full-disclosure realization: one merged netlist; internal net names are
  /// "<block>/<net>"; design PIs/POs keep their own names.
  gate::Netlist flatten() const;

  /// Backplane realization.
  struct Instantiation {
    std::unique_ptr<Circuit> circuit;
    std::vector<Connector*> piConns;             // inject stimuli here
    std::vector<Connector*> poConns;             // observe results here
    std::vector<gate::NetlistModule*> blockModules;  // index = block id
  };
  Instantiation instantiate() const;

 private:
  struct Block {
    std::string name;
    std::shared_ptr<const gate::Netlist> netlist;
    std::vector<Pin> inputDrivers;  // per input pin; block=-2 means unset
  };
  struct PrimaryOutput {
    int block;
    int pin;
    std::string name;
  };

  /// Blocks in topological order. Throws on cycles.
  std::vector<int> topoBlocks() const;

  std::vector<Block> blocks_;
  std::vector<std::string> piNames_;
  std::vector<PrimaryOutput> pos_;
};

}  // namespace vcad::fault
