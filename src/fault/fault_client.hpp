// FaultClient: the user's per-component window into virtual fault
// simulation.
//
// Phase 1 of the protocol needs each component's symbolic fault list; phase
// 2 needs, for the component's current input configuration, its detection
// table. For local (user-owned) components both are computed in place; for
// remote IP components the same interface is implemented by an RMI stub (see
// src/ip), with the provider evaluating tables server-side — the user never
// needs the netlist.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "fault/detection.hpp"
#include "fault/model.hpp"
#include "gate/netlist_module.hpp"

namespace vcad::fault {

class FaultClient {
 public:
  virtual ~FaultClient() = default;

  /// The backplane module realizing this component in the design.
  virtual Module& module() = 0;

  /// Phase 1: symbolic fault list (collapsed, internal faults only).
  virtual std::vector<std::string> faultList() = 0;

  /// Phase 2: detection table for one input configuration.
  virtual DetectionTable detectionTable(const Word& inputs) = 0;

  /// Phase 2, batched: one detection table per buffered input configuration,
  /// in order. The default falls back to one detectionTable() call per
  /// entry; remote implementations override it to fetch the whole buffer in
  /// a single round trip (the paper's pattern-buffering mechanism applied to
  /// fault characterization).
  virtual std::vector<DetectionTable> detectionTables(
      const std::vector<Word>& inputs);

  /// Component input configuration currently visible to `ctx`'s scheduler
  /// (one bit per module input port, in port order).
  Word observedInputs(const SimContext& ctx);

  /// Output override list realizing `faultyOutputs` on the component's
  /// output ports (bit i of the word -> output port i).
  std::vector<Scheduler::OutputOverride> overridesFor(const Word& faultyOutputs);
};

/// Which nets of a component carry published faults. The paper's provider
/// policy publishes internal faults only (the user directly handles faults
/// on its own visible input/output signals); equivalence experiments widen
/// the scope to compare against a flat full-disclosure simulator.
struct FaultScope {
  bool includeInputs = false;
  bool includeOutputs = false;
};

/// Local (user-owned) component: fault information computed directly from
/// the netlist, which the user legitimately possesses.
class LocalFaultBlock final : public FaultClient {
 public:
  explicit LocalFaultBlock(gate::NetlistModule& module, bool dominance = true,
                           FaultScope scope = {});

  Module& module() override { return module_; }
  std::vector<std::string> faultList() override;
  DetectionTable detectionTable(const Word& inputs) override;

  /// Batched tables on the packed bit-parallel engine: the buffered inputs
  /// are evaluated 64 to a pass, one pass per collapsed fault per block.
  std::vector<DetectionTable> detectionTables(
      const std::vector<Word>& inputs) override;

  const CollapsedFaults& collapsed() const { return collapsed_; }

 private:
  gate::NetlistModule& module_;
  CollapsedFaults collapsed_;
  gate::PackedEvaluator packed_;
};

}  // namespace vcad::fault
