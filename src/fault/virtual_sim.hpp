// VirtualFaultSimulator: fault simulation of an IP-based design without IP
// disclosure — the paper's central contribution.
//
// Two-phase protocol:
//   Phase 1 (static):  build the design fault list as the union of every
//                      component's symbolic fault list.
//   Phase 2 (dynamic): per test pattern, simulate the fault-free design,
//                      hand each component its observed input configuration,
//                      receive a detection table, and for each table row
//                      with undetected faults inject the erroneous output
//                      configuration into the fault-free design (a dedicated
//                      single-instant scheduler with the faulty module's
//                      event handling replaced by a forced output
//                      assignment). If a primary output differs from the
//                      fault-free response, every fault in the row is
//                      detected and dropped from the list.
//
// The multi-scheduler backplane makes the injection runs free of any
// save/restore action: each injection runs under its own scheduler slot,
// whose state cannot interfere with the fault-free run or with other
// injections. The serial engine (runSerialInjection) uses a fresh
// controller per injection; setInjectionWorkers(n) switches phase 2 to a
// pool of n workers, each with one pinned pooled scheduler reset-and-reused
// across row injections running concurrently — bit-identical results by
// construction (see runPooled).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/sim_controller.hpp"
#include "fault/fault_client.hpp"

namespace vcad::fault {

struct CampaignResult {
  std::vector<std::string> faultList;       // qualified "<module>/<symbol>"
  std::set<std::string> detected;
  std::vector<std::size_t> detectedAfterPattern;  // cumulative per pattern

  // Protocol/effort accounting for the ablation benches.
  std::uint64_t detectionTablesRequested = 0;
  std::uint64_t tableFetchRoundTrips = 0;  // provider message pairs spent on
                                           // tables; < requested when the
                                           // batched GetDetectionTables
                                           // method amortizes them
  std::uint64_t tableCacheHits = 0;  // repeated input configurations served
                                     // from the client-side cache (the paper:
                                     // pattern 1101 "leads to the same
                                     // detection table" as 1100)
  std::uint64_t injections = 0;
  std::uint64_t faultSimEvaluations = 0;  // serial baseline only

  // Arena/scheduler metrics (perf-PR baseline): how many scheduler slots
  // the campaign leased from the SlotRegistry, the high-water mark of
  // concurrently live schedulers while it ran, and how often pooled
  // controllers were reset-and-reused instead of reconstructed.
  std::uint64_t slotsLeased = 0;
  std::uint32_t peakConcurrentSchedulers = 0;
  std::uint64_t schedulerResets = 0;
  // Injection-worker pool shape and utilization: workerInjections[w] is the
  // number of injection jobs lane w executed (empty for the serial path).
  std::size_t injectionWorkers = 0;
  std::vector<std::uint64_t> workerInjections;

  double coverage() const {
    return faultList.empty() ? 0.0
                             : static_cast<double>(detected.size()) /
                                   static_cast<double>(faultList.size());
  }
};

class VirtualFaultSimulator {
 public:
  /// `components` are the design's fault-participating blocks;
  /// `primaryInputs`/`primaryOutputs` are the connectors where patterns are
  /// applied and responses observed. All connectors must belong to `design`.
  VirtualFaultSimulator(Circuit& design, std::vector<FaultClient*> components,
                        std::vector<Connector*> primaryInputs,
                        std::vector<Connector*> primaryOutputs);

  /// Runs the two-phase campaign over the given patterns. Each pattern
  /// holds one word per primary-input connector, in order. Dispatches to
  /// the pooled phase-2 engine when setInjectionWorkers() was given a
  /// worker count, to the serial engine otherwise; both produce the same
  /// CampaignResult bit for bit (fault list, detected set, coverage curve,
  /// table/cache/round-trip accounting).
  CampaignResult run(const std::vector<std::vector<Word>>& patterns);

  /// Convenience for all-single-bit primary inputs: bit i of each packed
  /// word drives primaryInputs[i].
  CampaignResult runPacked(const std::vector<Word>& packedPatterns);

  /// The serial phase-2 reference engine: one injection at a time, a fresh
  /// controller per injection. Kept public for differential testing against
  /// the pooled path.
  CampaignResult runSerialInjection(
      const std::vector<std::vector<Word>>& patterns);

  /// Client-side detection-table caching (default on): a component whose
  /// input configuration repeats across patterns is served from the cache
  /// instead of a fresh provider round trip.
  void setTableCache(bool on) { cacheTables_ = on; }

  /// Phase-2 injection worker pool size. 0 (default) selects the serial
  /// engine; n >= 1 runs each pattern's row injections across n lanes with
  /// one pinned pooled scheduler per lane, reset-and-reused between jobs.
  void setInjectionWorkers(std::size_t n) { injectionWorkers_ = n; }
  std::size_t injectionWorkers() const { return injectionWorkers_; }

 private:
  CampaignResult runPooled(const std::vector<std::vector<Word>>& patterns);
  /// Simulates one pattern fault-free; fills PO snapshot; returns the
  /// controller (kept alive so component input configurations can be read).
  void applyPattern(SimulationController& sim,
                    const std::vector<Word>& pattern);

  Circuit& design_;
  std::vector<FaultClient*> components_;
  std::vector<Connector*> pis_;
  std::vector<Connector*> pos_;
  bool cacheTables_ = true;
  std::size_t injectionWorkers_ = 0;
};

/// Expands packed single-bit patterns (bit i -> primary input i) into the
/// one-word-per-input form run() consumes. Shared by the serial and parallel
/// campaign engines.
std::vector<std::vector<Word>> unpackPatterns(
    const std::vector<Word>& packedPatterns, std::size_t primaryInputs);

/// Mirrors a finished campaign's accounting into the global obs::Registry
/// (campaign.* counters / gauges). Called by every campaign engine right
/// before it returns; the CampaignResult itself stays the source of truth.
void recordCampaignMetrics(const CampaignResult& res);

}  // namespace vcad::fault
