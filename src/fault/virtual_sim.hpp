// VirtualFaultSimulator: fault simulation of an IP-based design without IP
// disclosure — the paper's central contribution.
//
// Two-phase protocol:
//   Phase 1 (static):  build the design fault list as the union of every
//                      component's symbolic fault list.
//   Phase 2 (dynamic): per test pattern, simulate the fault-free design,
//                      hand each component its observed input configuration,
//                      receive a detection table, and for each table row
//                      with undetected faults inject the erroneous output
//                      configuration into the fault-free design (a dedicated
//                      single-instant scheduler with the faulty module's
//                      event handling replaced by a forced output
//                      assignment). If a primary output differs from the
//                      fault-free response, every fault in the row is
//                      detected and dropped from the list.
//
// The multi-scheduler backplane makes the injection runs free of any reset
// or save/restore action: each injection uses a fresh scheduler whose state
// cannot interfere with the fault-free run or with other injections.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/sim_controller.hpp"
#include "fault/fault_client.hpp"

namespace vcad::fault {

struct CampaignResult {
  std::vector<std::string> faultList;       // qualified "<module>/<symbol>"
  std::set<std::string> detected;
  std::vector<std::size_t> detectedAfterPattern;  // cumulative per pattern

  // Protocol/effort accounting for the ablation benches.
  std::uint64_t detectionTablesRequested = 0;
  std::uint64_t tableFetchRoundTrips = 0;  // provider message pairs spent on
                                           // tables; < requested when the
                                           // batched GetDetectionTables
                                           // method amortizes them
  std::uint64_t tableCacheHits = 0;  // repeated input configurations served
                                     // from the client-side cache (the paper:
                                     // pattern 1101 "leads to the same
                                     // detection table" as 1100)
  std::uint64_t injections = 0;
  std::uint64_t faultSimEvaluations = 0;  // serial baseline only

  double coverage() const {
    return faultList.empty() ? 0.0
                             : static_cast<double>(detected.size()) /
                                   static_cast<double>(faultList.size());
  }
};

class VirtualFaultSimulator {
 public:
  /// `components` are the design's fault-participating blocks;
  /// `primaryInputs`/`primaryOutputs` are the connectors where patterns are
  /// applied and responses observed. All connectors must belong to `design`.
  VirtualFaultSimulator(Circuit& design, std::vector<FaultClient*> components,
                        std::vector<Connector*> primaryInputs,
                        std::vector<Connector*> primaryOutputs);

  /// Runs the two-phase campaign over the given patterns. Each pattern
  /// holds one word per primary-input connector, in order.
  CampaignResult run(const std::vector<std::vector<Word>>& patterns);

  /// Convenience for all-single-bit primary inputs: bit i of each packed
  /// word drives primaryInputs[i].
  CampaignResult runPacked(const std::vector<Word>& packedPatterns);

  /// Client-side detection-table caching (default on): a component whose
  /// input configuration repeats across patterns is served from the cache
  /// instead of a fresh provider round trip.
  void setTableCache(bool on) { cacheTables_ = on; }

 private:
  /// Simulates one pattern fault-free; fills PO snapshot; returns the
  /// controller (kept alive so component input configurations can be read).
  void applyPattern(SimulationController& sim,
                    const std::vector<Word>& pattern);

  Circuit& design_;
  std::vector<FaultClient*> components_;
  std::vector<Connector*> pis_;
  std::vector<Connector*> pos_;
  bool cacheTables_ = true;
};

/// Expands packed single-bit patterns (bit i -> primary input i) into the
/// one-word-per-input form run() consumes. Shared by the serial and parallel
/// campaign engines.
std::vector<std::vector<Word>> unpackPatterns(
    const std::vector<Word>& packedPatterns, std::size_t primaryInputs);

}  // namespace vcad::fault
