#include "fault/seq_fault.hpp"

#include <stdexcept>

namespace vcad::fault {

LocalSeqFaultBlock::LocalSeqFaultBlock(const gate::SeqNetlist& seq,
                                       bool dominance)
    : seq_(seq),
      collapsed_(collapseAll(seq.comb(), dominance,
                             /*includePrimaryInputs=*/false,
                             /*includePrimaryOutputNets=*/false)),
      good_(seq) {
  for (const StuckFault& f : collapsed_.representatives) {
    faultOf_[symbolOf(seq.comb(), f)] = f;
  }
}

std::vector<std::string> LocalSeqFaultBlock::faultList() {
  return symbolicFaultList(seq_.comb(), collapsed_);
}

void LocalSeqFaultBlock::resetGood() { good_.reset(); }

Word LocalSeqFaultBlock::stepGood(const Word& inputs) {
  return good_.step(inputs);
}

gate::SeqEvaluator& LocalSeqFaultBlock::shadowFor(const std::string& symbol) {
  auto it = shadows_.find(symbol);
  if (it == shadows_.end()) {
    auto fit = faultOf_.find(symbol);
    if (fit == faultOf_.end()) {
      throw std::invalid_argument("unknown fault symbol: " + symbol);
    }
    it = shadows_.emplace(symbol, gate::SeqEvaluator(seq_, fit->second)).first;
  }
  return it->second;
}

void LocalSeqFaultBlock::resetFaulty(const std::string& symbol) {
  shadowFor(symbol).reset();
}

Word LocalSeqFaultBlock::stepFaulty(const std::string& symbol,
                                    const Word& inputs) {
  return shadowFor(symbol).step(inputs);
}

SeqCampaignResult runSeqCampaign(SeqFaultClient& client,
                                 const std::vector<Word>& inputSequence) {
  SeqCampaignResult res;
  res.faultList = client.faultList();

  // Fault-free reference response.
  std::vector<Word> golden;
  golden.reserve(inputSequence.size());
  client.resetGood();
  for (const Word& in : inputSequence) {
    golden.push_back(client.stepGood(in));
    ++res.goodSteps;
  }

  // One shadow run per fault, dropped at first divergence.
  for (const std::string& symbol : res.faultList) {
    client.resetFaulty(symbol);
    for (std::size_t cycle = 0; cycle < inputSequence.size(); ++cycle) {
      const Word out = client.stepFaulty(symbol, inputSequence[cycle]);
      ++res.faultySteps;
      if (out != golden[cycle]) {
        res.detectedAtCycle[symbol] = cycle;
        break;
      }
    }
  }
  return res;
}

}  // namespace vcad::fault
