// Automatic test-pattern generation for the virtual-fault-simulation flow.
//
// The paper observes that "a good test sequence is IP that might need
// protection": the user develops compact pattern sets and has an interest
// in keeping them private — which the virtual protocol allows, since only
// component-port values ever reach providers. This module generates such
// pattern sets:
//
//   - random-pattern ATPG with fault dropping: draw random patterns, keep
//     those that detect at least one still-undetected fault, stop at the
//     coverage target or when patterns stop paying off;
//   - greedy reverse-order compaction: drop patterns whose faults are
//     covered by the retained suffix (classic static compaction).
#pragma once

#include "core/rng.hpp"
#include "fault/serial_sim.hpp"

namespace vcad::fault {

struct AtpgOptions {
  double targetCoverage = 0.95;   // stop once reached
  int maxPatterns = 4096;         // hard budget on drawn candidates
  int giveUpAfterUseless = 256;   // consecutive non-contributing candidates
  std::uint64_t seed = 0x7e57;
};

struct AtpgResult {
  std::vector<Word> patterns;     // the compacted test set
  double coverage = 0.0;          // over the collapsed fault list
  std::size_t faultCount = 0;
  std::size_t candidatesTried = 0;
  std::size_t beforeCompaction = 0;
};

/// Generates a compact test set for the collapsed stuck-at faults of a
/// combinational netlist.
AtpgResult generateTests(const gate::Netlist& netlist,
                         const AtpgOptions& options = {});

/// Static reverse-order compaction: returns the subset of `patterns` (in
/// original order) whose detected-fault union equals the full set's.
std::vector<Word> compactTests(const gate::Netlist& netlist,
                               const std::vector<gate::StuckFault>& faults,
                               const std::vector<Word>& patterns);

}  // namespace vcad::fault
