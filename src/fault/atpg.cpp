#include "fault/atpg.hpp"

#include <algorithm>

namespace vcad::fault {

namespace {

/// Faults (by index) newly detected by `pattern` among those not yet in
/// `detected`.
std::vector<std::size_t> detectsWhich(const gate::NetlistEvaluator& eval,
                                      const std::vector<StuckFault>& faults,
                                      const std::vector<bool>& detected,
                                      const Word& pattern) {
  const Word golden = eval.evalOutputs(pattern);
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (eval.evalOutputs(pattern, faults[i]) != golden) hits.push_back(i);
  }
  return hits;
}

}  // namespace

AtpgResult generateTests(const gate::Netlist& netlist,
                         const AtpgOptions& options) {
  const CollapsedFaults collapsed = collapseAll(netlist);
  gate::NetlistEvaluator eval(netlist);
  Rng rng(options.seed);

  AtpgResult res;
  res.faultCount = collapsed.size();
  if (collapsed.representatives.empty()) return res;

  std::vector<bool> detected(collapsed.size(), false);
  std::size_t detectedCount = 0;
  int uselessStreak = 0;

  while (static_cast<int>(res.candidatesTried) < options.maxPatterns &&
         uselessStreak < options.giveUpAfterUseless) {
    const Word candidate = Word::fromUint(netlist.inputCount(), rng.next());
    ++res.candidatesTried;
    const auto hits =
        detectsWhich(eval, collapsed.representatives, detected, candidate);
    if (hits.empty()) {
      ++uselessStreak;
      continue;
    }
    uselessStreak = 0;
    for (std::size_t i : hits) detected[i] = true;
    detectedCount += hits.size();
    res.patterns.push_back(candidate);
    if (static_cast<double>(detectedCount) >=
        options.targetCoverage * static_cast<double>(collapsed.size())) {
      break;
    }
  }

  res.beforeCompaction = res.patterns.size();
  res.patterns =
      compactTests(netlist, collapsed.representatives, res.patterns);
  // Final coverage of the compacted set.
  std::vector<bool> finalDetected(collapsed.size(), false);
  std::size_t finalCount = 0;
  for (const Word& p : res.patterns) {
    for (std::size_t i :
         detectsWhich(eval, collapsed.representatives, finalDetected, p)) {
      finalDetected[i] = true;
      ++finalCount;
    }
  }
  res.coverage =
      static_cast<double>(finalCount) / static_cast<double>(collapsed.size());
  return res;
}

std::vector<Word> compactTests(const gate::Netlist& netlist,
                               const std::vector<gate::StuckFault>& faults,
                               const std::vector<Word>& patterns) {
  gate::NetlistEvaluator eval(netlist);

  // Which faults does each pattern detect in isolation?
  std::vector<std::vector<std::size_t>> perPattern;
  perPattern.reserve(patterns.size());
  const std::vector<bool> none(faults.size(), false);
  for (const Word& p : patterns) {
    perPattern.push_back(detectsWhich(eval, faults, none, p));
  }

  // Reverse-order greedy: keep a pattern only if it detects something not
  // already covered by the patterns kept so far (later patterns detect the
  // hard faults they were generated for, so walking backwards keeps them
  // and drops the early, redundant ones).
  std::vector<bool> covered(faults.size(), false);
  std::vector<bool> keep(patterns.size(), false);
  for (std::size_t k = patterns.size(); k-- > 0;) {
    bool contributes = false;
    for (std::size_t f : perPattern[k]) {
      if (!covered[f]) {
        contributes = true;
        break;
      }
    }
    if (!contributes) continue;
    keep[k] = true;
    for (std::size_t f : perPattern[k]) covered[f] = true;
  }

  std::vector<Word> out;
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    if (keep[k]) out.push_back(patterns[k]);
  }
  return out;
}

}  // namespace vcad::fault
