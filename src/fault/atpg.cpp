#include "fault/atpg.hpp"

#include <algorithm>
#include <bit>

#include "gate/packed_eval.hpp"

namespace vcad::fault {

namespace {

/// Detected-fault lists per pattern, each in increasing fault-index order —
/// the packed analogue of evaluating every pattern against every fault with
/// no dropping. One packed pass per fault per 64-pattern block.
std::vector<std::vector<std::size_t>> detectionsPerPattern(
    const gate::PackedEvaluator& packed,
    const std::vector<gate::StuckFault>& faults,
    const std::vector<Word>& patterns) {
  std::vector<std::vector<std::size_t>> per(patterns.size());
  std::vector<gate::LanePlanes> golden, faulty;
  for (std::size_t base = 0; base < patterns.size();
       base += gate::PackedEvaluator::kLanes) {
    const std::size_t lanes = std::min<std::size_t>(
        gate::PackedEvaluator::kLanes, patterns.size() - base);
    const auto block = packed.pack(patterns, base, lanes);
    packed.evaluate(block, golden);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      packed.evaluate(block, faulty, &faults[i]);
      std::uint64_t diff =
          packed.outputDiffMask(golden, faulty, static_cast<int>(lanes));
      while (diff != 0) {
        const int lane = std::countr_zero(diff);
        diff &= diff - 1;
        per[base + static_cast<std::size_t>(lane)].push_back(i);
      }
    }
  }
  return per;
}

}  // namespace

AtpgResult generateTests(const gate::Netlist& netlist,
                         const AtpgOptions& options) {
  const CollapsedFaults collapsed = collapseAll(netlist);
  const gate::PackedEvaluator packed(netlist);
  Rng rng(options.seed);

  AtpgResult res;
  res.faultCount = collapsed.size();
  if (collapsed.representatives.empty()) return res;

  std::vector<bool> detected(collapsed.size(), false);
  std::size_t detectedCount = 0;
  int uselessStreak = 0;
  bool stop = false;

  // Candidates are drawn (from the same RNG stream as the scalar loop) and
  // simulated 64 to a block; per-block first-detection lanes reproduce the
  // scalar fault-dropping order, so the lane walk below applies the exact
  // scalar stop conditions — identical patterns, coverage and counters.
  std::vector<Word> candidates;
  std::vector<gate::LanePlanes> golden, faulty;
  while (!stop && static_cast<int>(res.candidatesTried) < options.maxPatterns &&
         uselessStreak < options.giveUpAfterUseless) {
    const std::size_t blockLanes = std::min<std::size_t>(
        gate::PackedEvaluator::kLanes,
        static_cast<std::size_t>(options.maxPatterns) - res.candidatesTried);
    candidates.clear();
    for (std::size_t l = 0; l < blockLanes; ++l) {
      candidates.push_back(Word::fromUint(netlist.inputCount(), rng.next()));
    }
    const auto block = packed.pack(candidates, 0, blockLanes);
    packed.evaluate(block, golden);

    // hitsAtLane[l]: still-undetected faults whose first detecting candidate
    // in this block is candidate l — exactly what the scalar loop, which
    // drops a fault the moment one candidate detects it, would attribute.
    std::vector<std::vector<std::size_t>> hitsAtLane(blockLanes);
    for (std::size_t i = 0; i < collapsed.size(); ++i) {
      if (detected[i]) continue;
      packed.evaluate(block, faulty, &collapsed.representatives[i]);
      const std::uint64_t diff =
          packed.outputDiffMask(golden, faulty, static_cast<int>(blockLanes));
      if (diff != 0) hitsAtLane[std::countr_zero(diff)].push_back(i);
    }

    for (std::size_t l = 0; l < blockLanes; ++l) {
      ++res.candidatesTried;
      const auto& hits = hitsAtLane[l];
      if (hits.empty()) {
        if (++uselessStreak >= options.giveUpAfterUseless) {
          stop = true;
          break;
        }
        continue;
      }
      uselessStreak = 0;
      for (std::size_t i : hits) detected[i] = true;
      detectedCount += hits.size();
      res.patterns.push_back(candidates[l]);
      if (static_cast<double>(detectedCount) >=
          options.targetCoverage * static_cast<double>(collapsed.size())) {
        stop = true;
        break;
      }
    }
  }

  res.beforeCompaction = res.patterns.size();
  res.patterns =
      compactTests(netlist, collapsed.representatives, res.patterns);
  // Final coverage of the compacted set: the union of per-pattern detections.
  const auto per =
      detectionsPerPattern(packed, collapsed.representatives, res.patterns);
  std::vector<bool> finalDetected(collapsed.size(), false);
  std::size_t finalCount = 0;
  for (const auto& hits : per) {
    for (std::size_t i : hits) {
      if (!finalDetected[i]) {
        finalDetected[i] = true;
        ++finalCount;
      }
    }
  }
  res.coverage =
      static_cast<double>(finalCount) / static_cast<double>(collapsed.size());
  return res;
}

std::vector<Word> compactTests(const gate::Netlist& netlist,
                               const std::vector<gate::StuckFault>& faults,
                               const std::vector<Word>& patterns) {
  const gate::PackedEvaluator packed(netlist);

  // Which faults does each pattern detect in isolation?
  const std::vector<std::vector<std::size_t>> perPattern =
      detectionsPerPattern(packed, faults, patterns);

  // Reverse-order greedy: keep a pattern only if it detects something not
  // already covered by the patterns kept so far (later patterns detect the
  // hard faults they were generated for, so walking backwards keeps them
  // and drops the early, redundant ones).
  std::vector<bool> covered(faults.size(), false);
  std::vector<bool> keep(patterns.size(), false);
  for (std::size_t k = patterns.size(); k-- > 0;) {
    bool contributes = false;
    for (std::size_t f : perPattern[k]) {
      if (!covered[f]) {
        contributes = true;
        break;
      }
    }
    if (!contributes) continue;
    keep[k] = true;
    for (std::size_t f : perPattern[k]) covered[f] = true;
  }

  std::vector<Word> out;
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    if (keep[k]) out.push_back(patterns[k]);
  }
  return out;
}

}  // namespace vcad::fault
