#include "fault/dictionary.hpp"

#include <stdexcept>

namespace vcad::fault {

FaultDictionary FaultDictionary::build(const gate::Netlist& netlist,
                                       const CollapsedFaults& collapsed,
                                       int maxInputBits) {
  const int n = netlist.inputCount();
  if (n > maxInputBits || n >= 63) {
    throw std::invalid_argument(
        "FaultDictionary: " + std::to_string(n) +
        " inputs means 2^" + std::to_string(n) +
        " tables — beyond the configured exponential wall");
  }
  FaultDictionary d;
  d.inputBits_ = n;
  d.faultList_ = symbolicFaultList(netlist, collapsed);
  const std::uint64_t configs = 1ULL << n;
  std::vector<Word> inputs;
  inputs.reserve(configs);
  for (std::uint64_t v = 0; v < configs; ++v) {
    inputs.push_back(Word::fromUint(n, v));
  }
  // Packed construction: 64 configurations characterized per fault pass.
  const gate::PackedEvaluator packed(netlist);
  d.tables_ = buildDetectionTables(packed, collapsed, inputs);
  return d;
}

const DetectionTable& FaultDictionary::tableFor(const Word& inputs) const {
  if (inputs.width() != inputBits_) {
    throw std::invalid_argument("FaultDictionary: input width mismatch");
  }
  if (!inputs.isFullyKnown()) {
    throw std::invalid_argument(
        "FaultDictionary: unknown input bits have no dictionary entry");
  }
  return tables_[static_cast<std::size_t>(inputs.toUint())];
}

void FaultDictionary::serialize(net::ByteBuffer& buf) const {
  buf.writeU8(static_cast<std::uint8_t>(inputBits_));
  buf.writeU32(static_cast<std::uint32_t>(faultList_.size()));
  for (const std::string& f : faultList_) buf.writeString(f);
  buf.writeU32(static_cast<std::uint32_t>(tables_.size()));
  for (const DetectionTable& t : tables_) t.serialize(buf);
}

FaultDictionary FaultDictionary::deserialize(net::ByteBuffer& buf) {
  FaultDictionary d;
  d.inputBits_ = buf.readU8();
  const std::uint32_t nFaults = buf.readU32();
  for (std::uint32_t i = 0; i < nFaults; ++i) {
    d.faultList_.push_back(buf.readString());
  }
  const std::uint32_t nTables = buf.readU32();
  d.tables_.reserve(nTables);
  for (std::uint32_t i = 0; i < nTables; ++i) {
    d.tables_.push_back(DetectionTable::deserialize(buf));
  }
  return d;
}

std::size_t FaultDictionary::sizeBytes() const {
  net::ByteBuffer buf;
  serialize(buf);
  return buf.size();
}

DictionaryFaultClient::DictionaryFaultClient(Module& module,
                                             FaultDictionary dictionary)
    : module_(module), dict_(std::move(dictionary)) {}

std::vector<std::string> DictionaryFaultClient::faultList() {
  return dict_.faultList();
}

DetectionTable DictionaryFaultClient::detectionTable(const Word& inputs) {
  return dict_.tableFor(inputs);
}

}  // namespace vcad::fault
