// Detection tables: the dynamic, per-pattern testability information an IP
// provider returns during virtual fault simulation.
//
// For one input configuration of a component, the table lists every
// erroneous output pattern the component could produce under one of its
// internal (collapsed, symbolically named) stuck-at faults, together with
// the faults causing each error. The table is a local, IP-sensitive
// *parameter* (it derives from ParamValue), independently evaluable by the
// provider: it reveals input/output behaviour only, never structure.
#pragma once

#include <string>
#include <vector>

#include "core/estimation.hpp"
#include "fault/model.hpp"
#include "gate/packed_eval.hpp"
#include "net/serialize.hpp"

namespace vcad::fault {

class DetectionTable final : public ParamValue {
 public:
  struct Row {
    Word faultyOutput;
    std::vector<std::string> faults;  // symbolic names
  };

  DetectionTable() = default;
  DetectionTable(Word inputs, Word faultFreeOutput, std::vector<Row> rows)
      : inputs_(std::move(inputs)),
        faultFree_(std::move(faultFreeOutput)),
        rows_(std::move(rows)) {}

  const Word& inputs() const { return inputs_; }
  const Word& faultFreeOutput() const { return faultFree_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// The faulty output a given symbolic fault would produce, or nullptr when
  /// the fault is not excited by this input configuration.
  const Word* faultyOutputFor(const std::string& symbol) const;

  /// All faults producing a given erroneous output (empty when absent).
  std::vector<std::string> faultsFor(const Word& faultyOutput) const;

  std::size_t excitedFaultCount() const;

  std::string toString() const override;

  void serialize(net::ByteBuffer& buf) const;
  static DetectionTable deserialize(net::ByteBuffer& buf);

 private:
  Word inputs_;
  Word faultFree_;
  std::vector<Row> rows_;
};

/// Provider-side construction: simulate the component under every collapsed
/// fault for `inputs` and group the erroneous outputs. Deterministic row
/// order (by output pattern string).
DetectionTable buildDetectionTable(const gate::NetlistEvaluator& eval,
                                   const CollapsedFaults& collapsed,
                                   const Word& inputs);

/// Batched provider-side construction on the packed bit-parallel engine: the
/// input configurations are packed 64 to a block, so each collapsed fault is
/// simulated once per block instead of once per configuration. The returned
/// tables (one per input, same order) are identical to calling
/// buildDetectionTable per configuration.
std::vector<DetectionTable> buildDetectionTables(
    const gate::PackedEvaluator& packed, const CollapsedFaults& collapsed,
    const std::vector<Word>& inputs);

}  // namespace vcad::fault
