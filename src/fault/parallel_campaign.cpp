#include "fault/parallel_campaign.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>

#include "core/slot_registry.hpp"
#include "fault/worker_pool.hpp"
#include "obs/trace.hpp"

namespace vcad::fault {

ParallelFaultSimulator::ParallelFaultSimulator(
    Circuit& design, std::vector<FaultClient*> components,
    std::vector<Connector*> primaryInputs,
    std::vector<Connector*> primaryOutputs, ParallelCampaignConfig config)
    : design_(design),
      components_(std::move(components)),
      pis_(std::move(primaryInputs)),
      pos_(std::move(primaryOutputs)),
      config_(config) {
  if (components_.empty()) {
    throw std::invalid_argument("ParallelFaultSimulator: no components");
  }
  if (pis_.empty() || pos_.empty()) {
    throw std::invalid_argument(
        "ParallelFaultSimulator: need primary inputs and outputs");
  }
  if (config_.threads == 0) config_.threads = 1;
  if (config_.batchSize == 0) config_.batchSize = 1;
  if (config_.alignBatchesToPackWidth) {
    const std::size_t lanes =
        static_cast<std::size_t>(gate::PackedEvaluator::kLanes);
    config_.batchSize = ((config_.batchSize + lanes - 1) / lanes) * lanes;
  }
}

void ParallelFaultSimulator::applyPattern(SimulationController& sim,
                                          const std::vector<Word>& pattern) {
  if (pattern.size() != pis_.size()) {
    throw std::invalid_argument("pattern arity does not match primary inputs");
  }
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    sim.inject(*pis_[i], pattern[i]);
  }
  sim.start();
}

CampaignResult ParallelFaultSimulator::run(
    const std::vector<std::vector<Word>>& patterns) {
  SlotRegistry& registry = SlotRegistry::global();
  const std::uint64_t leasesBefore = registry.totalLeases();
  registry.restartPeakTracking();

  obs::SpanScope campaignSpan("campaign.parallel", "campaign");
  campaignSpan.arg("threads", static_cast<double>(config_.threads));
  campaignSpan.arg("batchSize", static_cast<double>(config_.batchSize));
  CampaignResult res;

  // --- Phase 1: compose the symbolic fault lists (identical to serial) ----
  std::vector<std::string> prefixes(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    prefixes[c] = components_[c]->module().name() + "/";
    for (const std::string& s : components_[c]->faultList()) {
      res.faultList.push_back(prefixes[c] + s);
    }
  }

  // Workers beyond the job count just park; one thread means run inline.
  // Each lane pins one pooled controller — one arena slot — for the whole
  // campaign; lane w is only ever driven by pool thread w, so the slot
  // arena's thread-ownership rule makes every state access lock-free.
  WorkerPool pool(config_.threads > 1 ? config_.threads : 0);
  std::vector<std::unique_ptr<SimulationController>> lanes(pool.lanes());
  for (auto& lane : lanes) {
    lane = std::make_unique<SimulationController>(design_);
  }
  res.injectionWorkers = config_.threads;
  res.workerInjections.assign(pool.lanes(), 0);
  std::vector<std::uint64_t> laneResets(pool.lanes(), 0);

  // Per-component table cache keyed by observed input configuration, as in
  // the serial engine. std::map nodes are stable, so tables can be bound by
  // pointer across later insertions.
  std::vector<std::map<std::string, DetectionTable>> cache(components_.size());

  struct PatternRun {
    std::vector<Word> golden;      // fault-free primary-output snapshot
    std::vector<Word> compInputs;  // observed inputs, one per component
  };

  for (std::size_t base = 0; base < patterns.size();
       base += config_.batchSize) {
    const std::size_t batchEnd =
        std::min(base + config_.batchSize, patterns.size());
    const std::size_t nBatch = batchEnd - base;

    // --- Fault-free reference runs for the batch, on the pooled lanes:
    // golden responses and observed component inputs are snapshotted inside
    // the job, so no controller has to outlive its run. ------------------
    obs::SpanScope batchSpan("campaign.batch", "campaign");
    batchSpan.arg("base", static_cast<double>(base));
    batchSpan.arg("patterns", static_cast<double>(nBatch));

    std::vector<PatternRun> runs(nBatch);
    obs::SpanScope faultFreeSpan("campaign.faultFreeBatch", "campaign");
    pool.parallelFor(nBatch, [&](std::size_t w, std::size_t i) {
      SimulationController& sim = *lanes[w];
      sim.reset();
      ++laneResets[w];
      applyPattern(sim, patterns[base + i]);
      PatternRun& pr = runs[i];
      const SimContext ctx{sim.scheduler(), nullptr};
      pr.golden.reserve(pos_.size());
      for (Connector* po : pos_) {
        pr.golden.push_back(po->value(sim.scheduler().slot(),
                                      sim.scheduler().slotGeneration()));
      }
      pr.compInputs.reserve(components_.size());
      for (FaultClient* comp : components_) {
        pr.compInputs.push_back(comp->observedInputs(ctx));
      }
    });
    faultFreeSpan.end();

    // --- Batched detection-table fetch: per component, every input
    // configuration of the batch not already cached ships in one
    // GetDetectionTables round trip. -------------------------------------
    obs::SpanScope tableFetchSpan("campaign.tableFetch", "campaign");
    std::vector<std::vector<const DetectionTable*>> tables(
        nBatch, std::vector<const DetectionTable*>(components_.size()));
    // Lifetime holder for uncached-mode tables (must outlive injections).
    std::vector<std::vector<DetectionTable>> fresh(components_.size());
    for (std::size_t c = 0; c < components_.size(); ++c) {
      if (config_.cacheTables) {
        auto& compCache = cache[c];
        std::vector<Word> missing;
        std::vector<std::string> missingKeys;
        std::map<std::string, std::size_t> pending;  // key -> missing index
        for (std::size_t i = 0; i < nBatch; ++i) {
          const std::string key = runs[i].compInputs[c].toString();
          if (compCache.find(key) != compCache.end() ||
              pending.find(key) != pending.end()) {
            ++res.tableCacheHits;
          } else {
            pending.emplace(key, missing.size());
            missing.push_back(runs[i].compInputs[c]);
            missingKeys.push_back(key);
            ++res.detectionTablesRequested;
          }
        }
        if (!missing.empty()) {
          std::vector<DetectionTable> fetched =
              components_[c]->detectionTables(missing);
          if (fetched.size() != missing.size()) {
            throw std::runtime_error(
                "detectionTables returned a short batch for component " +
                components_[c]->module().name());
          }
          ++res.tableFetchRoundTrips;
          for (std::size_t j = 0; j < fetched.size(); ++j) {
            compCache.emplace(missingKeys[j], std::move(fetched[j]));
          }
        }
        for (std::size_t i = 0; i < nBatch; ++i) {
          tables[i][c] = &compCache.at(runs[i].compInputs[c].toString());
        }
      } else {
        std::vector<Word> all;
        all.reserve(nBatch);
        for (std::size_t i = 0; i < nBatch; ++i) {
          all.push_back(runs[i].compInputs[c]);
        }
        fresh[c] = components_[c]->detectionTables(all);
        if (fresh[c].size() != all.size()) {
          throw std::runtime_error(
              "detectionTables returned a short batch for component " +
              components_[c]->module().name());
        }
        res.detectionTablesRequested += nBatch;
        ++res.tableFetchRoundTrips;
        for (std::size_t i = 0; i < nBatch; ++i) {
          tables[i][c] = &fresh[c][i];
        }
      }
    }
    tableFetchSpan.arg("roundTrips",
                       static_cast<double>(res.tableFetchRoundTrips));
    tableFetchSpan.arg("cacheHits", static_cast<double>(res.tableCacheHits));
    tableFetchSpan.end();

    // --- Injections: patterns commit strictly in order (preserving the
    // per-pattern coverage curve); within a pattern, the row jobs shard
    // across the pooled lanes, each job reset-and-reusing its lane instead
    // of constructing a controller. ---------------------------------------
    for (std::size_t i = 0; i < nBatch; ++i) {
      struct Job {
        std::size_t comp;
        const DetectionTable::Row* row;
        bool observable = false;
      };
      std::vector<Job> jobs;
      for (std::size_t c = 0; c < components_.size(); ++c) {
        for (const DetectionTable::Row& row : tables[i][c]->rows()) {
          bool anyUndetected = false;
          for (const std::string& f : row.faults) {
            if (res.detected.find(prefixes[c] + f) == res.detected.end()) {
              anyUndetected = true;
              break;
            }
          }
          if (anyUndetected) jobs.push_back(Job{c, &row, false});
        }
      }

      const std::vector<Word>& pattern = patterns[base + i];
      const PatternRun& pr = runs[i];
      obs::SpanScope patternSpan("campaign.pattern", "campaign");
      patternSpan.arg("pattern", static_cast<double>(base + i));
      patternSpan.arg("injections", static_cast<double>(jobs.size()));
      pool.parallelFor(jobs.size(), [&](std::size_t w, std::size_t j) {
        Job& job = jobs[j];
        FaultClient& comp = *components_[job.comp];
        SimulationController& inj = *lanes[w];
        inj.reset();
        ++laneResets[w];
        inj.forceOutputs(comp.module(), comp.overridesFor(job.row->faultyOutput));
        applyPattern(inj, pattern);
        for (std::size_t k = 0; k < pos_.size(); ++k) {
          if (pos_[k]->value(inj.scheduler().slot(),
                             inj.scheduler().slotGeneration()) !=
              pr.golden[k]) {
            job.observable = true;
            break;
          }
        }
        ++res.workerInjections[w];
      });

      // Merge after the pool barrier — no detected-set mutex needed.
      for (const Job& job : jobs) {
        if (!job.observable) continue;
        for (const std::string& f : job.row->faults) {
          res.detected.insert(prefixes[job.comp] + f);
        }
      }
      res.injections += jobs.size();
      res.detectedAfterPattern.push_back(res.detected.size());
      patternSpan.arg("detected", static_cast<double>(res.detected.size()));
    }
  }

  // Physically release the lanes' arena entries before the controllers die
  // so a finished campaign leaves nothing behind, then verify it.
  for (auto& lane : lanes) {
    design_.clearSchedulerState(lane->scheduler().id());
    assert(design_.residualStateCount(lane->scheduler().slot()) == 0 &&
           "clearSchedulerState left live lane state behind");
  }
  for (std::uint64_t r : laneResets) res.schedulerResets += r;
  res.slotsLeased = registry.totalLeases() - leasesBefore;
  res.peakConcurrentSchedulers = registry.peakLeased();
  campaignSpan.arg("patterns", static_cast<double>(patterns.size()));
  campaignSpan.arg("faults", static_cast<double>(res.faultList.size()));
  campaignSpan.arg("detected", static_cast<double>(res.detected.size()));
  campaignSpan.arg("injections", static_cast<double>(res.injections));
  recordCampaignMetrics(res);
  return res;
}

CampaignResult ParallelFaultSimulator::runPacked(
    const std::vector<Word>& packedPatterns) {
  return run(unpackPatterns(packedPatterns, pis_.size()));
}

}  // namespace vcad::fault
