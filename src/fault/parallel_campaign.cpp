#include "fault/parallel_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace vcad::fault {
namespace {

/// Minimal persistent worker pool: parallelFor shards [0, count) across the
/// workers via an atomic index and blocks the caller until every worker has
/// drained the range. Persistent threads avoid per-pattern spawn churn,
/// which would otherwise eat the speedup on small designs. The first
/// exception a job throws is captured and rethrown on the calling thread.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads) {
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { workerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads_.empty()) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    remaining_ = threads_.size();
    ++generation_;
    wake_.notify_all();
    // remaining_ hits zero only after every worker has both observed this
    // generation and exhausted the index range, so the job/count references
    // stay valid for exactly as long as any worker can touch them.
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void workerLoop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::function<void(std::size_t)>* job = job_;
      const std::size_t count = count_;
      lock.unlock();
      for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
           i < count; i = next_.fetch_add(1, std::memory_order_relaxed)) {
        try {
          (*job)(i);
        } catch (...) {
          std::lock_guard<std::mutex> g(mutex_);
          if (!error_) error_ = std::current_exception();
        }
      }
      lock.lock();
      if (--remaining_ == 0) done_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace

ParallelFaultSimulator::ParallelFaultSimulator(
    Circuit& design, std::vector<FaultClient*> components,
    std::vector<Connector*> primaryInputs,
    std::vector<Connector*> primaryOutputs, ParallelCampaignConfig config)
    : design_(design),
      components_(std::move(components)),
      pis_(std::move(primaryInputs)),
      pos_(std::move(primaryOutputs)),
      config_(config) {
  if (components_.empty()) {
    throw std::invalid_argument("ParallelFaultSimulator: no components");
  }
  if (pis_.empty() || pos_.empty()) {
    throw std::invalid_argument(
        "ParallelFaultSimulator: need primary inputs and outputs");
  }
  if (config_.threads == 0) config_.threads = 1;
  if (config_.batchSize == 0) config_.batchSize = 1;
  if (config_.alignBatchesToPackWidth) {
    const std::size_t lanes =
        static_cast<std::size_t>(gate::PackedEvaluator::kLanes);
    config_.batchSize = ((config_.batchSize + lanes - 1) / lanes) * lanes;
  }
}

void ParallelFaultSimulator::applyPattern(SimulationController& sim,
                                          const std::vector<Word>& pattern) {
  if (pattern.size() != pis_.size()) {
    throw std::invalid_argument("pattern arity does not match primary inputs");
  }
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    sim.inject(*pis_[i], pattern[i]);
  }
  sim.start();
}

CampaignResult ParallelFaultSimulator::run(
    const std::vector<std::vector<Word>>& patterns) {
  CampaignResult res;

  // --- Phase 1: compose the symbolic fault lists (identical to serial) ----
  std::vector<std::string> prefixes(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    prefixes[c] = components_[c]->module().name() + "/";
    for (const std::string& s : components_[c]->faultList()) {
      res.faultList.push_back(prefixes[c] + s);
    }
  }

  // Workers beyond the job count just park; one thread means run inline.
  WorkerPool pool(config_.threads > 1 ? config_.threads : 0);
  std::mutex detectedMutex;

  // Per-component table cache keyed by observed input configuration, as in
  // the serial engine. std::map nodes are stable, so tables can be bound by
  // pointer across later insertions.
  std::vector<std::map<std::string, DetectionTable>> cache(components_.size());

  struct PatternRun {
    std::unique_ptr<SimulationController> sim;  // kept alive through the
                                                // pattern's injections
    std::vector<Word> golden;      // fault-free primary-output snapshot
    std::vector<Word> compInputs;  // observed inputs, one per component
  };

  for (std::size_t base = 0; base < patterns.size();
       base += config_.batchSize) {
    const std::size_t batchEnd =
        std::min(base + config_.batchSize, patterns.size());
    const std::size_t nBatch = batchEnd - base;

    // --- Fault-free reference runs for the batch (concurrent: each run has
    // its own scheduler, so the state LUTs keep them independent). --------
    std::vector<PatternRun> runs(nBatch);
    pool.parallelFor(nBatch, [&](std::size_t i) {
      PatternRun& pr = runs[i];
      pr.sim = std::make_unique<SimulationController>(design_);
      applyPattern(*pr.sim, patterns[base + i]);
      const SimContext ctx{pr.sim->scheduler(), nullptr};
      pr.golden.reserve(pos_.size());
      for (Connector* po : pos_) {
        pr.golden.push_back(po->value(pr.sim->scheduler().id()));
      }
      pr.compInputs.reserve(components_.size());
      for (FaultClient* comp : components_) {
        pr.compInputs.push_back(comp->observedInputs(ctx));
      }
    });

    // --- Batched detection-table fetch: per component, every input
    // configuration of the batch not already cached ships in one
    // GetDetectionTables round trip. -------------------------------------
    std::vector<std::vector<const DetectionTable*>> tables(
        nBatch, std::vector<const DetectionTable*>(components_.size()));
    // Lifetime holder for uncached-mode tables (must outlive injections).
    std::vector<std::vector<DetectionTable>> fresh(components_.size());
    for (std::size_t c = 0; c < components_.size(); ++c) {
      if (config_.cacheTables) {
        auto& compCache = cache[c];
        std::vector<Word> missing;
        std::vector<std::string> missingKeys;
        std::map<std::string, std::size_t> pending;  // key -> missing index
        for (std::size_t i = 0; i < nBatch; ++i) {
          const std::string key = runs[i].compInputs[c].toString();
          if (compCache.find(key) != compCache.end() ||
              pending.find(key) != pending.end()) {
            ++res.tableCacheHits;
          } else {
            pending.emplace(key, missing.size());
            missing.push_back(runs[i].compInputs[c]);
            missingKeys.push_back(key);
            ++res.detectionTablesRequested;
          }
        }
        if (!missing.empty()) {
          std::vector<DetectionTable> fetched =
              components_[c]->detectionTables(missing);
          if (fetched.size() != missing.size()) {
            throw std::runtime_error(
                "detectionTables returned a short batch for component " +
                components_[c]->module().name());
          }
          ++res.tableFetchRoundTrips;
          for (std::size_t j = 0; j < fetched.size(); ++j) {
            compCache.emplace(missingKeys[j], std::move(fetched[j]));
          }
        }
        for (std::size_t i = 0; i < nBatch; ++i) {
          tables[i][c] = &compCache.at(runs[i].compInputs[c].toString());
        }
      } else {
        std::vector<Word> all;
        all.reserve(nBatch);
        for (std::size_t i = 0; i < nBatch; ++i) {
          all.push_back(runs[i].compInputs[c]);
        }
        fresh[c] = components_[c]->detectionTables(all);
        if (fresh[c].size() != all.size()) {
          throw std::runtime_error(
              "detectionTables returned a short batch for component " +
              components_[c]->module().name());
        }
        res.detectionTablesRequested += nBatch;
        ++res.tableFetchRoundTrips;
        for (std::size_t i = 0; i < nBatch; ++i) {
          tables[i][c] = &fresh[c][i];
        }
      }
    }

    // --- Injections: patterns commit strictly in order (preserving the
    // per-pattern coverage curve); within a pattern, the row jobs shard
    // across the pool. ----------------------------------------------------
    for (std::size_t i = 0; i < nBatch; ++i) {
      struct Job {
        std::size_t comp;
        const DetectionTable::Row* row;
      };
      std::vector<Job> jobs;
      for (std::size_t c = 0; c < components_.size(); ++c) {
        for (const DetectionTable::Row& row : tables[i][c]->rows()) {
          bool anyUndetected = false;
          for (const std::string& f : row.faults) {
            if (res.detected.find(prefixes[c] + f) == res.detected.end()) {
              anyUndetected = true;
              break;
            }
          }
          if (anyUndetected) jobs.push_back(Job{c, &row});
        }
      }

      const std::vector<Word>& pattern = patterns[base + i];
      const PatternRun& pr = runs[i];
      pool.parallelFor(jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        FaultClient& comp = *components_[job.comp];
        SimulationController inj(design_);
        inj.forceOutputs(comp.module(), comp.overridesFor(job.row->faultyOutput));
        applyPattern(inj, pattern);
        bool observable = false;
        for (std::size_t k = 0; k < pos_.size(); ++k) {
          if (pos_[k]->value(inj.scheduler().id()) != pr.golden[k]) {
            observable = true;
            break;
          }
        }
        if (observable) {
          std::lock_guard<std::mutex> lock(detectedMutex);
          for (const std::string& f : job.row->faults) {
            res.detected.insert(prefixes[job.comp] + f);
          }
        }
        design_.clearSchedulerState(inj.scheduler().id());
      });

      res.injections += jobs.size();
      res.detectedAfterPattern.push_back(res.detected.size());
      design_.clearSchedulerState(pr.sim->scheduler().id());
    }
  }
  return res;
}

CampaignResult ParallelFaultSimulator::runPacked(
    const std::vector<Word>& packedPatterns) {
  return run(unpackPatterns(packedPatterns, pis_.size()));
}

}  // namespace vcad::fault
