// Human- and machine-readable reports from fault campaigns: the artifact a
// test engineer files after sign-off. Markdown for review, CSV for
// downstream tooling.
#pragma once

#include <iosfwd>

#include "fault/seq_fault.hpp"
#include "fault/virtual_sim.hpp"

namespace vcad::fault {

/// Markdown summary: coverage, per-pattern progress, undetected faults,
/// protocol effort.
void writeMarkdownReport(std::ostream& os, const CampaignResult& result,
                         const std::string& title = "Fault campaign");

/// CSV of the coverage curve: pattern_index,detected,total,coverage_pct.
void writeCoverageCsv(std::ostream& os, const CampaignResult& result);

/// Markdown summary of a sequential campaign, including detection-latency
/// statistics (min/median/max first-detecting cycle).
void writeMarkdownReport(std::ostream& os, const SeqCampaignResult& result,
                         const std::string& title = "Sequential campaign");

}  // namespace vcad::fault
