#include "fault/fault_client.hpp"

#include <stdexcept>

namespace vcad::fault {

std::vector<DetectionTable> FaultClient::detectionTables(
    const std::vector<Word>& inputs) {
  std::vector<DetectionTable> out;
  out.reserve(inputs.size());
  for (const Word& w : inputs) out.push_back(detectionTable(w));
  return out;
}

Word FaultClient::observedInputs(const SimContext& ctx) {
  Module& m = module();
  const auto ins = m.inputPorts();
  int width = 0;
  for (const Port* p : ins) width += p->width();
  Word w(width);
  int bit = 0;
  for (Port* p : ins) {
    const Word v = m.readInput(ctx, *p);
    for (int i = 0; i < v.width(); ++i) w.setBit(bit++, v.bit(i));
  }
  return w;
}

std::vector<Scheduler::OutputOverride> FaultClient::overridesFor(
    const Word& faultyOutputs) {
  Module& m = module();
  const auto outs = m.outputPorts();
  std::vector<Scheduler::OutputOverride> ov;
  int bit = 0;
  for (Port* p : outs) {
    if (bit + p->width() > faultyOutputs.width()) {
      throw std::invalid_argument(
          "overridesFor: faulty output word narrower than module outputs");
    }
    ov.push_back({p, faultyOutputs.slice(bit, p->width())});
    bit += p->width();
  }
  if (bit != faultyOutputs.width()) {
    throw std::invalid_argument(
        "overridesFor: faulty output word wider than module outputs");
  }
  return ov;
}

LocalFaultBlock::LocalFaultBlock(gate::NetlistModule& module, bool dominance,
                                 FaultScope scope)
    : module_(module),
      collapsed_(collapseAll(module.netlist(), dominance, scope.includeInputs,
                             scope.includeOutputs)),
      packed_(module.netlist()) {}

std::vector<std::string> LocalFaultBlock::faultList() {
  return symbolicFaultList(module_.netlist(), collapsed_);
}

DetectionTable LocalFaultBlock::detectionTable(const Word& inputs) {
  return std::move(buildDetectionTables(packed_, collapsed_, {inputs})[0]);
}

std::vector<DetectionTable> LocalFaultBlock::detectionTables(
    const std::vector<Word>& inputs) {
  return buildDetectionTables(packed_, collapsed_, inputs);
}

}  // namespace vcad::fault
