#include "ip/provider_server.hpp"

#include <cstdio>
#include <stdexcept>

#include "ip/negotiation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::ip {

using rmi::MethodId;
using rmi::Request;
using rmi::Response;
using rmi::Status;

ProviderServer::ProviderServer(std::string hostName, LogSink* log,
                               gate::TechParams tech)
    : hostName_(std::move(hostName)), log_(log), tech_(tech) {}

void ProviderServer::registerComponent(IpComponentSpec spec,
                                       NetlistFactory netlistFactory,
                                       PublicPartFactory publicPartFactory) {
  if (!netlistFactory) {
    throw std::invalid_argument("registerComponent: null netlist factory");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string name = spec.name;
  components_[name] = Registration{std::move(spec), std::move(netlistFactory),
                                   nullptr, std::move(publicPartFactory)};
}

void ProviderServer::registerSequentialComponent(IpComponentSpec spec,
                                                 SeqFactory factory) {
  if (!factory) {
    throw std::invalid_argument(
        "registerSequentialComponent: null machine factory");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string name = spec.name;
  components_[name] =
      Registration{std::move(spec), nullptr, std::move(factory), nullptr};
}

const IpComponentSpec* ProviderServer::findSpec(
    const std::string& component) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = components_.find(component);
  return it == components_.end() ? nullptr : &it->second.spec;
}

PublicPart ProviderServer::downloadPublicPart(const std::string& component,
                                              std::uint64_t param) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = components_.find(component);
  if (it == components_.end()) {
    throw std::invalid_argument("no such component: " + component);
  }
  if (it->second.spec.functional == ModelLevel::None ||
      !it->second.publicPartFactory) {
    return PublicPart{};  // provider releases no local functional model
  }
  return it->second.publicPartFactory(param);
}

double ProviderServer::sessionFeesCents(rmi::SessionId session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0.0 : it->second.feesCents;
}

std::size_t ProviderServer::liveInstanceCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instances_.size();
}

const PrivateComponent* ProviderServer::instanceForTesting(
    rmi::InstanceId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.impl.get();
}

Response ProviderServer::dispatch(const Request& request) {
  // Provider-side span: adopting the request's span-context id emits the
  // flow-finish that stitches this dispatch under the client channel's span
  // — one cross-domain trace per logical call.
  obs::SpanScope span(obs::Tracer::global(), "provider.dispatch", "provider",
                      request.spanContext);
  if (span.active()) {
    span.arg("method", static_cast<double>(
                           static_cast<std::uint32_t>(request.method)));
  }
  {
    static const obs::Registry::MetricId dispatches =
        obs::Registry::global().counter("provider.dispatches");
    obs::Registry::global().add(dispatches);
  }
  try {
    Response response = handle(request);
    if (span.active()) {
      span.arg("status", static_cast<double>(
                             static_cast<std::uint8_t>(response.status)));
      span.arg("feeCents", response.feeCents);
      span.arg("replayed", response.replayed ? 1.0 : 0.0);
    }
    return response;
  } catch (const std::exception& e) {
    if (log_ != nullptr) {
      log_->error("provider '" + hostName_ + "': " + e.what());
    }
    if (span.active()) span.arg("exception", 1.0);
    return Response::failure(Status::Error, e.what());
  }
}

void ProviderServer::restart() {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.clear();
  instances_.clear();
  openReplay_.clear();
  // The id counters deliberately survive: a pre-restart session/instance id
  // must never be re-issued, or a client holding a stale id would silently
  // address (and bill) a stranger's post-restart session instead of
  // receiving the UnknownSession that triggers its recovery.
  if (log_ != nullptr) {
    log_->warning("provider '" + hostName_ +
                  "': restarted (all sessions and instances lost)");
  }
}

void ProviderServer::charge(rmi::SessionId session, rmi::MethodId method,
                            double cents, Response& response) {
  Session& sess = sessions_[session];
  sess.feesCents += cents;
  ChargeItem& item = sess.items[method];
  ++item.calls;
  item.cents += cents;
  response.feeCents = cents;
  static const obs::Registry::MetricId feesCents =
      obs::Registry::global().doubleCounter("provider.feesCents");
  static const obs::Registry::MetricId charges =
      obs::Registry::global().counter("provider.charges");
  obs::Registry::global().addDouble(feesCents, cents);
  obs::Registry::global().add(charges);
}

ProviderServer::Instance* ProviderServer::findInstance(
    rmi::InstanceId id, rmi::SessionId session) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return nullptr;
  // Instances are private to the session that created them.
  if (it->second.session != session) return nullptr;
  return &it->second;
}

Response ProviderServer::instantiate(const Request& request) {
  auto it = components_.find(request.component);
  if (it == components_.end()) {
    return Response::failure(Status::NotFound,
                             "unknown component '" + request.component + "'");
  }
  rmi::Args args = request.args;
  const std::uint64_t param = args.takeU64();
  const IpComponentSpec& spec = it->second.spec;
  if (param < static_cast<std::uint64_t>(spec.minWidth) ||
      param > static_cast<std::uint64_t>(spec.maxWidth)) {
    return Response::failure(Status::Error,
                             "parameter " + std::to_string(param) +
                                 " outside [" + std::to_string(spec.minWidth) +
                                 ", " + std::to_string(spec.maxWidth) + "]");
  }
  Instance inst;
  inst.component = request.component;
  inst.session = request.session;
  if (it->second.seqFactory) {
    inst.seqImpl =
        std::make_unique<SeqPrivateComponent>(it->second.seqFactory(param));
  } else {
    inst.impl = std::make_unique<PrivateComponent>(
        it->second.netlistFactory(param), tech_, /*dominance=*/true,
        computeScale_);
  }
  const rmi::InstanceId id = nextInstance_++;
  instances_[id] = std::move(inst);

  Response resp;
  resp.payload.writeU64(id);
  charge(request.session, MethodId::Instantiate, spec.fees.instantiateCents, resp);
  if (log_ != nullptr) {
    log_->info("provider '" + hostName_ + "': instantiated " +
               request.component + "(" + std::to_string(param) +
               ") as instance " + std::to_string(id));
  }
  return resp;
}

Response ProviderServer::handle(const Request& request) {
  std::lock_guard<std::mutex> lock(mutex_);

  if (request.method == MethodId::OpenSession) {
    // Deduplicate retried OpenSessions (no session exists yet to anchor the
    // replay cache, so these live in a provider-global map).
    if (request.idempotencyKey != 0) {
      auto hit = openReplay_.find(request.idempotencyKey);
      if (hit != openReplay_.end()) {
        Response replay = hit->second;
        replay.replayed = true;
        return replay;
      }
    }
    const rmi::SessionId id = nextSession_++;
    sessions_[id] = Session{};
    Response resp;
    resp.payload.writeU64(id);
    if (request.idempotencyKey != 0) {
      openReplay_[request.idempotencyKey] = resp;
    }
    return resp;
  }

  auto sessionIt = sessions_.find(request.session);
  if (sessionIt == sessions_.end()) {
    if (request.method == MethodId::CloseSession) {
      return Response{};  // idempotent: closing a lost session is a no-op
    }
    return Response::failure(Status::UnknownSession, "unknown session");
  }

  // Replay cache: a retransmitted non-idempotent call (client retry after a
  // lost response, or a transport duplicate) is answered with the recorded
  // response — it must never double-execute or double-bill.
  const bool cacheable =
      request.idempotencyKey != 0 && rmi::isNonIdempotent(request.method);
  if (cacheable) {
    auto hit = sessionIt->second.replay.find(request.idempotencyKey);
    if (hit != sessionIt->second.replay.end()) {
      Response replay = hit->second;
      replay.replayed = true;
      return replay;
    }
  }
  const auto remember = [&](Response resp) {
    if (cacheable) {
      sessions_.at(request.session).replay[request.idempotencyKey] = resp;
    }
    return resp;
  };

  switch (request.method) {
    case MethodId::CloseSession: {
      // Instances owned by the session die with it.
      for (auto it = instances_.begin(); it != instances_.end();) {
        if (it->second.session == request.session) {
          it = instances_.erase(it);
        } else {
          ++it;
        }
      }
      return Response{};
    }
    case MethodId::GetCatalog: {
      Response resp;
      resp.payload.writeU32(static_cast<std::uint32_t>(components_.size()));
      for (const auto& [name, reg] : components_) {
        reg.spec.serialize(resp.payload);
      }
      return resp;
    }
    case MethodId::Instantiate:
      return remember(instantiate(request));
    default:
      break;
  }

  // Remaining methods operate on an instance.
  Instance* inst = findInstance(request.instance, request.session);
  if (inst == nullptr) {
    return Response::failure(Status::NotFound, "unknown instance");
  }
  const IpComponentSpec& spec = components_.at(inst->component).spec;
  rmi::Args args = request.args;

  // Interactive estimator negotiation (applies to any instance kind).
  if (request.method == MethodId::Negotiate) {
    const auto kind = static_cast<ParamKind>(args.takeU64());
    const double maxCost = args.takeDouble();
    const double maxError = args.takeDouble();
    const NegotiationResult res =
        resolveNegotiation(spec, kind, maxCost, maxError);
    Response resp;
    switch (res.outcome) {
      case NegotiationResult::Outcome::Accepted:
        res.offer.serialize(resp.payload);
        return resp;
      case NegotiationResult::Outcome::CounterOffer:
        resp.status = Status::PaymentRequired;
        resp.error = "accuracy achievable only above the stated fee budget";
        res.offer.serialize(resp.payload);
        return resp;
      case NegotiationResult::Outcome::Unavailable:
        return Response::failure(Status::NotFound,
                                 "no model meets the accuracy bound for " +
                                     vcad::toString(kind));
    }
  }

  // Sequential-extension methods and the shared fault list.
  if (request.method == MethodId::SeqReset ||
      request.method == MethodId::SeqStep) {
    if (inst->seqImpl == nullptr) {
      return Response::failure(Status::Error,
                               inst->component + " is not sequential");
    }
    if (spec.testability < ModelLevel::Dynamic) {
      return Response::failure(
          Status::Error, "no testability model for " + inst->component);
    }
    const std::string symbol = args.takeString();
    if (request.method == MethodId::SeqReset) {
      inst->seqImpl->reset(symbol);
      return remember(Response{});
    }
    const Word inputs = args.takeWord();
    Response resp;
    resp.payload.writeWord(inst->seqImpl->step(symbol, inputs));
    charge(request.session, MethodId::SeqStep, spec.fees.perEvalCents, resp);
    return remember(resp);
  }
  if (request.method == MethodId::GetFaultList && inst->seqImpl != nullptr) {
    if (spec.testability < ModelLevel::Static) {
      return Response::failure(
          Status::Error, "no testability model for " + inst->component);
    }
    const auto faults = inst->seqImpl->faultList();
    Response resp;
    resp.payload.writeU32(static_cast<std::uint32_t>(faults.size()));
    for (const std::string& f : faults) resp.payload.writeString(f);
    return resp;
  }
  if (inst->impl == nullptr) {
    return Response::failure(Status::Error,
                             inst->component + " is a sequential component");
  }

  switch (request.method) {
    case MethodId::EvalFunction: {
      const Word inputs = args.takeWord();
      Response resp;
      resp.payload.writeWord(inst->impl->eval(inputs));
      charge(request.session, MethodId::EvalFunction, spec.fees.perEvalCents, resp);
      return remember(resp);
    }
    case MethodId::EstimatePower: {
      if (spec.power < ModelLevel::Dynamic) {
        return Response::failure(
            Status::Error, "no dynamic power model for " + inst->component);
      }
      const std::vector<Word> patterns = args.takeWordVector();
      std::size_t billed = 0;
      const double mw = inst->impl->powerMw(patterns, billed);
      Response resp;
      resp.payload.writeDouble(mw);
      resp.payload.writeU64(billed);
      charge(request.session, MethodId::EstimatePower,
             spec.fees.perPowerPatternCents * static_cast<double>(billed),
             resp);
      return remember(resp);
    }
    case MethodId::EstimateTiming: {
      if (spec.timing < ModelLevel::Dynamic) {
        return Response::failure(
            Status::Error, "no dynamic timing model for " + inst->component);
      }
      Response resp;
      resp.payload.writeDouble(inst->impl->timingNs());
      charge(request.session, MethodId::EstimateTiming, spec.fees.perTimingQueryCents, resp);
      return remember(resp);
    }
    case MethodId::EstimateArea: {
      if (spec.area < ModelLevel::Dynamic) {
        return Response::failure(Status::Error,
                                 "no dynamic area model for " + inst->component);
      }
      Response resp;
      resp.payload.writeDouble(inst->impl->areaUm2());
      charge(request.session, MethodId::EstimateArea, spec.fees.perAreaQueryCents, resp);
      return remember(resp);
    }
    case MethodId::GetFaultList: {
      if (spec.testability < ModelLevel::Static) {
        return Response::failure(
            Status::Error, "no testability model for " + inst->component);
      }
      const auto faults = inst->impl->faultList();
      Response resp;
      resp.payload.writeU32(static_cast<std::uint32_t>(faults.size()));
      for (const std::string& f : faults) resp.payload.writeString(f);
      return resp;
    }
    case MethodId::GetDetectionTable: {
      if (spec.testability < ModelLevel::Dynamic) {
        return Response::failure(
            Status::Error,
            "no dynamic testability model for " + inst->component);
      }
      const Word inputs = args.takeWord();
      Response resp;
      inst->impl->detectionTable(inputs).serialize(resp.payload);
      charge(request.session, MethodId::GetDetectionTable, spec.fees.perDetectionTableCents, resp);
      return remember(resp);
    }
    case MethodId::GetDetectionTables: {
      if (spec.testability < ModelLevel::Dynamic) {
        return Response::failure(
            Status::Error,
            "no dynamic testability model for " + inst->component);
      }
      // Batched variant: one table per buffered input configuration, one
      // message pair total, built in one packed bit-parallel sweep (64
      // configurations per fault pass) server-side. Fees are identical to
      // the per-table method — batching saves round trips, not licensing
      // cost.
      const std::vector<Word> configs = args.takeWordVector();
      Response resp;
      resp.payload.writeU32(static_cast<std::uint32_t>(configs.size()));
      for (const fault::DetectionTable& t :
           inst->impl->detectionTables(configs)) {
        t.serialize(resp.payload);
      }
      charge(request.session, MethodId::GetDetectionTables,
             spec.fees.perDetectionTableCents *
                 static_cast<double>(configs.size()),
             resp);
      return remember(resp);
    }
    default:
      return Response::failure(Status::Error, "unsupported method");
  }
}


ProviderServer::Invoice ProviderServer::invoice(rmi::SessionId session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Invoice inv;
  inv.session = session;
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return inv;
  for (const auto& [method, item] : it->second.items) {
    inv.items.push_back(Invoice::Item{method, item.calls, item.cents});
  }
  inv.totalCents = it->second.feesCents;
  return inv;
}

std::string ProviderServer::Invoice::render() const {
  std::string out = "invoice for session " + std::to_string(session) + "\n";
  char line[128];
  for (const Item& item : items) {
    std::snprintf(line, sizeof(line), "  %-18s x%-6llu %10.2f cents\n",
                  rmi::toString(item.method).c_str(),
                  static_cast<unsigned long long>(item.calls), item.cents);
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-18s         %10.2f cents\n", "TOTAL",
                totalCents);
  out += line;
  return out;
}

}  // namespace vcad::ip
