// PrivateComponent: the part of an IP component that never leaves the
// provider's server — the gate-level netlist and every computation that
// needs it (accurate evaluation, toggle-count power, timing, area, fault
// characterization, detection tables).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "fault/detection.hpp"
#include "fault/model.hpp"
#include "gate/metrics.hpp"
#include "gate/netlist.hpp"

namespace vcad::ip {

class PrivateComponent {
 public:
  /// `computeScale` repeats the accurate evaluation per call; it calibrates
  /// the server's per-event compute cost to a heavyweight simulator backend
  /// (the Verilog-XL/PPP process of the paper's testbed) for the timing
  /// experiments. Functional results are unaffected.
  PrivateComponent(std::shared_ptr<const gate::Netlist> netlist,
                   gate::TechParams tech = {}, bool dominance = true,
                   int computeScale = 1);

  int inputWidth() const { return netlist_->inputCount(); }
  int outputWidth() const { return netlist_->outputCount(); }

  /// Accurate functional evaluation; records the input in the server-side
  /// pattern history (the paper's "buffers the patterns remotely" MR case).
  Word eval(const Word& inputs);

  /// Gate-level toggle-count average power over `patterns`; with an empty
  /// argument, the history recorded by eval() is used instead. Returns the
  /// number of patterns billed through `billedPatterns`.
  double powerMw(const std::vector<Word>& patterns,
                 std::size_t& billedPatterns);

  double timingNs() const;
  double areaUm2() const;

  /// Phase-1 data for virtual fault simulation.
  std::vector<std::string> faultList() const;

  /// Phase-2 data: the detection table for one input configuration.
  fault::DetectionTable detectionTable(const Word& inputs) const;

  /// Phase-2 data, batched: one table per buffered input configuration, in
  /// order, built on the packed bit-parallel engine (64 configurations per
  /// fault pass). Identical to calling detectionTable() per entry.
  std::vector<fault::DetectionTable> detectionTables(
      const std::vector<Word>& inputs) const;

  const gate::Netlist& netlist() const { return *netlist_; }
  std::size_t evalCount() const;

 private:
  std::shared_ptr<const gate::Netlist> netlist_;
  gate::NetlistEvaluator evaluator_;
  gate::PackedEvaluator packed_;
  gate::TechParams tech_;
  fault::CollapsedFaults collapsed_;
  int computeScale_;

  mutable std::mutex mutex_;
  std::vector<Word> history_;
  std::size_t evalCount_ = 0;
};

}  // namespace vcad::ip
