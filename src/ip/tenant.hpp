// Tenant identity, quota, and usage accounting for the multi-tenant
// provider front end.
//
// A tenant is whoever a request frame's tenantId says it is (the channel
// stamps it; 0 is the anonymous default). Each tenant gets its own
// ServerEndpoint shard — its own sessions, fee ledger, and replay cache —
// so per-tenant outcomes are bit-identical to a dedicated single-tenant
// server, and a quota decision depends only on that tenant's own executed
// history (deterministic: independent of scheduling or other tenants).
#pragma once

#include <cstdint>
#include <string>

namespace vcad::ip {

using TenantId = std::uint64_t;

/// Admission budget for one tenant. A request is admitted while the
/// tenant's executed usage is strictly below every configured bound;
/// crossing a bound makes every subsequent request a deterministic
/// FrameStatus::QuotaExceeded rejection.
struct TenantQuota {
  double maxFeeCents = -1.0;         // < 0: unlimited
  std::uint64_t maxBilledCalls = 0;  // 0: unlimited

  bool unlimited() const { return maxFeeCents < 0.0 && maxBilledCalls == 0; }
};

/// One tenant's executed history and admission outcomes.
struct TenantUsage {
  double feesCents = 0.0;          // fees charged by executed dispatches
  std::uint64_t billedCalls = 0;   // dispatches that charged a nonzero fee
  std::uint64_t dispatches = 0;    // requests that reached the endpoint
  std::uint64_t quotaRejected = 0;  // QuotaExceeded verdicts returned
  std::uint64_t shed = 0;           // TooManyPending/Overloaded verdicts
};

/// The deterministic admission predicate: true while `usage` is within
/// `quota`. Depends only on this tenant's executed history.
bool withinQuota(const TenantQuota& quota, const TenantUsage& usage);

std::string describe(const TenantQuota& quota);

}  // namespace vcad::ip
