// ProviderServer: one IP provider's server — a component catalog, the
// private parts of instantiated components, session management, and a fee
// ledger. Implements the RMI ServerEndpoint so clients reach it only
// through the (filtered, byte-accurate, latency-charged) channel.
//
// Parametric design macros: a component is registered with a netlist
// *factory*, so the user can pass parameters (e.g. the word width) in the
// component constructor and the provider builds the matching implementation
// on its side — the Figure 2 "MultFastLowPower(width, ...)" behaviour.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/log.hpp"
#include "ip/catalog.hpp"
#include "ip/private_component.hpp"
#include "ip/seq_private.hpp"
#include "rmi/channel.hpp"
#include "rmi/security.hpp"

namespace vcad::ip {

/// The public part of a component: the "loadable bytecode" the user
/// downloads and runs locally. `functional` implements the component's
/// abstract behaviour (empty when the provider releases no local functional
/// model); it receives the sandbox so privileged operations are policed.
struct PublicPart {
  std::function<Word(const Word& inputs, const rmi::Sandbox& sandbox)>
      functional;

  bool hasFunctional() const { return static_cast<bool>(functional); }
};

/// Where clients obtain a component's public part (the "loadable bytecode").
/// Implemented by ProviderServer; endpoint decorators (e.g. benchmarking
/// stubs) forward it so the download path survives wrapping.
class PublicPartSource {
 public:
  virtual ~PublicPartSource() = default;
  virtual PublicPart downloadPublicPart(const std::string& component,
                                        std::uint64_t param) const = 0;
};

class ProviderServer : public rmi::ServerEndpoint, public PublicPartSource {
 public:
  using NetlistFactory =
      std::function<std::shared_ptr<const gate::Netlist>(std::uint64_t param)>;
  using PublicPartFactory = std::function<PublicPart(std::uint64_t param)>;

  explicit ProviderServer(std::string hostName, LogSink* log = nullptr,
                          gate::TechParams tech = {});

  /// Per-call compute multiplier applied to instances created afterwards;
  /// see PrivateComponent::computeScale.
  void setComputeScale(int scale) { computeScale_ = scale < 1 ? 1 : scale; }

  /// Registers a component: its advertised spec, the private-implementation
  /// factory, and the downloadable public part.
  void registerComponent(IpComponentSpec spec, NetlistFactory netlistFactory,
                         PublicPartFactory publicPartFactory);

  /// Registers a *sequential* component (the sequential fault-simulation
  /// extension): the factory builds the machine for the requested parameter.
  using SeqFactory = std::function<gate::SeqNetlist(std::uint64_t param)>;
  void registerSequentialComponent(IpComponentSpec spec, SeqFactory factory);

  // --- RMI endpoint ------------------------------------------------------

  rmi::Response dispatch(const rmi::Request& request) override;
  std::string hostName() const override { return hostName_; }

  /// Simulates a provider process restart: every session, live instance and
  /// replay-cache entry is lost (the registered catalog is configuration and
  /// survives, as it would on disk). Clients holding session ids receive
  /// UnknownSession afterwards and must run session recovery.
  void restart();

  // --- the "download" path (bytecode + stub shipping) ------------------

  const IpComponentSpec* findSpec(const std::string& component) const;
  PublicPart downloadPublicPart(const std::string& component,
                                std::uint64_t param) const override;

  // --- provider-side bookkeeping ----------------------------------------

  double sessionFeesCents(rmi::SessionId session) const;
  std::size_t liveInstanceCount() const;
  const PrivateComponent* instanceForTesting(rmi::InstanceId id) const;

  /// Itemized licensing summary for one session: per-method call counts and
  /// accumulated fees (the invoice the provider settles at purchase time).
  struct Invoice {
    struct Item {
      rmi::MethodId method;
      std::uint64_t calls = 0;
      double cents = 0.0;
    };
    rmi::SessionId session = 0;
    std::vector<Item> items;
    double totalCents = 0.0;

    std::string render() const;
  };
  Invoice invoice(rmi::SessionId session) const;

 private:
  struct Registration {
    IpComponentSpec spec;
    NetlistFactory netlistFactory;      // combinational components
    SeqFactory seqFactory;              // sequential components
    PublicPartFactory publicPartFactory;
  };
  struct Instance {
    std::string component;
    rmi::SessionId session;
    std::unique_ptr<PrivateComponent> impl;        // combinational
    std::unique_ptr<SeqPrivateComponent> seqImpl;  // sequential
  };
  struct ChargeItem {
    std::uint64_t calls = 0;
    double cents = 0.0;
  };
  struct Session {
    double feesCents = 0.0;
    std::map<rmi::MethodId, ChargeItem> items;
    /// Replay cache: responses of completed non-idempotent calls, keyed by
    /// idempotency key. A retransmission (client retry, or a transport
    /// duplicate) is answered from here instead of executing — and billing —
    /// twice. Dies with the session.
    std::map<std::uint64_t, rmi::Response> replay;
  };

  rmi::Response handle(const rmi::Request& request);
  rmi::Response instantiate(const rmi::Request& request);
  Instance* findInstance(rmi::InstanceId id, rmi::SessionId session);
  void charge(rmi::SessionId session, rmi::MethodId method, double cents,
              rmi::Response& response);

  std::string hostName_;
  LogSink* log_;
  gate::TechParams tech_;
  int computeScale_ = 1;

  mutable std::mutex mutex_;
  std::map<std::string, Registration> components_;
  std::map<rmi::SessionId, Session> sessions_;
  std::map<rmi::InstanceId, Instance> instances_;
  /// Replay cache for OpenSession, which has no session to hang off: a
  /// retried OpenSession whose first response was lost must not leak a
  /// second orphan session.
  std::map<std::uint64_t, rmi::Response> openReplay_;
  rmi::SessionId nextSession_ = 1;
  rmi::InstanceId nextInstance_ = 1;
};

}  // namespace vcad::ip
