#include "ip/negotiation.hpp"

#include <algorithm>
#include <stdexcept>

#include "ip/remote_component.hpp"

namespace vcad::ip {

void EstimatorOffer::serialize(net::ByteBuffer& buf) const {
  buf.writeString(name);
  buf.writeDouble(errorPct);
  buf.writeDouble(costPerUseCents);
  buf.writeBool(remote);
}

EstimatorOffer EstimatorOffer::deserialize(net::ByteBuffer& buf) {
  EstimatorOffer o;
  o.name = buf.readString();
  o.errorPct = buf.readDouble();
  o.costPerUseCents = buf.readDouble();
  o.remote = buf.readBool();
  return o;
}

std::vector<EstimatorOffer> offersOf(const IpComponentSpec& spec,
                                     ParamKind kind) {
  std::vector<EstimatorOffer> offers;
  switch (kind) {
    case ParamKind::AvgPower:
      if (spec.power >= ModelLevel::Static) {
        offers.push_back({"constant", 25.0, 0.0, false});
        if (spec.hasLinearPowerModel) {
          offers.push_back({"linear-regression", 20.0, 0.0, false});
        }
      }
      if (spec.power >= ModelLevel::Dynamic) {
        offers.push_back({"gate-level-toggle", 10.0,
                          spec.fees.perPowerPatternCents, true});
      }
      break;
    case ParamKind::Delay:
      if (spec.timing >= ModelLevel::Static) {
        offers.push_back({"datasheet-timing", 20.0, 0.0, false});
      }
      if (spec.timing >= ModelLevel::Dynamic) {
        offers.push_back({"gate-level-timing", 5.0,
                          spec.fees.perTimingQueryCents, true});
      }
      break;
    case ParamKind::Area:
      if (spec.area >= ModelLevel::Static) {
        offers.push_back({"datasheet-area", 15.0, 0.0, false});
      }
      if (spec.area >= ModelLevel::Dynamic) {
        offers.push_back({"gate-level-area", 2.0,
                          spec.fees.perAreaQueryCents, true});
      }
      break;
    default:
      break;
  }
  return offers;
}

NegotiationResult resolveNegotiation(const IpComponentSpec& spec,
                                     ParamKind kind, double maxCostCents,
                                     double maxErrorPct) {
  const auto offers = offersOf(spec, kind);
  NegotiationResult res;

  // Best (most accurate) offer within both bounds.
  const EstimatorOffer* best = nullptr;
  for (const auto& o : offers) {
    if (o.errorPct > maxErrorPct || o.costPerUseCents > maxCostCents) continue;
    if (best == nullptr || o.errorPct < best->errorPct) best = &o;
  }
  if (best != nullptr) {
    res.outcome = NegotiationResult::Outcome::Accepted;
    res.offer = *best;
    return res;
  }

  // Counter-offer: the cheapest offer that still meets the accuracy bound.
  const EstimatorOffer* counter = nullptr;
  for (const auto& o : offers) {
    if (o.errorPct > maxErrorPct) continue;
    if (counter == nullptr || o.costPerUseCents < counter->costPerUseCents) {
      counter = &o;
    }
  }
  if (counter != nullptr) {
    res.outcome = NegotiationResult::Outcome::CounterOffer;
    res.offer = *counter;
    return res;
  }
  res.outcome = NegotiationResult::Outcome::Unavailable;
  return res;
}

NegotiationResult negotiateEstimator(ProviderHandle& provider,
                                     std::uint64_t instance, ParamKind kind,
                                     double maxCostCents, double maxErrorPct) {
  rmi::Args args;
  args.addU64(static_cast<std::uint64_t>(kind));
  args.addDouble(maxCostCents);
  args.addDouble(maxErrorPct);
  rmi::Response resp =
      provider.call(rmi::MethodId::Negotiate, instance, std::move(args));
  NegotiationResult res;
  if (resp.status == rmi::Status::Ok) {
    res.outcome = NegotiationResult::Outcome::Accepted;
    res.offer = EstimatorOffer::deserialize(resp.payload);
  } else if (resp.status == rmi::Status::PaymentRequired) {
    res.outcome = NegotiationResult::Outcome::CounterOffer;
    res.offer = EstimatorOffer::deserialize(resp.payload);
  } else if (resp.status == rmi::Status::NotFound ||
             resp.status == rmi::Status::Error) {
    res.outcome = NegotiationResult::Outcome::Unavailable;
  } else {
    throw std::runtime_error("negotiation failed: " + resp.error);
  }
  return res;
}

}  // namespace vcad::ip
