#include "ip/catalog.hpp"

namespace vcad::ip {

std::string toString(ModelLevel level) {
  switch (level) {
    case ModelLevel::None:
      return "none";
    case ModelLevel::Static:
      return "static";
    case ModelLevel::Dynamic:
      return "dynamic";
  }
  return "?";
}

void IpComponentSpec::serialize(net::ByteBuffer& buf) const {
  buf.writeString(name);
  buf.writeString(description);
  buf.writeU32(static_cast<std::uint32_t>(minWidth));
  buf.writeU32(static_cast<std::uint32_t>(maxWidth));
  buf.writeU8(static_cast<std::uint8_t>(functional));
  buf.writeU8(static_cast<std::uint8_t>(power));
  buf.writeU8(static_cast<std::uint8_t>(timing));
  buf.writeU8(static_cast<std::uint8_t>(area));
  buf.writeU8(static_cast<std::uint8_t>(testability));
  buf.writeDouble(staticPowerMw);
  buf.writeDouble(staticAreaUm2);
  buf.writeDouble(staticTimingNs);
  buf.writeBool(hasLinearPowerModel);
  buf.writeDouble(linearPower.interceptMw);
  buf.writeDouble(linearPower.slopeMwPerToggle);
  buf.writeDouble(fees.instantiateCents);
  buf.writeDouble(fees.perEvalCents);
  buf.writeDouble(fees.perPowerPatternCents);
  buf.writeDouble(fees.perTimingQueryCents);
  buf.writeDouble(fees.perAreaQueryCents);
  buf.writeDouble(fees.perDetectionTableCents);
}

IpComponentSpec IpComponentSpec::deserialize(net::ByteBuffer& buf) {
  IpComponentSpec s;
  s.name = buf.readString();
  s.description = buf.readString();
  s.minWidth = static_cast<int>(buf.readU32());
  s.maxWidth = static_cast<int>(buf.readU32());
  s.functional = static_cast<ModelLevel>(buf.readU8());
  s.power = static_cast<ModelLevel>(buf.readU8());
  s.timing = static_cast<ModelLevel>(buf.readU8());
  s.area = static_cast<ModelLevel>(buf.readU8());
  s.testability = static_cast<ModelLevel>(buf.readU8());
  s.staticPowerMw = buf.readDouble();
  s.staticAreaUm2 = buf.readDouble();
  s.staticTimingNs = buf.readDouble();
  s.hasLinearPowerModel = buf.readBool();
  s.linearPower.interceptMw = buf.readDouble();
  s.linearPower.slopeMwPerToggle = buf.readDouble();
  s.fees.instantiateCents = buf.readDouble();
  s.fees.perEvalCents = buf.readDouble();
  s.fees.perPowerPatternCents = buf.readDouble();
  s.fees.perTimingQueryCents = buf.readDouble();
  s.fees.perAreaQueryCents = buf.readDouble();
  s.fees.perDetectionTableCents = buf.readDouble();
  return s;
}

}  // namespace vcad::ip
