#include "ip/provider_socket.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/faulty_transport.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::ip {

namespace {

bool readFully(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool writeFully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w > 0) {
      put += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

struct SocketMetrics {
  obs::Registry::MetricId connections, framesServed, discardedFrames,
      shedRequests;

  static const SocketMetrics& get() {
    static const SocketMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      SocketMetrics ids;
      ids.connections = r.counter("provider.socket.connections");
      ids.framesServed = r.counter("provider.socket.framesServed");
      ids.discardedFrames = r.counter("provider.socket.discardedFrames");
      ids.shedRequests = r.counter("provider.socket.shedRequests");
      return ids;
    }();
    return m;
  }
};

}  // namespace

ProviderSocketServer::ProviderSocketServer(rmi::ServerEndpoint& endpoint,
                                           LogSink* log)
    : endpoint_(&endpoint), log_(log) {}

ProviderSocketServer::~ProviderSocketServer() { stop(); }

bool ProviderSocketServer::listenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  listenFd_ = fd;
  unixPath_ = path;
  return true;
}

std::uint16_t ProviderSocketServer::listenTcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return 0;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return 0;
  }
  listenFd_ = fd;
  return ntohs(bound.sin_port);
}

void ProviderSocketServer::start() {
  if (listenFd_ < 0 || acceptThread_.joinable()) return;
  acceptThread_ = std::thread([this] { acceptLoop(); });
  // Readiness handshake: don't return until the loop is actually in
  // accept() territory, so callers can treat "start() returned" as "a
  // connect will be served".
  std::unique_lock<std::mutex> lock(mutex_);
  statsCv_.wait(lock, [this] { return accepting_ || stopping_.load(); });
}

void ProviderSocketServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptThread_.joinable()) acceptThread_.join();
    return;
  }
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
    statsCv_.notify_all();  // releases a start() stuck before accepting_
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(connThreads_);
  }
  for (std::thread& t : threads) t.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!unixPath_.empty()) ::unlink(unixPath_.c_str());
}

void ProviderSocketServer::setMaxConcurrentDispatches(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  maxConcurrentDispatches_ = cap == 0 ? 0 : cap;
}

ProviderSocketServer::Stats ProviderSocketServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ProviderSocketServer::awaitStats(
    const std::function<bool(const Stats&)>& pred, double timeoutSec) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeoutSec < 0 ? 0 : timeoutSec));
  return statsCv_.wait_until(lock, deadline,
                             [&] { return pred(stats_); });
}

void ProviderSocketServer::acceptLoop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = true;
    statsCv_.notify_all();
  }
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections;
    obs::Registry::global().add(SocketMetrics::get().connections);
    connFds_.insert(fd);
    connThreads_.emplace_back([this, fd] { serveConnection(fd); });
    statsCv_.notify_all();
  }
}

void ProviderSocketServer::serveConnection(int fd) {
  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<std::uint8_t> header(net::kRequestHeaderBytes);
  while (!stopping_.load()) {
    if (!readFully(fd, header.data(), header.size())) break;
    net::RequestFrameHeader h;
    if (!net::decodeRequestFrameHeader(header.data(), header.size(), h)) {
      // Framing lost: no way to resynchronize a byte stream, so the
      // connection dies. The client sees a dead wire, not garbage.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.malformedHeaders;
      statsCv_.notify_all();
      if (log_ != nullptr) {
        log_->warning("provider socket: malformed frame header; closing");
      }
      break;
    }
    std::vector<std::uint8_t> payload(h.payloadBytes);
    if (h.payloadBytes != 0 &&
        !readFully(fd, payload.data(), h.payloadBytes)) {
      break;
    }

    const auto reply = [&](net::ResponseFrameHeader rh,
                           const std::vector<std::uint8_t>& body) {
      rh.requestId = h.requestId;
      const std::vector<std::uint8_t> frame = net::encodeResponseFrame(rh, body);
      return writeFully(fd, frame.data(), frame.size());
    };

    // Admission control: shed rather than queue without bound.
    std::size_t cap;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cap = maxConcurrentDispatches_;
    }
    if (cap != 0 && dispatching_.load(std::memory_order_acquire) >= cap) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.shedRequests;
        obs::Registry::global().add(SocketMetrics::get().shedRequests);
        statsCv_.notify_all();
      }
      net::ResponseFrameHeader rh;
      rh.status = net::FrameStatus::TooManyPending;
      if (!reply(rh, {})) break;
      continue;
    }

    // Server-side receive: checksum first (silent discard — emulated wire
    // damage, the client's deadline owns it), then bounds-checked
    // unmarshal (typed reject — an intact frame that does not parse is a
    // protocol violation worth reporting).
    if (!net::openFrame(payload)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.discardedFrames;
      obs::Registry::global().add(SocketMetrics::get().discardedFrames);
      statsCv_.notify_all();
      if (tracer.enabled()) {
        tracer.instant("provider.socket.discardedFrame", "provider",
                       {{"bytes", static_cast<double>(h.payloadBytes)}});
      }
      continue;
    }
    rmi::Request request;
    bool parsed = true;
    try {
      net::ByteBuffer b(std::move(payload));
      request = rmi::Request::unmarshal(b);
    } catch (const std::exception&) {
      parsed = false;
    }
    if (!parsed) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.malformedPayloads;
        statsCv_.notify_all();
      }
      net::ResponseFrameHeader rh;
      rh.status = net::FrameStatus::MalformedRequest;
      if (!reply(rh, {})) break;
      continue;
    }

    rmi::Response response;
    double cpuSec = 0.0;
    {
      dispatching_.fetch_add(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> dispatchLock(dispatchMutex_);
      const auto start = std::chrono::steady_clock::now();
      response = endpoint_->dispatch(request);
      cpuSec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
      dispatching_.fetch_sub(1, std::memory_order_acq_rel);
    }

    std::vector<std::uint8_t> body = response.marshal().bytes();
    net::sealFrame(body);
    net::ResponseFrameHeader rh;
    rh.status = net::FrameStatus::Ok;
    rh.serverCpuNanos = static_cast<std::uint64_t>(cpuSec * 1e9);
    if (!reply(rh, body)) break;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.framesServed;
      obs::Registry::global().add(SocketMetrics::get().framesServed);
      statsCv_.notify_all();
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  connFds_.erase(fd);
}

}  // namespace vcad::ip
