#include "ip/private_component.hpp"

namespace vcad::ip {

PrivateComponent::PrivateComponent(std::shared_ptr<const gate::Netlist> netlist,
                                   gate::TechParams tech, bool dominance,
                                   int computeScale)
    : netlist_(std::move(netlist)),
      evaluator_(*netlist_),
      packed_(*netlist_),
      tech_(tech),
      collapsed_(fault::collapseAll(*netlist_, dominance,
                                    /*includePrimaryInputs=*/false,
                                    /*includePrimaryOutputNets=*/false)),
      computeScale_(computeScale < 1 ? 1 : computeScale) {}

Word PrivateComponent::eval(const Word& inputs) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    history_.push_back(inputs);
    ++evalCount_;
  }
  std::vector<Logic> values;  // scratch reused across the calibration loop
  evaluator_.evaluateInto(inputs, values);
  Word out = evaluator_.outputsOf(values);
  for (int i = 1; i < computeScale_; ++i) {
    // Calibrated extra work standing in for a heavyweight backend.
    evaluator_.evaluateInto(inputs, values);
    out = evaluator_.outputsOf(values);
  }
  return out;
}

double PrivateComponent::powerMw(const std::vector<Word>& patterns,
                                 std::size_t& billedPatterns) {
  if (!patterns.empty()) {
    billedPatterns = patterns.size();
    return gate::gateLevelPower(*netlist_, patterns, tech_).avgPowerMw;
  }
  std::vector<Word> recorded;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    recorded = history_;
  }
  billedPatterns = recorded.size();
  return gate::gateLevelPower(*netlist_, recorded, tech_).avgPowerMw;
}

double PrivateComponent::timingNs() const {
  return gate::criticalPathNs(*netlist_, tech_);
}

double PrivateComponent::areaUm2() const {
  return gate::areaOf(*netlist_, tech_);
}

std::vector<std::string> PrivateComponent::faultList() const {
  return fault::symbolicFaultList(*netlist_, collapsed_);
}

fault::DetectionTable PrivateComponent::detectionTable(
    const Word& inputs) const {
  return std::move(fault::buildDetectionTables(packed_, collapsed_, {inputs})[0]);
}

std::vector<fault::DetectionTable> PrivateComponent::detectionTables(
    const std::vector<Word>& inputs) const {
  return fault::buildDetectionTables(packed_, collapsed_, inputs);
}

std::size_t PrivateComponent::evalCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evalCount_;
}

}  // namespace vcad::ip
