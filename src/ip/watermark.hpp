// Netlist watermarking — the related-work baseline the paper contrasts
// against (Kahng et al., DAC'98). A provider embeds a digital signature
// into the component so that unauthorized instantiation can be proven in
// court. Crucially, watermarking does NOT hide the IP: the user receives
// the full netlist and can reverse-engineer it — which is exactly the gap
// virtual simulation closes.
//
// Scheme (constraint-style, function-preserving): for each signature bit, a
// key-derived (gate, pin) site is rewired through a redundant pair
//   wmA = BUF(n)
//   wmB = bit ? OR(n, wmA) : AND(n, wmA)     // == n either way
// and the site reads wmB instead of n. The signature is recovered from the
// gate types of the appended pairs; an adversary can strip the redundant
// pairs (destroying the proof of ownership) but gains nothing secret —
// the functional IP was in their hands all along.
#pragma once

#include <optional>
#include <vector>

#include "gate/netlist.hpp"

namespace vcad::ip {

struct WatermarkKey {
  std::uint64_t seed = 0;
};

/// Embeds `signature` into a copy of `original`. Function is preserved
/// exactly (all outputs identical for every input). Throws when the netlist
/// is too small to host the requested number of bits.
gate::Netlist embedWatermark(const gate::Netlist& original, WatermarkKey key,
                             const std::vector<bool>& signature);

/// Recovers the signature from a watermarked netlist. Requires the key and
/// the original gate count; returns nullopt when the structural pattern is
/// absent (wrong key, stripped watermark, or unmarked netlist).
std::optional<std::vector<bool>> extractWatermark(const gate::Netlist& marked,
                                                  WatermarkKey key,
                                                  int originalGateCount,
                                                  int signatureBits);

/// Removes the watermark pairs, restoring a netlist functionally and
/// structurally equivalent to the original — the attack watermarking cannot
/// prevent (it only proves provenance while the marks are intact).
gate::Netlist stripWatermark(const gate::Netlist& marked,
                             int originalGateCount, int signatureBits);

}  // namespace vcad::ip
