// MultiTenantProviderServer: one socket front end serving many tenants,
// each on its own ServerEndpoint shard, through a prioritized bounded
// JobQueue with admission control.
//
// Request path (per frame, on the connection's reader thread):
//
//   decode header ──► draining? ──► tenant quota? ──► JobQueue admission
//        │ bad           │ yes          │ over             │ shed
//        ▼               ▼              ▼                  ▼
//   kill conn        Shutdown      QuotaExceeded    TooManyPending /
//                                                   Overloaded
//
// Only an admitted job reaches a worker, which opens the checksum,
// unmarshals, dispatches on the tenant's endpoint shard, accounts fees,
// and writes the Ok frame back on the arrival connection (a per-
// connection write mutex interleaves worker replies and reader-thread
// shed frames safely; the client's request-id demux handles the
// out-of-order completions).
//
// Isolation and determinism:
//   - Endpoint shards come from an EndpointFactory on first sight of a
//     tenant id. Each ProviderServer shard owns its sessions, fee ledger,
//     and replay cache, and serializes its own dispatch internally — so
//     one tenant's outcomes are bit-identical to a dedicated server while
//     different tenants execute concurrently on the worker pool.
//   - Quota admission reads only the tenant's own executed usage, so an
//     over-quota rejection is deterministic: the same call sequence is
//     rejected at the same call no matter how traffic interleaves.
//   - Sheds (TooManyPending/Overloaded) are timing-dependent, but the
//     client retry machinery makes them invisible to coverage/fees — the
//     chaos suite proves that.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/log.hpp"
#include "ip/job_queue.hpp"
#include "ip/tenant.hpp"
#include "rmi/channel.hpp"

namespace vcad::ip {

class MultiTenantProviderServer {
 public:
  /// Builds the endpoint shard for a newly-seen tenant. Called at most
  /// once per tenant id, under that tenant's bucket lock.
  using EndpointFactory =
      std::function<std::unique_ptr<rmi::ServerEndpoint>(TenantId)>;

  struct Config {
    JobQueue::Config queue;
    /// Applied to tenants with no explicit setTenantQuota() override.
    TenantQuota defaultQuota;
    int listenBacklog = 128;
  };

  MultiTenantProviderServer(EndpointFactory factory, Config config,
                            LogSink* log = nullptr);
  ~MultiTenantProviderServer();

  MultiTenantProviderServer(const MultiTenantProviderServer&) = delete;
  MultiTenantProviderServer& operator=(const MultiTenantProviderServer&) =
      delete;

  /// Binds a Unix-domain listener (unlinking any stale socket file first).
  bool listenUnix(const std::string& path);
  /// Binds a TCP listener on 127.0.0.1; port 0 picks an ephemeral port.
  /// Returns the bound port, or 0 on failure.
  std::uint16_t listenTcp(std::uint16_t port = 0);

  /// Starts the accept loop; returns once it is live (readiness
  /// handshake — a connect() after start() returns will be accepted).
  void start();
  /// Drains: admitted jobs finish, connections close, threads join.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Overrides the default quota for one tenant. Takes effect for
  /// admission decisions from the next frame on; usage already accrued is
  /// kept. Safe to call before or during traffic.
  void setTenantQuota(TenantId tenant, TenantQuota quota);

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t framesServed = 0;      // Ok responses written
    std::uint64_t discardedFrames = 0;   // checksum-rejected payloads
    std::uint64_t malformedHeaders = 0;  // framing lost; connection closed
    std::uint64_t malformedPayloads = 0;  // intact frame, unparseable request
    std::uint64_t shedTooManyPending = 0;
    std::uint64_t shedOverloaded = 0;
    std::uint64_t quotaRejected = 0;
    std::uint64_t shutdownRejected = 0;  // frames answered Shutdown
    std::uint64_t tenantsSeen = 0;
  };
  Stats stats() const;
  JobQueue::Stats queueStats() const { return queue_->stats(); }

  /// Executed usage + admission outcomes for one tenant (zeroes for a
  /// tenant never seen).
  TenantUsage tenantUsage(TenantId tenant) const;
  /// The tenant's endpoint shard, or nullptr if never seen.
  rmi::ServerEndpoint* tenantEndpoint(TenantId tenant);

  /// Blocks until `pred(stats())` holds or `timeoutSec` real seconds
  /// pass; condition-variable based, no sleep-polling.
  bool awaitStats(const std::function<bool(const Stats&)>& pred,
                  double timeoutSec) const;
  /// Blocks until the job queue is empty and no job is executing.
  void waitIdle() { queue_->drain(); }

 private:
  /// One live client connection. Jobs keep it alive via shared_ptr: the
  /// fd closes only after the reader thread AND every queued reply for it
  /// are done, so a worker can never write to a recycled descriptor.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex writeMutex;  // interleaves worker replies and shed frames
  };

  /// A tenant's shard + ledgers. Never erased once created.
  struct Tenant {
    std::unique_ptr<rmi::ServerEndpoint> endpoint;
    TenantQuota quota;
    TenantUsage usage;
  };

  struct Bucket {
    mutable std::mutex mutex;
    std::map<TenantId, std::unique_ptr<Tenant>> tenants;
  };
  static constexpr std::size_t kBuckets = 16;

  void acceptLoop();
  void serveConnection(std::shared_ptr<Connection> conn);
  void executeJob(const std::shared_ptr<Connection>& conn,
                  net::RequestFrameHeader header,
                  std::vector<std::uint8_t> payload, Tenant* tenant);
  Bucket& bucketFor(TenantId tenant);
  const Bucket& bucketFor(TenantId tenant) const;
  /// Looks up (creating on first sight) the tenant entry.
  Tenant* ensureTenant(TenantId tenant);
  bool writeReply(const std::shared_ptr<Connection>& conn,
                  net::ResponseFrameHeader header,
                  const std::vector<std::uint8_t>& body);
  void bumpStat(std::uint64_t Stats::*field);

  EndpointFactory factory_;
  Config config_;
  LogSink* log_;
  std::unique_ptr<JobQueue> queue_;
  int listenFd_ = -1;
  std::string unixPath_;  // unlinked on stop
  std::atomic<bool> stopping_{false};
  std::array<Bucket, kBuckets> buckets_;
  std::mutex quotaMutex_;  // overrides for tenants not yet seen
  std::map<TenantId, TenantQuota> quotaOverrides_;
  mutable std::mutex mutex_;  // conns, threads, stats
  mutable std::condition_variable statsCv_;
  bool accepting_ = false;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> connThreads_;
  Stats stats_;
  std::thread acceptThread_;
};

}  // namespace vcad::ip
