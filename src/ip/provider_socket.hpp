// ProviderSocketServer: serves any rmi::ServerEndpoint over a stream
// socket, making the provider a real separate process from the client.
//
// An accept loop hands each connection to its own handler thread, which
// reads framed requests ([magic | method-id | request-id | length] +
// sealed payload), verifies the checksum, unmarshals, dispatches, and
// writes back a response frame echoing the request id and carrying the
// measured dispatch CPU time. Typed frame statuses report carrier-level
// outcomes the payload cannot (admission shed, malformed payload,
// draining); checksum failures are silently discarded like real wire
// damage — the client's deadline machinery owns that case.
//
// Dispatch is serialized across connections: ServerEndpoint implementations
// are written for the one-in-flight guarantee the loopback channel gives
// them, and the socket front end preserves it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/log.hpp"
#include "rmi/channel.hpp"

namespace vcad::ip {

class ProviderSocketServer {
 public:
  explicit ProviderSocketServer(rmi::ServerEndpoint& endpoint,
                                LogSink* log = nullptr);
  ~ProviderSocketServer();

  ProviderSocketServer(const ProviderSocketServer&) = delete;
  ProviderSocketServer& operator=(const ProviderSocketServer&) = delete;

  /// Binds a Unix-domain listener (unlinking any stale socket file first).
  bool listenUnix(const std::string& path);
  /// Binds a TCP listener on 127.0.0.1; port 0 picks an ephemeral port.
  /// Returns the bound port, or 0 on failure.
  std::uint16_t listenTcp(std::uint16_t port = 0);

  /// Starts the accept loop (after a successful listen*) and returns only
  /// once the loop is live — a readiness handshake: when start() returns,
  /// a connect() will be accepted, so "server is up" signals (a parent
  /// process printing READY, a test proceeding to connect) are never a
  /// sleep-and-hope race.
  void start();
  /// Closes the listener and every live connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Admission control: requests arriving while `cap` dispatches are
  /// already executing are shed with FrameStatus::TooManyPending instead of
  /// queueing without bound. Default: unlimited.
  void setMaxConcurrentDispatches(std::size_t cap);

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t framesServed = 0;     // Ok responses written
    std::uint64_t discardedFrames = 0;  // checksum-rejected payloads
    std::uint64_t malformedHeaders = 0;  // framing lost; connection closed
    std::uint64_t malformedPayloads = 0;  // intact frame, unparseable request
    std::uint64_t shedRequests = 0;     // TooManyPending replies
  };
  Stats stats() const;

  /// Blocks until `pred(stats())` holds or `timeoutSec` of real time
  /// passes; returns whether the predicate held. Condition-variable based —
  /// the deterministic replacement for sleep-polling the stats struct.
  bool awaitStats(const std::function<bool(const Stats&)>& pred,
                  double timeoutSec) const;

 private:
  void acceptLoop();
  void serveConnection(int fd);

  rmi::ServerEndpoint* endpoint_;
  LogSink* log_;
  int listenFd_ = -1;
  std::string unixPath_;  // unlinked on stop
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> dispatching_{0};
  std::size_t maxConcurrentDispatches_ = 0;  // 0 = unlimited
  std::mutex dispatchMutex_;  // one in-flight request per endpoint
  mutable std::mutex mutex_;  // conn fds, threads, stats
  mutable std::condition_variable statsCv_;  // pulsed on every stats change
  bool accepting_ = false;  // accept loop live (guarded by mutex_)
  std::set<int> connFds_;
  std::vector<std::thread> connThreads_;
  Stats stats_;
  std::thread acceptThread_;
};

}  // namespace vcad::ip
