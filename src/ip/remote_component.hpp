// Client side of an IP component: the provider handle (session), the
// remote component module (public part + RMI stub), the remote fault client,
// and the estimator candidates derived from a component's advertised spec.
//
// A RemoteComponent is instantiated exactly like a local module — its
// constructor just additionally cites a provider handle (the paper's
// Figure 2 pattern) and passes the width parameter to the provider, which
// expands its parametric macro server-side.
//
// Two remote modes reproduce the paper's scenarios:
//   EstimatorRemote (ER): the public part evaluates functionality locally;
//       only estimation methods (and fault characterization) run remotely.
//       Input patterns destined for power estimation are buffered locally
//       and shipped in batches; batch calls may run non-blocking on a new
//       thread so accurate-simulation latency hides behind client work.
//   FullyRemote (MR): every functional event is marshalled to the provider
//       (argument marshalling per event — the costly case of Table 2);
//       patterns buffer remotely as a side effect of evaluation.
#pragma once

#include <future>
#include <optional>

#include "core/module.hpp"
#include "estim/power_estimators.hpp"
#include "fault/fault_client.hpp"
#include "ip/provider_server.hpp"
#include "rmi/channel.hpp"

namespace vcad::ip {

enum class RemoteMode { EstimatorRemote, FullyRemote };

/// What a session must remember to survive a provider restart: the ordered
/// list of live instantiations. Recovery replays it against a fresh session
/// (re-`Instantiate`), rebinding each holder to its new instance id.
struct SessionManifest {
  struct Entry {
    std::string component;
    std::uint64_t param = 0;
    rmi::InstanceId instance = 0;  // current (post-recovery) id
  };
  std::vector<Entry> entries;
};

/// The user's live connection to one provider: channel + open session.
/// (The "JavaCADServer provider = new JavaCADServer(host)" analog.)
///
/// The handle is the client's recovery point for an unreliable channel: it
/// records a session manifest of every instantiation, and when a call comes
/// back UnknownSession (provider restarted) it reopens a session, replays
/// the manifest and retries — so a long fault campaign survives a mid-run
/// provider restart. A TransportFailure (retries exhausted) is retried with
/// the *same* idempotency key, so work the provider already completed and
/// billed is answered from its replay cache, never executed twice.
class ProviderHandle {
 public:
  /// How blocking calls travel: straight through RmiChannel::call, or
  /// submitted to the channel's completion queue and waited on — the same
  /// simulated outcome (the chaos harness holds that line bit-for-bit),
  /// exercised end-to-end through the async machinery.
  enum class CallMode { Blocking, CompletionQueue };

  explicit ProviderHandle(rmi::RmiChannel& channel,
                          CallMode mode = CallMode::Blocking);

  rmi::RmiChannel& channel() { return *channel_; }
  rmi::SessionId session() const {
    return session_.load(std::memory_order_acquire);
  }

  void setCallMode(CallMode mode) { callMode_ = mode; }
  CallMode callMode() const { return callMode_; }

  rmi::Response call(rmi::MethodId method, rmi::InstanceId instance,
                     rmi::Args args, const std::string& component = "");
  std::future<rmi::Response> callAsync(rmi::MethodId method,
                                       rmi::InstanceId instance,
                                       rmi::Args args);

  /// Fetches and deserializes the provider's catalog.
  std::vector<IpComponentSpec> catalog();

  // --- session recovery ---------------------------------------------------

  /// Blocking calls transparently recover from UnknownSession /
  /// TransportFailure (default on). Async calls never auto-recover.
  void setAutoRecover(bool on) { autoRecover_ = on; }

  /// Registers a live instantiation in the session manifest. `rebind` is
  /// invoked with the new instance id after each recovery (under the
  /// recovery lock — it must not call back into the handle); the holder must
  /// outlive the handle or call forgetInstantiation first.
  using RecoveryToken = std::size_t;
  static constexpr RecoveryToken kNoRecoveryToken =
      static_cast<RecoveryToken>(-1);
  RecoveryToken recordInstantiation(std::string component, std::uint64_t param,
                                    rmi::InstanceId instance,
                                    std::function<void(rmi::InstanceId)> rebind);
  void forgetInstantiation(RecoveryToken token);

  /// Probes the session and, if it is gone, reopens one and replays the
  /// manifest. Safe to call concurrently (one recovery wins, the rest
  /// observe it). Returns false when the provider cannot be reached or a
  /// manifest entry fails to re-instantiate.
  bool recover();

  /// Completed session recoveries (0 on an undisturbed run).
  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the live manifest (for inspection/tests).
  SessionManifest manifest() const;

 private:
  struct RecoveryEntry {
    SessionManifest::Entry entry;
    std::function<void(rmi::InstanceId)> rebind;
    bool active = false;
  };

  rmi::Response callRaw(rmi::MethodId method, rmi::SessionId session,
                        rmi::InstanceId instance, rmi::Args args,
                        const std::string& component, std::uint64_t key);
  /// Routes one request per the handle's call mode.
  rmi::Response channelCall(const rmi::Request& request);
  rmi::InstanceId currentInstance(rmi::InstanceId instance) const;

  rmi::RmiChannel* channel_;
  CallMode callMode_ = CallMode::Blocking;
  std::atomic<rmi::SessionId> session_{0};
  bool autoRecover_ = true;
  std::atomic<std::uint64_t> recoveries_{0};
  mutable std::mutex recoveryMutex_;  // guards entries_ and remap_
  std::vector<RecoveryEntry> entries_;
  std::map<rmi::InstanceId, rmi::InstanceId> remap_;  // old id -> current id
};

struct RemoteConfig {
  RemoteMode mode = RemoteMode::EstimatorRemote;
  std::size_t patternBufferCapacity = 5;  // Table 2 uses a buffer of five
  bool nonblockingEstimation = true;      // new-thread gate-level runs
  bool collectPower = true;               // drive EstimatePower per batch
  /// Where the public part ("loadable bytecode") comes from. In-process
  /// channels discover the source behind the loopback endpoint
  /// automatically; a socket channel crosses a process boundary, so the
  /// client must name its local source explicitly (the paper's download
  /// happens out of band of the RMI session). Must outlive the component.
  const PublicPartSource* publicPartSource = nullptr;
};

class RemoteComponent : public Module {
 public:
  using Config = RemoteConfig;

  /// Instantiates the component on the provider (passing `param`, e.g. the
  /// word width) and downloads the public part. Input/output connectors are
  /// bound in order; the concatenation of input port bits must match the
  /// provider netlist's primary inputs, and likewise for outputs.
  RemoteComponent(std::string name, ProviderHandle& provider,
                  const std::string& componentName, std::uint64_t param,
                  std::vector<std::pair<std::string, Connector*>> inputs,
                  std::vector<std::pair<std::string, Connector*>> outputs,
                  Config config = {}, const rmi::Sandbox* sandbox = nullptr);
  ~RemoteComponent() override;

  /// Input events arriving within one simulation instant are coalesced: the
  /// component defers its (possibly remote) evaluation with a zero-delay
  /// self token, so simultaneous operand updates trigger exactly one
  /// evaluation — one pattern, one RMI call.
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;
  void processSelfEvent(const SelfToken& token, SimContext& ctx) override;

  /// Flushes the pending pattern buffer and harvests outstanding
  /// non-blocking estimates; returns the weighted-average remote power
  /// estimate collected so far (mW), or nullopt when none was gathered.
  std::optional<double> finishPowerEstimation(const SimContext& ctx);

  rmi::InstanceId instanceId() const {
    return instance_.load(std::memory_order_acquire);
  }
  RemoteMode mode() const { return config_.mode; }
  const Config& config() const { return config_; }
  ProviderHandle& provider() { return *provider_; }

  /// Remote-call failures observed during simulation (the harness checks
  /// this stays zero).
  std::uint64_t remoteErrors() const { return remoteErrors_; }

 private:
  struct State : ModuleState {
    bool evalPending = false;
    std::unique_ptr<estim::PatternBuffer> buffer;
    double powerWeightedSum = 0.0;
    double powerWeight = 0.0;
    std::vector<std::future<rmi::Response>> pending;
  };

  Word gatherInputs(const SimContext& ctx) const;
  void emitOutputs(SimContext& ctx, const Word& outs);
  void recordPattern(State& st, const Word& inputs);
  void harvest(State& st, rmi::Response resp);

  ProviderHandle* provider_;
  Config config_;
  /// Atomic because session recovery rebinds it from whichever thread hit
  /// the dead session while non-blocking estimation threads may be reading.
  std::atomic<rmi::InstanceId> instance_{0};
  ProviderHandle::RecoveryToken recoveryToken_ =
      ProviderHandle::kNoRecoveryToken;
  PublicPart publicPart_;
  rmi::Sandbox defaultSandbox_;
  const rmi::Sandbox* sandbox_;
  int inWidth_ = 0;
  int outWidth_ = 0;
  std::vector<Port*> inPorts_;
  std::vector<Port*> outPorts_;
  std::atomic<std::uint64_t> remoteErrors_{0};
};

/// FaultClient implementation backed by the provider: the user obtains the
/// symbolic fault list and per-pattern detection tables over RMI, never the
/// netlist.
class RemoteFaultClient final : public fault::FaultClient {
 public:
  explicit RemoteFaultClient(RemoteComponent& component);

  Module& module() override { return component_; }
  std::vector<std::string> faultList() override;
  fault::DetectionTable detectionTable(const Word& inputs) override;

  /// Batched fetch: ships the whole buffer of input configurations in one
  /// GetDetectionTables request — one message pair on the channel instead of
  /// one per configuration.
  std::vector<fault::DetectionTable> detectionTables(
      const std::vector<Word>& inputs) override;

 private:
  RemoteComponent& component_;
};

/// Sequential fault-simulation client backed by a provider: instantiates
/// the sequential component remotely and drives the fault-free machine and
/// per-fault shadow machines over RMI — the sequential extension of virtual
/// fault simulation. Only cycle inputs and outputs cross the channel.
class RemoteSeqFaultClient final : public fault::SeqFaultClient {
 public:
  RemoteSeqFaultClient(ProviderHandle& provider,
                       const std::string& componentName, std::uint64_t param);
  ~RemoteSeqFaultClient() override;

  std::vector<std::string> faultList() override;
  void resetGood() override;
  Word stepGood(const Word& inputs) override;
  void resetFaulty(const std::string& symbol) override;
  Word stepFaulty(const std::string& symbol, const Word& inputs) override;

  rmi::InstanceId instanceId() const {
    return instance_.load(std::memory_order_acquire);
  }

 private:
  void reset(const std::string& symbol);
  Word step(const std::string& symbol, const Word& inputs);

  ProviderHandle* provider_;
  std::atomic<rmi::InstanceId> instance_{0};
  ProviderHandle::RecoveryToken recoveryToken_ =
      ProviderHandle::kNoRecoveryToken;
};

/// Estimator that forwards to the provider's dynamic power model, shipping
/// the context's pattern history as the batch.
class RemotePowerEstimator final : public Estimator {
 public:
  RemotePowerEstimator(RemoteComponent& component, double costPerPatternCents);

  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

 private:
  RemoteComponent& component_;
};

/// Builds the candidate estimator set a user can register on a module from
/// the provider's advertised spec: constant and linear-regression power
/// models when published (Static), and the remote gate-level estimator when
/// the provider offers Dynamic power estimation.
void attachSpecEstimators(Module& module, const IpComponentSpec& spec,
                          RemoteComponent* remote);

}  // namespace vcad::ip
