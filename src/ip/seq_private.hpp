// Server-side private part of a *sequential* IP component: the machine's
// netlist plus the fault-free instance and per-fault shadow machines that
// back the sequential virtual-fault-simulation protocol.
#pragma once

#include <mutex>

#include "fault/seq_fault.hpp"
#include "gate/seq_netlist.hpp"

namespace vcad::ip {

class SeqPrivateComponent {
 public:
  explicit SeqPrivateComponent(gate::SeqNetlist seq);

  int inputBits() const { return seq_.inputBits(); }
  int outputBits() const { return seq_.outputBits(); }

  std::vector<std::string> faultList();

  /// Empty symbol = the fault-free machine.
  void reset(const std::string& symbol);
  Word step(const std::string& symbol, const Word& inputs);

  std::size_t stepCount() const;

 private:
  gate::SeqNetlist seq_;
  fault::LocalSeqFaultBlock impl_;
  mutable std::mutex mutex_;
  std::size_t steps_ = 0;
};

}  // namespace vcad::ip
