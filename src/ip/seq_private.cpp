#include "ip/seq_private.hpp"

namespace vcad::ip {

SeqPrivateComponent::SeqPrivateComponent(gate::SeqNetlist seq)
    : seq_(std::move(seq)), impl_(seq_) {}

std::vector<std::string> SeqPrivateComponent::faultList() {
  std::lock_guard<std::mutex> lock(mutex_);
  return impl_.faultList();
}

void SeqPrivateComponent::reset(const std::string& symbol) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (symbol.empty()) {
    impl_.resetGood();
  } else {
    impl_.resetFaulty(symbol);
  }
}

Word SeqPrivateComponent::step(const std::string& symbol, const Word& inputs) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++steps_;
  if (symbol.empty()) return impl_.stepGood(inputs);
  return impl_.stepFaulty(symbol, inputs);
}

std::size_t SeqPrivateComponent::stepCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steps_;
}

}  // namespace vcad::ip
