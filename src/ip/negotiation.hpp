// Interactive estimator negotiation — the paper's declared future
// development ("flexible simulation setup with interactive client-server
// negotiation of simulation parameters").
//
// During setup the user and provider negotiate which model will be used for
// each parameter: the client states constraints (maximum acceptable error,
// maximum fee), the provider answers with the best offer satisfying them,
// or — when the budget is too tight for the requested accuracy — with a
// *counter-offer* (the cheapest estimator meeting the accuracy bound) the
// client may accept or decline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/estimation.hpp"
#include "ip/catalog.hpp"

namespace vcad::ip {

class ProviderHandle;

/// One estimator the provider is willing to run (or release) for a
/// parameter of a component.
struct EstimatorOffer {
  std::string name;
  double errorPct = 0.0;
  double costPerUseCents = 0.0;
  bool remote = false;

  void serialize(net::ByteBuffer& buf) const;
  static EstimatorOffer deserialize(net::ByteBuffer& buf);
};

/// The provider's offer book for a parameter, derived from the component's
/// advertised model levels (constant/regression locally at Static level,
/// gate-level remotely at Dynamic level).
std::vector<EstimatorOffer> offersOf(const IpComponentSpec& spec,
                                     ParamKind kind);

/// Outcome of one negotiation round.
struct NegotiationResult {
  enum class Outcome {
    Accepted,      // an offer satisfies both constraints
    CounterOffer,  // accuracy is achievable, but above the fee budget
    Unavailable,   // no model meets the accuracy bound at any price
  };
  Outcome outcome = Outcome::Unavailable;
  EstimatorOffer offer;  // the accepted offer or the counter-offer
};

/// Client side: one negotiation round with the provider over RMI.
NegotiationResult negotiateEstimator(ProviderHandle& provider,
                                     std::uint64_t instance, ParamKind kind,
                                     double maxCostCents, double maxErrorPct);

/// Server side: pure offer resolution (used by ProviderServer::dispatch and
/// directly testable).
NegotiationResult resolveNegotiation(const IpComponentSpec& spec,
                                     ParamKind kind, double maxCostCents,
                                     double maxErrorPct);

}  // namespace vcad::ip
