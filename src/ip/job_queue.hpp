// JobQueue: a prioritized, bounded job queue with a fixed worker pool —
// the layer between a multi-tenant server's socket front end and
// ProviderServer dispatch (the rippled JobQueue idiom: per-method job
// types map to priority lanes, each lane has a depth bound, and admission
// is a typed verdict rather than unbounded queueing).
//
// Semantics:
//   - Four lanes (net::JobPriority). Workers always drain the most urgent
//     non-empty lane first, FIFO within a lane. Session control therefore
//     gets through even when bulk work has the queue saturated.
//   - add() is the admission decision, made synchronously on the caller's
//     (connection reader) thread: Overloaded when the total queued depth
//     is at the global bound, TooManyPending when the request's own lane
//     is at its per-lane bound, Stopped after stop(). The caller surfaces
//     the verdict to the client as the matching FrameStatus — the job
//     function is only ever run on Ok.
//   - stop() is graceful: already-admitted jobs still execute, then the
//     workers exit. drain() waits for the queue to empty without stopping.
//
// Queue-depth, shed, and execution counters mirror into the global
// obs::Registry (mt.queue.*) alongside the struct-level Stats.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace vcad::ip {

class JobQueue {
 public:
  using Job = std::function<void()>;

  struct Config {
    std::size_t workers = 4;
    /// Global bound on queued (not yet executing) jobs across all lanes.
    /// 0 = unlimited.
    std::size_t maxQueueDepth = 256;
    /// Per-lane bounds; 0 = no per-lane bound beyond the global one.
    std::array<std::size_t, net::kJobPriorityCount> perPriorityDepth{};
  };

  /// The typed admission verdict — maps 1:1 onto FrameStatus codes.
  enum class Admit {
    Ok,              // queued; the job will run
    TooManyPending,  // this priority lane is at capacity
    Overloaded,      // the whole queue is at capacity
    Stopped,         // the queue is draining for shutdown
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t executed = 0;
    std::uint64_t shedTooManyPending = 0;
    std::uint64_t shedOverloaded = 0;
    std::uint64_t rejectedStopped = 0;
    std::size_t peakDepth = 0;  // max queued depth ever observed
    std::array<std::uint64_t, net::kJobPriorityCount> executedByPriority{};
  };

  explicit JobQueue(const Config& config);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admission + enqueue. The job runs on a worker thread iff Admit::Ok.
  Admit add(net::JobPriority priority, Job job);

  /// Blocks until no job is queued or executing. Does not stop the queue.
  void drain();

  /// Graceful shutdown: admitted jobs finish, workers join. Idempotent.
  void stop();

  Stats stats() const;
  std::size_t depth() const;
  std::size_t workers() const { return config_.workers; }

 private:
  void workerLoop();

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable workCv_;  // wakes workers
  std::condition_variable idleCv_;  // wakes drain()/stop() waiters
  std::array<std::deque<Job>, net::kJobPriorityCount> lanes_;
  std::size_t depth_ = 0;    // total queued across lanes
  std::size_t running_ = 0;  // jobs currently executing
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

std::string toString(JobQueue::Admit verdict);

}  // namespace vcad::ip
