#include "ip/job_queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace vcad::ip {

namespace {

struct QueueMetrics {
  obs::Registry::MetricId depth, enqueued, executed, shedTooManyPending,
      shedOverloaded;

  static const QueueMetrics& get() {
    static const QueueMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      QueueMetrics ids;
      ids.depth = r.gauge("mt.queue.depth");
      ids.enqueued = r.counter("mt.queue.enqueued");
      ids.executed = r.counter("mt.queue.executed");
      ids.shedTooManyPending = r.counter("mt.queue.shedTooManyPending");
      ids.shedOverloaded = r.counter("mt.queue.shedOverloaded");
      return ids;
    }();
    return m;
  }
};

}  // namespace

std::string toString(JobQueue::Admit verdict) {
  switch (verdict) {
    case JobQueue::Admit::Ok:
      return "Ok";
    case JobQueue::Admit::TooManyPending:
      return "TooManyPending";
    case JobQueue::Admit::Overloaded:
      return "Overloaded";
    case JobQueue::Admit::Stopped:
      return "Stopped";
  }
  return "?";
}

JobQueue::JobQueue(const Config& config) : config_(config) {
  config_.workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

JobQueue::~JobQueue() { stop(); }

JobQueue::Admit JobQueue::add(net::JobPriority priority, Job job) {
  const std::size_t lane = static_cast<std::size_t>(priority);
  obs::Registry& reg = obs::Registry::global();
  const QueueMetrics& ids = QueueMetrics::get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      ++stats_.rejectedStopped;
      return Admit::Stopped;
    }
    // Global bound first: a saturated server is Overloaded regardless of
    // which lane the request wanted.
    if (config_.maxQueueDepth != 0 && depth_ >= config_.maxQueueDepth) {
      ++stats_.shedOverloaded;
      reg.add(ids.shedOverloaded);
      return Admit::Overloaded;
    }
    const std::size_t laneBound = config_.perPriorityDepth[lane];
    if (laneBound != 0 && lanes_[lane].size() >= laneBound) {
      ++stats_.shedTooManyPending;
      reg.add(ids.shedTooManyPending);
      return Admit::TooManyPending;
    }
    lanes_[lane].push_back(std::move(job));
    ++depth_;
    ++stats_.enqueued;
    stats_.peakDepth = std::max(stats_.peakDepth, depth_);
    reg.add(ids.enqueued);
    reg.maxGauge(ids.depth, static_cast<std::int64_t>(depth_));
  }
  workCv_.notify_one();
  return Admit::Ok;
}

void JobQueue::workerLoop() {
  for (;;) {
    Job job;
    std::size_t lane = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [this] { return depth_ != 0 || stop_; });
      if (depth_ == 0) return;  // stop_ and nothing admitted: done
      // Most urgent non-empty lane, FIFO within it.
      while (lane < net::kJobPriorityCount && lanes_[lane].empty()) ++lane;
      job = std::move(lanes_[lane].front());
      lanes_[lane].pop_front();
      --depth_;
      ++running_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      ++stats_.executed;
      ++stats_.executedByPriority[lane];
    }
    obs::Registry::global().add(QueueMetrics::get().executed);
    idleCv_.notify_all();
  }
}

void JobQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return depth_ == 0 && running_ == 0; });
}

void JobQueue::stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
    workers.swap(workers_);
  }
  workCv_.notify_all();
  for (std::thread& t : workers) t.join();
  idleCv_.notify_all();
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

}  // namespace vcad::ip
