#include "ip/remote_component.hpp"

#include <stdexcept>

#include "core/connector.hpp"

namespace vcad::ip {

using rmi::Args;
using rmi::MethodId;
using rmi::Request;
using rmi::Response;

// --- ProviderHandle ----------------------------------------------------

ProviderHandle::ProviderHandle(rmi::RmiChannel& channel, CallMode mode)
    : channel_(&channel), callMode_(mode) {
  Request open;
  open.method = MethodId::OpenSession;
  Response resp = channelCall(open);
  if (!resp.ok()) {
    throw std::runtime_error("ProviderHandle: OpenSession failed: " +
                             resp.error);
  }
  session_ = resp.payload.readU64();
}

Response ProviderHandle::channelCall(const Request& request) {
  if (callMode_ == CallMode::CompletionQueue) {
    // Submit-and-wait through the completion queue: one call in flight, so
    // the deterministic accounting order matches the blocking path exactly
    // — the bit-identity the chaos harness asserts between the two modes.
    return channel_->wait(channel_->submit(request));
  }
  return channel_->call(request);
}

Response ProviderHandle::callRaw(MethodId method, rmi::SessionId session,
                                 rmi::InstanceId instance, Args args,
                                 const std::string& component,
                                 std::uint64_t key) {
  Request req;
  req.session = session;
  req.instance = instance;
  req.method = method;
  req.component = component;
  req.args = std::move(args);
  req.idempotencyKey = key;
  return channelCall(req);
}

rmi::InstanceId ProviderHandle::currentInstance(rmi::InstanceId instance) const {
  std::lock_guard<std::mutex> lock(recoveryMutex_);
  // Follow the remap chain: each recovery maps the then-current id to the
  // fresh one, and the provider never re-issues ids, so chains are acyclic.
  auto it = remap_.find(instance);
  while (it != remap_.end()) {
    instance = it->second;
    it = remap_.find(instance);
  }
  return instance;
}

Response ProviderHandle::call(MethodId method, rmi::InstanceId instance,
                              Args args, const std::string& component) {
  // One idempotency key for the whole logical call: every re-issue below is
  // a retransmission the provider's replay cache recognizes, so a call that
  // executed — and billed — before its channel was declared dead is answered
  // from the cache, never run twice.
  const std::uint64_t key = channel_->makeKey();
  constexpr int kRecoveryRounds = 4;
  for (int round = 0;; ++round) {
    Response resp = callRaw(method, session(), currentInstance(instance),
                            args, component, key);
    if (!autoRecover_ || round >= kRecoveryRounds) return resp;
    if (resp.status == rmi::Status::TransportFailure) {
      // Retries exhausted. Re-issue with the same key; the channel resumes
      // the key's attempt numbering, so the deterministic fault schedule
      // advances instead of replaying the attempts that just failed.
      continue;
    }
    if (resp.status == rmi::Status::UnknownSession) {
      // Provider restarted underneath us: reopen a session, replay the
      // manifest, then retry this call against the recovered state.
      if (!recover()) return resp;
      continue;
    }
    return resp;
  }
}

std::future<Response> ProviderHandle::callAsync(MethodId method,
                                                rmi::InstanceId instance,
                                                Args args) {
  Request req;
  req.session = session();
  req.instance = currentInstance(instance);
  req.method = method;
  req.args = std::move(args);
  return channel_->callAsync(std::move(req));
}

ProviderHandle::RecoveryToken ProviderHandle::recordInstantiation(
    std::string component, std::uint64_t param, rmi::InstanceId instance,
    std::function<void(rmi::InstanceId)> rebind) {
  std::lock_guard<std::mutex> lock(recoveryMutex_);
  entries_.push_back(
      RecoveryEntry{SessionManifest::Entry{std::move(component), param, instance},
                    std::move(rebind), true});
  return entries_.size() - 1;
}

void ProviderHandle::forgetInstantiation(RecoveryToken token) {
  std::lock_guard<std::mutex> lock(recoveryMutex_);
  if (token < entries_.size()) {
    entries_[token].active = false;
    entries_[token].rebind = nullptr;
  }
}

SessionManifest ProviderHandle::manifest() const {
  std::lock_guard<std::mutex> lock(recoveryMutex_);
  SessionManifest m;
  for (const RecoveryEntry& e : entries_) {
    if (e.active) m.entries.push_back(e.entry);
  }
  return m;
}

bool ProviderHandle::recover() {
  std::lock_guard<std::mutex> lock(recoveryMutex_);
  // Probe first: a concurrent caller may have finished recovery while this
  // thread waited on the lock, and its fresh session must not be torn down.
  {
    Request probe;
    probe.method = MethodId::GetCatalog;
    probe.session = session();
    probe.idempotencyKey = channel_->makeKey();
    const Response alive = channelCall(probe);
    if (alive.ok()) return true;
    if (alive.status != rmi::Status::UnknownSession) return false;
  }

  Request open;
  open.method = MethodId::OpenSession;
  open.idempotencyKey = channel_->makeKey();
  Response opened = channelCall(open);
  if (!opened.ok()) return false;
  const rmi::SessionId fresh = opened.payload.readU64();

  // Replay the manifest in instantiation order, rebinding each holder. The
  // replayed Instantiate calls bill like the originals did — a restart loses
  // the provider's ledger, not the licensing terms.
  for (RecoveryEntry& e : entries_) {
    if (!e.active) continue;
    Args args;
    args.addU64(e.entry.param);
    Response resp = callRaw(MethodId::Instantiate, fresh, 0, std::move(args),
                            e.entry.component, channel_->makeKey());
    if (!resp.ok()) return false;
    const rmi::InstanceId fresherId = resp.payload.readU64();
    if (fresherId != e.entry.instance) {
      remap_[e.entry.instance] = fresherId;
    }
    e.entry.instance = fresherId;
    if (e.rebind) e.rebind(fresherId);
  }
  session_.store(fresh, std::memory_order_release);
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<IpComponentSpec> ProviderHandle::catalog() {
  Response resp = call(MethodId::GetCatalog, 0, Args{});
  if (!resp.ok()) {
    throw std::runtime_error("GetCatalog failed: " + resp.error);
  }
  const std::uint32_t n = resp.payload.readU32();
  std::vector<IpComponentSpec> specs;
  specs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    specs.push_back(IpComponentSpec::deserialize(resp.payload));
  }
  return specs;
}

// --- RemoteComponent ---------------------------------------------------

RemoteComponent::RemoteComponent(
    std::string name, ProviderHandle& provider,
    const std::string& componentName, std::uint64_t param,
    std::vector<std::pair<std::string, Connector*>> inputs,
    std::vector<std::pair<std::string, Connector*>> outputs, Config config,
    const rmi::Sandbox* sandbox)
    : Module(std::move(name)),
      provider_(&provider),
      config_(config),
      sandbox_(sandbox != nullptr ? sandbox : &defaultSandbox_) {
  for (auto& [portName, conn] : inputs) {
    if (conn == nullptr) throw std::invalid_argument("null input connector");
    inPorts_.push_back(&addInput(portName, *conn));
    inWidth_ += conn->width();
  }
  for (auto& [portName, conn] : outputs) {
    if (conn == nullptr) throw std::invalid_argument("null output connector");
    outPorts_.push_back(&addOutput(portName, *conn));
    outWidth_ += conn->width();
  }

  // Instantiate the parametric macro on the provider's side.
  Args args;
  args.addU64(param);
  Response resp = provider_->call(MethodId::Instantiate, 0, std::move(args),
                                  componentName);
  if (!resp.ok()) {
    throw std::runtime_error("RemoteComponent '" + this->name() +
                             "': instantiation failed: " + resp.error);
  }
  instance_ = resp.payload.readU64();
  recoveryToken_ = provider_->recordInstantiation(
      componentName, param, instance_,
      [this](rmi::InstanceId fresh) {
        instance_.store(fresh, std::memory_order_release);
      });

  // Download the public part (the loadable "bytecode"). An in-process
  // channel finds the source behind its loopback endpoint; across a socket
  // the client names its own source in the config.
  const PublicPartSource* src = config_.publicPartSource;
  if (src == nullptr) {
    src = dynamic_cast<PublicPartSource*>(
        provider.channel().endpointOrNull());
  }
  if (src != nullptr) {
    publicPart_ = src->downloadPublicPart(componentName, param);
  }
  if (config_.mode == RemoteMode::EstimatorRemote &&
      !publicPart_.hasFunctional()) {
    throw std::runtime_error(
        "RemoteComponent '" + this->name() +
        "': provider releases no local functional model; use FullyRemote");
  }
}

RemoteComponent::~RemoteComponent() {
  provider_->forgetInstantiation(recoveryToken_);
}

Word RemoteComponent::gatherInputs(const SimContext& ctx) const {
  Word w(inWidth_);
  int bit = 0;
  for (Port* p : inPorts_) {
    const Word v = readInput(ctx, *p);
    for (int i = 0; i < v.width(); ++i) w.setBit(bit++, v.bit(i));
  }
  return w;
}

void RemoteComponent::emitOutputs(SimContext& ctx, const Word& outs) {
  int bit = 0;
  for (Port* p : outPorts_) {
    emit(ctx, *p, outs.slice(bit, p->width()));
    bit += p->width();
  }
}

void RemoteComponent::recordPattern(State& st, const Word& inputs) {
  if (!st.buffer) {
    st.buffer =
        std::make_unique<estim::PatternBuffer>(config_.patternBufferCapacity);
  }
  if (!st.buffer->push(inputs)) return;
  // Buffer full: ship the batch for accurate power estimation.
  Args args;
  args.addWordVector(st.buffer->flush());
  if (config_.nonblockingEstimation) {
    st.pending.push_back(
        provider_->callAsync(MethodId::EstimatePower, instance_,
                             std::move(args)));
  } else {
    harvest(st, provider_->call(MethodId::EstimatePower, instance_,
                                std::move(args)));
  }
}

void RemoteComponent::harvest(State& st, Response resp) {
  if (!resp.ok()) {
    ++remoteErrors_;
    return;
  }
  const double mw = resp.payload.readDouble();
  const double billed = static_cast<double>(resp.payload.readU64());
  const double weight = billed > 1 ? billed - 1 : 0;  // transitions
  st.powerWeightedSum += mw * weight;
  st.powerWeight += weight;
}

void RemoteComponent::processInputEvent(const SignalToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  if (st.evalPending) return;
  st.evalPending = true;
  selfSchedule(ctx, 0);
}

void RemoteComponent::processSelfEvent(const SelfToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  st.evalPending = false;
  const Word inputs = gatherInputs(ctx);

  if (config_.mode == RemoteMode::FullyRemote) {
    // Argument marshalling at each event handling: ship the inputs, run the
    // accurate model remotely, unmarshal the outputs. The provider records
    // the pattern history (remote buffering).
    Args args;
    args.addWord(inputs);
    Response resp =
        provider_->call(MethodId::EvalFunction, instance_, std::move(args));
    if (!resp.ok()) {
      ++remoteErrors_;
      emitOutputs(ctx, Word::allX(outWidth_));
      return;
    }
    emitOutputs(ctx, resp.payload.readWord());
    return;
  }

  // EstimatorRemote: public part computes functionality locally.
  if (config_.collectPower) recordPattern(st, inputs);
  if (!inputs.isFullyKnown()) {
    emitOutputs(ctx, Word::allX(outWidth_));
    return;
  }
  emitOutputs(ctx, publicPart_.functional(inputs, *sandbox_));
}

std::optional<double> RemoteComponent::finishPowerEstimation(
    const SimContext& ctx) {
  State& st = state<State>(ctx);
  if (config_.mode == RemoteMode::FullyRemote) {
    // Patterns were buffered remotely by eval(); one final call estimates
    // over the recorded history.
    Args args;
    args.addWordVector({});
    Response resp =
        provider_->call(MethodId::EstimatePower, instance_, std::move(args));
    if (!resp.ok()) {
      ++remoteErrors_;
      return std::nullopt;
    }
    return resp.payload.readDouble();
  }
  if (st.buffer && !st.buffer->empty()) {
    Args args;
    args.addWordVector(st.buffer->flush());
    harvest(st, provider_->call(MethodId::EstimatePower, instance_,
                                std::move(args)));
  }
  for (auto& f : st.pending) harvest(st, f.get());
  st.pending.clear();
  if (st.powerWeight <= 0) return std::nullopt;
  return st.powerWeightedSum / st.powerWeight;
}

// --- RemoteFaultClient -------------------------------------------------

RemoteFaultClient::RemoteFaultClient(RemoteComponent& component)
    : component_(component) {}

std::vector<std::string> RemoteFaultClient::faultList() {
  Response resp = component_.provider().call(
      MethodId::GetFaultList, component_.instanceId(), Args{});
  if (!resp.ok()) {
    throw std::runtime_error("GetFaultList failed: " + resp.error);
  }
  const std::uint32_t n = resp.payload.readU32();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(resp.payload.readString());
  return out;
}

fault::DetectionTable RemoteFaultClient::detectionTable(const Word& inputs) {
  Args args;
  args.addWord(inputs);
  Response resp = component_.provider().call(
      MethodId::GetDetectionTable, component_.instanceId(), std::move(args));
  if (!resp.ok()) {
    throw std::runtime_error("GetDetectionTable failed: " + resp.error);
  }
  return fault::DetectionTable::deserialize(resp.payload);
}

std::vector<fault::DetectionTable> RemoteFaultClient::detectionTables(
    const std::vector<Word>& inputs) {
  if (inputs.empty()) return {};
  Args args;
  args.addWordVector(inputs);
  Response resp = component_.provider().call(
      MethodId::GetDetectionTables, component_.instanceId(), std::move(args));
  if (!resp.ok()) {
    throw std::runtime_error("GetDetectionTables failed: " + resp.error);
  }
  const std::uint32_t n = resp.payload.readU32();
  if (n != inputs.size()) {
    throw std::runtime_error(
        "GetDetectionTables: provider returned " + std::to_string(n) +
        " tables for " + std::to_string(inputs.size()) + " configurations");
  }
  std::vector<fault::DetectionTable> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(fault::DetectionTable::deserialize(resp.payload));
  }
  return out;
}

// --- RemoteSeqFaultClient ------------------------------------------------

RemoteSeqFaultClient::RemoteSeqFaultClient(ProviderHandle& provider,
                                           const std::string& componentName,
                                           std::uint64_t param)
    : provider_(&provider) {
  Args args;
  args.addU64(param);
  Response resp = provider_->call(MethodId::Instantiate, 0, std::move(args),
                                  componentName);
  if (!resp.ok()) {
    throw std::runtime_error("RemoteSeqFaultClient: instantiation failed: " +
                             resp.error);
  }
  instance_ = resp.payload.readU64();
  // Recovery restores the instantiation, not the shadow machines' state: a
  // sequential campaign interrupted by a restart must re-reset its machines.
  recoveryToken_ = provider_->recordInstantiation(
      componentName, param, instance_,
      [this](rmi::InstanceId fresh) {
        instance_.store(fresh, std::memory_order_release);
      });
}

RemoteSeqFaultClient::~RemoteSeqFaultClient() {
  provider_->forgetInstantiation(recoveryToken_);
}

std::vector<std::string> RemoteSeqFaultClient::faultList() {
  Response resp = provider_->call(MethodId::GetFaultList, instance_, Args{});
  if (!resp.ok()) {
    throw std::runtime_error("GetFaultList failed: " + resp.error);
  }
  const std::uint32_t n = resp.payload.readU32();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(resp.payload.readString());
  return out;
}

void RemoteSeqFaultClient::reset(const std::string& symbol) {
  Args args;
  args.addString(symbol);
  Response resp = provider_->call(MethodId::SeqReset, instance_, std::move(args));
  if (!resp.ok()) {
    throw std::runtime_error("SeqReset failed: " + resp.error);
  }
}

Word RemoteSeqFaultClient::step(const std::string& symbol, const Word& inputs) {
  Args args;
  args.addString(symbol);
  args.addWord(inputs);
  Response resp = provider_->call(MethodId::SeqStep, instance_, std::move(args));
  if (!resp.ok()) {
    throw std::runtime_error("SeqStep failed: " + resp.error);
  }
  return resp.payload.readWord();
}

void RemoteSeqFaultClient::resetGood() { reset(""); }

Word RemoteSeqFaultClient::stepGood(const Word& inputs) {
  return step("", inputs);
}

void RemoteSeqFaultClient::resetFaulty(const std::string& symbol) {
  reset(symbol);
}

Word RemoteSeqFaultClient::stepFaulty(const std::string& symbol,
                                      const Word& inputs) {
  return step(symbol, inputs);
}

// --- RemotePowerEstimator ------------------------------------------------

RemotePowerEstimator::RemotePowerEstimator(RemoteComponent& component,
                                           double costPerPatternCents)
    : Estimator(EstimatorInfo{"gate-level-toggle", 10.0, costPerPatternCents,
                              1e-4, true, true}),
      component_(component) {}

std::unique_ptr<ParamValue> RemotePowerEstimator::estimate(
    const EstimationContext& ctx) {
  if (ctx.patternHistory == nullptr || ctx.patternHistory->size() < 2) {
    return std::make_unique<NullValue>();
  }
  Args args;
  args.addWordVector(*ctx.patternHistory);
  Response resp = component_.provider().call(
      MethodId::EstimatePower, component_.instanceId(), std::move(args));
  if (!resp.ok()) return std::make_unique<NullValue>();
  return std::make_unique<ScalarValue>(resp.payload.readDouble(), "mW");
}

// --- attachSpecEstimators --------------------------------------------------

void attachSpecEstimators(Module& module, const IpComponentSpec& spec,
                          RemoteComponent* remote) {
  if (spec.power >= ModelLevel::Static) {
    module.addEstimator(ParamKind::AvgPower,
                        std::make_shared<estim::ConstantEstimator>(
                            "constant", spec.staticPowerMw, "mW", 25.0));
    if (spec.hasLinearPowerModel) {
      module.addEstimator(
          ParamKind::AvgPower,
          std::make_shared<estim::LinearRegressionPowerEstimator>(
              spec.linearPower));
    }
  }
  if (spec.power >= ModelLevel::Dynamic && remote != nullptr) {
    module.addEstimator(ParamKind::AvgPower,
                        std::make_shared<RemotePowerEstimator>(
                            *remote, spec.fees.perPowerPatternCents));
  }
  if (spec.area >= ModelLevel::Static) {
    module.addEstimator(ParamKind::Area,
                        std::make_shared<estim::ConstantEstimator>(
                            "datasheet-area", spec.staticAreaUm2, "um2", 15.0));
  }
  if (spec.timing >= ModelLevel::Static) {
    module.addEstimator(ParamKind::Delay,
                        std::make_shared<estim::ConstantEstimator>(
                            "datasheet-timing", spec.staticTimingNs, "ns", 20.0));
  }
}

}  // namespace vcad::ip
