#include "ip/tenant.hpp"

namespace vcad::ip {

bool withinQuota(const TenantQuota& quota, const TenantUsage& usage) {
  if (quota.maxFeeCents >= 0.0 && usage.feesCents >= quota.maxFeeCents) {
    return false;
  }
  if (quota.maxBilledCalls != 0 &&
      usage.billedCalls >= quota.maxBilledCalls) {
    return false;
  }
  return true;
}

std::string describe(const TenantQuota& quota) {
  if (quota.unlimited()) return "unlimited";
  std::string out;
  if (quota.maxFeeCents >= 0.0) {
    out += "maxFeeCents=" + std::to_string(quota.maxFeeCents);
  }
  if (quota.maxBilledCalls != 0) {
    if (!out.empty()) out += " ";
    out += "maxBilledCalls=" + std::to_string(quota.maxBilledCalls);
  }
  return out;
}

}  // namespace vcad::ip
