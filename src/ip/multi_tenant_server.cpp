#include "ip/multi_tenant_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/faulty_transport.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::ip {

namespace {

bool readFully(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool writeFully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w > 0) {
      put += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

struct MtMetrics {
  obs::Registry::MetricId connections, framesServed, quotaRejected,
      shutdownRejected, tenantsSeen;

  static const MtMetrics& get() {
    static const MtMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      MtMetrics ids;
      ids.connections = r.counter("mt.connections");
      ids.framesServed = r.counter("mt.framesServed");
      ids.quotaRejected = r.counter("mt.quotaRejected");
      ids.shutdownRejected = r.counter("mt.shutdownRejected");
      ids.tenantsSeen = r.gauge("mt.tenantsSeen");
      return ids;
    }();
    return m;
  }
};

}  // namespace

MultiTenantProviderServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

MultiTenantProviderServer::MultiTenantProviderServer(EndpointFactory factory,
                                                     Config config,
                                                     LogSink* log)
    : factory_(std::move(factory)),
      config_(config),
      log_(log),
      queue_(std::make_unique<JobQueue>(config.queue)) {}

MultiTenantProviderServer::~MultiTenantProviderServer() { stop(); }

bool MultiTenantProviderServer::listenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, config_.listenBacklog) != 0) {
    ::close(fd);
    return false;
  }
  listenFd_ = fd;
  unixPath_ = path;
  return true;
}

std::uint16_t MultiTenantProviderServer::listenTcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, config_.listenBacklog) != 0) {
    ::close(fd);
    return 0;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return 0;
  }
  listenFd_ = fd;
  return ntohs(bound.sin_port);
}

void MultiTenantProviderServer::start() {
  if (listenFd_ < 0 || acceptThread_.joinable()) return;
  acceptThread_ = std::thread([this] { acceptLoop(); });
  // Readiness handshake, same contract as ProviderSocketServer::start().
  std::unique_lock<std::mutex> lock(mutex_);
  statsCv_.wait(lock, [this] { return accepting_ || stopping_.load(); });
}

void MultiTenantProviderServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptThread_.joinable()) acceptThread_.join();
    return;
  }
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
    statsCv_.notify_all();  // releases a start() stuck before accepting_
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(connThreads_);
  }
  for (std::thread& t : threads) t.join();
  // Readers are gone, so no new jobs can be admitted; finish the admitted
  // ones (their replies go to already-shut-down sockets and fail silently)
  // and join the workers.
  queue_->stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns_.clear();  // last references (queue drained) — fds close here
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!unixPath_.empty()) ::unlink(unixPath_.c_str());
}

void MultiTenantProviderServer::setTenantQuota(TenantId tenant,
                                               TenantQuota quota) {
  {
    std::lock_guard<std::mutex> lock(quotaMutex_);
    quotaOverrides_[tenant] = quota;
  }
  // Already-seen tenant: update the live entry too.
  Bucket& bucket = bucketFor(tenant);
  std::lock_guard<std::mutex> lock(bucket.mutex);
  auto it = bucket.tenants.find(tenant);
  if (it != bucket.tenants.end()) it->second->quota = quota;
}

MultiTenantProviderServer::Stats MultiTenantProviderServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TenantUsage MultiTenantProviderServer::tenantUsage(TenantId tenant) const {
  const Bucket& bucket = bucketFor(tenant);
  std::lock_guard<std::mutex> lock(bucket.mutex);
  auto it = bucket.tenants.find(tenant);
  if (it == bucket.tenants.end()) return TenantUsage{};
  return it->second->usage;
}

rmi::ServerEndpoint* MultiTenantProviderServer::tenantEndpoint(
    TenantId tenant) {
  Bucket& bucket = bucketFor(tenant);
  std::lock_guard<std::mutex> lock(bucket.mutex);
  auto it = bucket.tenants.find(tenant);
  if (it == bucket.tenants.end()) return nullptr;
  return it->second->endpoint.get();
}

bool MultiTenantProviderServer::awaitStats(
    const std::function<bool(const Stats&)>& pred, double timeoutSec) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeoutSec < 0 ? 0 : timeoutSec));
  return statsCv_.wait_until(lock, deadline, [&] { return pred(stats_); });
}

MultiTenantProviderServer::Bucket& MultiTenantProviderServer::bucketFor(
    TenantId tenant) {
  // splitmix-style scramble so sequential tenant ids spread across buckets.
  std::uint64_t z = tenant + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return buckets_[z % kBuckets];
}

const MultiTenantProviderServer::Bucket& MultiTenantProviderServer::bucketFor(
    TenantId tenant) const {
  return const_cast<MultiTenantProviderServer*>(this)->bucketFor(tenant);
}

MultiTenantProviderServer::Tenant* MultiTenantProviderServer::ensureTenant(
    TenantId tenant) {
  Bucket& bucket = bucketFor(tenant);
  std::lock_guard<std::mutex> lock(bucket.mutex);
  auto it = bucket.tenants.find(tenant);
  if (it != bucket.tenants.end()) return it->second.get();
  auto entry = std::make_unique<Tenant>();
  entry->endpoint = factory_(tenant);
  entry->quota = config_.defaultQuota;
  {
    std::lock_guard<std::mutex> qlock(quotaMutex_);
    auto q = quotaOverrides_.find(tenant);
    if (q != quotaOverrides_.end()) entry->quota = q->second;
  }
  Tenant* raw = entry.get();
  bucket.tenants.emplace(tenant, std::move(entry));
  std::uint64_t seen;
  {
    std::lock_guard<std::mutex> slock(mutex_);
    seen = ++stats_.tenantsSeen;
    statsCv_.notify_all();
  }
  obs::Registry::global().maxGauge(MtMetrics::get().tenantsSeen,
                                   static_cast<std::int64_t>(seen));
  return raw;
}

void MultiTenantProviderServer::bumpStat(std::uint64_t Stats::*field) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++(stats_.*field);
  statsCv_.notify_all();
}

bool MultiTenantProviderServer::writeReply(
    const std::shared_ptr<Connection>& conn, net::ResponseFrameHeader header,
    const std::vector<std::uint8_t>& body) {
  const std::vector<std::uint8_t> frame =
      net::encodeResponseFrame(header, body);
  std::lock_guard<std::mutex> lock(conn->writeMutex);
  return writeFully(conn->fd, frame.data(), frame.size());
}

void MultiTenantProviderServer::acceptLoop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = true;
    statsCv_.notify_all();
  }
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections;
    obs::Registry::global().add(MtMetrics::get().connections);
    conns_.push_back(conn);
    connThreads_.emplace_back(
        [this, conn = std::move(conn)] { serveConnection(conn); });
    statsCv_.notify_all();
  }
}

void MultiTenantProviderServer::serveConnection(
    std::shared_ptr<Connection> conn) {
  std::vector<std::uint8_t> headerBytes(net::kRequestHeaderBytes);
  for (;;) {
    if (!readFully(conn->fd, headerBytes.data(), headerBytes.size())) break;
    net::RequestFrameHeader h;
    if (!net::decodeRequestFrameHeader(headerBytes.data(), headerBytes.size(),
                                       h)) {
      // Framing lost: no way to resynchronize a byte stream, so the
      // connection dies. The client sees a dead wire, not garbage.
      bumpStat(&Stats::malformedHeaders);
      if (log_ != nullptr) {
        log_->warning("mt server: malformed frame header; closing");
      }
      break;
    }
    std::vector<std::uint8_t> payload(h.payloadBytes);
    if (h.payloadBytes != 0 &&
        !readFully(conn->fd, payload.data(), h.payloadBytes)) {
      break;
    }

    if (stopping_.load()) {
      net::ResponseFrameHeader rh;
      rh.status = net::FrameStatus::Shutdown;
      rh.requestId = h.requestId;
      bumpStat(&Stats::shutdownRejected);
      obs::Registry::global().add(MtMetrics::get().shutdownRejected);
      if (!writeReply(conn, rh, {})) break;
      continue;
    }

    Tenant* tenant = ensureTenant(h.tenantId);

    // Quota admission: reads only this tenant's executed history, so the
    // verdict is deterministic per tenant regardless of interleaving.
    bool admitted;
    {
      Bucket& bucket = bucketFor(h.tenantId);
      std::lock_guard<std::mutex> lock(bucket.mutex);
      admitted = withinQuota(tenant->quota, tenant->usage);
      if (!admitted) ++tenant->usage.quotaRejected;
    }
    if (!admitted) {
      bumpStat(&Stats::quotaRejected);
      obs::Registry::global().add(MtMetrics::get().quotaRejected);
      net::ResponseFrameHeader rh;
      rh.status = net::FrameStatus::QuotaExceeded;
      rh.requestId = h.requestId;
      if (!writeReply(conn, rh, {})) break;
      continue;
    }

    // Job-queue admission: typed verdict surfaced as the matching frame
    // status; only Ok reaches a worker.
    const JobQueue::Admit verdict = queue_->add(
        h.priority,
        [this, conn, h, body = std::move(payload), tenant]() mutable {
          executeJob(conn, h, std::move(body), tenant);
        });
    if (verdict == JobQueue::Admit::Ok) continue;
    net::ResponseFrameHeader rh;
    rh.requestId = h.requestId;
    switch (verdict) {
      case JobQueue::Admit::TooManyPending:
        rh.status = net::FrameStatus::TooManyPending;
        bumpStat(&Stats::shedTooManyPending);
        break;
      case JobQueue::Admit::Overloaded:
        rh.status = net::FrameStatus::Overloaded;
        bumpStat(&Stats::shedOverloaded);
        break;
      default:
        rh.status = net::FrameStatus::Shutdown;
        bumpStat(&Stats::shutdownRejected);
        break;
    }
    if (rh.status != net::FrameStatus::Shutdown) {
      Bucket& bucket = bucketFor(h.tenantId);
      std::lock_guard<std::mutex> lock(bucket.mutex);
      ++tenant->usage.shed;
    }
    if (!writeReply(conn, rh, {})) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  // Drop the registry reference; the fd itself closes when the last queued
  // reply referencing this connection is done with it.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn.get()) {
      conns_.erase(it);
      break;
    }
  }
}

void MultiTenantProviderServer::executeJob(
    const std::shared_ptr<Connection>& conn, net::RequestFrameHeader header,
    std::vector<std::uint8_t> payload, Tenant* tenant) {
  obs::Tracer& tracer = obs::Tracer::global();
  // Server-side receive: checksum first (silent discard — emulated wire
  // damage, the client's deadline owns it), then bounds-checked unmarshal
  // (typed reject).
  if (!net::openFrame(payload)) {
    bumpStat(&Stats::discardedFrames);
    if (tracer.enabled()) {
      tracer.instant("mt.discardedFrame", "provider",
                     {{"bytes", static_cast<double>(header.payloadBytes)}});
    }
    return;
  }
  rmi::Request request;
  bool parsed = true;
  try {
    net::ByteBuffer b(std::move(payload));
    request = rmi::Request::unmarshal(b);
  } catch (const std::exception&) {
    parsed = false;
  }
  if (!parsed) {
    bumpStat(&Stats::malformedPayloads);
    net::ResponseFrameHeader rh;
    rh.status = net::FrameStatus::MalformedRequest;
    rh.requestId = header.requestId;
    writeReply(conn, rh, {});
    return;
  }

  // Dispatch on the tenant's own shard. The shard serializes its own
  // dispatches internally, so same-tenant requests execute in order of
  // arrival at the shard while different tenants run concurrently on the
  // worker pool.
  rmi::Response response;
  double cpuSec = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    response = tenant->endpoint->dispatch(request);
    cpuSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }

  // Account the executed fee BEFORE the reply leaves: a blocking client's
  // next request then always sees its own completed history in the quota
  // check — the property that makes over-quota rejection deterministic.
  {
    Bucket& bucket = bucketFor(header.tenantId);
    std::lock_guard<std::mutex> lock(bucket.mutex);
    ++tenant->usage.dispatches;
    if (!response.replayed && response.feeCents != 0.0) {
      tenant->usage.feesCents += response.feeCents;
      ++tenant->usage.billedCalls;
    }
  }

  std::vector<std::uint8_t> body = response.marshal().bytes();
  net::sealFrame(body);
  net::ResponseFrameHeader rh;
  rh.status = net::FrameStatus::Ok;
  rh.requestId = header.requestId;
  rh.serverCpuNanos = static_cast<std::uint64_t>(cpuSec * 1e9);
  if (writeReply(conn, rh, body)) {
    bumpStat(&Stats::framesServed);
    obs::Registry::global().add(MtMetrics::get().framesServed);
  }
}

}  // namespace vcad::ip
