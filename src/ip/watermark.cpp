#include "ip/watermark.hpp"

#include <map>
#include <stdexcept>

#include "core/rng.hpp"

namespace vcad::ip {

using gate::GateNode;
using gate::GateType;
using gate::NetId;
using gate::Netlist;

namespace {

/// Key-derived embedding sites: distinct (gate, pin) pairs among the first
/// `gateCount` gates. Deterministic in (key, gate arities), so embedder and
/// extractor derive identical sites.
std::vector<std::pair<int, int>> deriveTargets(const Netlist& nl,
                                               int gateCount, int bits,
                                               std::uint64_t seed) {
  Rng rng(seed ^ 0x77a7e12a5ULL);
  std::vector<std::pair<int, int>> targets;
  std::map<std::pair<int, int>, bool> taken;
  int attempts = 0;
  while (static_cast<int>(targets.size()) < bits) {
    if (++attempts > 64 * bits + 1024) {
      throw std::invalid_argument(
          "watermark: netlist too small for the requested signature");
    }
    const int gi = static_cast<int>(rng.below(static_cast<std::uint64_t>(gateCount)));
    const GateNode& g = nl.gates()[static_cast<size_t>(gi)];
    if (g.inputs.empty()) continue;  // const cells have no pins
    const int p = static_cast<int>(rng.below(g.inputs.size()));
    if (taken[{gi, p}]) continue;
    taken[{gi, p}] = true;
    targets.emplace_back(gi, p);
  }
  return targets;
}

}  // namespace

Netlist embedWatermark(const Netlist& original, WatermarkKey key,
                       const std::vector<bool>& signature) {
  if (signature.empty()) {
    throw std::invalid_argument("watermark: empty signature");
  }
  original.validate();
  const int bits = static_cast<int>(signature.size());
  const auto targets =
      deriveTargets(original, original.gateCount(), bits, key.seed);

  Netlist out;
  std::vector<NetId> m(static_cast<size_t>(original.netCount()), gate::kNoNet);
  for (NetId pi : original.primaryInputs()) {
    m[static_cast<size_t>(pi)] = out.addInput(original.netName(pi));
  }
  // Watermark nets first, so gate indices of the clone match the original.
  std::vector<NetId> wmA, wmB;
  for (int i = 0; i < bits; ++i) {
    wmA.push_back(out.addNet("wmA" + std::to_string(i)));
    wmB.push_back(out.addNet("wmB" + std::to_string(i)));
  }
  // Pre-create every original non-input net, then clone gates in order.
  for (NetId n = 0; n < original.netCount(); ++n) {
    if (m[static_cast<size_t>(n)] == gate::kNoNet) {
      m[static_cast<size_t>(n)] = out.addNet(original.netName(n));
    }
  }
  std::map<std::pair<int, int>, int> bitAt;
  for (int i = 0; i < bits; ++i) bitAt[targets[static_cast<size_t>(i)]] = i;

  for (int gi = 0; gi < original.gateCount(); ++gi) {
    const GateNode& g = original.gates()[static_cast<size_t>(gi)];
    std::vector<NetId> ins;
    for (size_t p = 0; p < g.inputs.size(); ++p) {
      auto it = bitAt.find({gi, static_cast<int>(p)});
      if (it != bitAt.end()) {
        ins.push_back(wmB[static_cast<size_t>(it->second)]);
      } else {
        ins.push_back(m[static_cast<size_t>(g.inputs[p])]);
      }
    }
    out.addGateDriving(g.type, std::move(ins), m[static_cast<size_t>(g.output)]);
  }
  // The redundant pairs: wmA = BUF(n), wmB = bit ? OR(n, wmA) : AND(n, wmA).
  for (int i = 0; i < bits; ++i) {
    const auto [gi, p] = targets[static_cast<size_t>(i)];
    const NetId source =
        m[static_cast<size_t>(original.gates()[static_cast<size_t>(gi)]
                                  .inputs[static_cast<size_t>(p)])];
    out.addGateDriving(GateType::Buf, {source}, wmA[static_cast<size_t>(i)]);
    out.addGateDriving(signature[static_cast<size_t>(i)] ? GateType::Or
                                                         : GateType::And,
                       {source, wmA[static_cast<size_t>(i)]},
                       wmB[static_cast<size_t>(i)]);
  }
  for (NetId po : original.primaryOutputs()) {
    out.markOutput(m[static_cast<size_t>(po)]);
  }
  out.validate();
  return out;
}

std::optional<std::vector<bool>> extractWatermark(const Netlist& marked,
                                                  WatermarkKey key,
                                                  int originalGateCount,
                                                  int signatureBits) {
  if (originalGateCount < 0 ||
      marked.gateCount() < originalGateCount + 2 * signatureBits) {
    return std::nullopt;
  }
  std::vector<std::pair<int, int>> targets;
  try {
    targets = deriveTargets(marked, originalGateCount, signatureBits, key.seed);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  std::vector<bool> signature;
  for (int i = 0; i < signatureBits; ++i) {
    const GateNode& bufGate =
        marked.gates()[static_cast<size_t>(originalGateCount + 2 * i)];
    const GateNode& pairGate =
        marked.gates()[static_cast<size_t>(originalGateCount + 2 * i + 1)];
    if (bufGate.type != GateType::Buf || bufGate.inputs.size() != 1) {
      return std::nullopt;
    }
    bool bit;
    if (pairGate.type == GateType::Or) {
      bit = true;
    } else if (pairGate.type == GateType::And) {
      bit = false;
    } else {
      return std::nullopt;
    }
    // The pair must read {source, wmA} with wmA the buffer's output...
    if (pairGate.inputs.size() != 2) return std::nullopt;
    const NetId source = bufGate.inputs[0];
    const bool wellFormed =
        (pairGate.inputs[0] == source && pairGate.inputs[1] == bufGate.output) ||
        (pairGate.inputs[1] == source && pairGate.inputs[0] == bufGate.output);
    if (!wellFormed) return std::nullopt;
    // ...and the key-derived site must actually consume the pair's output.
    const auto [gi, p] = targets[static_cast<size_t>(i)];
    const GateNode& site = marked.gates()[static_cast<size_t>(gi)];
    if (static_cast<size_t>(p) >= site.inputs.size() ||
        site.inputs[static_cast<size_t>(p)] != pairGate.output) {
      return std::nullopt;
    }
    signature.push_back(bit);
  }
  return signature;
}

Netlist stripWatermark(const Netlist& marked, int originalGateCount,
                       int signatureBits) {
  if (marked.gateCount() < originalGateCount + 2 * signatureBits) {
    throw std::invalid_argument("stripWatermark: shape mismatch");
  }
  // Source net behind each wmB output.
  std::map<NetId, NetId> substitute;
  for (int i = 0; i < signatureBits; ++i) {
    const GateNode& bufGate =
        marked.gates()[static_cast<size_t>(originalGateCount + 2 * i)];
    const GateNode& pairGate =
        marked.gates()[static_cast<size_t>(originalGateCount + 2 * i + 1)];
    substitute[pairGate.output] = bufGate.inputs[0];
  }
  Netlist out;
  std::vector<NetId> m(static_cast<size_t>(marked.netCount()), gate::kNoNet);
  for (NetId pi : marked.primaryInputs()) {
    m[static_cast<size_t>(pi)] = out.addInput(marked.netName(pi));
  }
  for (int gi = 0; gi < originalGateCount; ++gi) {
    const GateNode& g = marked.gates()[static_cast<size_t>(gi)];
    if (m[static_cast<size_t>(g.output)] == gate::kNoNet) {
      m[static_cast<size_t>(g.output)] = out.addNet(marked.netName(g.output));
    }
  }
  for (int gi = 0; gi < originalGateCount; ++gi) {
    const GateNode& g = marked.gates()[static_cast<size_t>(gi)];
    std::vector<NetId> ins;
    for (NetId in : g.inputs) {
      auto it = substitute.find(in);
      const NetId real = it != substitute.end() ? it->second : in;
      ins.push_back(m[static_cast<size_t>(real)]);
    }
    out.addGateDriving(g.type, std::move(ins), m[static_cast<size_t>(g.output)]);
  }
  for (NetId po : marked.primaryOutputs()) {
    out.markOutput(m[static_cast<size_t>(po)]);
  }
  out.validate();
  return out;
}

}  // namespace vcad::ip
