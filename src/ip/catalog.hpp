// IP component catalog: what a provider advertises about a component before
// any purchase — the "Setup: Functional model 1, Power model 2, ..." lists
// of the paper's Figure 1.
//
// Model availability levels:
//   None    (0): the provider offers nothing for this metric.
//   Static  (1): precharacterized data shipped with the open specification
//                (runs on the user's machine, no IP exposure).
//   Dynamic (2): accurate context-dependent estimation executed on the
//                provider's server against the private implementation,
//                possibly for a fee.
#pragma once

#include <cstdint>
#include <string>

#include "estim/power_estimators.hpp"
#include "net/serialize.hpp"

namespace vcad::ip {

enum class ModelLevel : std::uint8_t { None = 0, Static = 1, Dynamic = 2 };

std::string toString(ModelLevel level);

/// Provider fees, in cents, mirroring Table 1's "cost per pattern" column.
struct FeeSchedule {
  double instantiateCents = 0.0;
  double perEvalCents = 0.01;          // fully-remote functional evaluation
  double perPowerPatternCents = 0.1;   // gate-level power, per pattern
  double perTimingQueryCents = 0.02;
  double perAreaQueryCents = 0.01;
  double perDetectionTableCents = 0.05;
};

struct IpComponentSpec {
  std::string name;
  std::string description;
  int minWidth = 1;
  int maxWidth = 32;

  ModelLevel functional = ModelLevel::Static;  // Static: public part released
  ModelLevel power = ModelLevel::None;
  ModelLevel timing = ModelLevel::None;
  ModelLevel area = ModelLevel::None;
  ModelLevel testability = ModelLevel::None;  // detection-table protocol

  // Precharacterized data published when the matching level is >= Static.
  double staticPowerMw = 0.0;
  double staticAreaUm2 = 0.0;
  double staticTimingNs = 0.0;
  bool hasLinearPowerModel = false;
  estim::LinearPowerModel linearPower;

  FeeSchedule fees;

  void serialize(net::ByteBuffer& buf) const;
  static IpComponentSpec deserialize(net::ByteBuffer& buf);
};

}  // namespace vcad::ip
