// SocketTransport: the real-wire backend of net::Transport.
//
// One connected stream socket (Unix-domain or TCP — same class, different
// connect helper) carries request frames out and response frames back. A
// dedicated reader thread demultiplexes incoming frames by request id into
// per-id queues, so any number of channel workers can pipeline requests and
// collect their responses out of order. Frames for an id nobody registered
// (a stale retransmission's answer, a hostile injection) are counted and
// dropped — they can never be delivered to the wrong caller.
//
// The transport carries *real* bytes but charges no time: all simulated
// network accounting stays in RmiChannel, which is what keeps a socket run
// bit-identical to the in-process run for the same seeds.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace vcad::net {

/// Wire-level counters (real bytes incl. frame headers, unlike the
/// channel's payload-only ledger).
struct SocketTransportStats {
  std::uint64_t framesSent = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t bytesOnWireSent = 0;
  std::uint64_t bytesOnWireReceived = 0;
  std::uint64_t unknownRequestIdFrames = 0;  // demux rejected, dropped
  std::uint64_t rejectedReplies = 0;         // FrameStatus != Ok received
  std::uint64_t malformedFrames = 0;         // header failed to decode —
                                             // stream desync, wire killed
};

class SocketTransport final : public Transport {
 public:
  /// Adopts an already-connected stream socket (also how tests drive the
  /// demux directly via socketpair()).
  explicit SocketTransport(int fd, std::string peerName = "socket");
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// nullptr when the connection fails.
  static std::unique_ptr<SocketTransport> connectUnix(const std::string& path);
  /// `host` is an IPv4 literal (e.g. "127.0.0.1").
  static std::unique_ptr<SocketTransport> connectTcp(const std::string& host,
                                                     std::uint16_t port);

  void send(const RequestFrameHeader& header,
            const std::vector<std::uint8_t>& sealedPayload) override;
  TransportReply awaitReply(std::uint64_t requestId,
                            double realDeadlineSec) override;
  void discard(std::uint64_t requestId) override;
  bool alive() const override;
  std::string peerName() const override { return peer_; }

  SocketTransportStats stats() const;

 private:
  void readerLoop();
  void markDead();  // requires mutex_ held

  int fd_;
  std::string peer_;
  std::mutex writeMutex_;            // serializes whole frames onto the wire
  mutable std::mutex mutex_;         // demux state + stats
  std::condition_variable replyCv_;
  std::set<std::uint64_t> expected_;  // ids with a live sender/awaiter
  std::map<std::uint64_t, std::deque<TransportReply>> arrived_;
  bool dead_ = false;
  SocketTransportStats stats_;
  std::thread reader_;  // last: joins in ~SocketTransport after markDead
};

}  // namespace vcad::net
