// Framed transport abstraction: how sealed RMI payloads travel between a
// client channel and a provider endpoint.
//
// A transport is deliberately dumb: it carries opaque sealed payloads under
// a fixed-width frame header and matches responses to requests by request
// id. Everything that makes the simulation deterministic — the NetworkModel
// time charges, the FaultyTransport chaos plans, retry/backoff — stays in
// RmiChannel::attemptOnce on the client side, so the in-process loopback
// backend and the socket backend produce bit-identical accounting for the
// same seeds.
//
// Wire framing (all integers big-endian, matching net::ByteBuffer):
//
//   request frame            response frame
//   ---------------------    -----------------------
//   u32 magic 'VCRQ'         u32 magic 'VCRS'
//   u32 method id            u32 status (FrameStatus)
//   u64 request id           u64 request id
//   u64 tenant id            u64 server CPU nanos
//   u32 priority             u32 payload length
//   u32 payload length       payload bytes...
//   payload bytes...
//
// The tenant id and priority live in the *frame* header, not the sealed
// payload: a multi-tenant front end must route and shed before it spends
// any cycles opening the checksum, and the sealed request bytes stay
// identical across single- and multi-tenant deployments (same fault-plan
// corruption surface, same byte accounting).
//
// The payload is the sealed (checksummed) marshalled rmi::Request /
// rmi::Response — exactly the bytes the in-process path exchanges, so byte
// accounting and fault-plan corruption operate on identical content across
// backends. The request id is unique per *transmission attempt* (a
// retransmission gets a fresh id), which is what lets a pipelined client
// match out-of-order responses and drop stale ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vcad::net {

/// Typed status of one response frame. Distinct from rmi::Status: this is
/// the *carrier's* verdict (did a well-formed reply come back at all), not
/// the RMI-level outcome encoded inside the payload.
enum class FrameStatus : std::uint32_t {
  Ok = 0,               // payload carries a sealed rmi::Response
  MalformedRequest = 1,  // frame arrived intact but the payload would not
                         // unmarshal (protocol bug or hostile client)
  TooManyPending = 2,   // server admission control shed the request
                         // (per-priority queue lane at capacity)
  Shutdown = 3,         // server is draining connections
  Overloaded = 4,       // total job-queue depth at capacity — the server as
                         // a whole is saturated, not just one lane
  QuotaExceeded = 5,    // the tenant's fee/call quota is exhausted; the
                         // client must NOT retry (deterministic rejection)
};

std::string toString(FrameStatus s);

/// Priority lane of one request through a multi-tenant provider's job
/// queue (the rippled JobQueue idiom: per-method job types with
/// priorities). Lower value = more urgent. Stamped client-side from the
/// method id (rmi::priorityFor); single-tenant servers ignore it.
enum class JobPriority : std::uint32_t {
  Control = 0,  // session open/close — must get through even under load
  Query = 1,    // cheap metadata reads (catalog, fault list, negotiate)
  Compute = 2,  // single-shot simulation work (eval, estimates, seq steps)
  Batch = 3,    // bulk buffers (pattern-buffer power, batched tables)
};

inline constexpr std::uint32_t kJobPriorityCount = 4;

std::string toString(JobPriority p);

inline constexpr std::uint32_t kRequestMagic = 0x56435251u;   // 'VCRQ'
inline constexpr std::uint32_t kResponseMagic = 0x56435253u;  // 'VCRS'
inline constexpr std::size_t kRequestHeaderBytes = 32;
inline constexpr std::size_t kResponseHeaderBytes = 28;
/// A header announcing more than this is treated as malformed — it can only
/// come from a desynchronized or hostile stream, never from this client.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 64u << 20;

struct RequestFrameHeader {
  std::uint32_t methodId = 0;
  std::uint64_t requestId = 0;
  /// Which tenant's ledger/quota/replay-shard this request bills against.
  /// 0 = the anonymous single-tenant default.
  std::uint64_t tenantId = 0;
  JobPriority priority = JobPriority::Query;
  std::uint32_t payloadBytes = 0;
};

struct ResponseFrameHeader {
  FrameStatus status = FrameStatus::Ok;
  std::uint64_t requestId = 0;
  std::uint64_t serverCpuNanos = 0;
  std::uint32_t payloadBytes = 0;
};

/// Encodes header + payload into one contiguous frame. The header's
/// payloadBytes field is overwritten with payload.size().
std::vector<std::uint8_t> encodeRequestFrame(
    RequestFrameHeader header, const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encodeResponseFrame(
    ResponseFrameHeader header, const std::vector<std::uint8_t>& payload);

/// Decodes a header from exactly kRequestHeaderBytes / kResponseHeaderBytes
/// bytes. Returns false — leaving `out` unspecified — on short input, a
/// wrong magic, or an oversized payload length. Every strict prefix of a
/// valid header is rejected, never misread.
bool decodeRequestFrameHeader(const std::uint8_t* data, std::size_t size,
                              RequestFrameHeader& out);
bool decodeResponseFrameHeader(const std::uint8_t* data, std::size_t size,
                               ResponseFrameHeader& out);

/// What one awaited response frame delivered.
struct TransportReply {
  bool delivered = false;  // a frame for this request id arrived in time
  FrameStatus status = FrameStatus::Ok;
  double serverCpuSec = 0.0;  // provider-measured dispatch compute
  std::vector<std::uint8_t> sealedPayload;  // sealed marshalled rmi::Response
};

/// One framed, request-id-matched wire to a provider. Implementations:
/// rmi::LoopbackTransport (in-process dispatch, zero real latency) and
/// net::SocketTransport (Unix-domain or TCP stream to a provider process).
/// All methods are thread-safe; a channel pipelines by sending several
/// frames before awaiting any reply.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships one sealed request payload under `header` (whose payloadBytes
  /// field is recomputed from the payload). Never blocks on the response.
  virtual void send(const RequestFrameHeader& header,
                    const std::vector<std::uint8_t>& sealedPayload) = 0;

  /// Awaits the next response frame carrying `requestId`.
  /// `realDeadlineSec` bounds the *real-time* wait (the simulated deadline
  /// lives in RetryPolicy); loopback backends complete immediately and
  /// ignore it. Not delivered = nothing arrived (dropped, discarded
  /// server-side, or the wire died).
  virtual TransportReply awaitReply(std::uint64_t requestId,
                                    double realDeadlineSec) = 0;

  /// Forgets a request id: any buffered or late reply for it is discarded
  /// (and counted as unknown by stream backends). Called once per attempt
  /// so abandoned exchanges cannot accumulate.
  virtual void discard(std::uint64_t requestId) { (void)requestId; }

  /// False once the wire is known dead (peer closed, stream desync).
  virtual bool alive() const { return true; }

  virtual std::string peerName() const = 0;
};

}  // namespace vcad::net
