#include "net/network.hpp"

#include <algorithm>

namespace vcad::net {

NetworkProfile NetworkProfile::localhost() {
  NetworkProfile p;
  p.name = "localhost";
  p.oneWayLatencySec = 120e-6;  // loopback RMI round trip ~0.25 ms
  p.bandwidthBps = 200e6;
  p.jitterFraction = 0.1;
  p.sharedHost = true;
  p.contentionFactor = 1.8;  // the "more heavily loaded" single machine
  return p;
}

NetworkProfile NetworkProfile::lan() {
  NetworkProfile p;
  p.name = "lan";
  p.oneWayLatencySec = 1.2e-3;  // campus network with working-hours load
  p.bandwidthBps = 8e6;
  p.jitterFraction = 0.3;
  return p;
}

NetworkProfile NetworkProfile::wan() {
  NetworkProfile p;
  p.name = "wan";
  p.oneWayLatencySec = 55e-3;  // long-distance Internet path
  p.bandwidthBps = 250e3;
  p.jitterFraction = 0.5;
  return p;
}

NetworkProfile NetworkProfile::ideal() {
  NetworkProfile p;
  p.name = "ideal";
  return p;
}

NetworkModel::NetworkModel(NetworkProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {}

double NetworkModel::messageDelaySec(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double base = profile_.oneWayLatencySec +
                      static_cast<double>(bytes) / profile_.bandwidthBps;
  if (profile_.jitterFraction <= 0.0) return base;
  const double jitter =
      profile_.oneWayLatencySec *
      rng_.uniform(-profile_.jitterFraction, profile_.jitterFraction);
  return std::max(0.0, base + jitter);
}

double NetworkModel::serverComputeWallSec(double cpuSec) const {
  if (profile_.sharedHost) return cpuSec * (1.0 + profile_.contentionFactor);
  return cpuSec;
}

void VirtualClock::advance(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  elapsed_ += seconds;
}

double VirtualClock::elapsedSec() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return elapsed_;
}

void VirtualClock::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  elapsed_ = 0.0;
}

}  // namespace vcad::net
