#include "net/transport.hpp"

namespace vcad::net {

namespace {

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  putU32(out, static_cast<std::uint32_t>(v >> 32));
  putU32(out, static_cast<std::uint32_t>(v));
}

std::uint32_t getU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t getU64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(getU32(p)) << 32) | getU32(p + 4);
}

}  // namespace

std::string toString(FrameStatus s) {
  switch (s) {
    case FrameStatus::Ok:
      return "Ok";
    case FrameStatus::MalformedRequest:
      return "MalformedRequest";
    case FrameStatus::TooManyPending:
      return "TooManyPending";
    case FrameStatus::Shutdown:
      return "Shutdown";
    case FrameStatus::Overloaded:
      return "Overloaded";
    case FrameStatus::QuotaExceeded:
      return "QuotaExceeded";
  }
  return "FrameStatus(" + std::to_string(static_cast<std::uint32_t>(s)) + ")";
}

std::string toString(JobPriority p) {
  switch (p) {
    case JobPriority::Control:
      return "Control";
    case JobPriority::Query:
      return "Query";
    case JobPriority::Compute:
      return "Compute";
    case JobPriority::Batch:
      return "Batch";
  }
  return "JobPriority(" + std::to_string(static_cast<std::uint32_t>(p)) + ")";
}

std::vector<std::uint8_t> encodeRequestFrame(
    RequestFrameHeader header, const std::vector<std::uint8_t>& payload) {
  header.payloadBytes = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kRequestHeaderBytes + payload.size());
  putU32(out, kRequestMagic);
  putU32(out, header.methodId);
  putU64(out, header.requestId);
  putU64(out, header.tenantId);
  putU32(out, static_cast<std::uint32_t>(header.priority));
  putU32(out, header.payloadBytes);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> encodeResponseFrame(
    ResponseFrameHeader header, const std::vector<std::uint8_t>& payload) {
  header.payloadBytes = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kResponseHeaderBytes + payload.size());
  putU32(out, kResponseMagic);
  putU32(out, static_cast<std::uint32_t>(header.status));
  putU64(out, header.requestId);
  putU64(out, header.serverCpuNanos);
  putU32(out, header.payloadBytes);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool decodeRequestFrameHeader(const std::uint8_t* data, std::size_t size,
                              RequestFrameHeader& out) {
  if (data == nullptr || size < kRequestHeaderBytes) return false;
  if (getU32(data) != kRequestMagic) return false;
  out.methodId = getU32(data + 4);
  out.requestId = getU64(data + 8);
  out.tenantId = getU64(data + 16);
  const std::uint32_t priority = getU32(data + 24);
  // An out-of-range priority can only come from a desynchronized or hostile
  // stream — reject it like a bad magic rather than clamping.
  if (priority >= kJobPriorityCount) return false;
  out.priority = static_cast<JobPriority>(priority);
  out.payloadBytes = getU32(data + 28);
  return out.payloadBytes <= kMaxFramePayloadBytes;
}

bool decodeResponseFrameHeader(const std::uint8_t* data, std::size_t size,
                               ResponseFrameHeader& out) {
  if (data == nullptr || size < kResponseHeaderBytes) return false;
  if (getU32(data) != kResponseMagic) return false;
  const std::uint32_t status = getU32(data + 4);
  if (status > static_cast<std::uint32_t>(FrameStatus::QuotaExceeded)) {
    return false;
  }
  out.status = static_cast<FrameStatus>(status);
  out.requestId = getU64(data + 8);
  out.serverCpuNanos = getU64(data + 16);
  out.payloadBytes = getU32(data + 24);
  return out.payloadBytes <= kMaxFramePayloadBytes;
}

}  // namespace vcad::net
