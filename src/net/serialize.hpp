// Binary serialization for the RMI layer (the object-serialization role
// Java RMI plays in the paper).
//
// ByteBuffer is a growable byte stream with typed big-endian writers and
// checked readers. Everything that crosses the client/server boundary is
// marshalled through it, so message sizes are real and the network model can
// charge bandwidth for actual bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/word.hpp"

namespace vcad::net {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data)
      : data_(std::move(data)) {}

  // --- writers ---------------------------------------------------------

  void writeU8(std::uint8_t v);
  void writeU16(std::uint16_t v);
  void writeU32(std::uint32_t v);
  void writeU64(std::uint64_t v);
  void writeBool(bool v);
  void writeDouble(double v);
  void writeString(const std::string& s);
  void writeBytes(const std::vector<std::uint8_t>& bytes);

  /// Compact word encoding: width byte + 2 bits per position.
  void writeWord(const Word& w);
  void writeWordVector(const std::vector<Word>& words);

  // --- readers (throw std::out_of_range on underflow) -----------------------

  std::uint8_t readU8();
  std::uint16_t readU16();
  std::uint32_t readU32();
  std::uint64_t readU64();
  bool readBool();
  double readDouble();
  std::string readString();
  std::vector<std::uint8_t> readBytes();
  Word readWord();
  std::vector<Word> readWordVector();

  // --- inspection ------------------------------------------------------

  std::size_t size() const { return data_.size(); }
  std::size_t remaining() const { return data_.size() - readPos_; }
  bool exhausted() const { return readPos_ >= data_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return data_; }

  void rewind() { readPos_ = 0; }
  void clear() {
    data_.clear();
    readPos_ = 0;
  }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> data_;
  std::size_t readPos_ = 0;
};

}  // namespace vcad::net
