// Deterministic network simulation for the client/server channel.
//
// The paper's experiments ran over three environments: both endpoints on one
// (loaded) host, a campus LAN, and a WAN between Bologna and Padova. This
// repo has no real network, so the channel charges *simulated* wall-clock
// time per message from a calibrated profile: per-message latency, byte
// bandwidth, and bounded jitter. The LOCALHOST profile additionally models
// host sharing: server compute contends with the client for the same CPU,
// which reproduces the paper's observation that the fully-remote-module run
// was *slower* on localhost than over the LAN.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "core/rng.hpp"

namespace vcad::net {

struct NetworkProfile {
  std::string name;
  double oneWayLatencySec = 0.0;  // per message
  double bandwidthBps = 1e12;     // payload bytes per second
  double jitterFraction = 0.0;    // uniform +/- fraction of latency
  bool sharedHost = false;        // endpoints contend for one CPU
  double contentionFactor = 1.0;  // extra wall time per second of server CPU
                                  // when sharedHost

  /// Both endpoints on one machine: negligible wire time, but server CPU
  /// seconds also stall the client (factor ~1 extra: the paper's "more
  /// heavily loaded" single machine).
  static NetworkProfile localhost();
  /// Campus LAN under normal working-hours load.
  static NetworkProfile lan();
  /// Long-distance Internet path.
  static NetworkProfile wan();
  /// Zero-cost channel for unit tests.
  static NetworkProfile ideal();
};

/// Charges simulated time per message. Deterministic: jitter comes from a
/// seeded generator, so a run is exactly reproducible.
class NetworkModel {
 public:
  explicit NetworkModel(NetworkProfile profile, std::uint64_t seed = 0x5eed);

  const NetworkProfile& profile() const { return profile_; }

  /// Simulated one-way transfer time of a message with `bytes` payload.
  double messageDelaySec(std::size_t bytes);

  /// Wall-clock cost of `cpuSec` seconds of server compute, as seen by the
  /// client: on a shared host the client is stalled for the compute plus a
  /// contention penalty; across a real network the client still waits for
  /// the (synchronous) call but pays no contention.
  double serverComputeWallSec(double cpuSec) const;

 private:
  NetworkProfile profile_;
  std::mutex mutex_;
  Rng rng_;
};

/// Thread-safe accumulator of simulated wall-clock seconds.
class VirtualClock {
 public:
  void advance(double seconds);
  double elapsedSec() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  double elapsed_ = 0.0;
};

/// Traffic/accounting counters for one channel.
struct ChannelStats {
  std::uint64_t calls = 0;
  std::uint64_t bytesSent = 0;      // client -> server
  std::uint64_t bytesReceived = 0;  // server -> client
  double networkSec = 0.0;          // simulated wire time
  double serverCpuSec = 0.0;        // measured server compute
};

}  // namespace vcad::net
