#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace vcad::net {

namespace {

/// Reads exactly n bytes; false on EOF/error. Retries EINTR.
bool readFully(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Writes exactly n bytes; false on error. Retries EINTR and short writes.
bool writeFully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w > 0) {
      put += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(int fd, std::string peerName)
    : fd_(fd), peer_(std::move(peerName)) {
  reader_ = std::thread([this] { readerLoop(); });
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    markDead();
  }
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<SocketTransport> SocketTransport::connectUnix(
    const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return nullptr;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<SocketTransport>(fd, "unix:" + path);
}

std::unique_ptr<SocketTransport> SocketTransport::connectTcp(
    const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketTransport>(
      fd, "tcp:" + host + ":" + std::to_string(port));
}

void SocketTransport::markDead() {
  if (dead_) return;
  dead_ = true;
  // Unblocks the reader (read returns 0/err) without racing the fd close.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  replyCv_.notify_all();
}

void SocketTransport::send(const RequestFrameHeader& header,
                           const std::vector<std::uint8_t>& sealedPayload) {
  const std::vector<std::uint8_t> frame =
      encodeRequestFrame(header, sealedPayload);
  {
    // Register interest before the bytes can possibly be answered, so a
    // fast server's reply is never miscounted as unknown.
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_) return;
    expected_.insert(header.requestId);
  }
  bool ok;
  {
    std::lock_guard<std::mutex> wlock(writeMutex_);
    ok = writeFully(fd_, frame.data(), frame.size());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ok) {
    markDead();
    return;
  }
  ++stats_.framesSent;
  stats_.bytesOnWireSent += frame.size();
}

TransportReply SocketTransport::awaitReply(std::uint64_t requestId,
                                           double realDeadlineSec) {
  std::unique_lock<std::mutex> lock(mutex_);
  expected_.insert(requestId);  // also retains replies awaited before send
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(realDeadlineSec < 0 ? 0
                                                            : realDeadlineSec));
  for (;;) {
    auto it = arrived_.find(requestId);
    if (it != arrived_.end() && !it->second.empty()) {
      TransportReply reply = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) arrived_.erase(it);
      if (reply.status != FrameStatus::Ok) ++stats_.rejectedReplies;
      return reply;
    }
    if (dead_) return TransportReply{};
    if (replyCv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return TransportReply{};
    }
  }
}

void SocketTransport::discard(std::uint64_t requestId) {
  std::lock_guard<std::mutex> lock(mutex_);
  expected_.erase(requestId);
  arrived_.erase(requestId);
}

bool SocketTransport::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !dead_;
}

SocketTransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SocketTransport::readerLoop() {
  std::vector<std::uint8_t> header(kResponseHeaderBytes);
  for (;;) {
    if (!readFully(fd_, header.data(), header.size())) {
      std::lock_guard<std::mutex> lock(mutex_);
      markDead();
      return;
    }
    ResponseFrameHeader h;
    if (!decodeResponseFrameHeader(header.data(), header.size(), h)) {
      // A stream that stops framing correctly is unrecoverable: there is no
      // way to find the next frame boundary. Kill the wire.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.malformedFrames;
      markDead();
      return;
    }
    TransportReply reply;
    reply.delivered = true;
    reply.status = h.status;
    reply.serverCpuSec = static_cast<double>(h.serverCpuNanos) * 1e-9;
    reply.sealedPayload.resize(h.payloadBytes);
    if (h.payloadBytes != 0 &&
        !readFully(fd_, reply.sealedPayload.data(), h.payloadBytes)) {
      std::lock_guard<std::mutex> lock(mutex_);
      markDead();
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.framesReceived;
    stats_.bytesOnWireReceived += kResponseHeaderBytes + h.payloadBytes;
    if (expected_.count(h.requestId) == 0) {
      // Nobody is (or will be) waiting on this id: a stale or injected
      // frame. Dropping it here is what makes mismatched ids harmless.
      ++stats_.unknownRequestIdFrames;
      continue;
    }
    arrived_[h.requestId].push_back(std::move(reply));
    replyCv_.notify_all();
  }
}

}  // namespace vcad::net
