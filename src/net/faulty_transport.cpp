#include "net/faulty_transport.hpp"

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::net {

namespace {
struct TransportMetrics {
  obs::Registry::MetricId attempts, droppedRequests, duplicatedRequests,
      corruptedRequests, droppedResponses, corruptedResponses, stalls,
      reorders;

  static const TransportMetrics& get() {
    static const TransportMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return TransportMetrics{r.counter("transport.attempts"),
                              r.counter("transport.droppedRequests"),
                              r.counter("transport.duplicatedRequests"),
                              r.counter("transport.corruptedRequests"),
                              r.counter("transport.droppedResponses"),
                              r.counter("transport.corruptedResponses"),
                              r.counter("transport.stalls"),
                              r.counter("transport.reorders")};
    }();
    return m;
  }
};
}  // namespace

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void sealFrame(std::vector<std::uint8_t>& bytes) {
  const std::uint64_t sum = fnv1a(bytes);
  for (int shift = 56; shift >= 0; shift -= 8) {
    bytes.push_back(static_cast<std::uint8_t>(sum >> shift));
  }
}

bool openFrame(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8) return false;
  std::uint64_t claimed = 0;
  for (std::size_t i = bytes.size() - 8; i < bytes.size(); ++i) {
    claimed = (claimed << 8) | bytes[i];
  }
  bytes.resize(bytes.size() - 8);
  return fnv1a(bytes) == claimed;
}

// --- profiles --------------------------------------------------------------

FaultProfile FaultProfile::none() { return FaultProfile{}; }

FaultProfile FaultProfile::drop() {
  FaultProfile p;
  p.name = "drop";
  p.dropRequestProb = 0.15;
  p.dropResponseProb = 0.15;
  return p;
}

FaultProfile FaultProfile::duplicate() {
  FaultProfile p;
  p.name = "duplicate";
  p.duplicateRequestProb = 0.35;
  return p;
}

FaultProfile FaultProfile::reorder() {
  FaultProfile p;
  p.name = "reorder";
  p.reorderProb = 0.25;
  p.reorderDelaySec = 1.0;  // past any sane per-attempt timeout => stale
  return p;
}

FaultProfile FaultProfile::corrupt() {
  FaultProfile p;
  p.name = "corrupt";
  p.corruptRequestProb = 0.12;
  p.corruptResponseProb = 0.12;
  return p;
}

FaultProfile FaultProfile::stall() {
  FaultProfile p;
  p.name = "stall";
  p.stallProb = 0.2;
  p.stallSec = 2.0;
  return p;
}

FaultProfile FaultProfile::lossy() {
  FaultProfile p;
  p.name = "lossy";
  p.dropRequestProb = 0.06;
  p.dropResponseProb = 0.06;
  p.duplicateRequestProb = 0.1;
  p.reorderProb = 0.05;
  p.reorderDelaySec = 1.0;
  p.corruptRequestProb = 0.05;
  p.corruptResponseProb = 0.05;
  p.stallProb = 0.05;
  p.stallSec = 2.0;
  return p;
}

std::vector<FaultProfile> FaultProfile::shipped() {
  return {drop(), duplicate(), reorder(), corrupt(), stall(), lossy()};
}

// --- transport ---------------------------------------------------------

namespace {

/// SplitMix64-style finalizer mixing the identifying triple into one seed.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a;
  z += 0x9e3779b97f4a7c15ULL * (b + 1);
  z += 0xbf58476d1ce4e5b9ULL * (c + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultyTransport::FaultyTransport(FaultProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

FaultPlan FaultyTransport::peek(std::uint64_t key,
                                std::uint32_t attempt) const {
  // One private generator per (key, attempt): draws happen in a fixed order,
  // so the plan is reproducible regardless of which thread asks, or whether
  // other requests were planned in between.
  Rng rng(mix(seed_, key, attempt));
  FaultPlan plan;
  plan.dropRequest = rng.chance(profile_.dropRequestProb);
  plan.duplicateRequest = rng.chance(profile_.duplicateRequestProb);
  plan.corruptRequest = rng.chance(profile_.corruptRequestProb);
  plan.dropResponse = rng.chance(profile_.dropResponseProb);
  plan.corruptResponse = rng.chance(profile_.corruptResponseProb);
  plan.stall = rng.chance(profile_.stallProb);
  if (plan.stall) plan.stallSec = profile_.stallSec;
  if (rng.chance(profile_.reorderProb)) {
    plan.reorderDelaySec = profile_.reorderDelaySec;
  }
  return plan;
}

FaultPlan FaultyTransport::plan(std::uint64_t key, std::uint32_t attempt) {
  const FaultPlan p = peek(key, attempt);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.attempts;
    if (p.dropRequest) ++stats_.droppedRequests;
    if (p.duplicateRequest) ++stats_.duplicatedRequests;
    if (p.corruptRequest) ++stats_.corruptedRequests;
    if (p.dropResponse) ++stats_.droppedResponses;
    if (p.corruptResponse) ++stats_.corruptedResponses;
    if (p.stall) ++stats_.stalls;
    if (p.reorderDelaySec > 0.0) ++stats_.reorders;
  }
  const TransportMetrics& ids = TransportMetrics::get();
  obs::Registry& reg = obs::Registry::global();
  reg.add(ids.attempts);
  if (p.dropRequest) reg.add(ids.droppedRequests);
  if (p.duplicateRequest) reg.add(ids.duplicatedRequests);
  if (p.corruptRequest) reg.add(ids.corruptedRequests);
  if (p.dropResponse) reg.add(ids.droppedResponses);
  if (p.corruptResponse) reg.add(ids.corruptedResponses);
  if (p.stall) reg.add(ids.stalls);
  if (p.reorderDelaySec > 0.0) reg.add(ids.reorders);
  const bool struck = p.dropRequest || p.duplicateRequest || p.corruptRequest ||
                      p.dropResponse || p.corruptResponse || p.stall ||
                      p.reorderDelaySec > 0.0;
  obs::Tracer& tracer = obs::Tracer::global();
  if (struck && tracer.enabled()) {
    tracer.instant("transport.fault", "transport",
                   {{"attempt", static_cast<double>(attempt)},
                    {"dropReq", p.dropRequest ? 1.0 : 0.0},
                    {"dupReq", p.duplicateRequest ? 1.0 : 0.0},
                    {"corrupt", (p.corruptRequest || p.corruptResponse) ? 1.0
                                                                        : 0.0},
                    {"dropResp", p.dropResponse ? 1.0 : 0.0},
                    {"stallOrReorder",
                     (p.stall || p.reorderDelaySec > 0.0) ? 1.0 : 0.0}});
  }
  return p;
}

void FaultyTransport::corrupt(std::vector<std::uint8_t>& bytes,
                              std::uint64_t key, std::uint32_t attempt,
                              std::uint32_t channel) const {
  if (bytes.empty()) return;
  Rng rng(mix(seed_ ^ 0xdeadbeefULL, key,
              (static_cast<std::uint64_t>(channel) << 32) | attempt));
  const int flips = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos = rng.below(bytes.size());
    // XOR with a non-zero mask always changes the byte, so a "corrupted"
    // frame can never accidentally equal the original.
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  }
}

TransportStats FaultyTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FaultyTransport::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = TransportStats{};
}

}  // namespace vcad::net
