// FaultyTransport: deterministic fault injection for the RMI channel.
//
// The NetworkModel only charges *time* — every message is still delivered
// exactly once. Real Internet paths (the paper's localhost/LAN/WAN table)
// also lose, duplicate, reorder and corrupt packets, and providers stall or
// restart mid-run. This wrapper decides, per transmission attempt, which of
// those faults strike, so the retry/idempotency/recovery machinery in
// RmiChannel and ProviderServer can be exercised by the chaos harness.
//
// Determinism is the whole point: a fault plan is a *pure function* of
// (transport seed, request idempotency key, attempt number). It does not
// consume a shared random stream, so the fault schedule is identical across
// runs and across ParallelFaultSimulator thread counts, and any chaos-run
// failure replays exactly from its seed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace vcad::net {

// --- message framing ---------------------------------------------------

/// FNV-1a 64-bit hash of a byte block (the frame checksum).
std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes);

/// Appends an 8-byte FNV-1a checksum so the receiver can detect corruption
/// deterministically (flipped bits never silently unmarshal into garbage).
void sealFrame(std::vector<std::uint8_t>& bytes);

/// Verifies and strips the trailing checksum; returns false (leaving the
/// buffer unspecified) when the frame is short or the checksum mismatches.
bool openFrame(std::vector<std::uint8_t>& bytes);

// --- fault profiles ------------------------------------------------------

/// Per-message fault probabilities for one unreliable path. Each shipped
/// profile stresses one failure mode hard enough that a multi-call campaign
/// is guaranteed to hit it; `lossy()` combines them all.
struct FaultProfile {
  std::string name = "ideal";
  double dropRequestProb = 0.0;    // request vanishes before the server
  double dropResponseProb = 0.0;   // server executed, response vanishes
  double duplicateRequestProb = 0.0;  // request delivered twice
  double reorderProb = 0.0;        // response overtaken: arrives late
  double reorderDelaySec = 0.0;    // how late (past the timeout => stale)
  double corruptRequestProb = 0.0;   // bit flips in the request frame
  double corruptResponseProb = 0.0;  // bit flips in the response frame
  double stallProb = 0.0;          // provider freezes while holding the call
  double stallSec = 0.0;           // how long the freeze lasts

  bool ideal() const {
    return dropRequestProb <= 0 && dropResponseProb <= 0 &&
           duplicateRequestProb <= 0 && reorderProb <= 0 &&
           corruptRequestProb <= 0 && corruptResponseProb <= 0 &&
           stallProb <= 0;
  }

  static FaultProfile none();       // no faults (ideal transport)
  static FaultProfile drop();       // requests and responses vanish
  static FaultProfile duplicate();  // requests delivered twice
  static FaultProfile reorder();    // responses arrive stale
  static FaultProfile corrupt();    // frames arrive damaged
  static FaultProfile stall();      // provider freezes past the timeout
  static FaultProfile lossy();      // everything at once, moderate rates

  /// Every non-ideal shipped profile (what the chaos harness sweeps).
  static std::vector<FaultProfile> shipped();
};

/// The faults striking one transmission attempt of one logical request.
struct FaultPlan {
  bool dropRequest = false;
  bool duplicateRequest = false;
  bool corruptRequest = false;
  bool dropResponse = false;
  bool corruptResponse = false;
  bool stall = false;
  double stallSec = 0.0;        // charged to the client's wait
  double reorderDelaySec = 0.0;  // extra response delay (0 = in order)

  bool clean() const {
    return !dropRequest && !duplicateRequest && !corruptRequest &&
           !dropResponse && !corruptResponse && !stall &&
           reorderDelaySec <= 0.0;
  }
};

/// Counters of injected faults (what actually struck, not probabilities).
struct TransportStats {
  std::uint64_t attempts = 0;
  std::uint64_t droppedRequests = 0;
  std::uint64_t droppedResponses = 0;
  std::uint64_t duplicatedRequests = 0;
  std::uint64_t corruptedRequests = 0;
  std::uint64_t corruptedResponses = 0;
  std::uint64_t reorders = 0;
  std::uint64_t stalls = 0;

  std::uint64_t injected() const {
    return droppedRequests + droppedResponses + duplicatedRequests +
           corruptedRequests + corruptedResponses + reorders + stalls;
  }
};

class FaultyTransport {
 public:
  explicit FaultyTransport(FaultProfile profile, std::uint64_t seed = 0x5eed);

  const FaultProfile& profile() const { return profile_; }
  std::uint64_t seed() const { return seed_; }

  /// Fault plan for the `attempt`-th transmission (1-based) of the logical
  /// request identified by `key`. Pure function of (seed, key, attempt);
  /// also updates the injection counters.
  FaultPlan plan(std::uint64_t key, std::uint32_t attempt);

  /// Same plan without touching the counters (for determinism checks).
  FaultPlan peek(std::uint64_t key, std::uint32_t attempt) const;

  /// Deterministically flips 1..4 payload bytes in place, derived from the
  /// same (key, attempt) stream, never producing a byte-identical frame.
  /// `channel` disambiguates the request (0) and response (1) directions.
  void corrupt(std::vector<std::uint8_t>& bytes, std::uint64_t key,
               std::uint32_t attempt, std::uint32_t channel) const;

  TransportStats stats() const;
  void resetStats();

 private:
  FaultProfile profile_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;
  TransportStats stats_;
};

}  // namespace vcad::net
