#include "net/serialize.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcad::net {

void ByteBuffer::need(std::size_t n) const {
  if (readPos_ + n > data_.size()) {
    throw std::out_of_range("ByteBuffer underflow: need " + std::to_string(n) +
                            " bytes, have " +
                            std::to_string(data_.size() - readPos_));
  }
}

void ByteBuffer::writeU8(std::uint8_t v) { data_.push_back(v); }

void ByteBuffer::writeU16(std::uint16_t v) {
  writeU8(static_cast<std::uint8_t>(v >> 8));
  writeU8(static_cast<std::uint8_t>(v));
}

void ByteBuffer::writeU32(std::uint32_t v) {
  writeU16(static_cast<std::uint16_t>(v >> 16));
  writeU16(static_cast<std::uint16_t>(v));
}

void ByteBuffer::writeU64(std::uint64_t v) {
  writeU32(static_cast<std::uint32_t>(v >> 32));
  writeU32(static_cast<std::uint32_t>(v));
}

void ByteBuffer::writeBool(bool v) { writeU8(v ? 1 : 0); }

void ByteBuffer::writeDouble(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  writeU64(bits);
}

void ByteBuffer::writeString(const std::string& s) {
  writeU32(static_cast<std::uint32_t>(s.size()));
  data_.insert(data_.end(), s.begin(), s.end());
}

void ByteBuffer::writeBytes(const std::vector<std::uint8_t>& bytes) {
  writeU32(static_cast<std::uint32_t>(bytes.size()));
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void ByteBuffer::writeWord(const Word& w) {
  writeU8(static_cast<std::uint8_t>(w.width()));
  std::uint8_t acc = 0;
  int nibble = 0;
  for (int i = 0; i < w.width(); ++i) {
    acc = static_cast<std::uint8_t>(acc |
                                    (static_cast<std::uint8_t>(w.bit(i))
                                     << (2 * nibble)));
    if (++nibble == 4) {
      writeU8(acc);
      acc = 0;
      nibble = 0;
    }
  }
  if (nibble != 0) writeU8(acc);
}

void ByteBuffer::writeWordVector(const std::vector<Word>& words) {
  writeU32(static_cast<std::uint32_t>(words.size()));
  for (const Word& w : words) writeWord(w);
}

std::uint8_t ByteBuffer::readU8() {
  need(1);
  return data_[readPos_++];
}

std::uint16_t ByteBuffer::readU16() {
  const auto hi = readU8();
  const auto lo = readU8();
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t ByteBuffer::readU32() {
  const std::uint32_t hi = readU16();
  const std::uint32_t lo = readU16();
  return (hi << 16) | lo;
}

std::uint64_t ByteBuffer::readU64() {
  const std::uint64_t hi = readU32();
  const std::uint64_t lo = readU32();
  return (hi << 32) | lo;
}

bool ByteBuffer::readBool() { return readU8() != 0; }

double ByteBuffer::readDouble() {
  const std::uint64_t bits = readU64();
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteBuffer::readString() {
  const std::uint32_t n = readU32();
  need(n);
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(readPos_),
                data_.begin() + static_cast<std::ptrdiff_t>(readPos_ + n));
  readPos_ += n;
  return s;
}

std::vector<std::uint8_t> ByteBuffer::readBytes() {
  const std::uint32_t n = readU32();
  need(n);
  std::vector<std::uint8_t> out(
      data_.begin() + static_cast<std::ptrdiff_t>(readPos_),
      data_.begin() + static_cast<std::ptrdiff_t>(readPos_ + n));
  readPos_ += n;
  return out;
}

Word ByteBuffer::readWord() {
  const int width = readU8();
  Word w(width);
  std::uint8_t acc = 0;
  int nibble = 4;  // force a fresh byte read
  for (int i = 0; i < width; ++i) {
    if (nibble == 4) {
      acc = readU8();
      nibble = 0;
    }
    w.setBit(i, static_cast<Logic>((acc >> (2 * nibble)) & 0x3));
    ++nibble;
  }
  return w;
}

std::vector<Word> ByteBuffer::readWordVector() {
  const std::uint32_t n = readU32();
  std::vector<Word> out;
  // Every serialized word occupies at least one byte, so a corrupted length
  // larger than the remaining payload cannot be honoured; cap the reserve
  // and let the per-word bounds checks reject the stream.
  out.reserve(std::min<std::size_t>(n, remaining()));
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(readWord());
  return out;
}

}  // namespace vcad::net
