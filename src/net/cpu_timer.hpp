// Thread CPU-time measurement used to report the "CPU time" columns of the
// paper's Table 2 and Figure 3.
#pragma once

#include <ctime>

namespace vcad::net {

/// Current CPU time of the calling thread, in seconds.
inline double threadCpuSec() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Scoped CPU-time interval: construct, do work, call elapsed().
class CpuTimer {
 public:
  CpuTimer() : start_(threadCpuSec()) {}
  double elapsedSec() const { return threadCpuSec() - start_; }
  void restart() { start_ = threadCpuSec(); }

 private:
  double start_;
};

}  // namespace vcad::net
