#include "core/estimation.hpp"

namespace vcad {

std::string toString(ParamKind kind) {
  switch (kind) {
    case ParamKind::Area:
      return "area";
    case ParamKind::Delay:
      return "delay";
    case ParamKind::AvgPower:
      return "avg_power";
    case ParamKind::PeakPower:
      return "peak_power";
    case ParamKind::IoActivity:
      return "io_activity";
    case ParamKind::Testability:
      return "testability";
  }
  return "unknown";
}

const std::shared_ptr<Estimator>& NullEstimator::instance() {
  static const std::shared_ptr<Estimator> kInstance =
      std::make_shared<NullEstimator>();
  return kInstance;
}

}  // namespace vcad
