// Simulation time base for the event-driven backplane.
//
// Simulated time is a plain 64-bit tick counter; the interpretation of a
// tick (ns, clock cycle, ...) is up to the design. Events scheduled at the
// same tick are dispatched in FIFO order (delta-cycle semantics), which gives
// deterministic fixpoint evaluation of zero-delay combinational logic.
#pragma once

#include <cstdint>

namespace vcad {

using SimTime = std::uint64_t;

inline constexpr SimTime kSimTimeMax = ~static_cast<SimTime>(0);

}  // namespace vcad
