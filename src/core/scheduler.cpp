#include "core/scheduler.hpp"

#include <stdexcept>

#include "core/module.hpp"

namespace vcad {

Scheduler::Scheduler() {
  const SlotRegistry::Lease lease = SlotRegistry::global().acquire();
  slot_ = lease.slot;
  generation_ = lease.generation;
}

Scheduler::~Scheduler() {
  drainQueue();
  // Returning the slot bumps its generation: every arena entry this run
  // wrote is logically cleared without touching the design.
  SlotRegistry::global().release(slot_);
}

void Scheduler::drainQueue() {
  while (!queue_.empty()) {
    delete queue_.top().token;
    queue_.pop();
  }
}

void Scheduler::reset() {
  drainQueue();
  overrides_.clear();
  now_ = 0;
  seq_ = 0;
  dispatched_ = 0;
  generation_ = SlotRegistry::global().renew(slot_);
  ++resets_;
}

void Scheduler::schedule(std::unique_ptr<Token> token, SimTime delay) {
  if (!token) {
    throw std::invalid_argument("Scheduler::schedule: null token");
  }
  const SimTime t = now_ + delay;
  token->time_ = t;
  queue_.push(Entry{t, seq_++, token.release()});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  Entry e = queue_.top();
  queue_.pop();
  std::unique_ptr<Token> token(e.token);
  now_ = e.time;
  ++dispatched_;
  if (trace_ != nullptr) {
    trace_->info("@" + std::to_string(now_) + " " + token->describe());
  }
  SimContext ctx{*this, setup_};
  token->deliver(ctx);
  return true;
}

std::size_t Scheduler::run(std::size_t maxEvents) {
  std::size_t n = 0;
  // The limit is exact: dispatching maxEvents events is allowed, attempting
  // one more throws before it is delivered.
  while (!queue_.empty()) {
    if (n >= maxEvents) {
      throw std::runtime_error(
          "Scheduler::run exceeded event limit (combinational loop or "
          "runaway self-trigger?)");
    }
    step();
    ++n;
  }
  return n;
}

std::size_t Scheduler::runUntil(SimTime until, std::size_t maxEvents) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    if (n >= maxEvents) {
      throw std::runtime_error("Scheduler::runUntil exceeded event limit");
    }
    step();
    ++n;
  }
  return n;
}

void Scheduler::setOutputOverride(const Module& module,
                                  std::vector<OutputOverride> outputs) {
  for (const auto& o : outputs) {
    if (o.port == nullptr || !o.port->canDrive()) {
      throw std::invalid_argument(
          "setOutputOverride: override target must be a drivable port of "
          "the module");
    }
  }
  overrides_[&module] = std::move(outputs);
}

void Scheduler::clearOutputOverride(const Module& module) {
  overrides_.erase(&module);
}

void Scheduler::clearAllOverrides() { overrides_.clear(); }

const std::vector<Scheduler::OutputOverride>* Scheduler::findOverride(
    const Module& module) const {
  auto it = overrides_.find(&module);
  return it != overrides_.end() ? &it->second : nullptr;
}

}  // namespace vcad
