#include "core/scheduler.hpp"

#include <stdexcept>

#include "core/module.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad {

namespace {
/// Registry ids for the scheduler's bulk-flushed metrics. Per-token work
/// stays registry-free: dispatch counts flush once per run()/runUntil()
/// call, and per-token instants are gated behind the tracer's verbose mode.
struct SchedMetrics {
  obs::Registry::MetricId dispatched, resets;
  obs::Registry::MetricId peakQueueDepth;

  static const SchedMetrics& get() {
    static const SchedMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return SchedMetrics{r.counter("sched.dispatched"),
                          r.counter("sched.resets"),
                          r.gauge("sched.peakQueueDepth")};
    }();
    return m;
  }
};
}  // namespace

Scheduler::Scheduler() {
  const SlotRegistry::Lease lease = SlotRegistry::global().acquire();
  slot_ = lease.slot;
  generation_ = lease.generation;
}

Scheduler::~Scheduler() {
  drainQueue();
  // Returning the slot bumps its generation: every arena entry this run
  // wrote is logically cleared without touching the design.
  SlotRegistry::global().release(slot_);
}

void Scheduler::drainQueue() {
  while (!queue_.empty()) {
    delete queue_.top().token;
    queue_.pop();
  }
}

void Scheduler::reset() {
  drainQueue();
  overrides_.clear();
  now_ = 0;
  seq_ = 0;
  dispatched_ = 0;
  peakQueueDepth_ = 0;
  generation_ = SlotRegistry::global().renew(slot_);
  ++resets_;
  obs::Registry::global().add(SchedMetrics::get().resets);
}

void Scheduler::schedule(std::unique_ptr<Token> token, SimTime delay) {
  if (!token) {
    throw std::invalid_argument("Scheduler::schedule: null token");
  }
  const SimTime t = now_ + delay;
  token->time_ = t;
  queue_.push(Entry{t, seq_++, token.release()});
  if (queue_.size() > peakQueueDepth_) peakQueueDepth_ = queue_.size();
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  Entry e = queue_.top();
  queue_.pop();
  std::unique_ptr<Token> token(e.token);
  now_ = e.time;
  ++dispatched_;
  if (trace_ != nullptr) {
    trace_->info("@" + std::to_string(now_) + " " + token->describe());
  }
  // Structured sibling of the LogSink trace: one instant event per
  // delivered token, but only in verbose tracing (per-token volume).
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.verbose()) {
    tracer.instant("sched.dispatch", "sched",
                   {{"slot", static_cast<double>(slot_)},
                    {"time", static_cast<double>(now_)},
                    {"queueDepth", static_cast<double>(queue_.size())}});
  }
  SimContext ctx{*this, setup_};
  token->deliver(ctx);
  return true;
}

std::size_t Scheduler::run(std::size_t maxEvents) {
  std::size_t n = 0;
  // The limit is exact: dispatching maxEvents events is allowed, attempting
  // one more throws before it is delivered.
  while (!queue_.empty()) {
    if (n >= maxEvents) {
      throw std::runtime_error(
          "Scheduler::run exceeded event limit (combinational loop or "
          "runaway self-trigger?)");
    }
    step();
    ++n;
  }
  flushRunMetrics(n);
  return n;
}

std::size_t Scheduler::runUntil(SimTime until, std::size_t maxEvents) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    if (n >= maxEvents) {
      throw std::runtime_error("Scheduler::runUntil exceeded event limit");
    }
    step();
    ++n;
  }
  flushRunMetrics(n);
  return n;
}

void Scheduler::flushRunMetrics(std::size_t dispatchedNow) {
  if (dispatchedNow == 0) return;
  obs::Registry& reg = obs::Registry::global();
  const SchedMetrics& ids = SchedMetrics::get();
  reg.add(ids.dispatched, dispatchedNow);
  reg.maxGauge(ids.peakQueueDepth,
               static_cast<std::int64_t>(peakQueueDepth_));
}

void Scheduler::setOutputOverride(const Module& module,
                                  std::vector<OutputOverride> outputs) {
  for (const auto& o : outputs) {
    if (o.port == nullptr || !o.port->canDrive()) {
      throw std::invalid_argument(
          "setOutputOverride: override target must be a drivable port of "
          "the module");
    }
  }
  overrides_[&module] = std::move(outputs);
}

void Scheduler::clearOutputOverride(const Module& module) {
  overrides_.erase(&module);
}

void Scheduler::clearAllOverrides() { overrides_.clear(); }

const std::vector<Scheduler::OutputOverride>* Scheduler::findOverride(
    const Module& module) const {
  auto it = overrides_.find(&module);
  return it != overrides_.end() ? &it->second : nullptr;
}

}  // namespace vcad
