// Four-valued logic scalar used by the gate-level abstraction of the
// simulation backplane.
//
// The value set follows the classic simulator convention:
//   L0 - strong logic zero
//   L1 - strong logic one
//   X  - unknown / uninitialized
//   Z  - high impedance (undriven net)
//
// Boolean operators implement the standard pessimistic 4-valued algebra:
// a controlling value (0 for AND, 1 for OR) dominates X/Z inputs, and Z
// degrades to X whenever it participates in a logic operation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace vcad {

enum class Logic : std::uint8_t {
  L0 = 0,
  L1 = 1,
  X = 2,
  Z = 3,
};

/// True iff the value is a strong 0 or 1.
constexpr bool isKnown(Logic v) { return v == Logic::L0 || v == Logic::L1; }

/// Converts a bool into the corresponding strong logic value.
constexpr Logic fromBool(bool b) { return b ? Logic::L1 : Logic::L0; }

/// Converts a strong logic value to bool. Precondition: isKnown(v).
constexpr bool toBool(Logic v) { return v == Logic::L1; }

Logic logicNot(Logic a);
Logic logicAnd(Logic a, Logic b);
Logic logicOr(Logic a, Logic b);
Logic logicXor(Logic a, Logic b);
Logic logicNand(Logic a, Logic b);
Logic logicNor(Logic a, Logic b);
Logic logicXnor(Logic a, Logic b);
Logic logicBuf(Logic a);

/// One-character display form: '0', '1', 'X', 'Z'.
char toChar(Logic v);

/// Parses '0'/'1'/'x'/'X'/'z'/'Z'; throws std::invalid_argument otherwise.
Logic logicFromChar(char c);

std::ostream& operator<<(std::ostream& os, Logic v);

}  // namespace vcad
