// SetupController: specifies which parameters to evaluate and which
// estimator each component must use (the paper's setup controller with its
// two main methods, set() and apply()).
//
// set(param, choice) records the criteria for choosing the estimator of a
// given parameter; apply(module) hierarchically applies the setup to a
// module and all its submodules. If the requirements cannot be satisfied for
// some component, a warning is logged and the default null estimator is
// bound, which allows partial estimation and keeps the design simulatable.
//
// Multiple setups can coexist for the same design, and multiple simulations
// with different setups can run concurrently on separate schedulers: each
// module stores its bindings in a hash table keyed by the setup id.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "core/estimation.hpp"
#include "core/log.hpp"

namespace vcad {

class Module;

/// How to pick among a module's candidate estimators for one parameter.
enum class Criterion {
  BestAccuracy,  // minimize expected error
  LowestCost,    // minimize monetary cost per use
  FastestCpu,    // minimize expected CPU time
  ByName,        // exact estimator name match
};

std::string toString(Criterion c);

struct EstimatorChoice {
  EstimatorChoice() = default;
  explicit(false) EstimatorChoice(Criterion c) : criterion(c) {}

  Criterion criterion = Criterion::BestAccuracy;
  std::string name;  // only used with Criterion::ByName
  // Hard constraints; candidates violating any of them are discarded.
  double maxCostCents = std::numeric_limits<double>::infinity();
  double maxErrorPct = std::numeric_limits<double>::infinity();
  bool allowRemote = true;  // forbid estimators that need the provider server
};

class SetupController {
 public:
  explicit SetupController(LogSink* log = nullptr);

  SetupController(const SetupController&) = delete;
  SetupController& operator=(const SetupController&) = delete;

  /// Unique id; modules key their estimator-binding hash tables with it.
  std::uint32_t id() const { return id_; }

  /// Records the selection criteria for one parameter.
  void set(ParamKind kind, EstimatorChoice choice);

  bool hasCriteria(ParamKind kind) const;
  const std::map<int, EstimatorChoice>& criteria() const { return criteria_; }

  /// Hierarchically applies this setup to `top` and every submodule: for
  /// each requested parameter, selects the best candidate estimator
  /// according to the criteria and binds it; falls back to the null
  /// estimator (with a warning) when no candidate satisfies the request.
  /// Returns the number of (module, parameter) pairs that fell back to null.
  std::size_t apply(Module& top);

  /// Selection for a single module/parameter; exposed for tests. Returns
  /// nullptr when no candidate satisfies the choice.
  static std::shared_ptr<Estimator> select(const Module& module,
                                           ParamKind kind,
                                           const EstimatorChoice& choice);

  LogSink* log() const { return log_; }

 private:
  static std::atomic<std::uint32_t> nextId_;

  std::uint32_t id_;
  std::map<int, EstimatorChoice> criteria_;
  LogSink* log_;
};

}  // namespace vcad
