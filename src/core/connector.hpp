// Connectors tie two ports together and forward events between modules.
//
// A connector is a point-to-point, zero-delay link: exactly one driving
// endpoint and one receiving endpoint (bidirectional ports may play either
// role). Multi-fanout nets and net delays are modelled by explicit modules
// (see fanout.hpp), which keeps the connector semantics trivial and lets a
// designer give different delays to different fanout branches.
//
// The connector also holds the *current value* of the link — independently
// for every scheduler, so concurrent simulations of the same design never
// interfere. Values live in a flat per-slot array of the simulation-state
// arena (see slot_registry.hpp): the hot-path accessors take the owning
// scheduler's (slot, generation) pair and are a single lock-free array
// index; an entry whose stamped generation does not match the reader's
// reads as all-X, which is how released/reset slots are cleared in O(1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/port.hpp"
#include "core/slot_registry.hpp"
#include "core/word.hpp"

namespace vcad {

class Connector {
 public:
  explicit Connector(int width, std::string name = "");
  virtual ~Connector() = default;

  Connector(const Connector&) = delete;
  Connector& operator=(const Connector&) = delete;

  int width() const { return width_; }
  const std::string& name() const { return name_; }

  /// Attaches a port. A connector accepts at most two endpoints; width must
  /// match; at most one pure-In and one pure-Out endpoint make sense, and
  /// two pure-In or two pure-Out endpoints are rejected.
  void attach(Port& port);

  /// The endpoint on the other side of `port`, or nullptr if the connector
  /// is open-ended.
  Port* peerOf(const Port& port) const;

  const std::vector<Port*>& endpoints() const { return endpoints_; }

  /// Hot-path accessors: value as observed by the scheduler owning `slot`
  /// at `generation` (all-X before the run's first event on this link).
  /// Lock-free array indexing — a slot is only ever touched by the thread
  /// running its scheduler, so no synchronization is needed.
  Word value(std::uint32_t slot, std::uint32_t generation) const {
    const SlotValue& e = values_[slot];
    return e.generation == generation ? e.value : Word::allX(width_);
  }
  void setValue(std::uint32_t slot, std::uint32_t generation, const Word& w);

  /// Compat accessors addressed by scheduler id alone: resolve the slot's
  /// current generation through the registry (one atomic load). Simulation
  /// internals use the (slot, generation) fast path instead; these serve
  /// tests and controllers that observe a live scheduler's results.
  Word value(std::uint32_t schedulerId) const {
    return value(schedulerId, SlotRegistry::global().currentGeneration(schedulerId));
  }
  void setValue(std::uint32_t schedulerId, const Word& w) {
    setValue(schedulerId, SlotRegistry::global().currentGeneration(schedulerId), w);
  }

  /// Physically drops the value stored for one slot, or for all slots.
  void clearValue(std::uint32_t slot);
  void clearAllValues();

  /// True when the slot holds a value stamped with its current registry
  /// generation (debug/leak assertions: a finished campaign must leave no
  /// live value behind).
  bool hasLiveValue(std::uint32_t slot) const;

 private:
  struct SlotValue {
    std::uint32_t generation = 0;  // 0 = never written (registry gens >= 1)
    Word value;
  };

  int width_;
  std::string name_;
  std::vector<Port*> endpoints_;
  // One lane per arena slot, sized once at construction so concurrent
  // simulations can never trigger a reallocation race.
  std::vector<SlotValue> values_;
};

/// Single-bit connector for gate-level links.
class BitConnector final : public Connector {
 public:
  explicit BitConnector(std::string name = "") : Connector(1, std::move(name)) {}
};

/// Multi-bit connector for word-level (RTL) links.
class WordConnector final : public Connector {
 public:
  explicit WordConnector(int width, std::string name = "")
      : Connector(width, std::move(name)) {}
};

}  // namespace vcad
