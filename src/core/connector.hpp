// Connectors tie two ports together and forward events between modules.
//
// A connector is a point-to-point, zero-delay link: exactly one driving
// endpoint and one receiving endpoint (bidirectional ports may play either
// role). Multi-fanout nets and net delays are modelled by explicit modules
// (see fanout.hpp), which keeps the connector semantics trivial and lets a
// designer give different delays to different fanout branches.
//
// The connector also holds the *current value* of the link — independently
// for every scheduler, so concurrent simulations of the same design never
// interfere.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/port.hpp"
#include "core/word.hpp"

namespace vcad {

class Connector {
 public:
  explicit Connector(int width, std::string name = "");
  virtual ~Connector() = default;

  Connector(const Connector&) = delete;
  Connector& operator=(const Connector&) = delete;

  int width() const { return width_; }
  const std::string& name() const { return name_; }

  /// Attaches a port. A connector accepts at most two endpoints; width must
  /// match; at most one pure-In and one pure-Out endpoint make sense, and
  /// two pure-In or two pure-Out endpoints are rejected.
  void attach(Port& port);

  /// The endpoint on the other side of `port`, or nullptr if the connector
  /// is open-ended.
  Port* peerOf(const Port& port) const;

  const std::vector<Port*>& endpoints() const { return endpoints_; }

  /// Current value as observed by scheduler `schedulerId`; all-X before the
  /// first event of that scheduler.
  Word value(std::uint32_t schedulerId) const;
  void setValue(std::uint32_t schedulerId, const Word& w);

  /// Drops the per-scheduler value of one scheduler (used when a scheduler
  /// is destroyed) or of all schedulers.
  void clearValue(std::uint32_t schedulerId);
  void clearAllValues();

 private:
  int width_;
  std::string name_;
  std::vector<Port*> endpoints_;

  mutable std::mutex valuesMutex_;
  std::unordered_map<std::uint32_t, Word> values_;
};

/// Single-bit connector for gate-level links.
class BitConnector final : public Connector {
 public:
  explicit BitConnector(std::string name = "") : Connector(1, std::move(name)) {}
};

/// Multi-bit connector for word-level (RTL) links.
class WordConnector final : public Connector {
 public:
  explicit WordConnector(int width, std::string name = "")
      : Connector(width, std::move(name)) {}
};

}  // namespace vcad
