// Small thread-safe diagnostic log used by the framework for warnings
// (e.g. a setup request that falls back to the null estimator) and for the
// security audit trail of the RMI layer.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace vcad {

enum class Severity { Info, Warning, Error, Security };

struct LogEntry {
  Severity severity;
  std::string message;
};

class LogSink {
 public:
  void log(Severity s, std::string msg) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(LogEntry{s, std::move(msg)});
  }

  void info(std::string msg) { log(Severity::Info, std::move(msg)); }
  void warning(std::string msg) { log(Severity::Warning, std::move(msg)); }
  void error(std::string msg) { log(Severity::Error, std::move(msg)); }
  void security(std::string msg) { log(Severity::Security, std::move(msg)); }

  std::vector<LogEntry> entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
  }

  std::size_t count(Severity s) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& e : entries_) {
      if (e.severity == s) ++n;
    }
    return n;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<LogEntry> entries_;
};

}  // namespace vcad
