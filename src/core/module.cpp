#include "core/module.hpp"

#include <stdexcept>

#include "core/connector.hpp"
#include "core/setup.hpp"

namespace vcad {

Module::Module(std::string name) : name_(std::move(name)) {
  stateSlots_.resize(SlotRegistry::kCapacity);
}

Module::~Module() = default;

// --- ports -----------------------------------------------------------

Port& Module::addInput(std::string portName, Connector& conn) {
  Port& p = addPort(std::move(portName), PortDir::In, conn.width());
  conn.attach(p);
  return p;
}

Port& Module::addOutput(std::string portName, Connector& conn) {
  Port& p = addPort(std::move(portName), PortDir::Out, conn.width());
  conn.attach(p);
  return p;
}

Port& Module::addInOut(std::string portName, Connector& conn) {
  Port& p = addPort(std::move(portName), PortDir::InOut, conn.width());
  conn.attach(p);
  return p;
}

Port& Module::addPort(std::string portName, PortDir dir, int width) {
  if (findPort(portName) != nullptr) {
    throw std::logic_error("Module '" + name_ + "' already has a port named " +
                           portName);
  }
  ports_.push_back(std::make_unique<Port>(*this, std::move(portName), dir, width));
  return *ports_.back();
}

Port* Module::findPort(const std::string& portName) const {
  for (const auto& p : ports_) {
    if (p->name() == portName) return p.get();
  }
  return nullptr;
}

std::vector<Port*> Module::inputPorts() const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->dir() == PortDir::In) out.push_back(p.get());
  }
  return out;
}

std::vector<Port*> Module::outputPorts() const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->dir() == PortDir::Out) out.push_back(p.get());
  }
  return out;
}

// --- estimation --------------------------------------------------------

void Module::processEstimationToken(const EstimationToken& token,
                                    SimContext& ctx) {
  std::shared_ptr<Estimator> est = NullEstimator::instance();
  if (ctx.setup != nullptr) {
    est = boundEstimator(ctx.setup->id(), token.kind());
  }
  EstimationContext ectx;
  ectx.module = this;
  ectx.scheduler = &ctx.scheduler;
  ectx.setup = ctx.setup;
  token.sink().collect(*this, token.kind(), est->estimate(ectx));
}

void Module::addEstimator(ParamKind kind, std::shared_ptr<Estimator> estimator) {
  if (!estimator) {
    throw std::invalid_argument("addEstimator: null estimator");
  }
  std::lock_guard<std::mutex> lock(estimatorMutex_);
  candidates_[static_cast<int>(kind)].push_back(std::move(estimator));
}

const std::vector<std::shared_ptr<Estimator>>& Module::candidateEstimators(
    ParamKind kind) const {
  static const std::vector<std::shared_ptr<Estimator>> kEmpty;
  std::lock_guard<std::mutex> lock(estimatorMutex_);
  auto it = candidates_.find(static_cast<int>(kind));
  return it != candidates_.end() ? it->second : kEmpty;
}

void Module::bindEstimator(std::uint32_t setupId, ParamKind kind,
                           std::shared_ptr<Estimator> estimator) {
  std::lock_guard<std::mutex> lock(estimatorMutex_);
  bindings_[setupId][static_cast<int>(kind)] = std::move(estimator);
}

std::shared_ptr<Estimator> Module::boundEstimator(std::uint32_t setupId,
                                                  ParamKind kind) const {
  std::lock_guard<std::mutex> lock(estimatorMutex_);
  auto bit = bindings_.find(setupId);
  if (bit != bindings_.end()) {
    auto eit = bit->second.find(static_cast<int>(kind));
    if (eit != bit->second.end()) return eit->second;
  }
  return NullEstimator::instance();
}

// --- hierarchy -----------------------------------------------------------

void Module::visitLeaves(const std::function<void(Module&)>& fn) { fn(*this); }

// --- helpers ---------------------------------------------------------

void Module::emit(SimContext& ctx, Port& out, const Word& value,
                  SimTime delay) {
  if (!out.canDrive()) {
    throw std::logic_error("Module '" + name_ + "' cannot drive input port " +
                           out.fullName());
  }
  Connector* conn = out.connector();
  if (conn == nullptr) {
    // Open port: record the value so tests / controllers can observe it.
    liveSlot(ctx.scheduler.slot(), ctx.scheduler.slotGeneration())
        .openPorts[out.name()] = value;
    return;
  }
  Port* peer = conn->peerOf(out);
  if (peer == nullptr || !peer->canReceive()) {
    // Open-ended connector (e.g. an observation point): latch the value at
    // the scheduled time.
    ctx.scheduler.schedule(std::make_unique<LatchToken>(*conn, value), delay);
    return;
  }
  ctx.scheduler.schedule(std::make_unique<SignalToken>(*peer, value), delay);
}

void Module::selfSchedule(SimContext& ctx, SimTime delay, int tag) {
  ctx.scheduler.schedule(std::make_unique<SelfToken>(*this, tag), delay);
}

Word Module::readInput(const SimContext& ctx, const Port& in) const {
  const Connector* conn = in.connector();
  if (conn == nullptr) return Word::allX(in.width());
  return conn->value(ctx.scheduler.slot(), ctx.scheduler.slotGeneration());
}

Word Module::lastDriven(const SimContext& ctx, const Port& out) const {
  // Read-only: a stale lane is left untouched and reads as all-X.
  const StateSlot& e = stateSlots_[ctx.scheduler.slot()];
  if (e.generation == ctx.scheduler.slotGeneration()) {
    auto pit = e.openPorts.find(out.name());
    if (pit != e.openPorts.end()) return pit->second;
  }
  return Word::allX(out.width());
}

void Module::clearAllState() {
  for (StateSlot& e : stateSlots_) {
    e.generation = 0;
    e.state.reset();
    e.openPorts.clear();
  }
}

void Module::clearStateFor(std::uint32_t slot) {
  if (slot >= stateSlots_.size()) return;
  StateSlot& e = stateSlots_[slot];
  e.generation = 0;
  e.state.reset();
  e.openPorts.clear();
}

bool Module::hasLiveStateFor(std::uint32_t slot) const {
  const StateSlot& e = stateSlots_[slot];
  if (e.generation == 0) return false;
  if (e.generation != SlotRegistry::global().currentGeneration(slot)) {
    return false;
  }
  return e.state != nullptr || !e.openPorts.empty();
}

}  // namespace vcad
