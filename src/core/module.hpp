// Module: the base class of every design component (JFP ModuleSkeleton).
//
// A module is specialized by (a) a set of methods executed when events reach
// it — processInputEvent() for functionality, processEstimationToken() for
// cost-metric evaluation — and (b) a set of ports identifying its
// connections.
//
// Per-simulation internal state is never stored in plain member variables:
// it lives in the slot-indexed state arena (state()), one flat lane per
// scheduler slot, so that concurrent simulations of the same design in
// different schedulers cannot interfere. Lanes are validated against the
// owning scheduler's slot generation: a stale lane (its scheduler was
// destroyed or reset()) is lazily dropped and rebuilt on first touch, so no
// explicit clearing is needed between runs. Access is lock-free — a slot is
// only ever touched by the thread running its scheduler.
//
// Estimator management follows the paper: providers register *candidate*
// estimators with addEstimator(); a SetupController then *binds* one
// estimator per parameter per setup, stored in a per-module hash table keyed
// by the setup's id; during simulation the current setup travels with every
// token, enabling runtime retrieval of the bound estimator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/estimation.hpp"
#include "core/port.hpp"
#include "core/scheduler.hpp"
#include "core/sim_time.hpp"
#include "core/slot_registry.hpp"
#include "core/token.hpp"

namespace vcad {

class Connector;

/// Base for per-scheduler module state (register contents, pattern buffers,
/// counters, ...). Subclasses are created lazily on first access.
class ModuleState {
 public:
  virtual ~ModuleState() = default;
};

class Module {
 public:
  explicit Module(std::string name);
  virtual ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // --- ports ---------------------------------------------------------------

  /// Creates a port and attaches it to `conn`. Width is taken from the
  /// connector.
  Port& addInput(std::string portName, Connector& conn);
  Port& addOutput(std::string portName, Connector& conn);
  Port& addInOut(std::string portName, Connector& conn);

  /// Creates an unconnected port of explicit width.
  Port& addPort(std::string portName, PortDir dir, int width);

  const std::vector<std::unique_ptr<Port>>& ports() const { return ports_; }
  Port* findPort(const std::string& portName) const;
  std::vector<Port*> inputPorts() const;
  std::vector<Port*> outputPorts() const;

  // --- simulation interface --------------------------------------------

  /// Called once per scheduler before events flow (stimulus sources use it
  /// to schedule their first self event).
  virtual void initialize(SimContext& /*ctx*/) {}

  /// Functional behaviour: a new value arrived at input port
  /// `token.target()`. Default: ignore.
  virtual void processInputEvent(const SignalToken& /*token*/,
                                 SimContext& /*ctx*/) {}

  /// Self-scheduled wake-up (see selfSchedule()). Default: ignore.
  virtual void processSelfEvent(const SelfToken& /*token*/,
                                SimContext& /*ctx*/) {}

  /// Estimation request: evaluates the parameter with the estimator bound
  /// by the context's setup (or the null estimator) and deposits the result
  /// in the token's sink. Subclasses rarely need to override this.
  virtual void processEstimationToken(const EstimationToken& token,
                                      SimContext& ctx);

  // --- estimators --------------------------------------------------------

  /// Registers a candidate estimator for a parameter (typically called from
  /// the component constructor by the IP provider).
  void addEstimator(ParamKind kind, std::shared_ptr<Estimator> estimator);

  const std::vector<std::shared_ptr<Estimator>>& candidateEstimators(
      ParamKind kind) const;

  /// Binds the estimator a given setup selected for a parameter. Called by
  /// SetupController::apply().
  void bindEstimator(std::uint32_t setupId, ParamKind kind,
                     std::shared_ptr<Estimator> estimator);

  /// The estimator bound for (setup, parameter); the shared null estimator
  /// when nothing was bound.
  std::shared_ptr<Estimator> boundEstimator(std::uint32_t setupId,
                                            ParamKind kind) const;

  // --- hierarchy ---------------------------------------------------------

  /// Invokes `fn` on every *leaf* module reachable from this one. For plain
  /// modules that is the module itself; Circuit overrides this to recurse.
  virtual void visitLeaves(const std::function<void(Module&)>& fn);

  // --- helpers for subclasses --------------------------------------------

  /// Drives `value` on output port `out`: updates the attached connector and
  /// schedules a SignalToken at the peer port after `delay` ticks. Values
  /// driven on open (unconnected) ports are recorded per scheduler and can
  /// be read back with lastDriven().
  void emit(SimContext& ctx, Port& out, const Word& value, SimTime delay = 0);

  /// Schedules a SelfToken for this module `delay` ticks from now.
  void selfSchedule(SimContext& ctx, SimTime delay, int tag = 0);

  /// Current value at an input port, as seen by the context's scheduler.
  Word readInput(const SimContext& ctx, const Port& in) const;

  /// Last value driven on an *unconnected* output port by the context's
  /// scheduler (all-X if never driven).
  Word lastDriven(const SimContext& ctx, const Port& out) const;

  /// Per-scheduler state accessor. S must derive from ModuleState and be
  /// default-constructible; it is created on first access by each run. The
  /// (slot, generation) overload is the lock-free simulation path; the
  /// by-scheduler-id overload resolves the current generation through the
  /// registry for tests/controllers observing a live scheduler.
  template <typename S>
  S& state(const SimContext& ctx);
  template <typename S>
  S& stateFor(std::uint32_t slot, std::uint32_t generation);
  template <typename S>
  S& stateFor(std::uint32_t schedulerId);

  /// Physically drops per-slot state (all slots).
  void clearAllState();

  /// Physically drops the state one slot accumulated in this module.
  /// Generation bumps already clear state *logically*; campaigns call this
  /// at the end so long-lived designs do not pin the last run's objects.
  void clearStateFor(std::uint32_t slot);

  /// True when the slot holds state stamped with its current registry
  /// generation (debug/leak assertions).
  bool hasLiveStateFor(std::uint32_t slot) const;

 private:
  /// One arena lane: module state and open-port values a scheduler slot
  /// wrote, stamped with the slot generation current at write time. A lane
  /// whose generation does not match the accessing run's is stale and is
  /// dropped before reuse.
  struct StateSlot {
    std::uint32_t generation = 0;  // 0 = never written
    std::unique_ptr<ModuleState> state;
    std::unordered_map<std::string, Word> openPorts;
  };

  /// Write-path lane accessor: invalidates a stale lane and stamps the
  /// caller's generation.
  StateSlot& liveSlot(std::uint32_t slot, std::uint32_t generation) {
    StateSlot& e = stateSlots_[slot];
    if (e.generation != generation) {
      e.state.reset();
      e.openPorts.clear();
      e.generation = generation;
    }
    return e;
  }

  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;

  // One lane per arena slot, sized once at construction (reallocation under
  // concurrent slot owners would be a race).
  std::vector<StateSlot> stateSlots_;

  mutable std::mutex estimatorMutex_;
  std::unordered_map<int, std::vector<std::shared_ptr<Estimator>>> candidates_;
  // Key: setup id. "Inside each module, a hash table, whose key is a setup
  // controller, stores the relevant estimators."
  std::unordered_map<std::uint32_t,
                     std::unordered_map<int, std::shared_ptr<Estimator>>>
      bindings_;
};

// --- template implementation ------------------------------------------

template <typename S>
S& Module::stateFor(std::uint32_t slot, std::uint32_t generation) {
  static_assert(std::is_base_of_v<ModuleState, S>,
                "S must derive from ModuleState");
  StateSlot& e = liveSlot(slot, generation);
  if (!e.state) e.state = std::make_unique<S>();
  S* typed = dynamic_cast<S*>(e.state.get());
  if (typed == nullptr) {
    throw std::logic_error("Module '" + name_ +
                           "': inconsistent state type for scheduler " +
                           std::to_string(slot));
  }
  return *typed;
}

template <typename S>
S& Module::stateFor(std::uint32_t schedulerId) {
  return stateFor<S>(schedulerId,
                     SlotRegistry::global().currentGeneration(schedulerId));
}

template <typename S>
S& Module::state(const SimContext& ctx) {
  return stateFor<S>(ctx.scheduler.slot(), ctx.scheduler.slotGeneration());
}

}  // namespace vcad
