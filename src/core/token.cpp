#include "core/token.hpp"

#include <stdexcept>

#include "core/connector.hpp"
#include "core/module.hpp"
#include "core/port.hpp"
#include "core/scheduler.hpp"

namespace vcad {

// --- SignalToken ---------------------------------------------------------

SignalToken::SignalToken(Port& target, Word value)
    : target_(&target), value_(std::move(value)) {
  if (!target.canReceive()) {
    throw std::logic_error("SignalToken target " + target.fullName() +
                           " is a pure output port");
  }
  if (value_.width() != target.width()) {
    throw std::invalid_argument("SignalToken value width " +
                                std::to_string(value_.width()) +
                                " does not match port " + target.fullName());
  }
}

void SignalToken::deliver(SimContext& ctx) {
  // The value becomes observable on the link at delivery time. Lock-free
  // arena write: the delivering scheduler owns its slot.
  if (Connector* conn = target_->connector()) {
    conn->setValue(ctx.scheduler.slot(), ctx.scheduler.slotGeneration(),
                   value_);
  }
  Module& m = target_->module();
  // Fault-injection hook: if the simulation controller installed an output
  // override for this module on this scheduler, force the faulty output
  // configuration instead of executing the module's event handling.
  if (const auto* ov = ctx.scheduler.findOverride(m)) {
    for (const auto& o : *ov) {
      m.emit(ctx, *o.port, o.value);
    }
    return;
  }
  m.processInputEvent(*this, ctx);
}

std::string SignalToken::describe() const {
  return "signal " + value_.toString() + " -> " + target_->fullName();
}

// --- LatchToken ------------------------------------------------------------

LatchToken::LatchToken(Connector& conn, Word value)
    : conn_(&conn), value_(std::move(value)) {}

void LatchToken::deliver(SimContext& ctx) {
  conn_->setValue(ctx.scheduler.slot(), ctx.scheduler.slotGeneration(),
                  value_);
}

std::string LatchToken::describe() const {
  return "latch " + value_.toString() + " -> " + conn_->name();
}

// --- SelfToken -----------------------------------------------------------

SelfToken::SelfToken(Module& target, int tag) : target_(&target), tag_(tag) {}

void SelfToken::deliver(SimContext& ctx) { target_->processSelfEvent(*this, ctx); }

std::string SelfToken::describe() const {
  return "self(" + std::to_string(tag_) + ") -> " + target_->name();
}

// --- EstimationToken -----------------------------------------------------

EstimationToken::EstimationToken(Module& target, ParamKind kind,
                                 EstimationSink& sink)
    : target_(&target), kind_(kind), sink_(&sink) {}

void EstimationToken::deliver(SimContext& ctx) {
  target_->processEstimationToken(*this, ctx);
}

std::string EstimationToken::describe() const {
  return "estimate " + vcad::toString(kind_) + " -> " + target_->name();
}

}  // namespace vcad
