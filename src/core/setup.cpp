#include "core/setup.hpp"

#include "core/module.hpp"

namespace vcad {

std::atomic<std::uint32_t> SetupController::nextId_{1};

std::string toString(Criterion c) {
  switch (c) {
    case Criterion::BestAccuracy:
      return "best-accuracy";
    case Criterion::LowestCost:
      return "lowest-cost";
    case Criterion::FastestCpu:
      return "fastest-cpu";
    case Criterion::ByName:
      return "by-name";
  }
  return "?";
}

SetupController::SetupController(LogSink* log)
    : id_(nextId_.fetch_add(1)), log_(log) {}

void SetupController::set(ParamKind kind, EstimatorChoice choice) {
  criteria_[static_cast<int>(kind)] = std::move(choice);
}

bool SetupController::hasCriteria(ParamKind kind) const {
  return criteria_.count(static_cast<int>(kind)) > 0;
}

std::shared_ptr<Estimator> SetupController::select(
    const Module& module, ParamKind kind, const EstimatorChoice& choice) {
  std::shared_ptr<Estimator> best;
  for (const auto& cand : module.candidateEstimators(kind)) {
    const EstimatorInfo& info = cand->info();
    if (choice.criterion == Criterion::ByName && info.name != choice.name) {
      continue;
    }
    if (info.costPerUseCents > choice.maxCostCents) continue;
    if (info.expectedErrorPct > choice.maxErrorPct) continue;
    if (info.remote && !choice.allowRemote) continue;
    if (!best) {
      best = cand;
      continue;
    }
    const EstimatorInfo& b = best->info();
    bool better = false;
    switch (choice.criterion) {
      case Criterion::BestAccuracy:
        better = info.expectedErrorPct < b.expectedErrorPct;
        break;
      case Criterion::LowestCost:
        better = info.costPerUseCents < b.costPerUseCents ||
                 (info.costPerUseCents == b.costPerUseCents &&
                  info.expectedErrorPct < b.expectedErrorPct);
        break;
      case Criterion::FastestCpu:
        better = info.expectedCpuSecs < b.expectedCpuSecs ||
                 (info.expectedCpuSecs == b.expectedCpuSecs &&
                  info.expectedErrorPct < b.expectedErrorPct);
        break;
      case Criterion::ByName:
        better = false;  // first name match wins
        break;
    }
    if (better) best = cand;
  }
  return best;
}

std::size_t SetupController::apply(Module& top) {
  std::size_t fallbacks = 0;
  top.visitLeaves([&](Module& m) {
    for (const auto& [kindInt, choice] : criteria_) {
      const auto kind = static_cast<ParamKind>(kindInt);
      std::shared_ptr<Estimator> est = select(m, kind, choice);
      if (!est) {
        ++fallbacks;
        if (log_ != nullptr) {
          log_->warning("setup " + std::to_string(id_) + ": no estimator for " +
                        toString(kind) + " on module '" + m.name() +
                        "' satisfies the request (criterion " +
                        vcad::toString(choice.criterion) +
                        "); binding null estimator");
        }
        est = NullEstimator::instance();
      }
      m.bindEstimator(id_, kind, std::move(est));
    }
  });
  return fallbacks;
}

}  // namespace vcad
