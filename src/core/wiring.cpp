#include "core/wiring.hpp"

#include <stdexcept>

#include "core/connector.hpp"

namespace vcad {

Buffer::Buffer(std::string name, Connector& in, Connector& out)
    : Module(std::move(name)) {
  if (in.width() != out.width()) {
    throw std::invalid_argument("Buffer '" + this->name() +
                                "': width mismatch between connectors");
  }
  in_ = &addInput("in", in);
  out_ = &addOutput("out", out);
}

void Buffer::processInputEvent(const SignalToken& token, SimContext& ctx) {
  emit(ctx, *out_, token.value());
}

Fanout::Fanout(std::string name, Connector& in, std::vector<Branch> branches)
    : Module(std::move(name)) {
  in_ = &addInput("in", in);
  if (branches.empty()) {
    throw std::invalid_argument("Fanout '" + this->name() +
                                "' needs at least one branch");
  }
  int i = 0;
  for (const Branch& b : branches) {
    if (b.conn == nullptr) {
      throw std::invalid_argument("Fanout branch connector is null");
    }
    if (b.conn->width() != in.width()) {
      throw std::invalid_argument("Fanout '" + this->name() +
                                  "': branch width mismatch");
    }
    Port& p = addOutput("out" + std::to_string(i++), *b.conn);
    branchPorts_.emplace_back(&p, b.delay);
  }
}

void Fanout::processInputEvent(const SignalToken& token, SimContext& ctx) {
  for (auto& [port, delay] : branchPorts_) {
    emit(ctx, *port, token.value(), delay);
  }
}

Delay::Delay(std::string name, Connector& in, Connector& out, SimTime delay)
    : Module(std::move(name)), delay_(delay) {
  if (in.width() != out.width()) {
    throw std::invalid_argument("Delay '" + this->name() +
                                "': width mismatch between connectors");
  }
  in_ = &addInput("in", in);
  out_ = &addOutput("out", out);
}

void Delay::processInputEvent(const SignalToken& token, SimContext& ctx) {
  emit(ctx, *out_, token.value(), delay_);
}

}  // namespace vcad
