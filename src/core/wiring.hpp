// Structural plumbing modules.
//
// Connectors are point-to-point and zero-delay, so multi-fanout nets and net
// delays are represented by explicit modules. This gives the designer a high
// degree of flexibility: a custom fanout module can, for instance, propagate
// a signal toward different target connectors with different delays.
#pragma once

#include <vector>

#include "core/module.hpp"

namespace vcad {

/// Zero-delay buffer: forwards every input word to its output. Also serves
/// as the hierarchy bridge between an outer and an inner connector.
class Buffer final : public Module {
 public:
  Buffer(std::string name, Connector& in, Connector& out);
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  Port* in_;
  Port* out_;
};

/// One-input, N-output fanout with an optional per-branch delay.
class Fanout final : public Module {
 public:
  struct Branch {
    Connector* conn;
    SimTime delay = 0;
  };

  Fanout(std::string name, Connector& in, std::vector<Branch> branches);
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

  std::size_t branchCount() const { return branchPorts_.size(); }

 private:
  Port* in_;
  std::vector<std::pair<Port*, SimTime>> branchPorts_;
};

/// Pure transport delay: forwards input to output after `delay` ticks.
class Delay final : public Module {
 public:
  Delay(std::string name, Connector& in, Connector& out, SimTime delay);
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

  SimTime delay() const { return delay_; }

 private:
  Port* in_;
  Port* out_;
  SimTime delay_;
};

}  // namespace vcad
