// SlotRegistry: the lease manager of the simulation-state arena.
//
// Every Scheduler leases one dense slot index for its lifetime; Connector
// values, Module state and open-port values live in flat per-slot arrays
// indexed by that slot, so hot-path access is a plain array index with no
// lock and no hash lookup. Slots are recycled through a free list when a
// scheduler is destroyed, which keeps the arena bounded no matter how many
// short-lived schedulers a fault campaign churns through.
//
// Staleness is handled with generations instead of traversal: each slot
// carries a monotonically increasing generation (starting at 1; a stored
// generation of 0 means "never written"). State entries stamp the
// generation current at write time; a read whose generation does not match
// sees all-X / empty. release() and renew() bump the generation, which
// logically clears every entry the slot ever touched in O(1) — no walk over
// the design is needed to reuse a slot or reset() a scheduler.
//
// Thread-ownership rule: a leased slot's arena entries are only ever touched
// by the thread currently running its scheduler. acquire()/release() are
// serialized by the registry mutex, and handing a pooled scheduler to a
// worker thread synchronizes through the pool's own barrier, so no per-entry
// synchronization is needed on the simulation path.
//
// The registry is process-global rather than per-Circuit: connectors and
// modules size their slot arrays from kCapacity at construction, before they
// are adopted into any circuit, and a scheduler may drive designs spanning
// several circuits (hierarchies, test rigs), so the lease space must be
// shared by everything a scheduler can touch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vcad {

class SlotRegistry {
 public:
  /// Upper bound on concurrently live schedulers. Arena arrays are sized to
  /// this at construction so they never reallocate (reallocation under a
  /// concurrent reader would be a race). 128 comfortably covers the widest
  /// existing consumer (a 64-pattern batch plus a worker pool) while keeping
  /// the per-connector footprint in the kilobytes.
  static constexpr std::uint32_t kCapacity = 128;

  struct Lease {
    std::uint32_t slot;
    std::uint32_t generation;
  };

  SlotRegistry();

  SlotRegistry(const SlotRegistry&) = delete;
  SlotRegistry& operator=(const SlotRegistry&) = delete;

  /// Leases a free slot. Throws std::runtime_error when all slots are in
  /// use — the arena fails loudly instead of silently corrupting state.
  Lease acquire();

  /// Returns a slot to the free list and bumps its generation, logically
  /// clearing every arena entry the leaseholder wrote.
  void release(std::uint32_t slot);

  /// Bumps the generation of a live slot (Scheduler::reset()): O(1) logical
  /// clear of the slot's state without giving the slot up. Returns the new
  /// generation. Owner-thread only.
  std::uint32_t renew(std::uint32_t slot);

  /// Current generation of a slot. Used by the by-scheduler-id compat
  /// accessors; throws std::out_of_range for slot >= kCapacity.
  std::uint32_t currentGeneration(std::uint32_t slot) const;

  // --- metrics -----------------------------------------------------------

  /// Slots currently leased.
  std::uint32_t leased() const;
  /// High-water mark of concurrently leased slots since the last
  /// restartPeakTracking() call.
  std::uint32_t peakLeased() const;
  /// Total acquire() calls over the registry's lifetime.
  std::uint64_t totalLeases() const;
  /// Resets the peak to the current leased count (campaigns call this at
  /// start so peakLeased() reports their own concurrency).
  void restartPeakTracking();

  static SlotRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint32_t> freeList_;  // LIFO; back() is leased next
  std::uint32_t leased_ = 0;
  std::uint32_t peakLeased_ = 0;
  std::uint64_t totalLeases_ = 0;
  // Atomic because compat accessors read generations from threads other
  // than the one releasing/renewing; the hot path never touches these (the
  // scheduler caches its generation at lease/renew time).
  std::array<std::atomic<std::uint32_t>, kCapacity> generations_;
};

}  // namespace vcad
