#include "core/connector.hpp"

#include <stdexcept>

namespace vcad {

Connector::Connector(int width, std::string name)
    : width_(width), name_(std::move(name)) {
  if (width <= 0 || width > Word::kMaxWidth) {
    throw std::invalid_argument("Connector width out of range: " +
                                std::to_string(width));
  }
  values_.resize(SlotRegistry::kCapacity);
}

void Connector::attach(Port& port) {
  if (port.width() != width_) {
    throw std::invalid_argument("Connector '" + name_ + "' width " +
                                std::to_string(width_) +
                                " does not match port " + port.fullName() +
                                " width " + std::to_string(port.width()));
  }
  if (endpoints_.size() >= 2) {
    throw std::logic_error("Connector '" + name_ +
                           "' is point-to-point: already has two endpoints");
  }
  if (port.connector() != nullptr) {
    throw std::logic_error("Port " + port.fullName() +
                           " is already attached to a connector");
  }
  if (endpoints_.size() == 1) {
    const Port& other = *endpoints_.front();
    const bool bothPureIn =
        other.dir() == PortDir::In && port.dir() == PortDir::In;
    const bool bothPureOut =
        other.dir() == PortDir::Out && port.dir() == PortDir::Out;
    if (bothPureIn || bothPureOut) {
      throw std::logic_error("Connector '" + name_ +
                             "' would tie two ports of the same direction: " +
                             other.fullName() + " and " + port.fullName());
    }
  }
  endpoints_.push_back(&port);
  port.connector_ = this;
}

Port* Connector::peerOf(const Port& port) const {
  for (Port* p : endpoints_) {
    if (p != &port) return p;
  }
  return nullptr;
}

void Connector::setValue(std::uint32_t slot, std::uint32_t generation,
                         const Word& w) {
  if (w.width() != width_) {
    throw std::invalid_argument("Connector '" + name_ + "': value width " +
                                std::to_string(w.width()) +
                                " does not match connector width " +
                                std::to_string(width_));
  }
  SlotValue& e = values_[slot];
  e.generation = generation;
  e.value = w;
}

void Connector::clearValue(std::uint32_t slot) {
  if (slot >= values_.size()) return;
  values_[slot].generation = 0;
}

void Connector::clearAllValues() {
  for (SlotValue& e : values_) e.generation = 0;
}

bool Connector::hasLiveValue(std::uint32_t slot) const {
  const SlotValue& e = values_[slot];
  return e.generation != 0 &&
         e.generation == SlotRegistry::global().currentGeneration(slot);
}

}  // namespace vcad
