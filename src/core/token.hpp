// Tokens are the superclass of every event handled by a scheduler.
//
// Tokens do more than represent functional events (signal value changes):
// they are a general message-passing mechanism used to traverse the design,
// collect information from modules (estimation tokens), and let modules
// schedule events for themselves (self tokens, e.g. for clock generators).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/estimation.hpp"
#include "core/sim_time.hpp"
#include "core/word.hpp"

namespace vcad {

class Connector;
class Module;
class Port;
class Scheduler;
class SetupController;

/// Context handed to modules with every dispatched token. Carries the
/// dispatching scheduler (modules may only schedule new tokens on it — the
/// no-interference rule) and the active estimation setup.
struct SimContext {
  Scheduler& scheduler;
  const SetupController* setup = nullptr;
};

class Token {
 public:
  virtual ~Token() = default;

  SimTime time() const { return time_; }

  /// Dispatches the token to its target. Called by the owning scheduler.
  virtual void deliver(SimContext& ctx) = 0;

  virtual std::string describe() const = 0;

 private:
  friend class Scheduler;  // stamps the delivery time at schedule()
  SimTime time_ = 0;
};

/// A functional event: a new word value arriving at a module input port.
class SignalToken final : public Token {
 public:
  SignalToken(Port& target, Word value);

  Port& target() const { return *target_; }
  const Word& value() const { return value_; }

  void deliver(SimContext& ctx) override;
  std::string describe() const override;

 private:
  Port* target_;
  Word value_;
};

/// A self-scheduled event: a module waking itself up (clock generators,
/// autonomous stimulus sources). `tag` disambiguates multiple pending
/// self-events.
class SelfToken final : public Token {
 public:
  SelfToken(Module& target, int tag);

  Module& target() const { return *target_; }
  int tag() const { return tag_; }

  void deliver(SimContext& ctx) override;
  std::string describe() const override;

 private:
  Module* target_;
  int tag_;
};

/// Latches a value onto an open-ended connector (an observation point with
/// no receiving module) at its delivery time, so emissions into taps respect
/// simulated time exactly like emissions into module ports.
class LatchToken final : public Token {
 public:
  LatchToken(Connector& conn, Word value);

  void deliver(SimContext& ctx) override;
  std::string describe() const override;

 private:
  Connector* conn_;
  Word value_;
};

/// Collects estimation results as estimation tokens traverse the design.
class EstimationSink {
 public:
  virtual ~EstimationSink() = default;
  virtual void collect(Module& module, ParamKind kind,
                       std::unique_ptr<ParamValue> value) = 0;
};

/// An estimation event: asks a module to evaluate one of its parameters
/// using the estimator bound by the current setup, and to deposit the result
/// in the sink.
class EstimationToken final : public Token {
 public:
  EstimationToken(Module& target, ParamKind kind, EstimationSink& sink);

  Module& target() const { return *target_; }
  ParamKind kind() const { return kind_; }
  EstimationSink& sink() const { return *sink_; }

  void deliver(SimContext& ctx) override;
  std::string describe() const override;

 private:
  Module* target_;
  ParamKind kind_;
  EstimationSink* sink_;
};

}  // namespace vcad
