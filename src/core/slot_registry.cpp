#include "core/slot_registry.hpp"

#include <stdexcept>
#include <string>

namespace vcad {

SlotRegistry::SlotRegistry() {
  // Slot 0 is reserved so no scheduler ever reports id 0 (ids historically
  // started at 1, and 0 reads naturally as "no scheduler" in diagnostics).
  freeList_.reserve(kCapacity - 1);
  for (std::uint32_t s = kCapacity; s-- > 1;) freeList_.push_back(s);
  for (auto& g : generations_) g.store(1, std::memory_order_relaxed);
}

SlotRegistry::Lease SlotRegistry::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (freeList_.empty()) {
    throw std::runtime_error(
        "SlotRegistry: out of scheduler slots (capacity " +
        std::to_string(kCapacity) +
        "): too many concurrently live Schedulers — destroy or reset() "
        "finished simulations before creating more");
  }
  const std::uint32_t slot = freeList_.back();
  freeList_.pop_back();
  ++leased_;
  ++totalLeases_;
  if (leased_ > peakLeased_) peakLeased_ = leased_;
  return Lease{slot, generations_[slot].load(std::memory_order_relaxed)};
}

void SlotRegistry::release(std::uint32_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot == 0 || slot >= kCapacity) {
    throw std::out_of_range("SlotRegistry::release: bad slot " +
                            std::to_string(slot));
  }
  // Invalidate everything the leaseholder wrote: entries stamped with the
  // old generation no longer match and read as all-X / empty.
  generations_[slot].fetch_add(1, std::memory_order_release);
  freeList_.push_back(slot);
  --leased_;
}

std::uint32_t SlotRegistry::renew(std::uint32_t slot) {
  if (slot >= kCapacity) {
    throw std::out_of_range("SlotRegistry::renew: bad slot " +
                            std::to_string(slot));
  }
  return generations_[slot].fetch_add(1, std::memory_order_release) + 1;
}

std::uint32_t SlotRegistry::currentGeneration(std::uint32_t slot) const {
  if (slot >= kCapacity) {
    throw std::out_of_range(
        "SlotRegistry: scheduler id " + std::to_string(slot) +
        " exceeds arena capacity " + std::to_string(kCapacity));
  }
  return generations_[slot].load(std::memory_order_acquire);
}

std::uint32_t SlotRegistry::leased() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leased_;
}

std::uint32_t SlotRegistry::peakLeased() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peakLeased_;
}

std::uint64_t SlotRegistry::totalLeases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totalLeases_;
}

void SlotRegistry::restartPeakTracking() {
  std::lock_guard<std::mutex> lock(mutex_);
  peakLeased_ = leased_;
}

SlotRegistry& SlotRegistry::global() {
  static SlotRegistry registry;
  return registry;
}

}  // namespace vcad
