#include "core/slot_registry.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad {

namespace {
struct SlotMetrics {
  obs::Registry::MetricId acquired, released, renewed, exhaustions;
  obs::Registry::MetricId leased, peakLeased;

  static const SlotMetrics& get() {
    static const SlotMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return SlotMetrics{r.counter("slots.acquired"),
                         r.counter("slots.released"),
                         r.counter("slots.renewed"),
                         r.counter("slots.exhaustions"),
                         r.gauge("slots.leased"),
                         r.gauge("slots.peakLeased")};
    }();
    return m;
  }
};
}  // namespace

SlotRegistry::SlotRegistry() {
  // Slot 0 is reserved so no scheduler ever reports id 0 (ids historically
  // started at 1, and 0 reads naturally as "no scheduler" in diagnostics).
  freeList_.reserve(kCapacity - 1);
  for (std::uint32_t s = kCapacity; s-- > 1;) freeList_.push_back(s);
  for (auto& g : generations_) g.store(1, std::memory_order_relaxed);
}

SlotRegistry::Lease SlotRegistry::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  const SlotMetrics& ids = SlotMetrics::get();
  obs::Registry& reg = obs::Registry::global();
  if (freeList_.empty()) {
    reg.add(ids.exhaustions);
    if (obs::Tracer::global().enabled()) {
      obs::Tracer::global().instant(
          "slots.exhausted", "slots",
          {{"capacity", static_cast<double>(kCapacity)}});
    }
    throw std::runtime_error(
        "SlotRegistry: out of scheduler slots (capacity " +
        std::to_string(kCapacity) +
        "): too many concurrently live Schedulers — destroy or reset() "
        "finished simulations before creating more");
  }
  const std::uint32_t slot = freeList_.back();
  freeList_.pop_back();
  ++leased_;
  ++totalLeases_;
  if (leased_ > peakLeased_) peakLeased_ = leased_;
  reg.add(ids.acquired);
  reg.setGauge(ids.leased, leased_);
  reg.maxGauge(ids.peakLeased, leased_);
  // Verbose-only: the serial injection engine leases a slot per injected
  // fault, so these fire thousands of times per campaign.
  if (obs::Tracer::global().verbose()) {
    obs::Tracer::global().instant(
        "slots.acquire", "slots",
        {{"slot", static_cast<double>(slot)},
         {"leased", static_cast<double>(leased_)}});
  }
  return Lease{slot, generations_[slot].load(std::memory_order_relaxed)};
}

void SlotRegistry::release(std::uint32_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot == 0 || slot >= kCapacity) {
    throw std::out_of_range("SlotRegistry::release: bad slot " +
                            std::to_string(slot));
  }
  // Invalidate everything the leaseholder wrote: entries stamped with the
  // old generation no longer match and read as all-X / empty.
  generations_[slot].fetch_add(1, std::memory_order_release);
  freeList_.push_back(slot);
  --leased_;
  const SlotMetrics& ids = SlotMetrics::get();
  obs::Registry& reg = obs::Registry::global();
  reg.add(ids.released);
  reg.setGauge(ids.leased, leased_);
  if (obs::Tracer::global().verbose()) {
    obs::Tracer::global().instant(
        "slots.release", "slots",
        {{"slot", static_cast<double>(slot)},
         {"leased", static_cast<double>(leased_)}});
  }
}

std::uint32_t SlotRegistry::renew(std::uint32_t slot) {
  if (slot >= kCapacity) {
    throw std::out_of_range("SlotRegistry::renew: bad slot " +
                            std::to_string(slot));
  }
  obs::Registry::global().add(SlotMetrics::get().renewed);
  if (obs::Tracer::global().verbose()) {
    obs::Tracer::global().instant("slots.renew", "slots",
                                  {{"slot", static_cast<double>(slot)}});
  }
  return generations_[slot].fetch_add(1, std::memory_order_release) + 1;
}

std::uint32_t SlotRegistry::currentGeneration(std::uint32_t slot) const {
  if (slot >= kCapacity) {
    throw std::out_of_range(
        "SlotRegistry: scheduler id " + std::to_string(slot) +
        " exceeds arena capacity " + std::to_string(kCapacity));
  }
  return generations_[slot].load(std::memory_order_acquire);
}

std::uint32_t SlotRegistry::leased() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leased_;
}

std::uint32_t SlotRegistry::peakLeased() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peakLeased_;
}

std::uint64_t SlotRegistry::totalLeases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totalLeases_;
}

void SlotRegistry::restartPeakTracking() {
  std::lock_guard<std::mutex> lock(mutex_);
  peakLeased_ = leased_;
}

SlotRegistry& SlotRegistry::global() {
  static SlotRegistry registry;
  return registry;
}

}  // namespace vcad
