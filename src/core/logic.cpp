#include "core/logic.hpp"

#include <ostream>
#include <stdexcept>

namespace vcad {

namespace {
// Z participating in a logic operation behaves as X.
constexpr Logic norm(Logic v) { return v == Logic::Z ? Logic::X : v; }
}  // namespace

Logic logicNot(Logic a) {
  switch (norm(a)) {
    case Logic::L0:
      return Logic::L1;
    case Logic::L1:
      return Logic::L0;
    default:
      return Logic::X;
  }
}

Logic logicAnd(Logic a, Logic b) {
  if (norm(a) == Logic::L0 || norm(b) == Logic::L0) return Logic::L0;
  if (norm(a) == Logic::L1 && norm(b) == Logic::L1) return Logic::L1;
  return Logic::X;
}

Logic logicOr(Logic a, Logic b) {
  if (norm(a) == Logic::L1 || norm(b) == Logic::L1) return Logic::L1;
  if (norm(a) == Logic::L0 && norm(b) == Logic::L0) return Logic::L0;
  return Logic::X;
}

Logic logicXor(Logic a, Logic b) {
  if (!isKnown(norm(a)) || !isKnown(norm(b))) return Logic::X;
  return fromBool(toBool(a) != toBool(b));
}

Logic logicNand(Logic a, Logic b) { return logicNot(logicAnd(a, b)); }
Logic logicNor(Logic a, Logic b) { return logicNot(logicOr(a, b)); }
Logic logicXnor(Logic a, Logic b) { return logicNot(logicXor(a, b)); }
Logic logicBuf(Logic a) { return norm(a); }

char toChar(Logic v) {
  switch (v) {
    case Logic::L0:
      return '0';
    case Logic::L1:
      return '1';
    case Logic::X:
      return 'X';
    case Logic::Z:
      return 'Z';
  }
  return '?';
}

Logic logicFromChar(char c) {
  switch (c) {
    case '0':
      return Logic::L0;
    case '1':
      return Logic::L1;
    case 'x':
    case 'X':
      return Logic::X;
    case 'z':
    case 'Z':
      return Logic::Z;
    default:
      throw std::invalid_argument(std::string("bad logic char: ") + c);
  }
}

std::ostream& operator<<(std::ostream& os, Logic v) { return os << toChar(v); }

}  // namespace vcad
