// SimulationController: owns one scheduler, binds an estimation setup, and
// drives a design through a simulation run.
//
// One simulation controller per concurrent simulation: because all
// per-simulation state is keyed by scheduler id, many controllers can run
// over the same design — sequentially or on concurrent threads — without any
// reset or save/restore action between runs. A controller can also launch
// and coordinate subordinate single-instant controllers, which is how
// virtual fault simulation injects faulty output configurations (see
// src/fault).
#pragma once

#include <memory>
#include <vector>

#include "core/circuit.hpp"
#include "core/scheduler.hpp"
#include "core/setup.hpp"
#include "core/token.hpp"

namespace vcad {

/// Convenience estimation sink accumulating all collected values.
class CollectingSink final : public EstimationSink {
 public:
  struct Item {
    Module* module;
    ParamKind kind;
    std::unique_ptr<ParamValue> value;
  };

  void collect(Module& module, ParamKind kind,
               std::unique_ptr<ParamValue> value) override;

  const std::vector<Item>& items() const { return items_; }

  /// Sum of all non-null scalar values for `kind` (cost metrics are local,
  /// additive properties the user can sum to obtain global design metrics).
  double sum(ParamKind kind) const;

  /// The value collected for (module, kind); nullptr when absent.
  const ParamValue* find(const Module& module, ParamKind kind) const;

  std::size_t nullCount() const;
  void clear() { items_.clear(); }

 private:
  std::vector<Item> items_;
};

class SimulationController {
 public:
  /// Binds the controller to a design and (optionally) an estimation setup.
  /// The setup must outlive the controller. If `applySetup` is true and a
  /// setup is given, setup->apply(design) runs immediately.
  explicit SimulationController(Circuit& design,
                                SetupController* setup = nullptr,
                                bool applySetup = true);

  Circuit& design() { return design_; }
  Scheduler& scheduler() { return scheduler_; }
  const SetupController* setup() const { return setup_; }

  /// Calls initialize() on every leaf module (stimulus sources schedule
  /// their first events here). Idempotent.
  void initialize();

  /// Returns the controller to its just-constructed state for another run:
  /// the scheduler drains, drops forced outputs, rewinds time, and renews
  /// its slot generation, which logically clears every connector value and
  /// module state of the previous run in O(1). Pooled campaign workers
  /// reset-and-reuse one controller per lane instead of paying
  /// construct/destroy (and slot lease churn) per injection.
  void reset();

  /// Runs the simulation until the event queue drains (or `until` passes).
  /// Calls initialize() first if needed. Returns delivered event count.
  std::size_t start(SimTime until = kSimTimeMax);

  /// Runs every event of the current time instant (the head event's time
  /// and all zero-delay follow-ups at the same tick). Returns false when no
  /// events are pending.
  bool runOneInstant();

  /// Schedules a value on a connector: the receiving endpoint gets a signal
  /// token after `delay` ticks. Used to drive primary inputs explicitly.
  void inject(Connector& conn, const Word& value, SimTime delay = 0);

  /// Sends an estimation token for `kind` to every leaf module at the
  /// current time and runs the scheduler until idle, collecting into `sink`.
  void estimateAll(ParamKind kind, EstimationSink& sink);

  /// Installs a faulty output configuration for `module` on this
  /// controller's scheduler (see Scheduler::setOutputOverride).
  void forceOutputs(const Module& module,
                    std::vector<Scheduler::OutputOverride> outputs);
  void clearForcedOutputs();

 private:
  Circuit& design_;
  const SetupController* setup_;
  Scheduler scheduler_;
  bool initialized_ = false;
};

/// Runs each controller's start() on its own thread and joins them all:
/// concurrent simulations of the same design under different setups.
void runConcurrently(const std::vector<SimulationController*>& controllers,
                     SimTime until = kSimTimeMax);

}  // namespace vcad
