#include "core/port.hpp"

#include "core/module.hpp"

namespace vcad {

std::string toString(PortDir dir) {
  switch (dir) {
    case PortDir::In:
      return "in";
    case PortDir::Out:
      return "out";
    case PortDir::InOut:
      return "inout";
  }
  return "?";
}

Port::Port(Module& owner, std::string name, PortDir dir, int width)
    : owner_(owner), name_(std::move(name)), dir_(dir), width_(width) {}

std::string Port::fullName() const { return owner_.name() + "." + name_; }

}  // namespace vcad
