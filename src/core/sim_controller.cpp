#include "core/sim_controller.hpp"

#include <stdexcept>
#include <thread>

namespace vcad {

// --- CollectingSink --------------------------------------------------------

void CollectingSink::collect(Module& module, ParamKind kind,
                             std::unique_ptr<ParamValue> value) {
  items_.push_back(Item{&module, kind, std::move(value)});
}

double CollectingSink::sum(ParamKind kind) const {
  double total = 0.0;
  for (const auto& item : items_) {
    if (item.kind == kind && !item.value->isNull()) {
      total += item.value->asDouble();
    }
  }
  return total;
}

const ParamValue* CollectingSink::find(const Module& module,
                                       ParamKind kind) const {
  for (const auto& item : items_) {
    if (item.module == &module && item.kind == kind) return item.value.get();
  }
  return nullptr;
}

std::size_t CollectingSink::nullCount() const {
  std::size_t n = 0;
  for (const auto& item : items_) {
    if (item.value->isNull()) ++n;
  }
  return n;
}

// --- SimulationController --------------------------------------------------

SimulationController::SimulationController(Circuit& design,
                                           SetupController* setup,
                                           bool applySetup)
    : design_(design), setup_(setup) {
  scheduler_.setSetup(setup);
  if (setup != nullptr && applySetup) {
    setup->apply(design);
  }
}

void SimulationController::reset() {
  scheduler_.reset();
  initialized_ = false;
}

void SimulationController::initialize() {
  if (initialized_) return;
  initialized_ = true;
  SimContext ctx{scheduler_, setup_};
  design_.visitLeaves([&](Module& m) { m.initialize(ctx); });
}

std::size_t SimulationController::start(SimTime until) {
  initialize();
  if (until == kSimTimeMax) return scheduler_.run();
  return scheduler_.runUntil(until);
}

bool SimulationController::runOneInstant() {
  initialize();
  if (scheduler_.empty()) return false;
  // All events of the head instant share the head event's timestamp; step()
  // advances now() to it, then runUntil(now) drains the zero-delay cascade.
  scheduler_.step();
  scheduler_.runUntil(scheduler_.now());
  return true;
}

void SimulationController::inject(Connector& conn, const Word& value,
                                  SimTime delay) {
  // Find the receiving endpoint; with one endpoint it must be receivable.
  Port* target = nullptr;
  for (Port* p : conn.endpoints()) {
    if (p->canReceive()) {
      target = p;
      break;
    }
  }
  if (target == nullptr) {
    // Unconsumed input (or pure observation point): latch the value so it is
    // still visible to readers of the connector.
    scheduler_.schedule(std::make_unique<LatchToken>(conn, value), delay);
    return;
  }
  scheduler_.schedule(std::make_unique<SignalToken>(*target, value), delay);
}

void SimulationController::estimateAll(ParamKind kind, EstimationSink& sink) {
  initialize();
  design_.visitLeaves([&](Module& m) {
    scheduler_.schedule(std::make_unique<EstimationToken>(m, kind, sink));
  });
  scheduler_.runUntil(scheduler_.now());
}

void SimulationController::forceOutputs(
    const Module& module, std::vector<Scheduler::OutputOverride> outputs) {
  scheduler_.setOutputOverride(module, std::move(outputs));
}

void SimulationController::clearForcedOutputs() {
  scheduler_.clearAllOverrides();
}

void runConcurrently(const std::vector<SimulationController*>& controllers,
                     SimTime until) {
  std::vector<std::thread> threads;
  threads.reserve(controllers.size());
  for (SimulationController* c : controllers) {
    threads.emplace_back([c, until] { c->start(until); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace vcad
