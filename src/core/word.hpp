// Word: a fixed-width bit vector value exchanged between modules.
//
// Words are the payload of signal events on the backplane. They support both
// the word-level (RTL) abstraction, where a word is usually fully known and
// read as an unsigned integer, and the gate-level abstraction, where each bit
// is an independent 4-valued Logic scalar. Widths up to 64 bits are
// supported, which covers the designs used throughout the paper (16-bit
// operands, 32-bit products).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/logic.hpp"

namespace vcad {

class Word {
 public:
  static constexpr int kMaxWidth = 64;

  /// Default: zero-width word (no payload).
  Word() = default;

  /// A word of `width` bits, all X.
  explicit Word(int width);

  /// A fully-known word holding the low `width` bits of `value`.
  static Word fromUint(int width, std::uint64_t value);

  /// A single-bit word.
  static Word fromLogic(Logic v);

  /// Parses a string like "10X1" (MSB first). Throws on bad chars.
  static Word fromString(const std::string& s);

  int width() const { return width_; }
  bool empty() const { return width_ == 0; }

  /// True iff every bit is a strong 0/1.
  bool isFullyKnown() const;

  /// Unsigned integer value. Precondition: isFullyKnown().
  std::uint64_t toUint() const;

  Logic bit(int i) const;
  void setBit(int i, Logic v);

  /// Single-bit convenience accessors (precondition: width() == 1).
  Logic scalar() const { return bit(0); }

  /// Returns a copy with every bit forced to X.
  static Word allX(int width) { return Word(width); }

  /// Hamming distance over known bits; X/Z positions in either word count
  /// as a toggle (pessimistic switching estimate).
  static int toggleCount(const Word& a, const Word& b);

  /// Concatenates: result = {hi, lo} with lo occupying the low bits.
  static Word concat(const Word& hi, const Word& lo);

  /// Extracts bits [lsb, lsb+len).
  Word slice(int lsb, int len) const;

  bool operator==(const Word& other) const;
  bool operator!=(const Word& other) const { return !(*this == other); }

  /// MSB-first display form, e.g. "1X01".
  std::string toString() const;

  // Low-level plane accessors for bit-parallel engines (bit i describes the
  // word's bit i). The value plane is canonical: 0 wherever the bit is not
  // a strong 0/1.
  std::uint64_t valuePlane() const { return bits_; }
  std::uint64_t knownPlane() const { return known_; }
  std::uint64_t zPlane() const { return zmask_; }

 private:
  std::uint64_t bits_ = 0;   // bit i value (meaningful when known)
  std::uint64_t known_ = 0;  // bit i is strong 0/1
  std::uint64_t zmask_ = 0;  // bit i is Z (only meaningful when !known)
  int width_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Word& w);

}  // namespace vcad
