// Estimation interfaces of the backplane (the JFP "estimation package").
//
// Cost and performance metrics (area, delay, power, ...) are *parameters*.
// An *estimator* evaluates a parameter's actual value; it has a unique name,
// an expected accuracy, a monetary cost, and an expected CPU time, so users
// can trade accuracy against cost and speed. A given component can register
// several candidate estimators for the same parameter; a *setup controller*
// (see setup.hpp) selects which one each module actually uses.
//
// Concrete estimators (constant, linear regression, gate-level toggle count)
// live in src/estim; the detection table used by virtual fault simulation is
// itself a ParamValue subclass and lives in src/fault.
#pragma once

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/word.hpp"

namespace vcad {

class Module;
class Scheduler;
class SetupController;

/// The cost/performance metrics JavaCAD calls "parameters".
enum class ParamKind {
  Area,
  Delay,
  AvgPower,
  PeakPower,
  IoActivity,
  Testability,  // detection tables for virtual fault simulation
};

std::string toString(ParamKind kind);

/// Polymorphic value produced by an estimator.
class ParamValue {
 public:
  virtual ~ParamValue() = default;
  virtual bool isNull() const { return false; }
  virtual std::string toString() const = 0;
  /// Numeric view; throws std::logic_error if the value is not scalar.
  virtual double asDouble() const {
    throw std::logic_error("ParamValue is not scalar: " + toString());
  }
};

/// The "proper null value" the default null estimator returns.
class NullValue final : public ParamValue {
 public:
  bool isNull() const override { return true; }
  std::string toString() const override { return "null"; }
  double asDouble() const override { return 0.0; }
};

/// A plain scalar metric with a unit, e.g. {25.0, "mW"}.
class ScalarValue final : public ParamValue {
 public:
  ScalarValue(double value, std::string unit)
      : value_(value), unit_(std::move(unit)) {}
  std::string toString() const override {
    return std::to_string(value_) + " " + unit_;
  }
  double asDouble() const override { return value_; }
  const std::string& unit() const { return unit_; }

 private:
  double value_;
  std::string unit_;
};

/// Static metadata that lets the user choose among candidate estimators.
struct EstimatorInfo {
  std::string name;
  double expectedErrorPct = 0.0;    // advertised average error
  double costPerUseCents = 0.0;     // fee charged by the provider per use
  double expectedCpuSecs = 0.0;     // advertised CPU time per use
  bool remote = false;              // must run on the provider's server
  bool unpredictableLatency = false;  // the Table-1 footnote flag: Internet
                                      // round trips may add unbounded time
};

/// Everything an estimator may look at when evaluating a parameter.
///
/// For dynamic (simulation-driven) estimation, `patternHistory` holds the
/// sequence of input words observed at the module's inputs since the last
/// estimate (the "pattern buffer" of the paper).
struct EstimationContext {
  Module* module = nullptr;
  Scheduler* scheduler = nullptr;
  const SetupController* setup = nullptr;
  const std::vector<Word>* patternHistory = nullptr;
};

/// Base class for all estimators (JFP EstimatorSkeleton). Providers derive
/// from this and override estimate().
class Estimator {
 public:
  explicit Estimator(EstimatorInfo info) : info_(std::move(info)) {}
  virtual ~Estimator() = default;

  const EstimatorInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  virtual std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) = 0;

 private:
  EstimatorInfo info_;
};

/// Default estimator bound when setup requirements cannot be satisfied:
/// always returns a null value, which (a) permits partial estimation of only
/// the modules of interest and (b) lets simulation proceed for modules that
/// have no estimator at all.
class NullEstimator final : public Estimator {
 public:
  NullEstimator() : Estimator(EstimatorInfo{"null", 100.0, 0.0, 0.0, false, false}) {}
  std::unique_ptr<ParamValue> estimate(const EstimationContext&) override {
    return std::make_unique<NullValue>();
  }
  /// Shared instance; the null estimator is stateless.
  static const std::shared_ptr<Estimator>& instance();
};

}  // namespace vcad
