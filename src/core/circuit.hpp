// Circuit: a hierarchical collection of interconnected components.
//
// A circuit owns its submodules and connectors. Circuits are modules
// themselves, so designs nest arbitrarily; hierarchy levels are wired
// together with Buffer bridge modules (see wiring.hpp), keeping connector
// semantics strictly point-to-point at every level.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/connector.hpp"
#include "core/module.hpp"

namespace vcad {

class Circuit : public Module {
 public:
  explicit Circuit(std::string name);
  ~Circuit() override;

  /// Constructs a submodule in place and takes ownership. Returns a
  /// reference with the concrete type, so wiring code stays readable:
  ///   auto& reg = c.make<Register>("REGA", width, A, AR);
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    adopt(std::move(owned));
    return ref;
  }

  /// Takes ownership of an externally constructed module.
  Module& adopt(std::unique_ptr<Module> module);

  /// Creates and owns a single-bit connector.
  Connector& makeBit(std::string name = "");

  /// Creates and owns a word connector of the given width.
  Connector& makeWord(int width, std::string name = "");

  const std::vector<std::unique_ptr<Module>>& submodules() const {
    return submodules_;
  }
  const std::vector<std::unique_ptr<Connector>>& connectors() const {
    return connectors_;
  }

  /// Direct child by name; nullptr when absent.
  Module* findChild(const std::string& childName) const;

  /// Recursive leaf iteration (depth first). The circuit itself is not a
  /// leaf; only behavioural modules are visited.
  void visitLeaves(const std::function<void(Module&)>& fn) override;

  /// Total number of leaf modules in the subtree.
  std::size_t leafCount();

  /// Physically releases everything one scheduler slot stored in this
  /// subtree: module state and connector values of the circuit itself, of
  /// every submodule — including hierarchical sub-circuits, which are
  /// modules too and were historically missed because only *leaves* were
  /// cleared — and of every nested connector.
  void clearSchedulerState(std::uint32_t slot);

  /// Number of modules/connectors in this subtree (the circuit itself
  /// included) still holding state stamped with the slot's current registry
  /// generation. Campaigns assert this is 0 after their final clear; the
  /// count ignores stale-generation entries, which are logically invisible.
  std::size_t residualStateCount(std::uint32_t slot) const;

 private:
  std::vector<std::unique_ptr<Module>> submodules_;
  std::vector<std::unique_ptr<Connector>> connectors_;
};

}  // namespace vcad
