#include "core/circuit.hpp"

#include <stdexcept>

namespace vcad {

Circuit::Circuit(std::string name) : Module(std::move(name)) {}

Circuit::~Circuit() = default;

Module& Circuit::adopt(std::unique_ptr<Module> module) {
  if (!module) {
    throw std::invalid_argument("Circuit::adopt: null module");
  }
  submodules_.push_back(std::move(module));
  return *submodules_.back();
}

Connector& Circuit::makeBit(std::string connName) {
  connectors_.push_back(std::make_unique<BitConnector>(std::move(connName)));
  return *connectors_.back();
}

Connector& Circuit::makeWord(int width, std::string connName) {
  connectors_.push_back(
      std::make_unique<WordConnector>(width, std::move(connName)));
  return *connectors_.back();
}

Module* Circuit::findChild(const std::string& childName) const {
  for (const auto& m : submodules_) {
    if (m->name() == childName) return m.get();
  }
  return nullptr;
}

void Circuit::visitLeaves(const std::function<void(Module&)>& fn) {
  for (const auto& m : submodules_) {
    m->visitLeaves(fn);
  }
}

void Circuit::clearSchedulerState(std::uint32_t slot) {
  // The circuit and its sub-circuits are modules in their own right (open
  // ports on hierarchy boundaries latch emitted values), so clearing only
  // the leaves leaked their lanes. Clear every module in the subtree.
  clearStateFor(slot);
  for (const auto& m : submodules_) {
    if (auto* sub = dynamic_cast<Circuit*>(m.get())) {
      sub->clearSchedulerState(slot);
    } else {
      m->clearStateFor(slot);
    }
  }
  for (const auto& conn : connectors_) conn->clearValue(slot);
}

std::size_t Circuit::residualStateCount(std::uint32_t slot) const {
  std::size_t n = hasLiveStateFor(slot) ? 1 : 0;
  for (const auto& m : submodules_) {
    if (const auto* sub = dynamic_cast<const Circuit*>(m.get())) {
      n += sub->residualStateCount(slot);
    } else if (m->hasLiveStateFor(slot)) {
      ++n;
    }
  }
  for (const auto& conn : connectors_) {
    if (conn->hasLiveValue(slot)) ++n;
  }
  return n;
}

std::size_t Circuit::leafCount() {
  std::size_t n = 0;
  visitLeaves([&](Module&) { ++n; });
  return n;
}

}  // namespace vcad
