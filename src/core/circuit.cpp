#include "core/circuit.hpp"

#include <stdexcept>

namespace vcad {

Circuit::Circuit(std::string name) : Module(std::move(name)) {}

Circuit::~Circuit() = default;

Module& Circuit::adopt(std::unique_ptr<Module> module) {
  if (!module) {
    throw std::invalid_argument("Circuit::adopt: null module");
  }
  submodules_.push_back(std::move(module));
  return *submodules_.back();
}

Connector& Circuit::makeBit(std::string connName) {
  connectors_.push_back(std::make_unique<BitConnector>(std::move(connName)));
  return *connectors_.back();
}

Connector& Circuit::makeWord(int width, std::string connName) {
  connectors_.push_back(
      std::make_unique<WordConnector>(width, std::move(connName)));
  return *connectors_.back();
}

Module* Circuit::findChild(const std::string& childName) const {
  for (const auto& m : submodules_) {
    if (m->name() == childName) return m.get();
  }
  return nullptr;
}

void Circuit::visitLeaves(const std::function<void(Module&)>& fn) {
  for (const auto& m : submodules_) {
    m->visitLeaves(fn);
  }
}

void Circuit::clearSchedulerState(std::uint32_t schedulerId) {
  visitLeaves([&](Module& m) { m.clearStateFor(schedulerId); });
  clearConnectorValues(schedulerId);
}

void Circuit::clearConnectorValues(std::uint32_t schedulerId) {
  for (const auto& conn : connectors_) conn->clearValue(schedulerId);
  for (const auto& m : submodules_) {
    if (auto* sub = dynamic_cast<Circuit*>(m.get())) {
      sub->clearConnectorValues(schedulerId);
    }
  }
}

std::size_t Circuit::leafCount() {
  std::size_t n = 0;
  visitLeaves([&](Module&) { ++n; });
  return n;
}

}  // namespace vcad
