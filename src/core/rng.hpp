// Deterministic pseudo-random number generator used across the framework
// (random stimulus, network jitter, workload generation).
//
// SplitMix64: tiny, fast, and with well-understood statistical quality for
// simulation purposes. Determinism matters here: every experiment in the
// benchmark harness must be exactly reproducible from its seed.
#pragma once

#include <cstdint>

namespace vcad {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace vcad
