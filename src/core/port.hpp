// Ports identify a module's connection points. A port is owned by exactly
// one module, has a direction (input, output, or bidirectional) and a bit
// width, and is attached to at most one connector.
#pragma once

#include <string>

namespace vcad {

class Module;
class Connector;

enum class PortDir { In, Out, InOut };

std::string toString(PortDir dir);

class Port {
 public:
  Port(Module& owner, std::string name, PortDir dir, int width);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  Module& module() const { return owner_; }
  const std::string& name() const { return name_; }
  PortDir dir() const { return dir_; }
  int width() const { return width_; }

  bool canReceive() const { return dir_ != PortDir::Out; }
  bool canDrive() const { return dir_ != PortDir::In; }

  Connector* connector() const { return connector_; }
  bool isConnected() const { return connector_ != nullptr; }

  /// Full hierarchical-ish display name: "<module>.<port>".
  std::string fullName() const;

 private:
  friend class Connector;  // sets connector_ during attach

  Module& owner_;
  std::string name_;
  PortDir dir_;
  int width_;
  Connector* connector_ = nullptr;
};

}  // namespace vcad
