// The event scheduler: handles scheduling and delivery of all tokens.
//
// Multiple schedulers can be instantiated and run in concurrent threads over
// the same design without interference: all per-simulation state (connector
// values, module internal state) is stored in lookup tables addressed by the
// scheduler's unique id, and a module can only schedule a new token on the
// scheduler that delivered the current one.
//
// The scheduler also implements the *output override* hook used by virtual
// fault simulation: the simulation controller can replace a module's event
// handling with a function that assigns a fixed (faulty) configuration to
// the module's outputs regardless of its inputs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/log.hpp"
#include "core/sim_time.hpp"
#include "core/token.hpp"

namespace vcad {

class Module;
class Port;
class SetupController;

class Scheduler {
 public:
  using Id = std::uint32_t;

  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Id id() const { return id_; }
  SimTime now() const { return now_; }

  /// The setup in effect for tokens dispatched by this scheduler; passed to
  /// modules in the SimContext of every delivery.
  void setSetup(const SetupController* setup) { setup_ = setup; }
  const SetupController* setup() const { return setup_; }

  /// Event tracing: when a sink is installed, every delivered token is
  /// logged as "@<time> <description>" (debugging aid; adds per-event
  /// cost, leave off in benchmarks).
  void setTraceSink(LogSink* sink) { trace_ = sink; }

  /// Enqueues a token for delivery `delay` ticks from now. Zero-delay
  /// tokens are delivered in FIFO order within the current tick.
  void schedule(std::unique_ptr<Token> token, SimTime delay = 0);

  /// Delivers the next pending token; returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains. `maxEvents` guards against
  /// divergence (e.g. combinational loops); throws std::runtime_error when
  /// exceeded. Returns the number of tokens delivered by this call.
  std::size_t run(std::size_t maxEvents = 100'000'000);

  /// Runs while pending events have time <= `until`.
  std::size_t runUntil(SimTime until, std::size_t maxEvents = 100'000'000);

  bool empty() const { return queue_.empty(); }
  std::uint64_t dispatched() const { return dispatched_; }

  // --- fault-injection support -------------------------------------------

  /// One forced output assignment: when any signal event reaches `module`,
  /// the scheduler drives `value` on `port` instead of invoking the module's
  /// own event handling.
  struct OutputOverride {
    Port* port;
    Word value;
  };

  void setOutputOverride(const Module& module,
                         std::vector<OutputOverride> outputs);
  void clearOutputOverride(const Module& module);
  void clearAllOverrides();

  /// Used by SignalToken::deliver: returns the override for `module`, or
  /// nullptr when the module behaves normally under this scheduler.
  const std::vector<OutputOverride>* findOverride(const Module& module) const;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Token* token;  // owned; unique_ptr is not movable inside priority_queue
                   // comparators on some implementations, so we manage
                   // ownership manually and release in the destructor.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  static std::atomic<Id> nextId_;

  Id id_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  const SetupController* setup_ = nullptr;
  LogSink* trace_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<const Module*, std::vector<OutputOverride>> overrides_;
};

}  // namespace vcad
