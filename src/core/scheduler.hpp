// The event scheduler: handles scheduling and delivery of all tokens.
//
// Multiple schedulers can be instantiated and run in concurrent threads over
// the same design without interference: all per-simulation state (connector
// values, module internal state) lives in the flat slot-indexed state arena
// (see slot_registry.hpp). Each scheduler leases one dense slot for its
// lifetime — id() is that slot — and stamps every write with its current
// slot generation, so hot-path state access is a lock-free array index and
// reset()/destruction invalidate all of a run's state in O(1) by bumping
// the generation. A module can only schedule a new token on the scheduler
// that delivered the current one.
//
// The scheduler also implements the *output override* hook used by virtual
// fault simulation: the simulation controller can replace a module's event
// handling with a function that assigns a fixed (faulty) configuration to
// the module's outputs regardless of its inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/log.hpp"
#include "core/sim_time.hpp"
#include "core/slot_registry.hpp"
#include "core/token.hpp"

namespace vcad {

class Module;
class Port;
class SetupController;

class Scheduler {
 public:
  using Id = std::uint32_t;

  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// The arena slot leased by this scheduler; doubles as its unique id
  /// among concurrently live schedulers. Slots are recycled after
  /// destruction, so ids are NOT unique across time — per-run state is
  /// disambiguated by slotGeneration().
  Id id() const { return slot_; }
  std::uint32_t slot() const { return slot_; }
  /// The slot generation this scheduler stamps on every state write; bumped
  /// by reset(), which logically clears the run's state in O(1).
  std::uint32_t slotGeneration() const { return generation_; }

  SimTime now() const { return now_; }

  /// Returns the scheduler to its just-constructed state for reuse by a
  /// pooled run: drains pending tokens, drops output overrides, rewinds
  /// time, and renews the slot generation so every connector value and
  /// module state written by the previous run reads as all-X / empty again
  /// — no traversal of the design needed. Owner-thread only.
  void reset();

  /// Times this scheduler has been reset() (pool-reuse accounting).
  std::uint64_t resets() const { return resets_; }

  /// The setup in effect for tokens dispatched by this scheduler; passed to
  /// modules in the SimContext of every delivery.
  void setSetup(const SetupController* setup) { setup_ = setup; }
  const SetupController* setup() const { return setup_; }

  /// Event tracing: when a sink is installed, every delivered token is
  /// logged as "@<time> <description>" (debugging aid; adds per-event
  /// cost, leave off in benchmarks).
  void setTraceSink(LogSink* sink) { trace_ = sink; }

  /// Enqueues a token for delivery `delay` ticks from now. Zero-delay
  /// tokens are delivered in FIFO order within the current tick.
  void schedule(std::unique_ptr<Token> token, SimTime delay = 0);

  /// Delivers the next pending token; returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains. `maxEvents` guards against
  /// divergence (e.g. combinational loops); throws std::runtime_error when
  /// exceeded. Returns the number of tokens delivered by this call.
  std::size_t run(std::size_t maxEvents = 100'000'000);

  /// Runs while pending events have time <= `until`.
  std::size_t runUntil(SimTime until, std::size_t maxEvents = 100'000'000);

  bool empty() const { return queue_.empty(); }
  std::uint64_t dispatched() const { return dispatched_; }
  /// High-water mark of pending tokens since construction/reset().
  std::size_t peakQueueDepth() const { return peakQueueDepth_; }

  // --- fault-injection support -------------------------------------------

  /// One forced output assignment: when any signal event reaches `module`,
  /// the scheduler drives `value` on `port` instead of invoking the module's
  /// own event handling.
  struct OutputOverride {
    Port* port;
    Word value;
  };

  void setOutputOverride(const Module& module,
                         std::vector<OutputOverride> outputs);
  void clearOutputOverride(const Module& module);
  void clearAllOverrides();

  /// Used by SignalToken::deliver: returns the override for `module`, or
  /// nullptr when the module behaves normally under this scheduler.
  const std::vector<OutputOverride>* findOverride(const Module& module) const;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Token* token;  // owned; unique_ptr is not movable inside priority_queue
                   // comparators on some implementations, so we manage
                   // ownership manually and release in the destructor.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void drainQueue();
  /// Bulk-flushes per-run registry metrics (dispatch count, queue peak) so
  /// the per-token path stays registry-free.
  void flushRunMetrics(std::size_t dispatchedNow);

  std::uint32_t slot_;
  std::uint32_t generation_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t resets_ = 0;
  std::size_t peakQueueDepth_ = 0;
  const SetupController* setup_ = nullptr;
  LogSink* trace_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<const Module*, std::vector<OutputOverride>> overrides_;
};

}  // namespace vcad
