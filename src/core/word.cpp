#include "core/word.hpp"

#include <bit>
#include <ostream>
#include <stdexcept>

namespace vcad {

namespace {
std::uint64_t lowMask(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

void checkWidth(int width) {
  if (width < 0 || width > Word::kMaxWidth) {
    throw std::invalid_argument("Word width out of range: " +
                                std::to_string(width));
  }
}
}  // namespace

Word::Word(int width) : width_(width) { checkWidth(width); }

Word Word::fromUint(int width, std::uint64_t value) {
  checkWidth(width);
  Word w(width);
  w.bits_ = value & lowMask(width);
  w.known_ = lowMask(width);
  w.zmask_ = 0;
  return w;
}

Word Word::fromLogic(Logic v) {
  Word w(1);
  w.setBit(0, v);
  return w;
}

Word Word::fromString(const std::string& s) {
  Word w(static_cast<int>(s.size()));
  for (int i = 0; i < w.width(); ++i) {
    // s[0] is the MSB.
    w.setBit(w.width() - 1 - i, logicFromChar(s[static_cast<size_t>(i)]));
  }
  return w;
}

bool Word::isFullyKnown() const { return known_ == lowMask(width_); }

std::uint64_t Word::toUint() const {
  if (!isFullyKnown()) {
    throw std::logic_error("Word::toUint on word with unknown bits: " +
                           toString());
  }
  return bits_;
}

Logic Word::bit(int i) const {
  if (i < 0 || i >= width_) {
    throw std::out_of_range("Word::bit index " + std::to_string(i) +
                            " out of range for width " +
                            std::to_string(width_));
  }
  const std::uint64_t m = 1ULL << i;
  if (known_ & m) return (bits_ & m) ? Logic::L1 : Logic::L0;
  return (zmask_ & m) ? Logic::Z : Logic::X;
}

void Word::setBit(int i, Logic v) {
  if (i < 0 || i >= width_) {
    throw std::out_of_range("Word::setBit index " + std::to_string(i) +
                            " out of range for width " +
                            std::to_string(width_));
  }
  const std::uint64_t m = 1ULL << i;
  bits_ &= ~m;
  known_ &= ~m;
  zmask_ &= ~m;
  switch (v) {
    case Logic::L0:
      known_ |= m;
      break;
    case Logic::L1:
      known_ |= m;
      bits_ |= m;
      break;
    case Logic::X:
      break;
    case Logic::Z:
      zmask_ |= m;
      break;
  }
}

int Word::toggleCount(const Word& a, const Word& b) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("toggleCount width mismatch");
  }
  const std::uint64_t bothKnown = a.known_ & b.known_;
  const std::uint64_t diff = (a.bits_ ^ b.bits_) & bothKnown;
  const std::uint64_t anyUnknown = lowMask(a.width()) & ~bothKnown;
  return std::popcount(diff) + std::popcount(anyUnknown);
}

Word Word::concat(const Word& hi, const Word& lo) {
  const int w = hi.width() + lo.width();
  checkWidth(w);
  Word out(w);
  for (int i = 0; i < lo.width(); ++i) out.setBit(i, lo.bit(i));
  for (int i = 0; i < hi.width(); ++i) out.setBit(lo.width() + i, hi.bit(i));
  return out;
}

Word Word::slice(int lsb, int len) const {
  if (lsb < 0 || len < 0 || lsb + len > width_) {
    throw std::out_of_range("Word::slice out of range");
  }
  Word out(len);
  for (int i = 0; i < len; ++i) out.setBit(i, bit(lsb + i));
  return out;
}

bool Word::operator==(const Word& other) const {
  return width_ == other.width_ && bits_ == other.bits_ &&
         known_ == other.known_ && zmask_ == other.zmask_;
}

std::string Word::toString() const {
  std::string s;
  s.reserve(static_cast<size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) s.push_back(toChar(bit(i)));
  return s;
}

std::ostream& operator<<(std::ostream& os, const Word& w) {
  return os << w.toString();
}

}  // namespace vcad
