// LoopbackTransport: the in-process net::Transport backend.
//
// Wraps a ServerEndpoint behind the same framed send/awaitReply surface the
// socket backend exposes: send() performs the server-side receive (checksum
// verification, bounds-checked unmarshal, serialized dispatch) immediately
// on the caller's thread and queues the sealed response under the request
// id; awaitReply() pops it with zero real latency. Damaged frames are
// silently discarded exactly like a real server would — the client learns
// nothing until its (simulated) deadline fires.
//
// Dispatch is serialized by an internal mutex, so a ServerEndpoint behind a
// loopback never sees concurrent requests even when many channel workers
// pipeline through it — the guarantee endpoint implementations rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "rmi/channel.hpp"

namespace vcad::rmi {

class LoopbackTransport final : public net::Transport {
 public:
  explicit LoopbackTransport(ServerEndpoint& endpoint);

  void send(const net::RequestFrameHeader& header,
            const std::vector<std::uint8_t>& sealedPayload) override;
  net::TransportReply awaitReply(std::uint64_t requestId,
                                 double realDeadlineSec) override;
  void discard(std::uint64_t requestId) override;
  std::string peerName() const override;

  ServerEndpoint& endpoint() { return *endpoint_; }

  /// Admission control mirroring ProviderSocketServer: a request arriving
  /// while `cap` dispatches are already executing is answered with a typed
  /// FrameStatus::TooManyPending frame instead of queueing behind the
  /// dispatch mutex. Default 0 = unlimited. Gives the in-process backend
  /// the same shed surface as the socket one, so channel-level shed
  /// accounting can be proven uniform across both.
  void setMaxConcurrentDispatches(std::size_t cap);

  /// TooManyPending replies produced by the admission cap.
  std::uint64_t shedRequests() const;

 private:
  ServerEndpoint* endpoint_;
  std::mutex dispatchMutex_;  // one in-flight request per endpoint
  std::atomic<std::size_t> dispatching_{0};
  std::atomic<std::size_t> maxConcurrentDispatches_{0};  // 0 = unlimited
  std::atomic<std::uint64_t> shedRequests_{0};
  std::mutex mutex_;          // reply queues
  std::map<std::uint64_t, std::deque<net::TransportReply>> arrived_;
};

}  // namespace vcad::rmi
