// LoopbackTransport: the in-process net::Transport backend.
//
// Wraps a ServerEndpoint behind the same framed send/awaitReply surface the
// socket backend exposes: send() performs the server-side receive (checksum
// verification, bounds-checked unmarshal, serialized dispatch) immediately
// on the caller's thread and queues the sealed response under the request
// id; awaitReply() pops it with zero real latency. Damaged frames are
// silently discarded exactly like a real server would — the client learns
// nothing until its (simulated) deadline fires.
//
// Dispatch is serialized by an internal mutex, so a ServerEndpoint behind a
// loopback never sees concurrent requests even when many channel workers
// pipeline through it — the guarantee endpoint implementations rely on.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "rmi/channel.hpp"

namespace vcad::rmi {

class LoopbackTransport final : public net::Transport {
 public:
  explicit LoopbackTransport(ServerEndpoint& endpoint);

  void send(std::uint32_t methodId, std::uint64_t requestId,
            const std::vector<std::uint8_t>& sealedPayload) override;
  net::TransportReply awaitReply(std::uint64_t requestId,
                                 double realDeadlineSec) override;
  void discard(std::uint64_t requestId) override;
  std::string peerName() const override;

  ServerEndpoint& endpoint() { return *endpoint_; }

 private:
  ServerEndpoint* endpoint_;
  std::mutex dispatchMutex_;  // one in-flight request per endpoint
  std::mutex mutex_;          // reply queues
  std::map<std::uint64_t, std::deque<net::TransportReply>> arrived_;
};

}  // namespace vcad::rmi
