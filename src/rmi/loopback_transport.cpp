#include "rmi/loopback_transport.hpp"

#include <chrono>

#include "net/faulty_transport.hpp"

namespace vcad::rmi {

LoopbackTransport::LoopbackTransport(ServerEndpoint& endpoint)
    : endpoint_(&endpoint) {}

void LoopbackTransport::setMaxConcurrentDispatches(std::size_t cap) {
  maxConcurrentDispatches_.store(cap, std::memory_order_release);
}

std::uint64_t LoopbackTransport::shedRequests() const {
  return shedRequests_.load(std::memory_order_acquire);
}

void LoopbackTransport::send(const net::RequestFrameHeader& header,
                             const std::vector<std::uint8_t>& sealedPayload) {
  const std::uint64_t requestId = header.requestId;

  // Admission control, checked exactly like the socket front end: before
  // any receive work, against the count of dispatches already executing.
  const std::size_t cap =
      maxConcurrentDispatches_.load(std::memory_order_acquire);
  if (cap != 0 && dispatching_.load(std::memory_order_acquire) >= cap) {
    shedRequests_.fetch_add(1, std::memory_order_acq_rel);
    net::TransportReply shed;
    shed.delivered = true;
    shed.status = net::FrameStatus::TooManyPending;
    std::lock_guard<std::mutex> lock(mutex_);
    arrived_[requestId].push_back(std::move(shed));
    return;
  }

  // Server-side receive: checksum, then bounds-checked unmarshal. A damaged
  // frame is discarded without a reply — defense in depth: even a checksum
  // collision must not crash the server.
  std::vector<std::uint8_t> arrived = sealedPayload;
  if (!net::openFrame(arrived)) return;
  Request onServer;
  try {
    net::ByteBuffer b(std::move(arrived));
    onServer = Request::unmarshal(b);
  } catch (const std::exception&) {
    return;
  }

  Response response;
  double cpuSec = 0.0;
  {
    dispatching_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> dispatchLock(dispatchMutex_);
    const auto start = std::chrono::steady_clock::now();
    response = endpoint_->dispatch(onServer);
    cpuSec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
    dispatching_.fetch_sub(1, std::memory_order_acq_rel);
  }

  net::TransportReply reply;
  reply.delivered = true;
  reply.serverCpuSec = cpuSec;
  reply.sealedPayload = response.marshal().bytes();
  net::sealFrame(reply.sealedPayload);

  std::lock_guard<std::mutex> lock(mutex_);
  arrived_[requestId].push_back(std::move(reply));
}

net::TransportReply LoopbackTransport::awaitReply(std::uint64_t requestId,
                                                  double /*realDeadlineSec*/) {
  // Loopback dispatch completed inside send(): either the reply is queued
  // already or it never will be — no real-time wait either way.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = arrived_.find(requestId);
  if (it == arrived_.end() || it->second.empty()) return {};
  net::TransportReply reply = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) arrived_.erase(it);
  return reply;
}

void LoopbackTransport::discard(std::uint64_t requestId) {
  std::lock_guard<std::mutex> lock(mutex_);
  arrived_.erase(requestId);
}

std::string LoopbackTransport::peerName() const {
  return "loopback:" + endpoint_->hostName();
}

}  // namespace vcad::rmi
