// Security mechanisms of the RMI layer.
//
// Two distinct protections, mirroring the paper:
//
// 1. User-IP protection: the *marshalling filter*. Before a request leaves
//    the client, its argument payload is scanned; only port-level
//    information (signal values, pattern buffers, scalars, names) may cross
//    the channel. Anything tagged as design-structure information is
//    rejected with a SecurityViolation and an audit entry — a remote IP
//    component can only ever learn what is observable at its own ports.
//
// 2. Provider-code containment: the *sandbox*. Downloaded public-part code
//    runs with a capability set that denies file-system access, arbitrary
//    network connections, and design introspection (the Java-2 security
//    manager role). Public-part implementations must consult the sandbox
//    before privileged operations; violations throw and are audited.
#pragma once

#include <stdexcept>
#include <string>

#include "core/log.hpp"
#include "rmi/protocol.hpp"

namespace vcad::rmi {

class SecurityViolationError : public std::runtime_error {
 public:
  explicit SecurityViolationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Scans a request's tagged argument payload and decides whether it may be
/// transmitted. Pure function of the bytes: the filter sees exactly what the
/// wire would carry.
class MarshalFilter {
 public:
  explicit MarshalFilter(LogSink* audit = nullptr) : audit_(audit) {}

  /// Returns true when every argument field carries an admissible tag.
  /// On rejection, logs a Security entry naming the offending tag.
  bool admit(const Request& request);

 private:
  LogSink* audit_;
};

/// Capabilities granted to downloaded provider code executing on the user's
/// machine. Default: nothing beyond computing on its own inputs.
struct Capabilities {
  bool fileSystem = false;
  bool arbitraryNetwork = false;   // only the originating provider is allowed
  bool designIntrospection = false;
};

/// Runtime guard consulted by public-part code before privileged actions.
class Sandbox {
 public:
  explicit Sandbox(Capabilities caps = {}, LogSink* audit = nullptr)
      : caps_(caps), audit_(audit) {}

  const Capabilities& capabilities() const { return caps_; }

  void requireFileSystem(const std::string& who) const;
  void requireNetwork(const std::string& who, const std::string& host,
                      const std::string& originHost) const;
  void requireDesignIntrospection(const std::string& who) const;

 private:
  void deny(const std::string& what) const;

  Capabilities caps_;
  LogSink* audit_;
};

}  // namespace vcad::rmi
