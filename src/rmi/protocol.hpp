// RMI protocol messages between the IP user (client) and IP providers
// (servers).
//
// Every request/response is fully marshalled to bytes before it "travels",
// so the network model charges bandwidth for real message sizes, and the
// security filter can inspect exactly what would leave the user's machine.
//
// Argument payloads are *tagged*: each field carries a category byte. The
// category set deliberately includes only port-level information (signal
// values, pattern buffers, scalar parameters) plus session/component
// bookkeeping — the mechanism behind the paper's claim that "JavaCAD
// transmits only [port] information over the RMI channel". A DesignGraph
// category exists so tests and examples can demonstrate the filter rejecting
// an attempt to leak design structure.
#pragma once

#include <cstdint>
#include <string>

#include "net/serialize.hpp"
#include "net/transport.hpp"

namespace vcad::rmi {

using SessionId = std::uint64_t;
using InstanceId = std::uint64_t;

enum class MethodId : std::uint32_t {
  OpenSession = 1,
  CloseSession,
  GetCatalog,       // -> component spec summaries
  Instantiate,      // component name + parameters -> instance id
  EvalFunction,     // instance inputs -> outputs (fully remote module mode)
  EstimatePower,    // pattern buffer -> average mW (gate-level toggle count)
  EstimateTiming,   // -> critical path ns (needs gate-level structure)
  EstimateArea,     // -> um^2
  GetFaultList,     // -> symbolic fault list
  GetDetectionTable,  // input pattern -> detection table
  SeqReset,         // sequential extension: reset good/faulty shadow machine
  SeqStep,          // sequential extension: clock a machine one cycle
  Negotiate,        // interactive estimator negotiation (constraints -> offer)
  GetDetectionTables,  // batched: a buffer of input configurations -> one
                       // detection table per entry, one message pair total
                       // (the pattern-buffering mechanism applied to fault
                       // characterization)
};

std::string toString(MethodId m);

/// Job-queue lane for a method, stamped into the request frame header by
/// the client channel (the per-method job types of the rippled JobQueue
/// idiom). Session control outranks everything so sessions can always be
/// opened and closed under load; bulk buffer methods yield to single-shot
/// simulation work.
net::JobPriority priorityFor(MethodId m);

/// Argument field categories. The marshalling filter admits only the
/// port-level / bookkeeping ones.
enum class ArgTag : std::uint8_t {
  U64 = 1,
  Double = 2,
  Word = 3,         // a signal value at the component's own ports
  WordVector = 4,   // a pattern buffer for the component's own inputs
  String = 5,       // component/parameter names
  DesignGraph = 13,  // FORBIDDEN: information about the rest of the design
};

/// Tagged argument writer/reader. All request arguments must go through
/// this, which is what makes the marshalling filter meaningful.
class Args {
 public:
  Args() = default;
  explicit Args(net::ByteBuffer buf) : buf_(std::move(buf)) {}

  Args& addU64(std::uint64_t v);
  Args& addDouble(double v);
  Args& addWord(const Word& w);
  Args& addWordVector(const std::vector<Word>& ws);
  Args& addString(const std::string& s);
  /// Deliberately present so misbehaving client code can *try* to ship
  /// design-structure information; the filter rejects it before transmission.
  Args& addDesignGraph(const std::string& serializedStructure);

  std::uint64_t takeU64();
  double takeDouble();
  Word takeWord();
  std::vector<Word> takeWordVector();
  std::string takeString();

  const net::ByteBuffer& buffer() const { return buf_; }
  net::ByteBuffer& buffer() { return buf_; }

 private:
  void expectTag(ArgTag t);
  net::ByteBuffer buf_;
};

struct Request {
  SessionId session = 0;
  InstanceId instance = 0;
  MethodId method = MethodId::OpenSession;
  /// Unique id of the *logical* call, shared by every retransmission of it.
  /// The provider's replay cache keys on this, so a retried non-idempotent
  /// method (Instantiate, EvalFunction, EstimatePower, ...) is answered from
  /// the cache instead of executing — and billing — twice. 0 = unassigned
  /// (the channel stamps one before the request ships).
  std::uint64_t idempotencyKey = 0;
  /// Trace span-context id: the client channel's span id for this call,
  /// shipped so the provider's dispatch span can stitch into the same
  /// cross-domain trace (obs::SpanScope adoption). 0 = untraced. Carried in
  /// every frame (fixed 8 bytes) so traced and untraced runs ship
  /// byte-count-identical messages; has no effect on execution or billing.
  std::uint64_t spanContext = 0;
  std::string component;  // for Instantiate / GetCatalog
  Args args;

  net::ByteBuffer marshal() const;
  static Request unmarshal(net::ByteBuffer& buf);
};

/// True for methods whose re-execution is observable (server-side state
/// mutation or fee charge); these are the methods the provider deduplicates
/// by idempotency key. Pure queries (GetCatalog, GetFaultList, Negotiate,
/// session management) are safe to replay.
bool isNonIdempotent(MethodId m);

enum class Status : std::uint8_t {
  Ok = 0,
  Error,
  SecurityViolation,
  NotFound,
  PaymentRequired,
  UnknownSession,    // session lost (e.g. provider restart) — recoverable
  TransportFailure,  // client-side: retries exhausted, channel declared dead
};

std::string toString(Status s);

struct Response {
  Status status = Status::Ok;
  std::string error;
  net::ByteBuffer payload;
  double feeCents = 0.0;  // charged by this call (provider accounting)
  /// Set by the provider when this response was served from the replay
  /// cache (the original execution already charged any fee, which this
  /// response still reports so the client's ledger converges).
  bool replayed = false;

  bool ok() const { return status == Status::Ok; }

  net::ByteBuffer marshal() const;
  static Response unmarshal(net::ByteBuffer& buf);

  static Response failure(Status s, std::string message);
};

}  // namespace vcad::rmi
