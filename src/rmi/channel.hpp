// RmiChannel: the client's view of one provider server.
//
// The channel is in-process but byte-accurate: requests and responses are
// fully marshalled, the marshalling security filter inspects outgoing
// payloads, and a NetworkModel charges simulated wall-clock time (latency +
// bandwidth + jitter, plus shared-host contention) to a VirtualClock.
// Measured quantities (server CPU seconds) come from real thread timers.
//
// Blocking calls advance the client's wall clock; non-blocking calls (the
// paper's new-thread gate-level simulations) accumulate on a separate
// overlap account, so the harness can reconstruct how much latency was
// hidden behind client compute.
//
// Thread safety: call() and callAsync() may be issued concurrently from any
// number of threads (the parallel fault campaign shares one channel across
// its worker pool). Stats/model updates are guarded by one mutex, and
// server dispatch is serialized per channel by a second one, so a
// ServerEndpoint only ever sees one in-flight request per channel — endpoint
// implementations need no internal locking of their own.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>

#include "core/log.hpp"
#include "net/faulty_transport.hpp"
#include "net/network.hpp"
#include "rmi/protocol.hpp"
#include "rmi/security.hpp"

namespace vcad::rmi {

/// Server side of the wire: anything able to answer unmarshalled requests.
class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;
  virtual Response dispatch(const Request& request) = 0;
  virtual std::string hostName() const = 0;
};

/// How the channel survives an unreliable transport: per-attempt response
/// deadline, capped exponential backoff with deterministic jitter, and a
/// bounded attempt budget after which the call is declared a
/// TransportFailure (triggering session recovery upstream).
struct RetryPolicy {
  int maxAttempts = 5;            // transmissions per logical call
  double timeoutSec = 0.25;       // per-attempt response deadline (simulated)
  double backoffBaseSec = 0.02;   // first retry delay
  double backoffMaxSec = 0.5;     // backoff cap
  double backoffJitter = 0.25;    // uniform +/- fraction, derived from the
                                  // request's idempotency key (deterministic)

  /// Backoff charged before retransmission number `attempt` (2-based: the
  /// first retransmission is attempt 2). Pure function of (key, attempt).
  double backoffSec(std::uint64_t key, int attempt) const;
};

struct ChannelStats {
  std::uint64_t calls = 0;  // every attempted call, security rejections
                            // included (rejections never reach the server,
                            // but they are client requests all the same)
  std::uint64_t blockedCalls = 0;
  std::uint64_t asyncCalls = 0;
  std::uint64_t securityRejections = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  double blockingWallSec = 0.0;     // wire + server time the client waited on
  double nonblockingWallSec = 0.0;  // wire + server time overlapped with work
  double maxNonblockingCallSec = 0.0;  // longest single overlapped call (the
                                       // fully-parallel latency lower bound)
  double serverCpuSec = 0.0;        // measured provider compute
  double feesCents = 0.0;           // accumulated provider fees

  // --- unreliable-transport accounting ----------------------------------
  std::uint64_t retries = 0;   // retransmissions (attempts beyond the first)
  std::uint64_t timeouts = 0;  // attempts that hit the response deadline
                               // (dropped/stalled/stale/corrupted exchanges)
  std::uint64_t duplicatesSuppressed = 0;  // replay-cache answers observed:
                                           // duplicates and retried
                                           // non-idempotent calls the
                                           // provider refused to re-execute
  std::uint64_t corruptedFramesDropped = 0;  // checksum-rejected frames
  std::uint64_t transportFailures = 0;  // calls declared dead after the
                                        // attempt budget
  double networkSec = 0.0;  // deterministic transport time only: wire
                            // delays + timeouts + backoff, NO server compute
                            // (bit-reproducible from the channel seed)
};

class RmiChannel {
 public:
  RmiChannel(ServerEndpoint& server, net::NetworkProfile profile,
             LogSink* audit = nullptr, std::uint64_t seed = 0x5eed);

  /// Synchronous call: the client stalls for the full round trip.
  Response call(const Request& request);

  /// Non-blocking call (new-thread simulation runs): the round-trip cost
  /// lands on the overlap account instead of the blocking clock.
  std::future<Response> callAsync(Request request);

  /// Routes every exchange through a fault-injecting transport (chaos
  /// testing). The transport must outlive the channel; nullptr restores the
  /// ideal exactly-once delivery. Not thread-safe against in-flight calls —
  /// install before traffic starts.
  void setTransport(net::FaultyTransport* transport) { transport_ = transport; }
  net::FaultyTransport* transport() const { return transport_; }

  void setRetryPolicy(RetryPolicy policy) { policy_ = policy; }
  const RetryPolicy& retryPolicy() const { return policy_; }

  /// Mints a fresh idempotency key (same generator `call` uses to stamp
  /// unkeyed requests). A caller that re-issues a failed logical call with
  /// the SAME key is recognized by the provider's replay cache, and the
  /// channel resumes the key's attempt numbering where the failed call left
  /// off — under a deterministic fault schedule a verbatim re-run would
  /// otherwise replay the exact faults that killed it.
  std::uint64_t makeKey() { return stampKey(); }

  const ChannelStats& stats() const { return stats_; }
  void resetStats() { stats_ = ChannelStats{}; }

  /// Total simulated wall-clock seconds the client was stalled by this
  /// channel (the blocking account).
  double blockedWallSec() const { return stats_.blockingWallSec; }

  const net::NetworkProfile& profile() const { return model_.profile(); }
  ServerEndpoint& server() { return server_; }

 private:
  struct Attempt {
    bool delivered = false;  // a valid response made it back
    Response response;
    std::size_t bytesSent = 0;
    std::size_t bytesReceived = 0;
    double wallSec = 0.0;     // total client wait for this attempt
    double networkSec = 0.0;  // deterministic share of wallSec
    double serverCpuSec = 0.0;
    std::uint64_t duplicatesSuppressed = 0;
    bool timedOut = false;
    bool corruptedFrame = false;
  };

  Response transact(const Request& request, bool blocking);
  /// One transmission attempt: ships the frame, dispatches (possibly twice,
  /// when the transport duplicates), and collects the response — or times
  /// out per the fault plan.
  Attempt attemptOnce(const net::ByteBuffer& wire, const Request& request,
                      std::uint32_t attempt);
  std::uint64_t stampKey();

  ServerEndpoint& server_;
  net::NetworkModel model_;
  MarshalFilter filter_;
  LogSink* audit_;
  net::FaultyTransport* transport_ = nullptr;
  RetryPolicy policy_;
  std::uint64_t keySalt_;
  std::atomic<std::uint64_t> nextKey_{1};
  /// Attempt numbers already burned per idempotency key, kept only for keys
  /// whose call was declared a TransportFailure: a re-issue of that key
  /// continues at the next attempt index instead of replaying the fault
  /// plans that exhausted the budget. Erased on delivery, so the map stays
  /// bounded by the number of currently-dead logical calls.
  std::map<std::uint64_t, std::uint32_t> spentAttempts_;
  std::mutex mutex_;  // serializes stats/model updates across async calls
  std::mutex dispatchMutex_;  // serializes server dispatch: callAsync spawns
                              // concurrent threads, but provider-side state
                              // (fee accounting, session tables) sees one
                              // request at a time per channel
  ChannelStats stats_;
};

}  // namespace vcad::rmi
