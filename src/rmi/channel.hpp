// RmiChannel: the client's view of one provider server.
//
// The channel is byte-accurate: requests and responses are fully
// marshalled, the marshalling security filter inspects outgoing payloads,
// and a NetworkModel charges simulated wall-clock time (latency + bandwidth
// + jitter, plus shared-host contention) to a VirtualClock. Measured
// quantities (server CPU seconds) come from real thread timers.
//
// The wire underneath is a pluggable net::Transport: the default loopback
// backend dispatches in-process, while net::SocketTransport carries the
// same framed exchanges to a provider in another process. Everything that
// decides the *simulated* outcome — fault plans, time charges, retries,
// backoff — runs client-side in the channel, so the two backends produce
// bit-identical coverage, fees, and networkSec for the same seeds.
//
// Blocking calls advance the client's wall clock; non-blocking calls (the
// paper's new-thread gate-level simulations) accumulate on a separate
// overlap account, so the harness can reconstruct how much latency was
// hidden behind client compute.
//
// Non-blocking calls run on a bounded completion-queue worker pool
// (submit/poll/wait/waitAny, with a std::future shim for legacy callers):
// several requests can be in flight at once, pipelined onto the transport
// and matched back by per-attempt request ids — not one OS thread per call.
//
// Thread safety: call(), callAsync() and the completion-queue API may be
// used concurrently from any number of threads (the parallel fault campaign
// shares one channel across its worker pool). Stats/model updates are
// guarded by one mutex, and the loopback transport serializes endpoint
// dispatch, so a ServerEndpoint behind this channel only ever sees one
// in-flight request — endpoint implementations need no internal locking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/log.hpp"
#include "net/faulty_transport.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "rmi/protocol.hpp"
#include "rmi/security.hpp"

namespace vcad::rmi {

/// Server side of the wire: anything able to answer unmarshalled requests.
class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;
  virtual Response dispatch(const Request& request) = 0;
  virtual std::string hostName() const = 0;
};

/// How the channel survives an unreliable transport: per-attempt response
/// deadline, capped exponential backoff with deterministic jitter, and a
/// bounded attempt budget after which the call is declared a
/// TransportFailure (triggering session recovery upstream).
struct RetryPolicy {
  int maxAttempts = 5;            // transmissions per logical call
  double timeoutSec = 0.25;       // per-attempt response deadline (simulated)
  double backoffBaseSec = 0.02;   // first retry delay
  double backoffMaxSec = 0.5;     // backoff cap
  double backoffJitter = 0.25;    // uniform +/- fraction, derived from the
                                  // request's idempotency key (deterministic)

  /// Backoff charged before retransmission number `attempt` (2-based: the
  /// first retransmission is attempt 2). Pure function of (key, attempt).
  double backoffSec(std::uint64_t key, int attempt) const;
};

struct ChannelStats {
  std::uint64_t calls = 0;  // every attempted call, security rejections
                            // included (rejections never reach the server,
                            // but they are client requests all the same)
  std::uint64_t blockedCalls = 0;
  std::uint64_t asyncCalls = 0;
  std::uint64_t securityRejections = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  double blockingWallSec = 0.0;     // wire + server time the client waited on
  double nonblockingWallSec = 0.0;  // wire + server time overlapped with work
  double maxNonblockingCallSec = 0.0;  // longest single overlapped call (the
                                       // fully-parallel latency lower bound)
  double serverCpuSec = 0.0;        // measured provider compute
  double feesCents = 0.0;           // accumulated provider fees

  // --- unreliable-transport accounting ----------------------------------
  std::uint64_t retries = 0;   // retransmissions (attempts beyond the first)
  std::uint64_t timeouts = 0;  // attempts that hit the response deadline
                               // (dropped/stalled/stale/corrupted exchanges)
  std::uint64_t duplicatesSuppressed = 0;  // replay-cache answers observed:
                                           // duplicates and retried
                                           // non-idempotent calls the
                                           // provider refused to re-execute
  std::uint64_t corruptedFramesDropped = 0;  // checksum-rejected frames
  std::uint64_t transportFailures = 0;  // calls declared dead after the
                                        // attempt budget
  std::uint64_t shedResponses = 0;  // typed admission sheds received
                                    // (TooManyPending / Overloaded), counted
                                    // identically on every transport backend
  std::uint64_t quotaRejections = 0;  // typed QuotaExceeded rejections: the
                                      // provider refused the tenant, the
                                      // call failed without retrying
  double networkSec = 0.0;  // deterministic transport time only: wire
                            // delays + timeouts + backoff, NO server compute
                            // (bit-reproducible from the channel seed)
};

class RmiChannel {
 public:
  /// In-process channel: wraps `server` in a loopback transport.
  RmiChannel(ServerEndpoint& server, net::NetworkProfile profile,
             LogSink* audit = nullptr, std::uint64_t seed = 0x5eed);

  /// Channel over an explicit transport (e.g. net::SocketTransport to a
  /// provider process).
  RmiChannel(std::unique_ptr<net::Transport> transport,
             net::NetworkProfile profile, LogSink* audit = nullptr,
             std::uint64_t seed = 0x5eed);

  ~RmiChannel();
  RmiChannel(const RmiChannel&) = delete;
  RmiChannel& operator=(const RmiChannel&) = delete;

  /// Synchronous call: the client stalls for the full round trip.
  Response call(const Request& request);

  // --- completion queue (truly-async calls) -------------------------------

  /// Ticket for one in-flight non-blocking call.
  struct CallHandle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Enqueues a non-blocking call on the bounded worker pool and returns
  /// immediately. Round-trip cost lands on the overlap account.
  CallHandle submit(Request request);

  /// Non-blocking completion check; claims the response into `*out` (or
  /// discards it when out == nullptr) if ready.
  bool poll(CallHandle handle, Response* out);

  /// Blocks until `handle` completes and claims its response. An unknown or
  /// already-claimed handle yields a TransportFailure response rather than
  /// deadlocking.
  Response wait(CallHandle handle);

  /// Blocks until *any* submitted call completes and claims it; nullopt
  /// when nothing is in flight. Completion order, not submission order.
  std::optional<std::pair<CallHandle, Response>> waitAny();

  /// Resizes the worker pool (the in-flight depth). Blocks until currently
  /// queued work drains, then takes effect for subsequent submissions.
  /// 0 restores the default depth.
  void setMaxInFlight(std::size_t workers);
  std::size_t maxInFlight() const;

  /// Legacy shim: a std::future fulfilled by the completion queue — same
  /// bounded pool, not a thread per call.
  std::future<Response> callAsync(Request request);

  // --- chaos / policy ------------------------------------------------------

  /// Routes every exchange through a fault-injecting chaos plan (the
  /// injector must outlive the channel; nullptr restores ideal
  /// exactly-once delivery). Swapping mid-traffic would corrupt attempt
  /// accounting, so an install while calls are in flight trips a loud
  /// assertion — install before traffic starts.
  void setFaultInjector(net::FaultyTransport* injector);
  net::FaultyTransport* faultInjector() const { return faultInjector_; }

  /// Calls currently inside the channel (transact in progress).
  int inFlightCalls() const {
    return inFlightCalls_.load(std::memory_order_acquire);
  }

  void setRetryPolicy(RetryPolicy policy) { policy_ = policy; }
  const RetryPolicy& retryPolicy() const { return policy_; }

  /// Real-time cap on waiting for one response frame from the transport
  /// (distinct from RetryPolicy::timeoutSec, which is simulated time). Only
  /// socket backends ever wait for real; loopback completes immediately.
  void setRealAwaitSec(double sec) { realAwaitSec_ = sec; }

  /// Tenant id stamped into every request frame header, identifying whose
  /// quota/ledger/replay-shard this channel bills against on a multi-tenant
  /// provider. 0 (the default) is the anonymous single-tenant identity.
  /// Set before traffic starts; single-tenant servers ignore it.
  void setTenant(std::uint64_t tenantId) {
    tenantId_.store(tenantId, std::memory_order_release);
  }
  std::uint64_t tenant() const {
    return tenantId_.load(std::memory_order_acquire);
  }

  /// Mints a fresh idempotency key (same generator `call` uses to stamp
  /// unkeyed requests). A caller that re-issues a failed logical call with
  /// the SAME key is recognized by the provider's replay cache, and the
  /// channel resumes the key's attempt numbering where the failed call left
  /// off — under a deterministic fault schedule a verbatim re-run would
  /// otherwise replay the exact faults that killed it.
  std::uint64_t makeKey() { return stampKey(); }

  const ChannelStats& stats() const { return stats_; }
  void resetStats();

  /// Total simulated wall-clock seconds the client was stalled by this
  /// channel (the blocking account).
  double blockedWallSec() const { return stats_.blockingWallSec; }

  const net::NetworkProfile& profile() const { return model_.profile(); }

  /// The in-process endpoint behind a loopback channel; nullptr when the
  /// transport crosses a process boundary (use RemoteConfig's explicit
  /// PublicPartSource there).
  ServerEndpoint* endpointOrNull() { return endpoint_; }
  /// Legacy accessor; throws std::logic_error on a non-loopback channel.
  ServerEndpoint& server();

  net::Transport& wire() { return *wire_; }

 private:
  struct Attempt {
    bool delivered = false;  // a valid response made it back
    Response response;
    std::size_t bytesSent = 0;
    std::size_t bytesReceived = 0;
    double wallSec = 0.0;     // total client wait for this attempt
    double networkSec = 0.0;  // deterministic share of wallSec
    double serverCpuSec = 0.0;
    std::uint64_t duplicatesSuppressed = 0;
    bool timedOut = false;
    bool corruptedFrame = false;
    bool shedByServer = false;   // typed TooManyPending / Overloaded reply
    bool quotaRejected = false;  // typed QuotaExceeded reply (terminal)
  };

  struct AsyncJob {
    std::uint64_t handle = 0;  // 0: future-shim job
    Request request;
    std::promise<Response> promise;
    bool viaFuture = false;
  };

  Response transact(const Request& request, bool blocking);
  /// One transmission attempt: ships the frame (twice, when the fault plan
  /// duplicates), awaits the matching response frame, and collects the
  /// response — or times out per the fault plan.
  Attempt attemptOnce(const net::ByteBuffer& wire, const Request& request,
                      std::uint32_t attempt);
  std::uint64_t stampKey();
  void enqueueJob(AsyncJob job);
  void ensureWorkersLocked();
  void workerLoop();

  ServerEndpoint* endpoint_;  // non-null only for loopback channels
  std::unique_ptr<net::Transport> ownedTransport_;
  net::Transport* wire_;
  net::NetworkModel model_;
  MarshalFilter filter_;
  LogSink* audit_;
  net::FaultyTransport* faultInjector_ = nullptr;
  RetryPolicy policy_;
  double realAwaitSec_ = 5.0;
  std::atomic<std::uint64_t> tenantId_{0};
  std::uint64_t keySalt_;
  std::atomic<std::uint64_t> nextKey_{1};
  /// Unique per transmission attempt (a retransmission gets a fresh id), so
  /// the transport can match out-of-order responses and reject stale ones.
  std::atomic<std::uint64_t> nextRequestId_{1};
  std::atomic<int> inFlightCalls_{0};
  /// Attempt numbers already burned per idempotency key, kept only for keys
  /// whose call was declared a TransportFailure: a re-issue of that key
  /// continues at the next attempt index instead of replaying the fault
  /// plans that exhausted the budget. Erased on delivery, so the map stays
  /// bounded by the number of currently-dead logical calls.
  std::map<std::uint64_t, std::uint32_t> spentAttempts_;
  std::mutex mutex_;  // serializes stats/model updates across async calls
  ChannelStats stats_;

  // --- completion queue state (declared last: torn down first) -----------
  mutable std::mutex asyncMutex_;
  std::condition_variable asyncWorkCv_;  // wakes workers
  std::condition_variable asyncDoneCv_;  // wakes waiters / drainers
  std::deque<AsyncJob> asyncQueue_;
  std::map<std::uint64_t, Response> asyncDone_;  // completed, unclaimed
  std::set<std::uint64_t> asyncLive_;  // submitted handles not yet claimed
  std::size_t runningJobs_ = 0;
  std::uint64_t nextHandle_ = 1;
  std::size_t maxInFlight_ = 0;  // 0 = default pool size
  bool asyncStop_ = false;
  std::vector<std::thread> asyncWorkers_;
};

}  // namespace vcad::rmi
