// RmiChannel: the client's view of one provider server.
//
// The channel is in-process but byte-accurate: requests and responses are
// fully marshalled, the marshalling security filter inspects outgoing
// payloads, and a NetworkModel charges simulated wall-clock time (latency +
// bandwidth + jitter, plus shared-host contention) to a VirtualClock.
// Measured quantities (server CPU seconds) come from real thread timers.
//
// Blocking calls advance the client's wall clock; non-blocking calls (the
// paper's new-thread gate-level simulations) accumulate on a separate
// overlap account, so the harness can reconstruct how much latency was
// hidden behind client compute.
//
// Thread safety: call() and callAsync() may be issued concurrently from any
// number of threads (the parallel fault campaign shares one channel across
// its worker pool). Stats/model updates are guarded by one mutex, and
// server dispatch is serialized per channel by a second one, so a
// ServerEndpoint only ever sees one in-flight request per channel — endpoint
// implementations need no internal locking of their own.
#pragma once

#include <functional>
#include <future>
#include <memory>

#include "core/log.hpp"
#include "net/network.hpp"
#include "rmi/protocol.hpp"
#include "rmi/security.hpp"

namespace vcad::rmi {

/// Server side of the wire: anything able to answer unmarshalled requests.
class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;
  virtual Response dispatch(const Request& request) = 0;
  virtual std::string hostName() const = 0;
};

struct ChannelStats {
  std::uint64_t calls = 0;  // every attempted call, security rejections
                            // included (rejections never reach the server,
                            // but they are client requests all the same)
  std::uint64_t blockedCalls = 0;
  std::uint64_t asyncCalls = 0;
  std::uint64_t securityRejections = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  double blockingWallSec = 0.0;     // wire + server time the client waited on
  double nonblockingWallSec = 0.0;  // wire + server time overlapped with work
  double maxNonblockingCallSec = 0.0;  // longest single overlapped call (the
                                       // fully-parallel latency lower bound)
  double serverCpuSec = 0.0;        // measured provider compute
  double feesCents = 0.0;           // accumulated provider fees
};

class RmiChannel {
 public:
  RmiChannel(ServerEndpoint& server, net::NetworkProfile profile,
             LogSink* audit = nullptr, std::uint64_t seed = 0x5eed);

  /// Synchronous call: the client stalls for the full round trip.
  Response call(const Request& request);

  /// Non-blocking call (new-thread simulation runs): the round-trip cost
  /// lands on the overlap account instead of the blocking clock.
  std::future<Response> callAsync(Request request);

  const ChannelStats& stats() const { return stats_; }
  void resetStats() { stats_ = ChannelStats{}; }

  /// Total simulated wall-clock seconds the client was stalled by this
  /// channel (the blocking account).
  double blockedWallSec() const { return stats_.blockingWallSec; }

  const net::NetworkProfile& profile() const { return model_.profile(); }
  ServerEndpoint& server() { return server_; }

 private:
  Response transact(const Request& request, bool blocking);

  ServerEndpoint& server_;
  net::NetworkModel model_;
  MarshalFilter filter_;
  LogSink* audit_;
  std::mutex mutex_;  // serializes stats/model updates across async calls
  std::mutex dispatchMutex_;  // serializes server dispatch: callAsync spawns
                              // concurrent threads, but provider-side state
                              // (fee accounting, session tables) sees one
                              // request at a time per channel
  ChannelStats stats_;
};

}  // namespace vcad::rmi
