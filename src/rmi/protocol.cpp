#include "rmi/protocol.hpp"

#include <stdexcept>

namespace vcad::rmi {

std::string toString(MethodId m) {
  switch (m) {
    case MethodId::OpenSession:
      return "OpenSession";
    case MethodId::CloseSession:
      return "CloseSession";
    case MethodId::GetCatalog:
      return "GetCatalog";
    case MethodId::Instantiate:
      return "Instantiate";
    case MethodId::EvalFunction:
      return "EvalFunction";
    case MethodId::EstimatePower:
      return "EstimatePower";
    case MethodId::EstimateTiming:
      return "EstimateTiming";
    case MethodId::EstimateArea:
      return "EstimateArea";
    case MethodId::GetFaultList:
      return "GetFaultList";
    case MethodId::GetDetectionTable:
      return "GetDetectionTable";
    case MethodId::SeqReset:
      return "SeqReset";
    case MethodId::SeqStep:
      return "SeqStep";
    case MethodId::Negotiate:
      return "Negotiate";
    case MethodId::GetDetectionTables:
      return "GetDetectionTables";
  }
  return "?";
}

net::JobPriority priorityFor(MethodId m) {
  switch (m) {
    case MethodId::OpenSession:
    case MethodId::CloseSession:
      return net::JobPriority::Control;
    case MethodId::GetCatalog:
    case MethodId::GetFaultList:
    case MethodId::Negotiate:
      return net::JobPriority::Query;
    case MethodId::Instantiate:
    case MethodId::EvalFunction:
    case MethodId::EstimateTiming:
    case MethodId::EstimateArea:
    case MethodId::GetDetectionTable:
    case MethodId::SeqReset:
    case MethodId::SeqStep:
      return net::JobPriority::Compute;
    case MethodId::EstimatePower:      // pattern buffer
    case MethodId::GetDetectionTables:  // batched tables
      return net::JobPriority::Batch;
  }
  return net::JobPriority::Compute;
}

bool isNonIdempotent(MethodId m) {
  switch (m) {
    case MethodId::Instantiate:     // creates an instance + charges a fee
    case MethodId::EvalFunction:    // charges per eval; records the pattern
                                    // in the server-side history (FullyRemote
                                    // buffering)
    case MethodId::EstimatePower:   // bills per pattern in the batch
    case MethodId::EstimateTiming:  // per-query fee
    case MethodId::EstimateArea:    // per-query fee
    case MethodId::GetDetectionTable:   // per-table fee
    case MethodId::GetDetectionTables:  // per-table fee x batch
    case MethodId::SeqReset:  // mutates the shadow-machine state
    case MethodId::SeqStep:   // clocks the machine + charges per eval
      return true;
    case MethodId::OpenSession:  // deduplicated separately (no session yet)
    case MethodId::CloseSession:
    case MethodId::GetCatalog:
    case MethodId::GetFaultList:
    case MethodId::Negotiate:
      return false;
  }
  return false;
}

std::string toString(Status s) {
  switch (s) {
    case Status::Ok:
      return "Ok";
    case Status::Error:
      return "Error";
    case Status::SecurityViolation:
      return "SecurityViolation";
    case Status::NotFound:
      return "NotFound";
    case Status::PaymentRequired:
      return "PaymentRequired";
    case Status::UnknownSession:
      return "UnknownSession";
    case Status::TransportFailure:
      return "TransportFailure";
  }
  return "?";
}

// --- Args ------------------------------------------------------------------

Args& Args::addU64(std::uint64_t v) {
  buf_.writeU8(static_cast<std::uint8_t>(ArgTag::U64));
  buf_.writeU64(v);
  return *this;
}

Args& Args::addDouble(double v) {
  buf_.writeU8(static_cast<std::uint8_t>(ArgTag::Double));
  buf_.writeDouble(v);
  return *this;
}

Args& Args::addWord(const Word& w) {
  buf_.writeU8(static_cast<std::uint8_t>(ArgTag::Word));
  buf_.writeWord(w);
  return *this;
}

Args& Args::addWordVector(const std::vector<Word>& ws) {
  buf_.writeU8(static_cast<std::uint8_t>(ArgTag::WordVector));
  buf_.writeWordVector(ws);
  return *this;
}

Args& Args::addString(const std::string& s) {
  buf_.writeU8(static_cast<std::uint8_t>(ArgTag::String));
  buf_.writeString(s);
  return *this;
}

Args& Args::addDesignGraph(const std::string& serializedStructure) {
  buf_.writeU8(static_cast<std::uint8_t>(ArgTag::DesignGraph));
  buf_.writeString(serializedStructure);
  return *this;
}

void Args::expectTag(ArgTag t) {
  const auto got = static_cast<ArgTag>(buf_.readU8());
  if (got != t) {
    throw std::runtime_error("Args: expected tag " +
                             std::to_string(static_cast<int>(t)) + ", got " +
                             std::to_string(static_cast<int>(got)));
  }
}

std::uint64_t Args::takeU64() {
  expectTag(ArgTag::U64);
  return buf_.readU64();
}

double Args::takeDouble() {
  expectTag(ArgTag::Double);
  return buf_.readDouble();
}

Word Args::takeWord() {
  expectTag(ArgTag::Word);
  return buf_.readWord();
}

std::vector<Word> Args::takeWordVector() {
  expectTag(ArgTag::WordVector);
  return buf_.readWordVector();
}

std::string Args::takeString() {
  expectTag(ArgTag::String);
  return buf_.readString();
}

// --- Request / Response ------------------------------------------------

net::ByteBuffer Request::marshal() const {
  net::ByteBuffer out;
  out.writeU64(session);
  out.writeU64(instance);
  out.writeU32(static_cast<std::uint32_t>(method));
  out.writeU64(idempotencyKey);
  out.writeU64(spanContext);
  out.writeString(component);
  out.writeBytes(args.buffer().bytes());
  return out;
}

Request Request::unmarshal(net::ByteBuffer& buf) {
  Request r;
  r.session = buf.readU64();
  r.instance = buf.readU64();
  r.method = static_cast<MethodId>(buf.readU32());
  r.idempotencyKey = buf.readU64();
  r.spanContext = buf.readU64();
  r.component = buf.readString();
  r.args = Args(net::ByteBuffer(buf.readBytes()));
  return r;
}

net::ByteBuffer Response::marshal() const {
  net::ByteBuffer out;
  out.writeU8(static_cast<std::uint8_t>(status));
  out.writeBool(replayed);
  out.writeString(error);
  out.writeDouble(feeCents);
  out.writeBytes(payload.bytes());
  return out;
}

Response Response::unmarshal(net::ByteBuffer& buf) {
  Response r;
  r.status = static_cast<Status>(buf.readU8());
  r.replayed = buf.readBool();
  r.error = buf.readString();
  r.feeCents = buf.readDouble();
  r.payload = net::ByteBuffer(buf.readBytes());
  return r;
}

Response Response::failure(Status s, std::string message) {
  Response r;
  r.status = s;
  r.error = std::move(message);
  return r;
}

}  // namespace vcad::rmi
