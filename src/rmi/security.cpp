#include "rmi/security.hpp"

namespace vcad::rmi {

namespace {
bool admissibleTag(ArgTag t) {
  switch (t) {
    case ArgTag::U64:
    case ArgTag::Double:
    case ArgTag::Word:
    case ArgTag::WordVector:
    case ArgTag::String:
      return true;
    case ArgTag::DesignGraph:
      return false;
  }
  return false;
}

/// Walks the tagged payload without interpreting values, returning the first
/// inadmissible tag (or 0 when the payload is clean).
std::uint8_t scan(net::ByteBuffer buf) {
  buf.rewind();
  while (!buf.exhausted()) {
    const std::uint8_t raw = buf.readU8();
    const auto tag = static_cast<ArgTag>(raw);
    if (!admissibleTag(tag)) return raw;
    switch (tag) {
      case ArgTag::U64:
        buf.readU64();
        break;
      case ArgTag::Double:
        buf.readDouble();
        break;
      case ArgTag::Word:
        buf.readWord();
        break;
      case ArgTag::WordVector:
        buf.readWordVector();
        break;
      case ArgTag::String:
        buf.readString();
        break;
      case ArgTag::DesignGraph:
        return raw;  // unreachable; admissibleTag already rejected it
    }
  }
  return 0;
}
}  // namespace

bool MarshalFilter::admit(const Request& request) {
  const std::uint8_t bad = scan(request.args.buffer());
  if (bad == 0) return true;
  if (audit_ != nullptr) {
    audit_->security("marshalling filter blocked " + toString(request.method) +
                     " to component '" + request.component +
                     "': argument tag " + std::to_string(bad) +
                     " would leak non-port design information");
  }
  return false;
}

void Sandbox::deny(const std::string& what) const {
  if (audit_ != nullptr) audit_->security(what);
  throw SecurityViolationError(what);
}

void Sandbox::requireFileSystem(const std::string& who) const {
  if (!caps_.fileSystem) {
    deny("sandbox: '" + who + "' attempted file-system access");
  }
}

void Sandbox::requireNetwork(const std::string& who, const std::string& host,
                             const std::string& originHost) const {
  // Downloaded code may always talk back to the provider server it came
  // from (that is how stubs work); anything else needs the capability.
  if (host == originHost) return;
  if (!caps_.arbitraryNetwork) {
    deny("sandbox: '" + who + "' attempted connection to '" + host +
         "' (origin is '" + originHost + "')");
  }
}

void Sandbox::requireDesignIntrospection(const std::string& who) const {
  if (!caps_.designIntrospection) {
    deny("sandbox: '" + who + "' attempted to inspect the user design");
  }
}

}  // namespace vcad::rmi
