#include "rmi/channel.hpp"

#include <chrono>

namespace vcad::rmi {

RmiChannel::RmiChannel(ServerEndpoint& server, net::NetworkProfile profile,
                       LogSink* audit, std::uint64_t seed)
    : server_(server),
      model_(std::move(profile), seed),
      filter_(audit),
      audit_(audit) {}

Response RmiChannel::call(const Request& request) {
  return transact(request, /*blocking=*/true);
}

std::future<Response> RmiChannel::callAsync(Request request) {
  return std::async(std::launch::async, [this, req = std::move(request)] {
    return transact(req, /*blocking=*/false);
  });
}

Response RmiChannel::transact(const Request& request, bool blocking) {
  // 1. Security: inspect exactly what would go on the wire.
  if (!filter_.admit(request)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
    ++stats_.securityRejections;
    return Response::failure(
        Status::SecurityViolation,
        "marshalling filter rejected non-port design information");
  }

  // 2. Marshal and ship the request.
  net::ByteBuffer wire = request.marshal();
  const std::size_t sentBytes = wire.size();
  double wallSec = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    wallSec += model_.messageDelaySec(sentBytes);
  }

  // 3. Server executes; measure its compute time with a high-resolution
  // monotonic clock (the dispatch never blocks, so wall time == compute
  // time, and this avoids the coarse granularity of kernel CPU accounting).
  // Dispatch is serialized per channel: concurrent callAsync threads must
  // not race on provider-side state (fee accounting, session tables).
  Request onServer = Request::unmarshal(wire);
  double serverCpu = 0.0;
  Response response;
  {
    std::lock_guard<std::mutex> dispatchLock(dispatchMutex_);
    const auto serverStart = std::chrono::steady_clock::now();
    response = server_.dispatch(onServer);
    serverCpu = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              serverStart)
                    .count();
  }
  wallSec += model_.serverComputeWallSec(serverCpu);

  // 4. Marshal and ship the response.
  net::ByteBuffer back = response.marshal();
  const std::size_t recvBytes = back.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    wallSec += model_.messageDelaySec(recvBytes);
  }
  Response onClient = Response::unmarshal(back);

  // 5. Account.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
    if (blocking) {
      ++stats_.blockedCalls;
      stats_.blockingWallSec += wallSec;
    } else {
      ++stats_.asyncCalls;
      stats_.nonblockingWallSec += wallSec;
      if (wallSec > stats_.maxNonblockingCallSec) {
        stats_.maxNonblockingCallSec = wallSec;
      }
    }
    stats_.bytesSent += sentBytes;
    stats_.bytesReceived += recvBytes;
    stats_.serverCpuSec += serverCpu;
    stats_.feesCents += onClient.feeCents;
  }
  if (audit_ != nullptr && !onClient.ok()) {
    audit_->warning("RMI " + toString(request.method) + " failed: " +
                    toString(onClient.status) + " (" + onClient.error + ")");
  }
  return onClient;
}

}  // namespace vcad::rmi
