#include "rmi/channel.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rmi/loopback_transport.hpp"

namespace vcad::rmi {

namespace {

/// Real-time grace wait for a reply to a frame the receiver will discard
/// (corrupted request): almost certainly nothing comes back, but the short
/// window keeps the checksum-collision case on the same code path.
constexpr double kCorruptedAwaitSec = 0.02;

/// Span names must be static literals (TraceEvent stores the pointer).
const char* methodSpanName(MethodId m) {
  switch (m) {
    case MethodId::OpenSession:
      return "rmi.OpenSession";
    case MethodId::CloseSession:
      return "rmi.CloseSession";
    case MethodId::GetCatalog:
      return "rmi.GetCatalog";
    case MethodId::Instantiate:
      return "rmi.Instantiate";
    case MethodId::EvalFunction:
      return "rmi.EvalFunction";
    case MethodId::EstimatePower:
      return "rmi.EstimatePower";
    case MethodId::EstimateTiming:
      return "rmi.EstimateTiming";
    case MethodId::EstimateArea:
      return "rmi.EstimateArea";
    case MethodId::GetFaultList:
      return "rmi.GetFaultList";
    case MethodId::GetDetectionTable:
      return "rmi.GetDetectionTable";
    case MethodId::SeqReset:
      return "rmi.SeqReset";
    case MethodId::SeqStep:
      return "rmi.SeqStep";
    case MethodId::Negotiate:
      return "rmi.Negotiate";
    case MethodId::GetDetectionTables:
      return "rmi.GetDetectionTables";
  }
  return "rmi.call";
}

/// Registry mirror of ChannelStats: interned once, then every accounting
/// block records the same deltas it adds to the struct, so the process-wide
/// aggregate stays value-identical to the per-channel ledgers (bit-identical
/// in single-threaded runs, where addition order matches).
struct RmiMetrics {
  obs::Registry::MetricId calls, blockedCalls, asyncCalls, securityRejections,
      bytesSent, bytesReceived, retries, timeouts, duplicatesSuppressed,
      corruptedFramesDropped, transportFailures, shedResponses,
      quotaRejections;
  obs::Registry::MetricId blockingWallSec, nonblockingWallSec, serverCpuSec,
      feesCents, networkSec;
  obs::Registry::MetricId callWallSec;

  static const RmiMetrics& get() {
    static const RmiMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      RmiMetrics ids;
      ids.calls = r.counter("rmi.calls");
      ids.blockedCalls = r.counter("rmi.blockedCalls");
      ids.asyncCalls = r.counter("rmi.asyncCalls");
      ids.securityRejections = r.counter("rmi.securityRejections");
      ids.bytesSent = r.counter("rmi.bytesSent");
      ids.bytesReceived = r.counter("rmi.bytesReceived");
      ids.retries = r.counter("rmi.retries");
      ids.timeouts = r.counter("rmi.timeouts");
      ids.duplicatesSuppressed = r.counter("rmi.duplicatesSuppressed");
      ids.corruptedFramesDropped = r.counter("rmi.corruptedFramesDropped");
      ids.transportFailures = r.counter("rmi.transportFailures");
      ids.shedResponses = r.counter("rmi.shedResponses");
      ids.quotaRejections = r.counter("rmi.quotaRejections");
      ids.blockingWallSec = r.doubleCounter("rmi.blockingWallSec");
      ids.nonblockingWallSec = r.doubleCounter("rmi.nonblockingWallSec");
      ids.serverCpuSec = r.doubleCounter("rmi.serverCpuSec");
      ids.feesCents = r.doubleCounter("rmi.feesCents");
      ids.networkSec = r.doubleCounter("rmi.networkSec");
      ids.callWallSec = r.histogram("rmi.callWallSec");
      return ids;
    }();
    return m;
  }
};

/// RAII in-flight marker; what the fault-injector swap assertion observes.
struct InFlightGuard {
  explicit InFlightGuard(std::atomic<int>& counter) : counter_(counter) {
    counter_.fetch_add(1, std::memory_order_acq_rel);
  }
  ~InFlightGuard() { counter_.fetch_sub(1, std::memory_order_acq_rel); }
  std::atomic<int>& counter_;
};

}  // namespace

double RetryPolicy::backoffSec(std::uint64_t key, int attempt) const {
  // Exponential from the first retransmission (attempt 2 pays the base),
  // capped, with jitter drawn from a generator seeded by (key, attempt) so
  // the delay is reproducible and independent of thread interleaving.
  const int step = attempt < 2 ? 0 : attempt - 2;
  double delay =
      std::min(backoffBaseSec * std::pow(2.0, static_cast<double>(step)),
               backoffMaxSec);
  if (backoffJitter > 0.0) {
    Rng rng(key * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL);
    delay *= 1.0 + rng.uniform(-backoffJitter, backoffJitter);
  }
  return delay;
}

RmiChannel::RmiChannel(ServerEndpoint& server, net::NetworkProfile profile,
                       LogSink* audit, std::uint64_t seed)
    : endpoint_(&server),
      ownedTransport_(std::make_unique<LoopbackTransport>(server)),
      wire_(ownedTransport_.get()),
      model_(std::move(profile), seed),
      filter_(audit),
      audit_(audit),
      keySalt_(seed) {}

RmiChannel::RmiChannel(std::unique_ptr<net::Transport> transport,
                       net::NetworkProfile profile, LogSink* audit,
                       std::uint64_t seed)
    : endpoint_(nullptr),
      ownedTransport_(std::move(transport)),
      wire_(ownedTransport_.get()),
      model_(std::move(profile), seed),
      filter_(audit),
      audit_(audit),
      keySalt_(seed) {
  if (wire_ == nullptr) {
    throw std::invalid_argument("RmiChannel: null transport");
  }
}

RmiChannel::~RmiChannel() {
  std::vector<std::thread> workers;
  std::deque<AsyncJob> abandoned;
  {
    std::lock_guard<std::mutex> lock(asyncMutex_);
    asyncStop_ = true;
    workers.swap(asyncWorkers_);
    abandoned.swap(asyncQueue_);
    asyncWorkCv_.notify_all();
    asyncDoneCv_.notify_all();
  }
  for (std::thread& t : workers) t.join();
  // Jobs that never ran: break them gently so a stray future.get() sees a
  // typed failure instead of std::future_error.
  for (AsyncJob& job : abandoned) {
    if (job.viaFuture) {
      job.promise.set_value(Response::failure(
          Status::TransportFailure, "channel destroyed before dispatch"));
    }
  }
}

ServerEndpoint& RmiChannel::server() {
  if (endpoint_ == nullptr) {
    throw std::logic_error(
        "RmiChannel::server(): no in-process endpoint behind this transport");
  }
  return *endpoint_;
}

Response RmiChannel::call(const Request& request) {
  return transact(request, /*blocking=*/true);
}

void RmiChannel::setFaultInjector(net::FaultyTransport* injector) {
  const int inFlight = inFlightCalls_.load(std::memory_order_acquire);
  if (inFlight != 0) {
    // Loud on purpose: a swap during traffic silently corrupts attempt
    // accounting (plans already drawn from the old injector). Fail fast in
    // debug builds; release builds at least leave a trail.
    std::fprintf(stderr,
                 "RmiChannel::setFaultInjector: %d call(s) in flight — "
                 "install the injector before traffic starts\n",
                 inFlight);
    if (audit_ != nullptr) {
      audit_->error("setFaultInjector with " + std::to_string(inFlight) +
                    " in-flight call(s)");
    }
    assert(inFlight == 0 &&
           "RmiChannel::setFaultInjector called with calls in flight");
  }
  faultInjector_ = injector;
}

void RmiChannel::resetStats() {
  // Under the stats mutex: concurrent call()/callAsync() accounting blocks
  // write through the same lock, so a mid-campaign reset is a clean cut
  // instead of a torn struct.
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ChannelStats{};
}

// --- completion queue ----------------------------------------------------

void RmiChannel::ensureWorkersLocked() {
  if (!asyncWorkers_.empty() || asyncStop_) return;
  std::size_t n = maxInFlight_;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::min<std::size_t>(4, std::max<std::size_t>(2, hw));
  }
  asyncWorkers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    asyncWorkers_.emplace_back([this] { workerLoop(); });
  }
}

void RmiChannel::workerLoop() {
  for (;;) {
    AsyncJob job;
    {
      std::unique_lock<std::mutex> lock(asyncMutex_);
      asyncWorkCv_.wait(lock,
                        [this] { return asyncStop_ || !asyncQueue_.empty(); });
      if (asyncStop_) return;
      job = std::move(asyncQueue_.front());
      asyncQueue_.pop_front();
      ++runningJobs_;
    }
    Response response = transact(job.request, /*blocking=*/false);
    if (job.viaFuture) {
      job.promise.set_value(std::move(response));
      std::lock_guard<std::mutex> lock(asyncMutex_);
      --runningJobs_;
      asyncDoneCv_.notify_all();
    } else {
      std::lock_guard<std::mutex> lock(asyncMutex_);
      asyncDone_[job.handle] = std::move(response);
      --runningJobs_;
      asyncDoneCv_.notify_all();
    }
  }
}

void RmiChannel::enqueueJob(AsyncJob job) {
  std::lock_guard<std::mutex> lock(asyncMutex_);
  if (asyncStop_) {
    if (job.viaFuture) {
      job.promise.set_value(Response::failure(
          Status::TransportFailure, "channel shutting down"));
    } else {
      asyncDone_[job.handle] = Response::failure(Status::TransportFailure,
                                                 "channel shutting down");
      asyncDoneCv_.notify_all();
    }
    return;
  }
  ensureWorkersLocked();
  asyncQueue_.push_back(std::move(job));
  asyncWorkCv_.notify_one();
}

RmiChannel::CallHandle RmiChannel::submit(Request request) {
  AsyncJob job;
  job.request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(asyncMutex_);
    job.handle = nextHandle_++;
    asyncLive_.insert(job.handle);
  }
  const CallHandle handle{job.handle};
  enqueueJob(std::move(job));
  return handle;
}

bool RmiChannel::poll(CallHandle handle, Response* out) {
  std::lock_guard<std::mutex> lock(asyncMutex_);
  auto it = asyncDone_.find(handle.id);
  if (it == asyncDone_.end()) return false;
  if (out != nullptr) *out = std::move(it->second);
  asyncDone_.erase(it);
  asyncLive_.erase(handle.id);
  asyncDoneCv_.notify_all();  // a waitAny() may be watching asyncLive_
  return true;
}

Response RmiChannel::wait(CallHandle handle) {
  std::unique_lock<std::mutex> lock(asyncMutex_);
  asyncDoneCv_.wait(lock, [&] {
    return asyncDone_.count(handle.id) != 0 ||
           asyncLive_.count(handle.id) == 0 || asyncStop_;
  });
  auto it = asyncDone_.find(handle.id);
  if (it == asyncDone_.end()) {
    return Response::failure(Status::TransportFailure,
                             "completion queue: unknown or abandoned handle");
  }
  Response response = std::move(it->second);
  asyncDone_.erase(it);
  asyncLive_.erase(handle.id);
  asyncDoneCv_.notify_all();  // a waitAny() may be watching asyncLive_
  return response;
}

std::optional<std::pair<RmiChannel::CallHandle, Response>>
RmiChannel::waitAny() {
  std::unique_lock<std::mutex> lock(asyncMutex_);
  asyncDoneCv_.wait(lock, [&] {
    return !asyncDone_.empty() || asyncLive_.empty() || asyncStop_;
  });
  if (asyncDone_.empty()) return std::nullopt;
  auto it = asyncDone_.begin();
  CallHandle handle{it->first};
  Response response = std::move(it->second);
  asyncDone_.erase(it);
  asyncLive_.erase(handle.id);
  return std::make_pair(handle, std::move(response));
}

void RmiChannel::setMaxInFlight(std::size_t workers) {
  std::vector<std::thread> old;
  {
    std::unique_lock<std::mutex> lock(asyncMutex_);
    // Drain first: resizing under live jobs would orphan them.
    asyncDoneCv_.wait(
        lock, [this] { return asyncQueue_.empty() && runningJobs_ == 0; });
    asyncStop_ = true;
    asyncWorkCv_.notify_all();
    old.swap(asyncWorkers_);
  }
  for (std::thread& t : old) t.join();
  std::lock_guard<std::mutex> lock(asyncMutex_);
  asyncStop_ = false;
  maxInFlight_ = workers;
}

std::size_t RmiChannel::maxInFlight() const {
  std::lock_guard<std::mutex> lock(asyncMutex_);
  if (maxInFlight_ != 0) return maxInFlight_;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, std::max<std::size_t>(2, hw));
}

std::future<Response> RmiChannel::callAsync(Request request) {
  AsyncJob job;
  job.request = std::move(request);
  job.viaFuture = true;
  std::future<Response> future = job.promise.get_future();
  enqueueJob(std::move(job));
  return future;
}

std::uint64_t RmiChannel::stampKey() {
  const std::uint64_t n = nextKey_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t z = keySalt_ + 0x9e3779b97f4a7c15ULL * n;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "unassigned" on the wire
}

RmiChannel::Attempt RmiChannel::attemptOnce(const net::ByteBuffer& wire,
                                            const Request& request,
                                            std::uint32_t attempt) {
  Attempt a;
  const net::FaultPlan plan =
      faultInjector_ != nullptr
          ? faultInjector_->plan(request.idempotencyKey, attempt)
          : net::FaultPlan{};
  const auto timeout = [&](bool corrupted) {
    a.timedOut = true;
    a.corruptedFrame = corrupted;
    // The deadline dominates whatever partial delays accrued: the client
    // waited exactly `timeoutSec` before giving up on this attempt.
    a.wallSec = policy_.timeoutSec;
    a.networkSec = policy_.timeoutSec;
  };

  // --- request leg -------------------------------------------------------
  std::vector<std::uint8_t> frame = wire.bytes();
  net::sealFrame(frame);
  a.bytesSent = frame.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    a.networkSec += model_.messageDelaySec(frame.size());
  }
  a.wallSec = a.networkSec;

  if (plan.dropRequest) {
    // Never transmitted: the client learns nothing until the deadline.
    timeout(false);
    return a;
  }
  if (plan.corruptRequest) {
    faultInjector_->corrupt(frame, request.idempotencyKey, attempt, 0);
  }

  // Each transmission attempt ships under its own request id: the response
  // demux can then match out-of-order completions and drop stale frames
  // from abandoned attempts. A duplicated request reaches the endpoint
  // twice with the same id; a replay-caching provider answers the second
  // copy without re-executing.
  const std::uint64_t requestId =
      nextRequestId_.fetch_add(1, std::memory_order_relaxed);
  net::RequestFrameHeader frameHeader;
  frameHeader.methodId = static_cast<std::uint32_t>(request.method);
  frameHeader.requestId = requestId;
  frameHeader.tenantId = tenantId_.load(std::memory_order_acquire);
  frameHeader.priority = priorityFor(request.method);
  wire_->send(frameHeader, frame);
  if (plan.duplicateRequest) wire_->send(frameHeader, frame);

  // A corrupted frame is checksum-rejected and silently discarded by the
  // receiver, so only a short real-time grace wait covers it.
  const double awaitSec = plan.corruptRequest
                              ? std::min(realAwaitSec_, kCorruptedAwaitSec)
                              : realAwaitSec_;
  net::TransportReply first = wire_->awaitReply(requestId, awaitSec);
  if (!first.delivered) {
    wire_->discard(requestId);
    timeout(plan.corruptRequest);
    return a;
  }
  if (first.status == net::FrameStatus::QuotaExceeded) {
    // Deterministic admission rejection: the tenant's quota is spent, and
    // retrying cannot change that. Deliver a typed terminal response
    // immediately — no deadline burned, no retry. Only the response frame
    // header travelled back, so the wire charge is the header's.
    wire_->discard(requestId);
    a.quotaRejected = true;
    a.delivered = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const double d = model_.messageDelaySec(net::kResponseHeaderBytes);
      a.networkSec += d;
      a.wallSec += d;
    }
    a.response = Response::failure(
        Status::PaymentRequired,
        "provider admission control: tenant quota exhausted");
    return a;
  }
  if (first.status != net::FrameStatus::Ok) {
    // Typed carrier-level rejection (admission shed, draining server): no
    // response payload exists. The attempt burns its deadline and the retry
    // loop backs off, like any other lost exchange.
    if (first.status == net::FrameStatus::TooManyPending ||
        first.status == net::FrameStatus::Overloaded) {
      a.shedByServer = true;
    }
    wire_->discard(requestId);
    timeout(false);
    return a;
  }

  double serverCpu = first.serverCpuSec;
  if (plan.duplicateRequest) {
    net::TransportReply second = wire_->awaitReply(requestId, realAwaitSec_);
    if (second.delivered && second.status == net::FrameStatus::Ok) {
      serverCpu += second.serverCpuSec;
      std::vector<std::uint8_t> dupFrame = std::move(second.sealedPayload);
      if (net::openFrame(dupFrame)) {
        try {
          net::ByteBuffer b(std::move(dupFrame));
          if (Response::unmarshal(b).replayed) ++a.duplicatesSuppressed;
        } catch (const std::exception&) {
        }
      }
    }
  }
  wire_->discard(requestId);
  a.serverCpuSec = serverCpu;
  a.wallSec += model_.serverComputeWallSec(serverCpu);

  // --- response leg ------------------------------------------------------
  if (plan.dropResponse) {
    // The server executed; its answer vanished client-side.
    timeout(false);
    return a;
  }
  // Transport-injected delays (provider stall, overtaken/stale delivery)
  // count against the deadline; measured compute and modelled wire time do
  // not, so retry behaviour stays bit-reproducible from the seeds.
  const double injectedDelay = plan.stallSec + plan.reorderDelaySec;
  if (injectedDelay >= policy_.timeoutSec) {
    timeout(false);
    return a;
  }
  std::vector<std::uint8_t> respFrame = std::move(first.sealedPayload);
  if (plan.corruptResponse) {
    faultInjector_->corrupt(respFrame, request.idempotencyKey, attempt, 1);
  }
  a.bytesReceived = respFrame.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double d = model_.messageDelaySec(respFrame.size());
    a.networkSec += d;
    a.wallSec += d;
  }
  a.networkSec += injectedDelay;
  a.wallSec += injectedDelay;

  bool respOk = net::openFrame(respFrame);
  if (respOk) {
    try {
      net::ByteBuffer b(std::move(respFrame));
      a.response = Response::unmarshal(b);
    } catch (const std::exception&) {
      respOk = false;
    }
  }
  if (!respOk) {
    // Damaged response frame: discarded, and the retransmit the client is
    // hoping for never comes — deadline fires.
    timeout(true);
    return a;
  }
  if (a.response.replayed) ++a.duplicatesSuppressed;
  a.delivered = true;
  return a;
}

Response RmiChannel::transact(const Request& request, bool blocking) {
  InFlightGuard inFlight(inFlightCalls_);
  // 1. Security: inspect exactly what would go on the wire. Rejections never
  // generate traffic, so they bypass the retry machinery entirely.
  obs::Tracer& tracer = obs::Tracer::global();
  if (!filter_.admit(request)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.calls;
      ++stats_.securityRejections;
    }
    obs::Registry& reg = obs::Registry::global();
    const RmiMetrics& ids = RmiMetrics::get();
    reg.add(ids.calls);
    reg.add(ids.securityRejections);
    if (tracer.enabled()) {
      tracer.instant(
          "rmi.securityRejection", "rmi",
          {{"method", static_cast<double>(
                          static_cast<std::uint32_t>(request.method))}});
    }
    return Response::failure(
        Status::SecurityViolation,
        "marshalling filter rejected non-port design information");
  }

  // 2. Stamp the logical call with its idempotency key and marshal once;
  // every retransmission ships byte-identical content. A traced call also
  // carries the channel span's id in the frame's span-context field, so the
  // provider's dispatch spans stitch under this span; an untraced call
  // ships 0 in the same fixed-width field (identical byte counts either
  // way, keeping transport timing and fault schedules unperturbed).
  Request req = request;
  if (req.idempotencyKey == 0) req.idempotencyKey = stampKey();
  obs::SpanScope span(tracer, methodSpanName(req.method), "rmi");
  req.spanContext = span.id();
  const net::ByteBuffer wire = req.marshal();
  if (span.active()) span.flowBegin();

  // 3. Attempt loop: transmit, and on a deadline miss back off and retry
  // until the budget is spent. A key that already exhausted a budget (the
  // caller is re-issuing a TransportFailure) resumes at the next attempt
  // index, so the deterministic fault schedule moves forward instead of
  // replaying the plans that killed the previous round.
  std::uint32_t attemptBase = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto spent = spentAttempts_.find(req.idempotencyKey);
    if (spent != spentAttempts_.end()) attemptBase = spent->second;
  }
  Attempt sum;
  std::uint64_t timeouts = 0;
  std::uint64_t corruptedFrames = 0;
  std::uint64_t retries = 0;
  std::uint64_t sheds = 0;
  bool quotaRejected = false;
  bool delivered = false;
  Response finalResponse;
  for (int attempt = 1; attempt <= policy_.maxAttempts; ++attempt) {
    const std::uint32_t absAttempt =
        attemptBase + static_cast<std::uint32_t>(attempt);
    if (absAttempt > 1) {
      // A resumed key's first transmission is still a retransmission of the
      // logical call, so it counts toward `retries` like any other.
      ++retries;
      const double backoff = policy_.backoffSec(
          req.idempotencyKey, static_cast<int>(absAttempt));
      sum.wallSec += backoff;
      sum.networkSec += backoff;
    }
    Attempt a = attemptOnce(wire, req, absAttempt);
    sum.wallSec += a.wallSec;
    sum.networkSec += a.networkSec;
    sum.bytesSent += a.bytesSent;
    sum.bytesReceived += a.bytesReceived;
    sum.serverCpuSec += a.serverCpuSec;
    sum.duplicatesSuppressed += a.duplicatesSuppressed;
    if (a.timedOut) ++timeouts;
    if (a.corruptedFrame) ++corruptedFrames;
    if (a.shedByServer) ++sheds;
    if (a.delivered) {
      delivered = true;
      quotaRejected = a.quotaRejected;
      finalResponse = std::move(a.response);
      break;
    }
  }
  if (!delivered) {
    finalResponse = Response::failure(
        Status::TransportFailure,
        "no response after " + std::to_string(policy_.maxAttempts) +
            " attempts (" + toString(req.method) + ")");
  }

  // 4. Account.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (delivered) {
      spentAttempts_.erase(req.idempotencyKey);
    } else {
      spentAttempts_[req.idempotencyKey] =
          attemptBase + static_cast<std::uint32_t>(policy_.maxAttempts);
    }
    ++stats_.calls;
    if (blocking) {
      ++stats_.blockedCalls;
      stats_.blockingWallSec += sum.wallSec;
    } else {
      ++stats_.asyncCalls;
      stats_.nonblockingWallSec += sum.wallSec;
      if (sum.wallSec > stats_.maxNonblockingCallSec) {
        stats_.maxNonblockingCallSec = sum.wallSec;
      }
    }
    stats_.bytesSent += sum.bytesSent;
    stats_.bytesReceived += sum.bytesReceived;
    stats_.serverCpuSec += sum.serverCpuSec;
    stats_.networkSec += sum.networkSec;
    stats_.retries += retries;
    stats_.timeouts += timeouts;
    stats_.duplicatesSuppressed += sum.duplicatesSuppressed;
    stats_.corruptedFramesDropped += corruptedFrames;
    stats_.shedResponses += sheds;
    if (quotaRejected) ++stats_.quotaRejections;
    if (!delivered) ++stats_.transportFailures;
    // Fees only from a delivered response; replayed responses carry the fee
    // of the original execution, charged server-side exactly once.
    if (delivered) stats_.feesCents += finalResponse.feeCents;
  }
  {
    // Mirror the same deltas into the process-wide registry, outside the
    // channel mutex: the shard adds are thread-safe on their own.
    obs::Registry& reg = obs::Registry::global();
    const RmiMetrics& ids = RmiMetrics::get();
    reg.add(ids.calls);
    reg.add(blocking ? ids.blockedCalls : ids.asyncCalls);
    reg.addDouble(blocking ? ids.blockingWallSec : ids.nonblockingWallSec,
                  sum.wallSec);
    if (sum.bytesSent != 0) reg.add(ids.bytesSent, sum.bytesSent);
    if (sum.bytesReceived != 0) reg.add(ids.bytesReceived, sum.bytesReceived);
    reg.addDouble(ids.serverCpuSec, sum.serverCpuSec);
    reg.addDouble(ids.networkSec, sum.networkSec);
    if (retries != 0) reg.add(ids.retries, retries);
    if (timeouts != 0) reg.add(ids.timeouts, timeouts);
    if (sum.duplicatesSuppressed != 0) {
      reg.add(ids.duplicatesSuppressed, sum.duplicatesSuppressed);
    }
    if (corruptedFrames != 0) {
      reg.add(ids.corruptedFramesDropped, corruptedFrames);
    }
    if (sheds != 0) reg.add(ids.shedResponses, sheds);
    if (quotaRejected) reg.add(ids.quotaRejections);
    if (!delivered) reg.add(ids.transportFailures);
    if (delivered) reg.addDouble(ids.feesCents, finalResponse.feeCents);
    reg.observe(ids.callWallSec, sum.wallSec);
  }
  if (span.active()) {
    span.arg("blocking", blocking ? 1.0 : 0.0);
    span.arg("retries", static_cast<double>(retries));
    span.arg("timeouts", static_cast<double>(timeouts));
    span.arg("wallSec", sum.wallSec);
    span.arg("feeCents", finalResponse.feeCents);
    span.arg("status",
             static_cast<double>(static_cast<std::uint8_t>(
                 finalResponse.status)));
  }
  if (audit_ != nullptr && !finalResponse.ok()) {
    audit_->warning("RMI " + toString(request.method) + " failed: " +
                    toString(finalResponse.status) + " (" +
                    finalResponse.error + ")");
  }
  return finalResponse;
}

}  // namespace vcad::rmi
