#include "rmi/channel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::rmi {

namespace {

/// Span names must be static literals (TraceEvent stores the pointer).
const char* methodSpanName(MethodId m) {
  switch (m) {
    case MethodId::OpenSession:
      return "rmi.OpenSession";
    case MethodId::CloseSession:
      return "rmi.CloseSession";
    case MethodId::GetCatalog:
      return "rmi.GetCatalog";
    case MethodId::Instantiate:
      return "rmi.Instantiate";
    case MethodId::EvalFunction:
      return "rmi.EvalFunction";
    case MethodId::EstimatePower:
      return "rmi.EstimatePower";
    case MethodId::EstimateTiming:
      return "rmi.EstimateTiming";
    case MethodId::EstimateArea:
      return "rmi.EstimateArea";
    case MethodId::GetFaultList:
      return "rmi.GetFaultList";
    case MethodId::GetDetectionTable:
      return "rmi.GetDetectionTable";
    case MethodId::SeqReset:
      return "rmi.SeqReset";
    case MethodId::SeqStep:
      return "rmi.SeqStep";
    case MethodId::Negotiate:
      return "rmi.Negotiate";
    case MethodId::GetDetectionTables:
      return "rmi.GetDetectionTables";
  }
  return "rmi.call";
}

/// Registry mirror of ChannelStats: interned once, then every accounting
/// block records the same deltas it adds to the struct, so the process-wide
/// aggregate stays value-identical to the per-channel ledgers (bit-identical
/// in single-threaded runs, where addition order matches).
struct RmiMetrics {
  obs::Registry::MetricId calls, blockedCalls, asyncCalls, securityRejections,
      bytesSent, bytesReceived, retries, timeouts, duplicatesSuppressed,
      corruptedFramesDropped, transportFailures;
  obs::Registry::MetricId blockingWallSec, nonblockingWallSec, serverCpuSec,
      feesCents, networkSec;
  obs::Registry::MetricId callWallSec;

  static const RmiMetrics& get() {
    static const RmiMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      RmiMetrics ids;
      ids.calls = r.counter("rmi.calls");
      ids.blockedCalls = r.counter("rmi.blockedCalls");
      ids.asyncCalls = r.counter("rmi.asyncCalls");
      ids.securityRejections = r.counter("rmi.securityRejections");
      ids.bytesSent = r.counter("rmi.bytesSent");
      ids.bytesReceived = r.counter("rmi.bytesReceived");
      ids.retries = r.counter("rmi.retries");
      ids.timeouts = r.counter("rmi.timeouts");
      ids.duplicatesSuppressed = r.counter("rmi.duplicatesSuppressed");
      ids.corruptedFramesDropped = r.counter("rmi.corruptedFramesDropped");
      ids.transportFailures = r.counter("rmi.transportFailures");
      ids.blockingWallSec = r.doubleCounter("rmi.blockingWallSec");
      ids.nonblockingWallSec = r.doubleCounter("rmi.nonblockingWallSec");
      ids.serverCpuSec = r.doubleCounter("rmi.serverCpuSec");
      ids.feesCents = r.doubleCounter("rmi.feesCents");
      ids.networkSec = r.doubleCounter("rmi.networkSec");
      ids.callWallSec = r.histogram("rmi.callWallSec");
      return ids;
    }();
    return m;
  }
};

}  // namespace

double RetryPolicy::backoffSec(std::uint64_t key, int attempt) const {
  // Exponential from the first retransmission (attempt 2 pays the base),
  // capped, with jitter drawn from a generator seeded by (key, attempt) so
  // the delay is reproducible and independent of thread interleaving.
  const int step = attempt < 2 ? 0 : attempt - 2;
  double delay =
      std::min(backoffBaseSec * std::pow(2.0, static_cast<double>(step)),
               backoffMaxSec);
  if (backoffJitter > 0.0) {
    Rng rng(key * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL);
    delay *= 1.0 + rng.uniform(-backoffJitter, backoffJitter);
  }
  return delay;
}

RmiChannel::RmiChannel(ServerEndpoint& server, net::NetworkProfile profile,
                       LogSink* audit, std::uint64_t seed)
    : server_(server),
      model_(std::move(profile), seed),
      filter_(audit),
      audit_(audit),
      keySalt_(seed) {}

Response RmiChannel::call(const Request& request) {
  return transact(request, /*blocking=*/true);
}

std::future<Response> RmiChannel::callAsync(Request request) {
  return std::async(std::launch::async, [this, req = std::move(request)] {
    return transact(req, /*blocking=*/false);
  });
}

std::uint64_t RmiChannel::stampKey() {
  const std::uint64_t n = nextKey_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t z = keySalt_ + 0x9e3779b97f4a7c15ULL * n;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "unassigned" on the wire
}

RmiChannel::Attempt RmiChannel::attemptOnce(const net::ByteBuffer& wire,
                                            const Request& request,
                                            std::uint32_t attempt) {
  Attempt a;
  const net::FaultPlan plan =
      transport_ != nullptr
          ? transport_->plan(request.idempotencyKey, attempt)
          : net::FaultPlan{};
  const auto timeout = [&](bool corrupted) {
    a.timedOut = true;
    a.corruptedFrame = corrupted;
    // The deadline dominates whatever partial delays accrued: the client
    // waited exactly `timeoutSec` before giving up on this attempt.
    a.wallSec = policy_.timeoutSec;
    a.networkSec = policy_.timeoutSec;
  };

  // --- request leg -------------------------------------------------------
  std::vector<std::uint8_t> frame = wire.bytes();
  net::sealFrame(frame);
  a.bytesSent = frame.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    a.networkSec += model_.messageDelaySec(frame.size());
  }
  a.wallSec = a.networkSec;

  if (plan.dropRequest) {
    timeout(false);
    return a;
  }
  if (plan.corruptRequest) {
    transport_->corrupt(frame, request.idempotencyKey, attempt, 0);
  }

  // --- server-side receive: checksum, then bounds-checked unmarshal ------
  std::vector<std::uint8_t> arrived = frame;
  Request onServer;
  bool frameOk = net::openFrame(arrived);
  if (frameOk) {
    try {
      net::ByteBuffer b(std::move(arrived));
      onServer = Request::unmarshal(b);
    } catch (const std::exception&) {
      frameOk = false;  // defense in depth: a colliding checksum still must
                        // not crash the server
    }
  }
  if (!frameOk) {
    // The server discards the damaged frame; the client learns nothing
    // until its deadline fires.
    timeout(true);
    return a;
  }

  // --- dispatch (serialized per channel; compute measured with a
  // high-resolution monotonic clock). A duplicated request reaches the
  // endpoint twice back to back; a replay-caching provider answers the
  // second copy without re-executing. -------------------------------------
  Response response;
  double serverCpu = 0.0;
  {
    std::lock_guard<std::mutex> dispatchLock(dispatchMutex_);
    const auto serverStart = std::chrono::steady_clock::now();
    response = server_.dispatch(onServer);
    if (plan.duplicateRequest) {
      std::vector<std::uint8_t> again = frame;
      net::openFrame(again);  // same bytes: cannot fail
      net::ByteBuffer b(std::move(again));
      const Response second = server_.dispatch(Request::unmarshal(b));
      if (second.replayed) ++a.duplicatesSuppressed;
    }
    serverCpu = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              serverStart)
                    .count();
  }
  a.serverCpuSec = serverCpu;
  a.wallSec += model_.serverComputeWallSec(serverCpu);

  // --- response leg ------------------------------------------------------
  if (plan.dropResponse) {
    timeout(false);
    return a;
  }
  // Transport-injected delays (provider stall, overtaken/stale delivery)
  // count against the deadline; measured compute and modelled wire time do
  // not, so retry behaviour stays bit-reproducible from the seeds.
  const double injectedDelay = plan.stallSec + plan.reorderDelaySec;
  if (injectedDelay >= policy_.timeoutSec) {
    timeout(false);
    return a;
  }
  std::vector<std::uint8_t> respFrame = response.marshal().bytes();
  net::sealFrame(respFrame);
  if (plan.corruptResponse) {
    transport_->corrupt(respFrame, request.idempotencyKey, attempt, 1);
  }
  a.bytesReceived = respFrame.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double d = model_.messageDelaySec(respFrame.size());
    a.networkSec += d;
    a.wallSec += d;
  }
  a.networkSec += injectedDelay;
  a.wallSec += injectedDelay;

  bool respOk = net::openFrame(respFrame);
  if (respOk) {
    try {
      net::ByteBuffer b(std::move(respFrame));
      a.response = Response::unmarshal(b);
    } catch (const std::exception&) {
      respOk = false;
    }
  }
  if (!respOk) {
    // Damaged response frame: discarded, and the retransmit the client is
    // hoping for never comes — deadline fires.
    timeout(true);
    return a;
  }
  if (a.response.replayed) ++a.duplicatesSuppressed;
  a.delivered = true;
  return a;
}

Response RmiChannel::transact(const Request& request, bool blocking) {
  // 1. Security: inspect exactly what would go on the wire. Rejections never
  // generate traffic, so they bypass the retry machinery entirely.
  obs::Tracer& tracer = obs::Tracer::global();
  if (!filter_.admit(request)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.calls;
      ++stats_.securityRejections;
    }
    obs::Registry& reg = obs::Registry::global();
    const RmiMetrics& ids = RmiMetrics::get();
    reg.add(ids.calls);
    reg.add(ids.securityRejections);
    if (tracer.enabled()) {
      tracer.instant(
          "rmi.securityRejection", "rmi",
          {{"method", static_cast<double>(
                          static_cast<std::uint32_t>(request.method))}});
    }
    return Response::failure(
        Status::SecurityViolation,
        "marshalling filter rejected non-port design information");
  }

  // 2. Stamp the logical call with its idempotency key and marshal once;
  // every retransmission ships byte-identical content. A traced call also
  // carries the channel span's id in the frame's span-context field, so the
  // provider's dispatch spans stitch under this span; an untraced call
  // ships 0 in the same fixed-width field (identical byte counts either
  // way, keeping transport timing and fault schedules unperturbed).
  Request req = request;
  if (req.idempotencyKey == 0) req.idempotencyKey = stampKey();
  obs::SpanScope span(tracer, methodSpanName(req.method), "rmi");
  req.spanContext = span.id();
  const net::ByteBuffer wire = req.marshal();
  if (span.active()) span.flowBegin();

  // 3. Attempt loop: transmit, and on a deadline miss back off and retry
  // until the budget is spent. A key that already exhausted a budget (the
  // caller is re-issuing a TransportFailure) resumes at the next attempt
  // index, so the deterministic fault schedule moves forward instead of
  // replaying the plans that killed the previous round.
  std::uint32_t attemptBase = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto spent = spentAttempts_.find(req.idempotencyKey);
    if (spent != spentAttempts_.end()) attemptBase = spent->second;
  }
  Attempt sum;
  std::uint64_t timeouts = 0;
  std::uint64_t corruptedFrames = 0;
  std::uint64_t retries = 0;
  bool delivered = false;
  Response finalResponse;
  for (int attempt = 1; attempt <= policy_.maxAttempts; ++attempt) {
    const std::uint32_t absAttempt =
        attemptBase + static_cast<std::uint32_t>(attempt);
    if (absAttempt > 1) {
      // A resumed key's first transmission is still a retransmission of the
      // logical call, so it counts toward `retries` like any other.
      ++retries;
      const double backoff = policy_.backoffSec(
          req.idempotencyKey, static_cast<int>(absAttempt));
      sum.wallSec += backoff;
      sum.networkSec += backoff;
    }
    Attempt a = attemptOnce(wire, req, absAttempt);
    sum.wallSec += a.wallSec;
    sum.networkSec += a.networkSec;
    sum.bytesSent += a.bytesSent;
    sum.bytesReceived += a.bytesReceived;
    sum.serverCpuSec += a.serverCpuSec;
    sum.duplicatesSuppressed += a.duplicatesSuppressed;
    if (a.timedOut) ++timeouts;
    if (a.corruptedFrame) ++corruptedFrames;
    if (a.delivered) {
      delivered = true;
      finalResponse = std::move(a.response);
      break;
    }
  }
  if (!delivered) {
    finalResponse = Response::failure(
        Status::TransportFailure,
        "no response after " + std::to_string(policy_.maxAttempts) +
            " attempts (" + toString(req.method) + ")");
  }

  // 4. Account.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (delivered) {
      spentAttempts_.erase(req.idempotencyKey);
    } else {
      spentAttempts_[req.idempotencyKey] =
          attemptBase + static_cast<std::uint32_t>(policy_.maxAttempts);
    }
    ++stats_.calls;
    if (blocking) {
      ++stats_.blockedCalls;
      stats_.blockingWallSec += sum.wallSec;
    } else {
      ++stats_.asyncCalls;
      stats_.nonblockingWallSec += sum.wallSec;
      if (sum.wallSec > stats_.maxNonblockingCallSec) {
        stats_.maxNonblockingCallSec = sum.wallSec;
      }
    }
    stats_.bytesSent += sum.bytesSent;
    stats_.bytesReceived += sum.bytesReceived;
    stats_.serverCpuSec += sum.serverCpuSec;
    stats_.networkSec += sum.networkSec;
    stats_.retries += retries;
    stats_.timeouts += timeouts;
    stats_.duplicatesSuppressed += sum.duplicatesSuppressed;
    stats_.corruptedFramesDropped += corruptedFrames;
    if (!delivered) ++stats_.transportFailures;
    // Fees only from a delivered response; replayed responses carry the fee
    // of the original execution, charged server-side exactly once.
    if (delivered) stats_.feesCents += finalResponse.feeCents;
  }
  {
    // Mirror the same deltas into the process-wide registry, outside the
    // channel mutex: the shard adds are thread-safe on their own.
    obs::Registry& reg = obs::Registry::global();
    const RmiMetrics& ids = RmiMetrics::get();
    reg.add(ids.calls);
    reg.add(blocking ? ids.blockedCalls : ids.asyncCalls);
    reg.addDouble(blocking ? ids.blockingWallSec : ids.nonblockingWallSec,
                  sum.wallSec);
    if (sum.bytesSent != 0) reg.add(ids.bytesSent, sum.bytesSent);
    if (sum.bytesReceived != 0) reg.add(ids.bytesReceived, sum.bytesReceived);
    reg.addDouble(ids.serverCpuSec, sum.serverCpuSec);
    reg.addDouble(ids.networkSec, sum.networkSec);
    if (retries != 0) reg.add(ids.retries, retries);
    if (timeouts != 0) reg.add(ids.timeouts, timeouts);
    if (sum.duplicatesSuppressed != 0) {
      reg.add(ids.duplicatesSuppressed, sum.duplicatesSuppressed);
    }
    if (corruptedFrames != 0) {
      reg.add(ids.corruptedFramesDropped, corruptedFrames);
    }
    if (!delivered) reg.add(ids.transportFailures);
    if (delivered) reg.addDouble(ids.feesCents, finalResponse.feeCents);
    reg.observe(ids.callWallSec, sum.wallSec);
  }
  if (span.active()) {
    span.arg("blocking", blocking ? 1.0 : 0.0);
    span.arg("retries", static_cast<double>(retries));
    span.arg("timeouts", static_cast<double>(timeouts));
    span.arg("wallSec", sum.wallSec);
    span.arg("feeCents", finalResponse.feeCents);
    span.arg("status",
             static_cast<double>(static_cast<std::uint8_t>(
                 finalResponse.status)));
  }
  if (audit_ != nullptr && !finalResponse.ok()) {
    audit_->warning("RMI " + toString(request.method) + " failed: " +
                    toString(finalResponse.status) + " (" +
                    finalResponse.error + ")");
  }
  return finalResponse;
}

}  // namespace vcad::rmi
