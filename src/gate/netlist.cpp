#include "gate/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcad::gate {

std::string toString(GateType t) {
  switch (t) {
    case GateType::Buf:
      return "BUF";
    case GateType::Not:
      return "NOT";
    case GateType::And:
      return "AND";
    case GateType::Or:
      return "OR";
    case GateType::Nand:
      return "NAND";
    case GateType::Nor:
      return "NOR";
    case GateType::Xor:
      return "XOR";
    case GateType::Xnor:
      return "XNOR";
    case GateType::Const0:
      return "CONST0";
    case GateType::Const1:
      return "CONST1";
  }
  return "?";
}

std::pair<int, int> arityOf(GateType t) {
  switch (t) {
    case GateType::Buf:
    case GateType::Not:
      return {1, 1};
    case GateType::Const0:
    case GateType::Const1:
      return {0, 0};
    case GateType::Xor:
    case GateType::Xnor:
      return {2, 2};
    default:
      return {2, -1};
  }
}

Logic evalGate(GateType t, const Logic* ins, int n) {
  const auto [lo, hi] = arityOf(t);
  if (n < lo || (hi >= 0 && n > hi)) {
    throw std::invalid_argument("evalGate: " + toString(t) + " with " +
                                std::to_string(n) + " inputs");
  }
  switch (t) {
    case GateType::Const0:
      return Logic::L0;
    case GateType::Const1:
      return Logic::L1;
    case GateType::Buf:
      return logicBuf(ins[0]);
    case GateType::Not:
      return logicNot(ins[0]);
    case GateType::Xor:
      return logicXor(ins[0], ins[1]);
    case GateType::Xnor:
      return logicXnor(ins[0], ins[1]);
    case GateType::And:
    case GateType::Nand: {
      Logic acc = Logic::L1;
      for (int i = 0; i < n; ++i) acc = logicAnd(acc, ins[i]);
      return t == GateType::And ? acc : logicNot(acc);
    }
    case GateType::Or:
    case GateType::Nor: {
      Logic acc = Logic::L0;
      for (int i = 0; i < n; ++i) acc = logicOr(acc, ins[i]);
      return t == GateType::Or ? acc : logicNot(acc);
    }
  }
  return Logic::X;
}

// --- Netlist ---------------------------------------------------------------

NetId Netlist::addNet(std::string name) {
  const NetId id = static_cast<NetId>(nets_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  nets_.push_back(Net{std::move(name), -1, false, false, {}});
  return id;
}

NetId Netlist::addInput(std::string name) {
  const NetId id = addNet(std::move(name));
  nets_[static_cast<size_t>(id)].isInput = true;
  inputs_.push_back(id);
  return id;
}

void Netlist::markOutput(NetId net) {
  auto& n = nets_.at(static_cast<size_t>(net));
  if (n.isOutput) {
    throw std::logic_error("net '" + n.name + "' already marked as output");
  }
  n.isOutput = true;
  outputs_.push_back(net);
}

NetId Netlist::addGate(GateType type, std::vector<NetId> inputs,
                       std::string outName) {
  const NetId out = addNet(std::move(outName));
  addGateDriving(type, std::move(inputs), out);
  return out;
}

void Netlist::addGateDriving(GateType type, std::vector<NetId> inputs,
                             NetId out) {
  auto [lo, hi] = arityOf(type);
  const int n = static_cast<int>(inputs.size());
  if (n < lo || (hi >= 0 && n > hi)) {
    throw std::invalid_argument("gate " + toString(type) + " with " +
                                std::to_string(n) + " inputs");
  }
  auto& outNet = nets_.at(static_cast<size_t>(out));
  if (outNet.driver != -1 || outNet.isInput) {
    throw std::logic_error("net '" + outNet.name + "' already driven");
  }
  const int gateIdx = static_cast<int>(gates_.size());
  for (NetId in : inputs) {
    nets_.at(static_cast<size_t>(in)).readers.push_back(gateIdx);
  }
  outNet.driver = gateIdx;
  gates_.push_back(GateNode{type, std::move(inputs), out});
}

const std::string& Netlist::netName(NetId id) const {
  return nets_.at(static_cast<size_t>(id)).name;
}

NetId Netlist::findNet(const std::string& name) const {
  for (NetId i = 0; i < netCount(); ++i) {
    if (nets_[static_cast<size_t>(i)].name == name) return i;
  }
  return kNoNet;
}

bool Netlist::isPrimaryInput(NetId id) const {
  return nets_.at(static_cast<size_t>(id)).isInput;
}

bool Netlist::isPrimaryOutput(NetId id) const {
  return nets_.at(static_cast<size_t>(id)).isOutput;
}

int Netlist::driverOf(NetId id) const {
  return nets_.at(static_cast<size_t>(id)).driver;
}

const std::vector<int>& Netlist::readersOf(NetId id) const {
  return nets_.at(static_cast<size_t>(id)).readers;
}

int Netlist::fanoutOf(NetId id) const {
  const Net& n = nets_.at(static_cast<size_t>(id));
  return static_cast<int>(n.readers.size()) + (n.isOutput ? 1 : 0);
}

void Netlist::validate() const {
  for (NetId i = 0; i < netCount(); ++i) {
    const Net& n = nets_[static_cast<size_t>(i)];
    if (!n.isInput && n.driver == -1) {
      throw std::logic_error("net '" + n.name + "' is undriven");
    }
    if (n.isInput && n.driver != -1) {
      throw std::logic_error("primary input '" + n.name + "' is gate-driven");
    }
  }
  (void)topoOrder();  // throws on combinational cycles
}

std::vector<int> Netlist::topoOrder() const {
  // Kahn's algorithm over gates; a gate is ready once all its input nets
  // are available (primary inputs or already-evaluated gate outputs).
  std::vector<int> pending(gates_.size(), 0);
  std::vector<int> ready;
  for (size_t g = 0; g < gates_.size(); ++g) {
    int deps = 0;
    for (NetId in : gates_[g].inputs) {
      if (nets_[static_cast<size_t>(in)].driver != -1) ++deps;
    }
    pending[g] = deps;
    if (deps == 0) ready.push_back(static_cast<int>(g));
  }
  std::vector<int> order;
  order.reserve(gates_.size());
  while (!ready.empty()) {
    const int g = ready.back();
    ready.pop_back();
    order.push_back(g);
    const NetId out = gates_[static_cast<size_t>(g)].output;
    for (int reader : nets_[static_cast<size_t>(out)].readers) {
      if (--pending[static_cast<size_t>(reader)] == 0) ready.push_back(reader);
    }
  }
  if (order.size() != gates_.size()) {
    throw std::logic_error("netlist contains a combinational cycle");
  }
  return order;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> level(nets_.size(), 0);
  for (int g : topoOrder()) {
    const GateNode& gn = gates_[static_cast<size_t>(g)];
    int maxIn = 0;
    for (NetId in : gn.inputs) {
      maxIn = std::max(maxIn, level[static_cast<size_t>(in)]);
    }
    level[static_cast<size_t>(gn.output)] = maxIn + 1;
  }
  return level;
}

// --- NetlistEvaluator --------------------------------------------------

NetlistEvaluator::NetlistEvaluator(const Netlist& nl)
    : nl_(&nl), topo_(nl.topoOrder()) {}

std::vector<Logic> NetlistEvaluator::evaluate(
    const Word& inputs, std::optional<StuckFault> fault) const {
  std::vector<Logic> value;
  evaluateInto(inputs, value, fault);
  return value;
}

void NetlistEvaluator::evaluateInto(const Word& inputs,
                                    std::vector<Logic>& value,
                                    std::optional<StuckFault> fault) const {
  if (inputs.width() != nl_->inputCount()) {
    throw std::invalid_argument("NetlistEvaluator: input width " +
                                std::to_string(inputs.width()) +
                                " != PI count " +
                                std::to_string(nl_->inputCount()));
  }
  value.assign(static_cast<size_t>(nl_->netCount()), Logic::X);
  const auto& pis = nl_->primaryInputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    value[static_cast<size_t>(pis[i])] = inputs.bit(static_cast<int>(i));
  }
  if (fault && nl_->isPrimaryInput(fault->net)) {
    value[static_cast<size_t>(fault->net)] = fault->stuck;
  }
  // Gate inputs are gathered into a fixed stack window (heap fallback only
  // for pathologically wide gates), so the whole pass is allocation-free
  // when `value` arrives with capacity.
  constexpr int kInlineFanin = 32;
  Logic window[kInlineFanin];
  std::vector<Logic> wide;
  for (int g : topo_) {
    const GateNode& gn = nl_->gates()[static_cast<size_t>(g)];
    const int n = static_cast<int>(gn.inputs.size());
    const Logic* ins;
    if (n <= kInlineFanin) {
      for (int i = 0; i < n; ++i) {
        window[i] = value[static_cast<size_t>(gn.inputs[static_cast<size_t>(i)])];
      }
      ins = window;
    } else {
      wide.clear();
      for (NetId in : gn.inputs) wide.push_back(value[static_cast<size_t>(in)]);
      ins = wide.data();
    }
    Logic out = evalGate(gn.type, ins, n);
    if (fault && fault->net == gn.output) out = fault->stuck;
    value[static_cast<size_t>(gn.output)] = out;
  }
}

Word NetlistEvaluator::outputsOf(const std::vector<Logic>& netValues) const {
  const auto& pos = nl_->primaryOutputs();
  Word w(static_cast<int>(pos.size()));
  for (size_t i = 0; i < pos.size(); ++i) {
    w.setBit(static_cast<int>(i), netValues[static_cast<size_t>(pos[i])]);
  }
  return w;
}

Word NetlistEvaluator::evalOutputs(const Word& inputs,
                                   std::optional<StuckFault> fault) const {
  return outputsOf(evaluate(inputs, fault));
}

}  // namespace vcad::gate
