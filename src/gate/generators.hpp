// Structural netlist generators: the building blocks used by the examples,
// tests, and benchmark workloads. All generators produce validated
// combinational netlists with human-readable net names.
#pragma once

#include "core/rng.hpp"
#include "gate/netlist.hpp"

namespace vcad::gate {

/// Half adder: inputs a, b; outputs sum (a XOR b), carry (a AND b).
Netlist makeHalfAdder();

/// Full adder: inputs a, b, cin; outputs sum, cout.
Netlist makeFullAdder();

/// Ripple-carry adder: inputs a[0..w), b[0..w); outputs s[0..w), cout.
Netlist makeRippleCarryAdder(int width);

/// Unsigned array multiplier: inputs a[0..w), b[0..w); outputs p[0..2w).
/// This is the gate-level implementation view of the paper's MULT component
/// (the private part the provider never discloses).
Netlist makeArrayMultiplier(int width);

/// XOR parity tree over `width` inputs; one output.
Netlist makeParityTree(int width);

/// 2^selBits-to-1 multiplexer; inputs d0..dN-1 and sel bits; one output.
Netlist makeMux(int selBits);

/// Equality comparator over two w-bit words; one output.
Netlist makeComparator(int width);

/// The paper's Figure 4 IP block IP1: a half adder with internal signals
/// named I1..I6 (the implementation hidden inside the dashed box). Inputs
/// IIP1, IIP2; outputs OIP1 (sum stem), OIP2 (carry stem).
///
/// Structure (one concrete instantiation — the paper never discloses the
/// real one, which is the point of IP protection):
///   I1 = NOT(IIP1)      I2 = NOT(IIP2)
///   I3 = AND(IIP1, I2)  I4 = AND(I1, IIP2)
///   I5 = OR(I3, I4)  -> OIP1 = BUF(I5)  (sum)
///   I6 = AND(IIP1, IIP2) -> OIP2 = BUF(I6)  (carry)
Netlist makeIp1HalfAdder();

/// Random combinational DAG for property-based testing: `nInputs` primary
/// inputs, `nGates` gates of random type whose inputs are uniformly chosen
/// among already-available nets, `nOutputs` outputs sampled among sinks.
Netlist makeRandomNetlist(Rng& rng, int nInputs, int nGates, int nOutputs);

}  // namespace vcad::gate
