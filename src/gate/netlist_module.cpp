#include "gate/netlist_module.hpp"

#include <stdexcept>

#include "core/connector.hpp"

namespace vcad::gate {

NetlistModule::NetlistModule(std::string name,
                             std::shared_ptr<const Netlist> netlist,
                             std::vector<PortGroup> inputs,
                             std::vector<PortGroup> outputs, TechParams tech)
    : Module(std::move(name)),
      netlist_(std::move(netlist)),
      evaluator_(*netlist_),
      tech_(tech),
      inGroups_(std::move(inputs)),
      outGroups_(std::move(outputs)) {
  int coveredIn = 0;
  for (const PortGroup& g : inGroups_) {
    if (g.conn == nullptr || g.conn->width() != g.width) {
      throw std::invalid_argument("NetlistModule '" + this->name() +
                                  "': bad input group '" + g.name + "'");
    }
    if (g.firstPin < 0 || g.firstPin + g.width > netlist_->inputCount()) {
      throw std::out_of_range("NetlistModule '" + this->name() +
                              "': input group '" + g.name +
                              "' exceeds PI count");
    }
    inPorts_.push_back(&addInput(g.name, *g.conn));
    coveredIn += g.width;
  }
  if (coveredIn != netlist_->inputCount()) {
    throw std::invalid_argument("NetlistModule '" + this->name() +
                                "': input groups cover " +
                                std::to_string(coveredIn) + " of " +
                                std::to_string(netlist_->inputCount()) +
                                " primary inputs");
  }
  int coveredOut = 0;
  for (const PortGroup& g : outGroups_) {
    if (g.conn == nullptr || g.conn->width() != g.width) {
      throw std::invalid_argument("NetlistModule '" + this->name() +
                                  "': bad output group '" + g.name + "'");
    }
    if (g.firstPin < 0 || g.firstPin + g.width > netlist_->outputCount()) {
      throw std::out_of_range("NetlistModule '" + this->name() +
                              "': output group '" + g.name +
                              "' exceeds PO count");
    }
    outPorts_.push_back(&addOutput(g.name, *g.conn));
    coveredOut += g.width;
  }
  if (coveredOut != netlist_->outputCount()) {
    throw std::invalid_argument("NetlistModule '" + this->name() +
                                "': output groups cover " +
                                std::to_string(coveredOut) + " of " +
                                std::to_string(netlist_->outputCount()) +
                                " primary outputs");
  }
}

Word NetlistModule::currentInputs(const SimContext& ctx) const {
  Word inputs(netlist_->inputCount());
  for (size_t gi = 0; gi < inGroups_.size(); ++gi) {
    const PortGroup& g = inGroups_[gi];
    const Word w = readInput(ctx, *inPorts_[gi]);
    for (int b = 0; b < g.width; ++b) {
      inputs.setBit(g.firstPin + b, w.bit(b));
    }
  }
  return inputs;
}

void NetlistModule::processInputEvent(const SignalToken&, SimContext& ctx) {
  State& st = stateOf(ctx);
  if (st.evalPending) return;
  st.evalPending = true;
  selfSchedule(ctx, 0);
}

void NetlistModule::processSelfEvent(const SelfToken&, SimContext& ctx) {
  State& st = stateOf(ctx);
  st.evalPending = false;
  const Word inputs = currentInputs(ctx);
  ++st.evaluations;
  if (recordPatterns_) st.history.push_back(inputs);

  Word outs;
  if (evalMode_ == EvalMode::SelectiveTrace) {
    // Event-driven fast path: no activity accounting.
    if (!st.incremental) {
      st.incremental = std::make_unique<IncrementalEvaluator>(*netlist_);
    }
    st.incremental->setInputs(inputs);
    outs = st.incremental->outputs();
  } else {
    std::vector<Logic> nets = evaluator_.evaluate(inputs);
    outs = evaluator_.outputsOf(nets);
    if (st.hasPrev) {
      st.toggles += toggles(st.prevNets, nets);
      st.energyPj += transitionEnergyPj(*netlist_, st.prevNets, nets, tech_);
    }
    st.prevNets = std::move(nets);
  }
  const bool changed = !st.hasPrev || outs != st.lastOutputs;
  st.lastOutputs = outs;
  st.hasPrev = true;
  if (!changed) return;  // event-driven suppression of unchanged outputs
  for (size_t gi = 0; gi < outGroups_.size(); ++gi) {
    const PortGroup& g = outGroups_[gi];
    emit(ctx, *outPorts_[gi], outs.slice(g.firstPin, g.width));
  }
}

std::uint64_t NetlistModule::evaluations(const SimContext& ctx) {
  return stateOf(ctx).evaluations;
}

std::uint64_t NetlistModule::netToggles(const SimContext& ctx) {
  return stateOf(ctx).toggles;
}

double NetlistModule::switchingEnergyPj(const SimContext& ctx) {
  return stateOf(ctx).energyPj;
}

const std::vector<Word>& NetlistModule::patternHistory(const SimContext& ctx) {
  return stateOf(ctx).history;
}

void NetlistModule::clearPatternHistory(const SimContext& ctx) {
  stateOf(ctx).history.clear();
}

std::unique_ptr<NetlistModule> makeBitLevelModule(
    std::string name, std::shared_ptr<const Netlist> netlist,
    const std::vector<Connector*>& inputConns,
    const std::vector<Connector*>& outputConns, TechParams tech) {
  if (static_cast<int>(inputConns.size()) != netlist->inputCount() ||
      static_cast<int>(outputConns.size()) != netlist->outputCount()) {
    throw std::invalid_argument(
        "makeBitLevelModule: connector counts must match netlist pin counts");
  }
  std::vector<NetlistModule::PortGroup> ins;
  std::vector<NetlistModule::PortGroup> outs;
  for (size_t i = 0; i < inputConns.size(); ++i) {
    ins.push_back({netlist->netName(netlist->primaryInputs()[i]),
                   inputConns[i], static_cast<int>(i), 1});
  }
  for (size_t i = 0; i < outputConns.size(); ++i) {
    outs.push_back({netlist->netName(netlist->primaryOutputs()[i]),
                    outputConns[i], static_cast<int>(i), 1});
  }
  return std::make_unique<NetlistModule>(std::move(name), std::move(netlist),
                                         std::move(ins), std::move(outs), tech);
}

}  // namespace vcad::gate
