// Fine-grain gate-level simulation on the backplane: every gate is its own
// module with a transport delay, connected through single-bit connectors
// (with explicit fanout modules). Unlike NetlistModule — which evaluates a
// whole netlist per instant (zero-delay / cycle semantics) — the expanded
// form is a true event-driven timing simulation: signals ripple through
// levels over simulated time, and hazards/glitches appear as real transient
// events.
#pragma once

#include <vector>

#include "core/circuit.hpp"
#include "core/module.hpp"
#include "gate/netlist.hpp"

namespace vcad::gate {

/// One gate as a backplane module. Re-evaluates on every input event and
/// propagates only output *changes* (inertial-free transport delay).
class GateModule final : public Module {
 public:
  GateModule(std::string name, GateType type,
             std::vector<Connector*> inputs, Connector& output,
             SimTime delay);

  GateType type() const { return type_; }
  SimTime delay() const { return delay_; }

  void initialize(SimContext& ctx) override;
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  struct State : ModuleState {
    bool hasLast = false;
    Logic last = Logic::X;
  };

  void evaluate(SimContext& ctx);

  GateType type_;
  SimTime delay_;
  std::vector<Port*> inPorts_;
  Port* outPort_;
};

/// Structural expansion of a netlist into GateModules inside `parent`.
struct ExpandedNetlist {
  std::vector<Connector*> inputs;   // one per primary input; inject here
  std::vector<Connector*> outputs;  // one per primary output; observe here
  std::vector<GateModule*> gates;   // parallel to netlist gate order
};

/// Expands `nl` with a uniform per-gate transport `delay`. Constant cells
/// drive their value at initialization. Multi-reader nets get explicit
/// fanout modules, per the backplane's point-to-point connector rule.
ExpandedNetlist expandNetlist(Circuit& parent, const Netlist& nl,
                              SimTime delay = 1,
                              const std::string& namePrefix = "g");

}  // namespace vcad::gate
