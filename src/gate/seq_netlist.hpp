// Sequential netlists: a combinational core plus a state register, in the
// classic Huffman model. This is the substrate for the paper's claimed
// extension of virtual fault simulation "to general fault models and
// sequential circuits".
//
// Convention: the first `stateBits` primary inputs of the combinational
// core are the current-state bits, and the first `stateBits` primary
// outputs are the next-state bits. The remaining pins are the machine's
// real inputs and outputs.
#pragma once

#include "core/rng.hpp"
#include "gate/netlist.hpp"

namespace vcad::gate {

class SeqNetlist {
 public:
  SeqNetlist(Netlist comb, int stateBits, Word resetState);

  const Netlist& comb() const { return comb_; }
  int stateBits() const { return stateBits_; }
  int inputBits() const { return comb_.inputCount() - stateBits_; }
  int outputBits() const { return comb_.outputCount() - stateBits_; }
  const Word& resetState() const { return resetState_; }

  /// Packs (state, inputs) into the combinational core's PI word.
  Word packInputs(const Word& state, const Word& inputs) const;

  /// Splits the core's PO word into {nextState, outputs}.
  std::pair<Word, Word> splitOutputs(const Word& combOutputs) const;

 private:
  Netlist comb_;
  int stateBits_;
  Word resetState_;
};

/// Steps a sequential machine, optionally with a persistent stuck-at fault
/// in the combinational core (the standard sequential fault model: the
/// fault is present on every cycle and corrupts both outputs and next
/// state).
class SeqEvaluator {
 public:
  explicit SeqEvaluator(const SeqNetlist& seq,
                        std::optional<StuckFault> fault = {});

  const Word& state() const { return state_; }
  void reset();
  void setState(Word state);

  /// One clock cycle: returns the machine outputs for `inputs` and advances
  /// the state register.
  Word step(const Word& inputs);

  /// Runs a whole input sequence from reset; returns per-cycle outputs.
  std::vector<Word> run(const std::vector<Word>& inputSequence);

 private:
  const SeqNetlist* seq_;
  NetlistEvaluator eval_;
  std::optional<StuckFault> fault_;
  Word state_;
};

// --- generators --------------------------------------------------------

/// Up-counter with enable: input {en}; output = counter value; state =
/// counter bits.
SeqNetlist makeCounter(int width);

/// Galois LFSR with enable input and serial-in XOR tap; output = register.
SeqNetlist makeLfsr(int width, std::uint64_t taps);

/// Accumulator: state += input when en; inputs {en, d[width]}; output =
/// accumulator value.
SeqNetlist makeAccumulator(int width);

/// Random Moore machine: random combinational next-state/output logic over
/// `stateBits` state bits and `inputBits` inputs.
SeqNetlist makeRandomMachine(Rng& rng, int stateBits, int inputBits,
                             int outputBits, int gates);

}  // namespace vcad::gate
