#include "gate/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "gate/packed_eval.hpp"

namespace vcad::gate {

double areaOf(const Netlist& nl, const TechParams& tech) {
  double area = 0.0;
  for (const GateNode& g : nl.gates()) {
    switch (g.type) {
      case GateType::Const0:
      case GateType::Const1:
        break;  // tie cells: negligible
      case GateType::Not:
      case GateType::Buf:
        area += tech.inverterAreaUm2;
        break;
      default:
        area += tech.areaPerInputUm2 * static_cast<double>(g.inputs.size());
        break;
    }
  }
  return area;
}

double criticalPathNs(const Netlist& nl, const TechParams& tech) {
  const std::vector<int> lvl = nl.levels();
  int maxLevel = 0;
  for (NetId out : nl.primaryOutputs()) {
    maxLevel = std::max(maxLevel, lvl[static_cast<size_t>(out)]);
  }
  return tech.delayPerLevelNs * static_cast<double>(maxLevel);
}

double netCapfF(const Netlist& nl, NetId net, const TechParams& tech) {
  return tech.capBasefF +
         tech.capPerFanoutfF * static_cast<double>(nl.fanoutOf(net));
}

std::uint64_t toggles(const std::vector<Logic>& prev,
                      const std::vector<Logic>& curr) {
  if (prev.size() != curr.size()) {
    throw std::invalid_argument("toggles: snapshot size mismatch");
  }
  std::uint64_t n = 0;
  for (size_t i = 0; i < prev.size(); ++i) {
    const bool known = isKnown(prev[i]) && isKnown(curr[i]);
    if (!known || prev[i] != curr[i]) ++n;
  }
  return n;
}

double transitionEnergyPj(const Netlist& nl, const std::vector<Logic>& prev,
                          const std::vector<Logic>& curr,
                          const TechParams& tech) {
  if (prev.size() != curr.size() ||
      prev.size() != static_cast<size_t>(nl.netCount())) {
    throw std::invalid_argument("transitionEnergyPj: snapshot size mismatch");
  }
  double energyfFV2 = 0.0;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const size_t i = static_cast<size_t>(n);
    const bool known = isKnown(prev[i]) && isKnown(curr[i]);
    if (!known || prev[i] != curr[i]) {
      energyfFV2 += netCapfF(nl, n, tech);
    }
  }
  // 1/2 * C[fF] * V^2 -> femtojoules; convert to picojoules.
  return 0.5 * energyfFV2 * tech.vdd * tech.vdd * 1e-3;
}

PowerResult gateLevelPowerScalar(const Netlist& nl,
                                 const std::vector<Word>& patterns,
                                 const TechParams& tech) {
  PowerResult res;
  if (patterns.size() < 2) return res;
  NetlistEvaluator eval(nl);
  std::vector<Logic> prev = eval.evaluate(patterns[0]);
  std::vector<Logic> curr;
  for (size_t p = 1; p < patterns.size(); ++p) {
    eval.evaluateInto(patterns[p], curr);
    const double ePj = transitionEnergyPj(nl, prev, curr, tech);
    // power for this transition: E / T, T = 1/clockHz.
    const double pMw = ePj * 1e-12 * tech.clockHz * 1e3;
    res.peakPowerMw = std::max(res.peakPowerMw, pMw);
    res.avgPowerMw += pMw;
    res.totalToggles += toggles(prev, curr);
    ++res.transitions;
    std::swap(prev, curr);
  }
  res.avgPowerMw /= static_cast<double>(res.transitions);
  return res;
}

namespace {

/// Packed sweep over consecutive-pattern transitions. Blocks overlap by one
/// lane so every (p-1, p) pair lives inside a block. For each transition the
/// per-net cap contributions accumulate in net-id order — the exact
/// floating-point addition order of the scalar transitionEnergyPj loop — so
/// derived powers match the scalar path bit for bit. `onTransition` receives
/// (energy in fF*V^2, toggled-net count) per transition, in pattern order.
template <typename Fn>
void packedTransitionSweep(const Netlist& nl,
                           const std::vector<Word>& patterns,
                           const TechParams& tech, Fn onTransition) {
  PackedEvaluator packed(nl);
  const int nets = nl.netCount();
  std::vector<double> capfF(static_cast<size_t>(nets));
  for (NetId n = 0; n < nets; ++n) {
    capfF[static_cast<size_t>(n)] = netCapfF(nl, n, tech);
  }
  std::vector<LanePlanes> planes;
  double pairEnergy[PackedEvaluator::kLanes];
  std::uint64_t pairToggles[PackedEvaluator::kLanes];
  std::size_t p0 = 0;
  while (p0 + 1 < patterns.size()) {
    const std::size_t lanes = std::min<std::size_t>(
        PackedEvaluator::kLanes, patterns.size() - p0);
    const int pairs = static_cast<int>(lanes) - 1;
    const std::uint64_t pairMask = (1ULL << pairs) - 1;
    packed.evaluate(packed.pack(patterns, p0, lanes), planes);
    for (int t = 0; t < pairs; ++t) {
      pairEnergy[t] = 0.0;
      pairToggles[t] = 0;
    }
    for (NetId n = 0; n < nets; ++n) {
      const LanePlanes& q = planes[static_cast<size_t>(n)];
      // Toggle between lanes t and t+1: either side unknown (pessimistic),
      // or both known and the value planes differ.
      const std::uint64_t bothKnown = q.known & (q.known >> 1);
      std::uint64_t t =
          (((q.val ^ (q.val >> 1)) & bothKnown) | ~bothKnown) & pairMask;
      const double cap = capfF[static_cast<size_t>(n)];
      while (t != 0) {
        const int b = std::countr_zero(t);
        t &= t - 1;
        pairEnergy[b] += cap;
        ++pairToggles[b];
      }
    }
    for (int t = 0; t < pairs; ++t) onTransition(pairEnergy[t], pairToggles[t]);
    p0 += lanes - 1;  // overlap: the last lane seeds the next block
  }
}

}  // namespace

PowerResult gateLevelPower(const Netlist& nl, const std::vector<Word>& patterns,
                           const TechParams& tech) {
  PowerResult res;
  if (patterns.size() < 2) return res;
  packedTransitionSweep(
      nl, patterns, tech,
      [&](double energyfFV2, std::uint64_t togglesHere) {
        const double ePj = 0.5 * energyfFV2 * tech.vdd * tech.vdd * 1e-3;
        const double pMw = ePj * 1e-12 * tech.clockHz * 1e3;
        res.peakPowerMw = std::max(res.peakPowerMw, pMw);
        res.avgPowerMw += pMw;
        res.totalToggles += togglesHere;
        ++res.transitions;
      });
  res.avgPowerMw /= static_cast<double>(res.transitions);
  return res;
}

std::vector<double> transitionEnergiesPj(const Netlist& nl,
                                         const std::vector<Word>& patterns,
                                         const TechParams& tech) {
  std::vector<double> out;
  if (patterns.size() < 2) return out;
  out.reserve(patterns.size() - 1);
  packedTransitionSweep(nl, patterns, tech,
                        [&](double energyfFV2, std::uint64_t) {
                          out.push_back(0.5 * energyfFV2 * tech.vdd *
                                        tech.vdd * 1e-3);
                        });
  return out;
}

}  // namespace vcad::gate
