#include "gate/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcad::gate {

double areaOf(const Netlist& nl, const TechParams& tech) {
  double area = 0.0;
  for (const GateNode& g : nl.gates()) {
    switch (g.type) {
      case GateType::Const0:
      case GateType::Const1:
        break;  // tie cells: negligible
      case GateType::Not:
      case GateType::Buf:
        area += tech.inverterAreaUm2;
        break;
      default:
        area += tech.areaPerInputUm2 * static_cast<double>(g.inputs.size());
        break;
    }
  }
  return area;
}

double criticalPathNs(const Netlist& nl, const TechParams& tech) {
  const std::vector<int> lvl = nl.levels();
  int maxLevel = 0;
  for (NetId out : nl.primaryOutputs()) {
    maxLevel = std::max(maxLevel, lvl[static_cast<size_t>(out)]);
  }
  return tech.delayPerLevelNs * static_cast<double>(maxLevel);
}

double netCapfF(const Netlist& nl, NetId net, const TechParams& tech) {
  return tech.capBasefF +
         tech.capPerFanoutfF * static_cast<double>(nl.fanoutOf(net));
}

std::uint64_t toggles(const std::vector<Logic>& prev,
                      const std::vector<Logic>& curr) {
  if (prev.size() != curr.size()) {
    throw std::invalid_argument("toggles: snapshot size mismatch");
  }
  std::uint64_t n = 0;
  for (size_t i = 0; i < prev.size(); ++i) {
    const bool known = isKnown(prev[i]) && isKnown(curr[i]);
    if (!known || prev[i] != curr[i]) ++n;
  }
  return n;
}

double transitionEnergyPj(const Netlist& nl, const std::vector<Logic>& prev,
                          const std::vector<Logic>& curr,
                          const TechParams& tech) {
  if (prev.size() != curr.size() ||
      prev.size() != static_cast<size_t>(nl.netCount())) {
    throw std::invalid_argument("transitionEnergyPj: snapshot size mismatch");
  }
  double energyfFV2 = 0.0;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const size_t i = static_cast<size_t>(n);
    const bool known = isKnown(prev[i]) && isKnown(curr[i]);
    if (!known || prev[i] != curr[i]) {
      energyfFV2 += netCapfF(nl, n, tech);
    }
  }
  // 1/2 * C[fF] * V^2 -> femtojoules; convert to picojoules.
  return 0.5 * energyfFV2 * tech.vdd * tech.vdd * 1e-3;
}

PowerResult gateLevelPower(const Netlist& nl, const std::vector<Word>& patterns,
                           const TechParams& tech) {
  PowerResult res;
  if (patterns.size() < 2) return res;
  NetlistEvaluator eval(nl);
  std::vector<Logic> prev = eval.evaluate(patterns[0]);
  for (size_t p = 1; p < patterns.size(); ++p) {
    std::vector<Logic> curr = eval.evaluate(patterns[p]);
    const double ePj = transitionEnergyPj(nl, prev, curr, tech);
    // power for this transition: E / T, T = 1/clockHz.
    const double pMw = ePj * 1e-12 * tech.clockHz * 1e3;
    res.peakPowerMw = std::max(res.peakPowerMw, pMw);
    res.avgPowerMw += pMw;
    res.totalToggles += toggles(prev, curr);
    ++res.transitions;
    prev = std::move(curr);
  }
  res.avgPowerMw /= static_cast<double>(res.transitions);
  return res;
}

}  // namespace vcad::gate
