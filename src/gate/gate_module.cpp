#include "gate/gate_module.hpp"

#include <stdexcept>

#include "core/wiring.hpp"

namespace vcad::gate {

GateModule::GateModule(std::string name, GateType type,
                       std::vector<Connector*> inputs, Connector& output,
                       SimTime delay)
    : Module(std::move(name)), type_(type), delay_(delay) {
  const auto [lo, hi] = arityOf(type);
  const int n = static_cast<int>(inputs.size());
  if (n < lo || (hi >= 0 && n > hi)) {
    throw std::invalid_argument("GateModule '" + this->name() + "': " +
                                toString(type) + " with " + std::to_string(n) +
                                " inputs");
  }
  int i = 0;
  for (Connector* in : inputs) {
    if (in == nullptr || in->width() != 1) {
      throw std::invalid_argument("GateModule '" + this->name() +
                                  "': inputs must be 1-bit connectors");
    }
    inPorts_.push_back(&addInput("i" + std::to_string(i++), *in));
  }
  if (output.width() != 1) {
    throw std::invalid_argument("GateModule '" + this->name() +
                                "': output must be a 1-bit connector");
  }
  outPort_ = &addOutput("o", output);
}

void GateModule::initialize(SimContext& ctx) {
  // Constant cells have no inputs and must settle on their own.
  if (inPorts_.empty()) evaluate(ctx);
}

void GateModule::evaluate(SimContext& ctx) {
  std::vector<Logic> ins;
  ins.reserve(inPorts_.size());
  for (Port* p : inPorts_) ins.push_back(readInput(ctx, *p).scalar());
  const Logic out = evalGate(type_, ins);
  State& st = state<State>(ctx);
  if (st.hasLast && st.last == out) return;  // no change, no event
  st.hasLast = true;
  st.last = out;
  emit(ctx, *outPort_, Word::fromLogic(out), delay_);
}

void GateModule::processInputEvent(const SignalToken&, SimContext& ctx) {
  evaluate(ctx);
}

ExpandedNetlist expandNetlist(Circuit& parent, const Netlist& nl,
                              SimTime delay, const std::string& namePrefix) {
  nl.validate();
  ExpandedNetlist out;

  // One source connector per net (driven by its PI injection point or its
  // gate); fanout modules split multi-reader nets.
  std::vector<Connector*> sourceOf(static_cast<size_t>(nl.netCount()), nullptr);
  for (NetId n = 0; n < nl.netCount(); ++n) {
    sourceOf[static_cast<size_t>(n)] =
        &parent.makeBit(namePrefix + ":" + nl.netName(n));
  }

  // Reader endpoints: readers + primary-output observation taps.
  struct Endpoint {
    int gate;  // -1: PO tap
    int pin;
  };
  std::vector<std::vector<Endpoint>> endpoints(
      static_cast<size_t>(nl.netCount()));
  for (int g = 0; g < nl.gateCount(); ++g) {
    const GateNode& gn = nl.gates()[static_cast<size_t>(g)];
    for (size_t p = 0; p < gn.inputs.size(); ++p) {
      endpoints[static_cast<size_t>(gn.inputs[p])].push_back(
          Endpoint{g, static_cast<int>(p)});
    }
  }
  std::vector<int> poTapIndex(static_cast<size_t>(nl.netCount()), -1);
  for (size_t k = 0; k < nl.primaryOutputs().size(); ++k) {
    const NetId n = nl.primaryOutputs()[k];
    poTapIndex[static_cast<size_t>(n)] = static_cast<int>(k);
    endpoints[static_cast<size_t>(n)].push_back(Endpoint{-1, 0});
  }

  // Resolve each endpoint's connector, adding fanout modules where needed.
  std::vector<std::vector<Connector*>> endpointConn(
      static_cast<size_t>(nl.netCount()));
  for (NetId n = 0; n < nl.netCount(); ++n) {
    auto& eps = endpoints[static_cast<size_t>(n)];
    auto& conns = endpointConn[static_cast<size_t>(n)];
    if (eps.size() <= 1) {
      conns.assign(eps.size(), sourceOf[static_cast<size_t>(n)]);
      continue;
    }
    std::vector<Fanout::Branch> branches;
    for (size_t k = 0; k < eps.size(); ++k) {
      Connector& bc = parent.makeBit(namePrefix + ":" + nl.netName(n) + "#" +
                                     std::to_string(k));
      branches.push_back({&bc, 0});
      conns.push_back(&bc);
    }
    parent.make<Fanout>(namePrefix + ":fan:" + nl.netName(n),
                        *sourceOf[static_cast<size_t>(n)],
                        std::move(branches));
  }

  // The gates themselves.
  std::vector<std::vector<Connector*>> gateIns(
      static_cast<size_t>(nl.gateCount()));
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const auto& eps = endpoints[static_cast<size_t>(n)];
    for (size_t k = 0; k < eps.size(); ++k) {
      if (eps[k].gate < 0) continue;
      auto& ins = gateIns[static_cast<size_t>(eps[k].gate)];
      if (ins.size() <= static_cast<size_t>(eps[k].pin)) {
        ins.resize(static_cast<size_t>(eps[k].pin) + 1, nullptr);
      }
      ins[static_cast<size_t>(eps[k].pin)] =
          endpointConn[static_cast<size_t>(n)][k];
    }
  }
  for (int g = 0; g < nl.gateCount(); ++g) {
    const GateNode& gn = nl.gates()[static_cast<size_t>(g)];
    out.gates.push_back(&parent.make<GateModule>(
        namePrefix + std::to_string(g) + ":" + toString(gn.type),
        gn.type, gateIns[static_cast<size_t>(g)],
        *sourceOf[static_cast<size_t>(gn.output)], delay));
  }

  for (NetId pi : nl.primaryInputs()) {
    out.inputs.push_back(sourceOf[static_cast<size_t>(pi)]);
  }
  out.outputs.resize(nl.primaryOutputs().size(), nullptr);
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const int tap = poTapIndex[static_cast<size_t>(n)];
    if (tap < 0) continue;
    // The PO observation endpoint is the last endpoint added for this net.
    out.outputs[static_cast<size_t>(tap)] =
        endpointConn[static_cast<size_t>(n)].back();
  }
  return out;
}

}  // namespace vcad::gate
