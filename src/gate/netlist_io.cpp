#include "gate/netlist_io.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vcad::gate {

namespace {

GateType gateTypeFromString(const std::string& s, int line) {
  static const std::map<std::string, GateType> kTypes = {
      {"BUF", GateType::Buf},     {"NOT", GateType::Not},
      {"AND", GateType::And},     {"OR", GateType::Or},
      {"NAND", GateType::Nand},   {"NOR", GateType::Nor},
      {"XOR", GateType::Xor},     {"XNOR", GateType::Xnor},
      {"CONST0", GateType::Const0}, {"CONST1", GateType::Const1},
  };
  auto it = kTypes.find(s);
  if (it == kTypes.end()) {
    throw std::runtime_error("line " + std::to_string(line) +
                             ": unknown gate type '" + s + "'");
  }
  return it->second;
}

std::vector<std::string> tokenize(const std::string& lineText) {
  std::vector<std::string> tokens;
  std::istringstream ss(lineText);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

}  // namespace

void writeNetlist(std::ostream& os, const Netlist& nl,
                  const std::string& modelName) {
  nl.validate();
  os << ".model " << modelName << "\n.inputs";
  for (NetId pi : nl.primaryInputs()) os << " " << nl.netName(pi);
  os << "\n.outputs";
  for (NetId po : nl.primaryOutputs()) os << " " << nl.netName(po);
  os << "\n";
  for (int g : nl.topoOrder()) {
    const GateNode& gn = nl.gates()[static_cast<size_t>(g)];
    os << ".gate " << toString(gn.type) << " " << nl.netName(gn.output);
    for (NetId in : gn.inputs) os << " " << nl.netName(in);
    os << "\n";
  }
  os << ".end\n";
}

std::string netlistToString(const Netlist& nl, const std::string& modelName) {
  std::ostringstream ss;
  writeNetlist(ss, nl, modelName);
  return ss.str();
}

Netlist parseNetlist(std::istream& is) {
  Netlist nl;
  std::map<std::string, NetId> nets;
  std::vector<std::string> outputNames;
  bool sawInputs = false;
  std::string lineText;
  int line = 0;

  auto netOf = [&](const std::string& name, int atLine) -> NetId {
    auto it = nets.find(name);
    if (it != nets.end()) return it->second;
    (void)atLine;
    const NetId id = nl.addNet(name);
    nets[name] = id;
    return id;
  };

  while (std::getline(is, lineText)) {
    ++line;
    const auto tokens = tokenize(lineText);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];
    if (kw == ".model") continue;
    if (kw == ".end") break;
    if (kw == ".inputs") {
      if (sawInputs) {
        throw std::runtime_error("line " + std::to_string(line) +
                                 ": duplicate .inputs");
      }
      sawInputs = true;
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (nets.count(tokens[i])) {
          throw std::runtime_error("line " + std::to_string(line) +
                                   ": duplicate net '" + tokens[i] + "'");
        }
        nets[tokens[i]] = nl.addInput(tokens[i]);
      }
      continue;
    }
    if (kw == ".outputs") {
      for (size_t i = 1; i < tokens.size(); ++i) outputNames.push_back(tokens[i]);
      continue;
    }
    if (kw == ".gate") {
      if (tokens.size() < 3) {
        throw std::runtime_error("line " + std::to_string(line) +
                                 ": .gate needs a type and an output net");
      }
      const GateType type = gateTypeFromString(tokens[1], line);
      const NetId out = netOf(tokens[2], line);
      std::vector<NetId> ins;
      for (size_t i = 3; i < tokens.size(); ++i) {
        ins.push_back(netOf(tokens[i], line));
      }
      try {
        nl.addGateDriving(type, std::move(ins), out);
      } catch (const std::exception& e) {
        throw std::runtime_error("line " + std::to_string(line) + ": " +
                                 e.what());
      }
      continue;
    }
    throw std::runtime_error("line " + std::to_string(line) +
                             ": unknown directive '" + kw + "'");
  }
  for (const std::string& name : outputNames) {
    auto it = nets.find(name);
    if (it == nets.end()) {
      throw std::runtime_error("output net '" + name + "' never defined");
    }
    nl.markOutput(it->second);
  }
  nl.validate();
  return nl;
}

Netlist parseNetlist(const std::string& text) {
  std::istringstream ss(text);
  return parseNetlist(ss);
}

Netlist makeC17() {
  // ISCAS-85 c17, NAND-only. Net names follow the classic numbering.
  return parseNetlist(R"(.model c17
.inputs N1 N2 N3 N6 N7
.outputs N22 N23
.gate NAND N10 N1 N3
.gate NAND N11 N3 N6
.gate NAND N16 N2 N11
.gate NAND N19 N11 N7
.gate NAND N22 N10 N16
.gate NAND N23 N16 N19
.end
)");
}

}  // namespace vcad::gate
