#include "gate/seq_netlist.hpp"

#include "gate/generators.hpp"

#include <stdexcept>

namespace vcad::gate {

SeqNetlist::SeqNetlist(Netlist comb, int stateBits, Word resetState)
    : comb_(std::move(comb)), stateBits_(stateBits),
      resetState_(std::move(resetState)) {
  if (stateBits < 0 || stateBits > comb_.inputCount() ||
      stateBits > comb_.outputCount()) {
    throw std::invalid_argument("SeqNetlist: bad state width");
  }
  if (resetState_.width() != stateBits) {
    throw std::invalid_argument("SeqNetlist: reset state width mismatch");
  }
  comb_.validate();
}

Word SeqNetlist::packInputs(const Word& state, const Word& inputs) const {
  if (state.width() != stateBits_ || inputs.width() != inputBits()) {
    throw std::invalid_argument("SeqNetlist::packInputs: width mismatch");
  }
  return Word::concat(inputs, state);  // state occupies the low PI bits
}

std::pair<Word, Word> SeqNetlist::splitOutputs(const Word& combOutputs) const {
  if (combOutputs.width() != comb_.outputCount()) {
    throw std::invalid_argument("SeqNetlist::splitOutputs: width mismatch");
  }
  return {combOutputs.slice(0, stateBits_),
          combOutputs.slice(stateBits_, outputBits())};
}

SeqEvaluator::SeqEvaluator(const SeqNetlist& seq,
                           std::optional<StuckFault> fault)
    : seq_(&seq), eval_(seq.comb()), fault_(fault), state_(seq.resetState()) {}

void SeqEvaluator::reset() { state_ = seq_->resetState(); }

void SeqEvaluator::setState(Word state) {
  if (state.width() != seq_->stateBits()) {
    throw std::invalid_argument("SeqEvaluator::setState: width mismatch");
  }
  state_ = std::move(state);
}

Word SeqEvaluator::step(const Word& inputs) {
  const Word combOut =
      eval_.evalOutputs(seq_->packInputs(state_, inputs), fault_);
  auto [nextState, outputs] = seq_->splitOutputs(combOut);
  state_ = std::move(nextState);
  return outputs;
}

std::vector<Word> SeqEvaluator::run(const std::vector<Word>& inputSequence) {
  reset();
  std::vector<Word> out;
  out.reserve(inputSequence.size());
  for (const Word& in : inputSequence) out.push_back(step(in));
  return out;
}

// --- generators --------------------------------------------------------

SeqNetlist makeCounter(int width) {
  if (width < 1) throw std::invalid_argument("counter width must be >= 1");
  Netlist nl;
  std::vector<NetId> q;
  for (int i = 0; i < width; ++i) q.push_back(nl.addInput("q" + std::to_string(i)));
  const NetId en = nl.addInput("en");
  // next[i] = q[i] XOR (en AND carry_i); carry_0 = 1.
  std::vector<NetId> next;
  NetId carry = nl.addGate(GateType::Const1, {}, "c0");
  for (int i = 0; i < width; ++i) {
    const NetId t = nl.addGate(GateType::And, {en, carry}, "t" + std::to_string(i));
    next.push_back(nl.addGate(GateType::Xor, {q[static_cast<size_t>(i)], t},
                              "n" + std::to_string(i)));
    carry = nl.addGate(GateType::And, {carry, q[static_cast<size_t>(i)]},
                       "cy" + std::to_string(i));
  }
  for (NetId n : next) nl.markOutput(n);  // next-state bits first
  for (NetId b : q) {
    nl.markOutput(nl.addGate(GateType::Buf, {b}, "o" + nl.netName(b)));
  }
  return SeqNetlist(std::move(nl), width, Word::fromUint(width, 0));
}

SeqNetlist makeLfsr(int width, std::uint64_t taps) {
  if (width < 2 || width > 32) {
    throw std::invalid_argument("lfsr width must be in [2, 32]");
  }
  Netlist nl;
  std::vector<NetId> q;
  for (int i = 0; i < width; ++i) q.push_back(nl.addInput("q" + std::to_string(i)));
  const NetId en = nl.addInput("en");
  const NetId enN = nl.addGate(GateType::Not, {en}, "enN");
  // Feedback bit = XOR of tapped positions.
  NetId fb = kNoNet;
  for (int i = 0; i < width; ++i) {
    if (((taps >> i) & 1) == 0) continue;
    fb = (fb == kNoNet)
             ? nl.addGate(GateType::Buf, {q[static_cast<size_t>(i)]},
                          "fb" + std::to_string(i))
             : nl.addGate(GateType::Xor, {fb, q[static_cast<size_t>(i)]},
                          "fbx" + std::to_string(i));
  }
  if (fb == kNoNet) throw std::invalid_argument("lfsr needs at least one tap");
  // next[0] = en ? fb : q[0]; next[i] = en ? q[i-1] : q[i].
  std::vector<NetId> next;
  for (int i = 0; i < width; ++i) {
    const NetId shifted = i == 0 ? fb : q[static_cast<size_t>(i - 1)];
    const NetId a = nl.addGate(GateType::And, {en, shifted},
                               "sa" + std::to_string(i));
    const NetId h = nl.addGate(GateType::And, {enN, q[static_cast<size_t>(i)]},
                               "sh" + std::to_string(i));
    next.push_back(nl.addGate(GateType::Or, {a, h}, "nx" + std::to_string(i)));
  }
  for (NetId n : next) nl.markOutput(n);
  for (int i = 0; i < width; ++i) {
    nl.markOutput(nl.addGate(GateType::Buf, {q[static_cast<size_t>(i)]},
                             "out" + std::to_string(i)));
  }
  return SeqNetlist(std::move(nl), width, Word::fromUint(width, 1));
}

SeqNetlist makeAccumulator(int width) {
  if (width < 1) throw std::invalid_argument("accumulator width must be >= 1");
  Netlist nl;
  std::vector<NetId> acc;
  for (int i = 0; i < width; ++i) acc.push_back(nl.addInput("acc" + std::to_string(i)));
  const NetId en = nl.addInput("en");
  std::vector<NetId> d;
  for (int i = 0; i < width; ++i) d.push_back(nl.addInput("d" + std::to_string(i)));
  // sum = acc + d (mod 2^width); next = en ? sum : acc.
  const NetId enN = nl.addGate(GateType::Not, {en}, "enN");
  NetId carry = nl.addGate(GateType::Const0, {}, "c0");
  std::vector<NetId> next;
  for (int i = 0; i < width; ++i) {
    const NetId a = acc[static_cast<size_t>(i)];
    const NetId b = d[static_cast<size_t>(i)];
    const NetId axb = nl.addGate(GateType::Xor, {a, b}, "axb" + std::to_string(i));
    const NetId sum = nl.addGate(GateType::Xor, {axb, carry}, "s" + std::to_string(i));
    const NetId g = nl.addGate(GateType::And, {a, b}, "g" + std::to_string(i));
    const NetId p = nl.addGate(GateType::And, {axb, carry}, "p" + std::to_string(i));
    carry = nl.addGate(GateType::Or, {g, p}, "cy" + std::to_string(i));
    const NetId take = nl.addGate(GateType::And, {en, sum}, "tk" + std::to_string(i));
    const NetId hold = nl.addGate(GateType::And, {enN, a}, "hd" + std::to_string(i));
    next.push_back(nl.addGate(GateType::Or, {take, hold}, "nx" + std::to_string(i)));
  }
  for (NetId n : next) nl.markOutput(n);
  for (NetId a : acc) {
    nl.markOutput(nl.addGate(GateType::Buf, {a}, "o" + nl.netName(a)));
  }
  return SeqNetlist(std::move(nl), width, Word::fromUint(width, 0));
}

SeqNetlist makeRandomMachine(Rng& rng, int stateBits, int inputBits,
                             int outputBits, int gates) {
  // Build random logic over state+input bits, then pick nets for next-state
  // and outputs.
  const Netlist base =
      makeRandomNetlist(rng, stateBits + inputBits, gates,
                        stateBits + outputBits);
  return SeqNetlist(base, stateBits,
                    Word::fromUint(stateBits, rng.next()));
}

}  // namespace vcad::gate
