// Selective-trace (event-driven) netlist evaluation: instead of
// re-evaluating every gate on each input change, only gates downstream of
// actually-changed nets are re-evaluated, in levelized order — the classic
// efficiency technique of event-driven gate-level simulators.
//
// Complements NetlistEvaluator (full passes, stateless, shareable): an
// IncrementalEvaluator carries net state between calls and is therefore
// owned per simulation stream.
#pragma once

#include <vector>

#include "gate/netlist.hpp"

namespace vcad::gate {

class IncrementalEvaluator {
 public:
  explicit IncrementalEvaluator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Applies a full input word; returns the number of gates re-evaluated.
  std::size_t setInputs(const Word& inputs);

  /// Changes a single primary input; returns gates re-evaluated.
  std::size_t setInput(int piIndex, Logic value);

  /// Current value of any net.
  Logic value(NetId net) const { return value_[static_cast<size_t>(net)]; }

  /// Current primary-output word.
  Word outputs() const;

  /// Resets all nets to X.
  void reset();

  /// Total gate evaluations since construction/reset (the work metric the
  /// selective trace is supposed to shrink).
  std::uint64_t gateEvals() const { return gateEvals_; }

 private:
  void enqueueReaders(NetId net);
  std::size_t propagate();

  const Netlist* nl_;
  std::vector<int> levelOfGate_;
  int maxLevel_ = 0;
  std::vector<Logic> value_;
  // Levelized work queue: one bucket of gate indices per level.
  std::vector<std::vector<int>> buckets_;
  std::vector<bool> queued_;
  std::uint64_t gateEvals_ = 0;
};

}  // namespace vcad::gate
