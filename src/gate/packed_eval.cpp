#include "gate/packed_eval.hpp"

#include <stdexcept>

namespace vcad::gate {

PackedEvaluator::PackedEvaluator(const Netlist& nl) : nl_(&nl) {
  const std::vector<int> topo = nl.topoOrder();
  const std::size_t nGates = topo.size();
  op_.reserve(nGates);
  outNet_.reserve(nGates);
  inBegin_.reserve(nGates + 1);
  driverPos_.assign(static_cast<std::size_t>(nl.netCount()), -1);
  inBegin_.push_back(0);
  for (std::size_t pos = 0; pos < nGates; ++pos) {
    const GateNode& gn = nl.gates()[static_cast<std::size_t>(topo[pos])];
    op_.push_back(static_cast<std::uint8_t>(gn.type));
    outNet_.push_back(gn.output);
    for (NetId in : gn.inputs) inNets_.push_back(in);
    inBegin_.push_back(static_cast<std::int32_t>(inNets_.size()));
    driverPos_[static_cast<std::size_t>(gn.output)] =
        static_cast<std::int32_t>(pos);
  }
}

PackedEvaluator::InputBlock PackedEvaluator::pack(
    const std::vector<Word>& patterns, std::size_t begin,
    std::size_t lanes) const {
  if (lanes > static_cast<std::size_t>(kLanes)) {
    throw std::invalid_argument("PackedEvaluator::pack: more than 64 lanes");
  }
  if (begin + lanes > patterns.size()) {
    throw std::out_of_range("PackedEvaluator::pack: pattern range");
  }
  const int nPi = nl_->inputCount();
  InputBlock block;
  block.pi.assign(static_cast<std::size_t>(nPi), LanePlanes{});
  block.lanes = static_cast<int>(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const Word& w = patterns[begin + l];
    if (w.width() != nPi) {
      throw std::invalid_argument("PackedEvaluator::pack: pattern width " +
                                  std::to_string(w.width()) + " != PI count " +
                                  std::to_string(nPi));
    }
    const std::uint64_t v = w.valuePlane();
    const std::uint64_t k = w.knownPlane();
    const std::uint64_t z = w.zPlane();
    for (int i = 0; i < nPi; ++i) {
      LanePlanes& p = block.pi[static_cast<std::size_t>(i)];
      p.val |= ((v >> i) & 1u) << l;
      p.known |= ((k >> i) & 1u) << l;
      p.z |= ((z >> i) & 1u) << l;
    }
  }
  return block;
}

namespace {

inline void force(LanePlanes& p, Logic stuck) {
  p.known = ~0ULL;
  p.val = stuck == Logic::L1 ? ~0ULL : 0ULL;
  p.z = 0;
}

}  // namespace

void PackedEvaluator::evaluate(const InputBlock& in,
                               std::vector<LanePlanes>& planes,
                               const StuckFault* fault) const {
  const auto& pis = nl_->primaryInputs();
  if (in.pi.size() != pis.size()) {
    throw std::invalid_argument("PackedEvaluator: input block arity mismatch");
  }
  planes.assign(static_cast<std::size_t>(nl_->netCount()), LanePlanes{});
  for (std::size_t i = 0; i < pis.size(); ++i) {
    planes[static_cast<std::size_t>(pis[i])] = in.pi[i];
  }
  std::int32_t forceAfter = -2;  // compiled gate index to force after
  if (fault != nullptr) {
    forceAfter = driverPos_[static_cast<std::size_t>(fault->net)];
    if (forceAfter < 0) force(planes[static_cast<std::size_t>(fault->net)],
                              fault->stuck);
  }
  const std::size_t nGates = op_.size();
  for (std::size_t g = 0; g < nGates; ++g) {
    const std::int32_t* ins = inNets_.data() + inBegin_[g];
    const int n = inBegin_[g + 1] - inBegin_[g];
    std::uint64_t v = 0, k = 0;
    switch (static_cast<GateType>(op_[g])) {
      case GateType::Const0:
        k = ~0ULL;
        break;
      case GateType::Const1:
        v = ~0ULL;
        k = ~0ULL;
        break;
      case GateType::Buf: {
        const LanePlanes& a = planes[static_cast<std::size_t>(ins[0])];
        v = a.val;
        k = a.known;
        break;
      }
      case GateType::Not: {
        const LanePlanes& a = planes[static_cast<std::size_t>(ins[0])];
        v = a.known & ~a.val;
        k = a.known;
        break;
      }
      case GateType::Xor: {
        const LanePlanes& a = planes[static_cast<std::size_t>(ins[0])];
        const LanePlanes& b = planes[static_cast<std::size_t>(ins[1])];
        k = a.known & b.known;
        v = (a.val ^ b.val) & k;
        break;
      }
      case GateType::Xnor: {
        const LanePlanes& a = planes[static_cast<std::size_t>(ins[0])];
        const LanePlanes& b = planes[static_cast<std::size_t>(ins[1])];
        k = a.known & b.known;
        v = ~(a.val ^ b.val) & k;
        break;
      }
      case GateType::And:
      case GateType::Nand: {
        std::uint64_t one = ~0ULL, zero = 0ULL;
        for (int i = 0; i < n; ++i) {
          const LanePlanes& a = planes[static_cast<std::size_t>(ins[i])];
          one &= a.val;                 // val is canonical: val == known & val
          zero |= a.known & ~a.val;
        }
        k = one | zero;
        v = static_cast<GateType>(op_[g]) == GateType::And ? one : zero;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        std::uint64_t one = 0ULL, zero = ~0ULL;
        for (int i = 0; i < n; ++i) {
          const LanePlanes& a = planes[static_cast<std::size_t>(ins[i])];
          one |= a.val;
          zero &= a.known & ~a.val;
        }
        k = one | zero;
        v = static_cast<GateType>(op_[g]) == GateType::Or ? one : zero;
        break;
      }
    }
    LanePlanes& out = planes[static_cast<std::size_t>(outNet_[g])];
    out.val = v;
    out.known = k;
    out.z = 0;
    if (static_cast<std::int32_t>(g) == forceAfter) {
      force(planes[static_cast<std::size_t>(fault->net)], fault->stuck);
    }
  }
}

Logic PackedEvaluator::netValue(const std::vector<LanePlanes>& planes,
                                NetId net, int lane) const {
  const LanePlanes& p = planes.at(static_cast<std::size_t>(net));
  const std::uint64_t m = 1ULL << lane;
  if (p.known & m) return (p.val & m) ? Logic::L1 : Logic::L0;
  return (p.z & m) ? Logic::Z : Logic::X;
}

Word PackedEvaluator::outputsOf(const std::vector<LanePlanes>& planes,
                                int lane) const {
  const auto& pos = nl_->primaryOutputs();
  Word w(static_cast<int>(pos.size()));
  for (std::size_t i = 0; i < pos.size(); ++i) {
    w.setBit(static_cast<int>(i), netValue(planes, pos[i], lane));
  }
  return w;
}

std::uint64_t PackedEvaluator::outputDiffMask(
    const std::vector<LanePlanes>& a, const std::vector<LanePlanes>& b,
    int lanes) const {
  std::uint64_t diff = 0;
  for (NetId po : nl_->primaryOutputs()) {
    const LanePlanes& pa = a[static_cast<std::size_t>(po)];
    const LanePlanes& pb = b[static_cast<std::size_t>(po)];
    // Canonical planes make value identity plane identity, so a lane differs
    // iff any plane bit differs — exactly Word::operator!=.
    diff |= (pa.val ^ pb.val) | (pa.known ^ pb.known) | (pa.z ^ pb.z);
  }
  if (lanes >= kLanes) return diff;
  return diff & ((1ULL << lanes) - 1);
}

}  // namespace vcad::gate
