// Static and dynamic cost metrics computed from a gate-level netlist.
//
// These are the "accurate" metric sources that require knowledge of the
// component's private implementation: area from per-gate cell areas, delay
// from the critical path, and power from switching activity (toggle counts)
// weighted by per-net capacitance. The power model substitutes for the PPP
// gate-level power simulator used in the paper's experiments: like PPP, it
// needs the gate-level netlist, so it can only run where the netlist lives —
// on the IP provider's server.
#pragma once

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"

namespace vcad::gate {

/// Technology-ish constants. Units are arbitrary but consistent; defaults
/// give power numbers in the tens-of-mW range for a 16-bit multiplier, the
/// ballpark of Table 1.
struct TechParams {
  double vdd = 2.5;              // volts
  double capBasefF = 2.0;        // intrinsic output cap per gate, fF
  double capPerFanoutfF = 1.5;   // extra cap per fanout, fF
  double clockHz = 50e6;         // pattern rate for average power
  double areaPerInputUm2 = 6.0;  // cell area per gate input, um^2
  double inverterAreaUm2 = 4.0;  // NOT/BUF area, um^2
  double delayPerLevelNs = 0.35; // per-logic-level delay, ns
};

/// Total cell area in um^2.
double areaOf(const Netlist& nl, const TechParams& tech = {});

/// Critical-path delay in ns (levelized).
double criticalPathNs(const Netlist& nl, const TechParams& tech = {});

/// Output capacitance of one net in fF.
double netCapfF(const Netlist& nl, NetId net, const TechParams& tech = {});

/// Counts per-net toggles between two full-evaluation snapshots; unknown
/// values count as toggles (pessimistic).
std::uint64_t toggles(const std::vector<Logic>& prev,
                      const std::vector<Logic>& curr);

/// Switching energy (pJ) of one pattern transition: sum over toggled nets of
/// 1/2 C V^2.
double transitionEnergyPj(const Netlist& nl, const std::vector<Logic>& prev,
                          const std::vector<Logic>& curr,
                          const TechParams& tech = {});

/// Gate-level average-power evaluation of a pattern sequence (mW): total
/// switching energy divided by the sequence duration at tech.clockHz.
/// `patterns` are primary-input words; evaluation starts from patterns[0]
/// (no energy charged for the first pattern).
///
/// Evaluated on the packed bit-parallel engine, 64 patterns per pass; the
/// per-net toggle counts come from popcounts over XOR-ed lane planes. The
/// result is bit-identical (including floating point) to
/// gateLevelPowerScalar, which walks the scalar evaluator one pattern at a
/// time and is kept as the differential-test reference.
struct PowerResult {
  double avgPowerMw = 0.0;
  double peakPowerMw = 0.0;      // max per-transition power
  std::uint64_t totalToggles = 0;
  std::uint64_t transitions = 0;
};
PowerResult gateLevelPower(const Netlist& nl, const std::vector<Word>& patterns,
                           const TechParams& tech = {});
PowerResult gateLevelPowerScalar(const Netlist& nl,
                                 const std::vector<Word>& patterns,
                                 const TechParams& tech = {});

/// Per-transition switching energies (pJ) of a pattern sequence on the
/// packed engine: energies[t] covers patterns[t] -> patterns[t+1].
/// Bit-identical to calling transitionEnergyPj on consecutive scalar
/// snapshots.
std::vector<double> transitionEnergiesPj(const Netlist& nl,
                                         const std::vector<Word>& patterns,
                                         const TechParams& tech = {});

}  // namespace vcad::gate
