#include "gate/incremental.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcad::gate {

IncrementalEvaluator::IncrementalEvaluator(const Netlist& nl) : nl_(&nl) {
  nl.validate();
  const std::vector<int> netLevel = nl.levels();
  levelOfGate_.resize(static_cast<size_t>(nl.gateCount()));
  for (int g = 0; g < nl.gateCount(); ++g) {
    const int lvl =
        netLevel[static_cast<size_t>(nl.gates()[static_cast<size_t>(g)].output)];
    levelOfGate_[static_cast<size_t>(g)] = lvl;
    maxLevel_ = std::max(maxLevel_, lvl);
  }
  buckets_.resize(static_cast<size_t>(maxLevel_) + 1);
  queued_.assign(static_cast<size_t>(nl.gateCount()), false);
  value_.assign(static_cast<size_t>(nl.netCount()), Logic::X);
  // Constant cells settle once up front.
  for (int g = 0; g < nl.gateCount(); ++g) {
    if (nl.gates()[static_cast<size_t>(g)].inputs.empty()) {
      buckets_[static_cast<size_t>(levelOfGate_[static_cast<size_t>(g)])]
          .push_back(g);
      queued_[static_cast<size_t>(g)] = true;
    }
  }
  propagate();
}

void IncrementalEvaluator::reset() {
  value_.assign(static_cast<size_t>(nl_->netCount()), Logic::X);
  for (int g = 0; g < nl_->gateCount(); ++g) {
    if (nl_->gates()[static_cast<size_t>(g)].inputs.empty()) {
      buckets_[static_cast<size_t>(levelOfGate_[static_cast<size_t>(g)])]
          .push_back(g);
      queued_[static_cast<size_t>(g)] = true;
    }
  }
  propagate();
}

void IncrementalEvaluator::enqueueReaders(NetId net) {
  for (int g : nl_->readersOf(net)) {
    if (queued_[static_cast<size_t>(g)]) continue;
    queued_[static_cast<size_t>(g)] = true;
    buckets_[static_cast<size_t>(levelOfGate_[static_cast<size_t>(g)])]
        .push_back(g);
  }
}

std::size_t IncrementalEvaluator::propagate() {
  std::size_t evaluated = 0;
  std::vector<Logic> ins;
  for (std::size_t lvl = 0; lvl < buckets_.size(); ++lvl) {
    // Gates enqueue only strictly-deeper readers, so this bucket is final
    // by the time we reach it.
    auto& bucket = buckets_[lvl];
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      const int g = bucket[k];
      queued_[static_cast<size_t>(g)] = false;
      const GateNode& gn = nl_->gates()[static_cast<size_t>(g)];
      ins.clear();
      for (NetId in : gn.inputs) ins.push_back(value_[static_cast<size_t>(in)]);
      const Logic out = evalGate(gn.type, ins);
      ++evaluated;
      ++gateEvals_;
      if (out == value_[static_cast<size_t>(gn.output)]) continue;
      value_[static_cast<size_t>(gn.output)] = out;
      enqueueReaders(gn.output);
    }
    bucket.clear();
  }
  return evaluated;
}

std::size_t IncrementalEvaluator::setInput(int piIndex, Logic v) {
  const auto& pis = nl_->primaryInputs();
  if (piIndex < 0 || piIndex >= static_cast<int>(pis.size())) {
    throw std::out_of_range("IncrementalEvaluator::setInput: bad index");
  }
  const NetId net = pis[static_cast<size_t>(piIndex)];
  if (value_[static_cast<size_t>(net)] == v) return 0;
  value_[static_cast<size_t>(net)] = v;
  enqueueReaders(net);
  return propagate();
}

std::size_t IncrementalEvaluator::setInputs(const Word& inputs) {
  if (inputs.width() != nl_->inputCount()) {
    throw std::invalid_argument("IncrementalEvaluator: input width mismatch");
  }
  const auto& pis = nl_->primaryInputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const NetId net = pis[i];
    const Logic v = inputs.bit(static_cast<int>(i));
    if (value_[static_cast<size_t>(net)] == v) continue;
    value_[static_cast<size_t>(net)] = v;
    enqueueReaders(net);
  }
  return propagate();
}

Word IncrementalEvaluator::outputs() const {
  const auto& pos = nl_->primaryOutputs();
  Word w(static_cast<int>(pos.size()));
  for (std::size_t i = 0; i < pos.size(); ++i) {
    w.setBit(static_cast<int>(i), value_[static_cast<size_t>(pos[i])]);
  }
  return w;
}

}  // namespace vcad::gate
