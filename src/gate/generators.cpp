#include "gate/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace vcad::gate {

namespace {
/// Adds a full-adder bit slice; returns {sum, cout}.
std::pair<NetId, NetId> fullAdderSlice(Netlist& nl, NetId a, NetId b, NetId cin,
                                       const std::string& prefix) {
  const NetId axb = nl.addGate(GateType::Xor, {a, b}, prefix + "_axb");
  const NetId sum = nl.addGate(GateType::Xor, {axb, cin}, prefix + "_sum");
  const NetId ab = nl.addGate(GateType::And, {a, b}, prefix + "_ab");
  const NetId c2 = nl.addGate(GateType::And, {axb, cin}, prefix + "_axbc");
  const NetId cout = nl.addGate(GateType::Or, {ab, c2}, prefix + "_cout");
  return {sum, cout};
}
}  // namespace

Netlist makeHalfAdder() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId sum = nl.addGate(GateType::Xor, {a, b}, "sum");
  const NetId carry = nl.addGate(GateType::And, {a, b}, "carry");
  nl.markOutput(sum);
  nl.markOutput(carry);
  nl.validate();
  return nl;
}

Netlist makeFullAdder() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId cin = nl.addInput("cin");
  auto [sum, cout] = fullAdderSlice(nl, a, b, cin, "fa");
  nl.markOutput(sum);
  nl.markOutput(cout);
  nl.validate();
  return nl;
}

Netlist makeRippleCarryAdder(int width) {
  if (width < 1) throw std::invalid_argument("adder width must be >= 1");
  Netlist nl;
  std::vector<NetId> a(static_cast<size_t>(width));
  std::vector<NetId> b(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) a[static_cast<size_t>(i)] = nl.addInput("a" + std::to_string(i));
  for (int i = 0; i < width; ++i) b[static_cast<size_t>(i)] = nl.addInput("b" + std::to_string(i));
  std::vector<NetId> sums;
  NetId carry = nl.addGate(GateType::Const0, {}, "c0");
  for (int i = 0; i < width; ++i) {
    auto [s, c] = fullAdderSlice(nl, a[static_cast<size_t>(i)],
                                 b[static_cast<size_t>(i)], carry,
                                 "s" + std::to_string(i));
    sums.push_back(s);
    carry = c;
  }
  for (NetId s : sums) nl.markOutput(s);
  nl.markOutput(carry);
  nl.validate();
  return nl;
}

Netlist makeArrayMultiplier(int width) {
  if (width < 1 || width > 32) {
    throw std::invalid_argument("multiplier width must be in [1, 32]");
  }
  Netlist nl;
  std::vector<NetId> a(static_cast<size_t>(width));
  std::vector<NetId> b(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) a[static_cast<size_t>(i)] = nl.addInput("a" + std::to_string(i));
  for (int i = 0; i < width; ++i) b[static_cast<size_t>(i)] = nl.addInput("b" + std::to_string(i));

  // Column compression (carry-save array): collect all partial-product bits
  // by weight, then reduce each column with full/half adders until one bit
  // of each weight remains.
  const int pw = 2 * width;
  // One extra column absorbs the (provably zero) carry out of weight pw-1.
  std::vector<std::vector<NetId>> col(static_cast<size_t>(pw) + 1);
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < width; ++j) {
      const NetId p = nl.addGate(
          GateType::And,
          {a[static_cast<size_t>(j)], b[static_cast<size_t>(i)]},
          "pp" + std::to_string(i) + "_" + std::to_string(j));
      col[static_cast<size_t>(i + j)].push_back(p);
    }
  }
  int slice = 0;
  for (int w = 0; w < pw; ++w) {
    auto& c = col[static_cast<size_t>(w)];
    while (c.size() > 1) {
      const std::string prefix = "cs" + std::to_string(slice++);
      if (c.size() >= 3) {
        const NetId x = c[0], y = c[1], z = c[2];
        c.erase(c.begin(), c.begin() + 3);
        auto [s, carry] = fullAdderSlice(nl, x, y, z, prefix);
        c.push_back(s);
        col[static_cast<size_t>(w + 1)].push_back(carry);
      } else {
        const NetId x = c[0], y = c[1];
        c.erase(c.begin(), c.begin() + 2);
        const NetId s = nl.addGate(GateType::Xor, {x, y}, prefix + "_s");
        const NetId carry = nl.addGate(GateType::And, {x, y}, prefix + "_c");
        c.push_back(s);
        col[static_cast<size_t>(w + 1)].push_back(carry);
      }
    }
  }
  for (int w = 0; w < pw; ++w) {
    auto& c = col[static_cast<size_t>(w)];
    NetId bit = c.empty() ? nl.addGate(GateType::Const0, {},
                                       "pz" + std::to_string(w))
                          : c[0];
    // Give each product bit a stable, readable stem name.
    const NetId out = nl.addGate(GateType::Buf, {bit}, "p" + std::to_string(w));
    nl.markOutput(out);
  }
  nl.validate();
  return nl;
}

Netlist makeParityTree(int width) {
  if (width < 2) throw std::invalid_argument("parity width must be >= 2");
  Netlist nl;
  std::vector<NetId> layer;
  for (int i = 0; i < width; ++i) layer.push_back(nl.addInput("d" + std::to_string(i)));
  int k = 0;
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.addGate(GateType::Xor, {layer[i], layer[i + 1]},
                                "x" + std::to_string(k++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  nl.markOutput(layer[0]);
  nl.validate();
  return nl;
}

Netlist makeMux(int selBits) {
  if (selBits < 1 || selBits > 6) {
    throw std::invalid_argument("mux selBits must be in [1, 6]");
  }
  const int n = 1 << selBits;
  Netlist nl;
  std::vector<NetId> d;
  for (int i = 0; i < n; ++i) d.push_back(nl.addInput("d" + std::to_string(i)));
  std::vector<NetId> sel;
  for (int i = 0; i < selBits; ++i) sel.push_back(nl.addInput("s" + std::to_string(i)));
  std::vector<NetId> selN;
  for (int i = 0; i < selBits; ++i) {
    selN.push_back(nl.addGate(GateType::Not, {sel[static_cast<size_t>(i)]},
                              "sn" + std::to_string(i)));
  }
  std::vector<NetId> terms;
  for (int i = 0; i < n; ++i) {
    std::vector<NetId> ins{d[static_cast<size_t>(i)]};
    for (int bIdx = 0; bIdx < selBits; ++bIdx) {
      ins.push_back(((i >> bIdx) & 1) != 0 ? sel[static_cast<size_t>(bIdx)]
                                           : selN[static_cast<size_t>(bIdx)]);
    }
    terms.push_back(nl.addGate(GateType::And, ins, "t" + std::to_string(i)));
  }
  NetId out = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    out = nl.addGate(GateType::Or, {out, terms[i]}, "o" + std::to_string(i));
  }
  nl.markOutput(out);
  nl.validate();
  return nl;
}

Netlist makeComparator(int width) {
  if (width < 1) throw std::invalid_argument("comparator width must be >= 1");
  Netlist nl;
  std::vector<NetId> eq;
  for (int i = 0; i < width; ++i) {
    const NetId a = nl.addInput("a" + std::to_string(i));
    const NetId b = nl.addInput("b" + std::to_string(i));
    eq.push_back(nl.addGate(GateType::Xnor, {a, b}, "eq" + std::to_string(i)));
  }
  NetId all = eq[0];
  for (size_t i = 1; i < eq.size(); ++i) {
    all = nl.addGate(GateType::And, {all, eq[i]}, "and" + std::to_string(i));
  }
  nl.markOutput(all);
  nl.validate();
  return nl;
}

Netlist makeIp1HalfAdder() {
  Netlist nl;
  const NetId a = nl.addInput("IIP1");
  const NetId b = nl.addInput("IIP2");
  const NetId i1 = nl.addGate(GateType::Not, {a}, "I1");
  const NetId i2 = nl.addGate(GateType::Not, {b}, "I2");
  const NetId i3 = nl.addGate(GateType::And, {a, i2}, "I3");
  const NetId i4 = nl.addGate(GateType::And, {i1, b}, "I4");
  const NetId i5 = nl.addGate(GateType::Or, {i3, i4}, "I5");
  const NetId i6 = nl.addGate(GateType::And, {a, b}, "I6");
  const NetId o1 = nl.addGate(GateType::Buf, {i5}, "OIP1");
  const NetId o2 = nl.addGate(GateType::Buf, {i6}, "OIP2");
  nl.markOutput(o1);
  nl.markOutput(o2);
  nl.validate();
  return nl;
}

Netlist makeRandomNetlist(Rng& rng, int nInputs, int nGates, int nOutputs) {
  if (nInputs < 2 || nGates < 1 || nOutputs < 1) {
    throw std::invalid_argument("makeRandomNetlist: bad shape");
  }
  Netlist nl;
  std::vector<NetId> avail;
  for (int i = 0; i < nInputs; ++i) avail.push_back(nl.addInput("pi" + std::to_string(i)));
  static constexpr GateType kTypes[] = {GateType::And,  GateType::Or,
                                        GateType::Nand, GateType::Nor,
                                        GateType::Xor,  GateType::Not};
  for (int g = 0; g < nGates; ++g) {
    const GateType t = kTypes[rng.below(6)];
    std::vector<NetId> ins;
    const int arity = (t == GateType::Not) ? 1 : 2;
    for (int k = 0; k < arity; ++k) {
      ins.push_back(avail[rng.below(avail.size())]);
    }
    avail.push_back(nl.addGate(t, ins));
  }
  // Prefer sink nets (no readers) as outputs so most logic is observable.
  std::vector<NetId> sinks;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    if (!nl.isPrimaryInput(n) && nl.readersOf(n).empty()) sinks.push_back(n);
  }
  std::vector<NetId> chosen;
  for (int i = 0; i < nOutputs; ++i) {
    if (!sinks.empty()) {
      const size_t k = rng.below(sinks.size());
      chosen.push_back(sinks[k]);
      sinks.erase(sinks.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      // Fall back to any non-input net not yet chosen.
      NetId n;
      do {
        n = static_cast<NetId>(rng.below(static_cast<std::uint64_t>(nl.netCount())));
      } while (nl.isPrimaryInput(n) ||
               std::find(chosen.begin(), chosen.end(), n) != chosen.end());
      chosen.push_back(n);
    }
  }
  for (NetId n : chosen) nl.markOutput(n);
  nl.validate();
  return nl;
}

}  // namespace vcad::gate
