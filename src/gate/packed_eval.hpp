// PackedEvaluator: compiled, levelized, bit-parallel netlist evaluation —
// 64 independent patterns per pass (classic PPSFP-style pattern
// parallelism).
//
// The netlist is flattened once into cache-friendly CSR arrays (gate opcode,
// input-net index spans, output net, all in topological order). Four-valued
// logic is encoded as two 64-bit planes per net — `val` (the value bit,
// canonical 0 wherever unknown) and `known` (strong 0/1) — so every gate
// evaluates all 64 pattern lanes with a handful of branch-free bitwise
// operations. A third `z` plane records high impedance; only primary inputs
// can carry it (every gate operator normalizes Z to X, exactly like the
// scalar 4-valued algebra in core/logic.cpp), so the gate loop never touches
// it. Stuck-at injection forces a net's planes right after its driver
// evaluates (or at input load for primary-input faults), which makes one
// packed pass equivalent to 64 scalar NetlistEvaluator::evaluate calls with
// the same fault — bit-identical after decoding.
//
// Two-plane forms (per lane; one = known & val, zero = known & ~val):
//   AND : one = AND over inputs' one;  zero = OR  over inputs' zero
//   OR  : one = OR  over inputs' one;  zero = AND over inputs' zero
//   XOR : known = aK & bK;             val = (aV ^ bV) & known
//   NOT : known = aK;                  val = zero(a)
// with known = one | zero, val = one for AND/OR, and the inverting variants
// (NAND/NOR/XNOR) swapping val for its complement within known.
#pragma once

#include <cstdint>
#include <vector>

#include "core/word.hpp"
#include "gate/netlist.hpp"

namespace vcad::gate {

/// One 64-lane slice of a net: bit k of each plane describes the net's
/// 4-valued value under pattern lane k.
struct LanePlanes {
  std::uint64_t val = 0;    // value bit; canonical 0 where !known
  std::uint64_t known = 0;  // lane holds a strong 0/1
  std::uint64_t z = 0;      // lane is high-impedance (primary inputs only)
};

class PackedEvaluator {
 public:
  /// Patterns evaluated per pass — one per bit of a machine word.
  static constexpr int kLanes = 64;

  explicit PackedEvaluator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// A block of up to kLanes input patterns, transposed into one LanePlanes
  /// per primary input. Pack once, evaluate many times (fault campaigns
  /// reuse the same block for the fault-free pass and every injection).
  struct InputBlock {
    std::vector<LanePlanes> pi;  // per primary input, PI order
    int lanes = 0;
  };

  /// Transposes patterns[begin, begin+lanes) (each one primary-input word)
  /// into an InputBlock. Throws when lanes > kLanes or widths mismatch.
  InputBlock pack(const std::vector<Word>& patterns, std::size_t begin,
                  std::size_t lanes) const;

  /// Evaluates every lane of `in` in one pass; `planes` is resized to
  /// netCount(). Lanes >= in.lanes decode as X and must be ignored.
  void evaluate(const InputBlock& in, std::vector<LanePlanes>& planes,
                const StuckFault* fault = nullptr) const;

  /// Decodes one lane of one net (the packed analogue of the scalar
  /// evaluator's net-value vector entry).
  Logic netValue(const std::vector<LanePlanes>& planes, NetId net,
                 int lane) const;

  /// Decodes one lane's primary-output word.
  Word outputsOf(const std::vector<LanePlanes>& planes, int lane) const;

  /// Lanes (bit k = lane k) where the two runs' primary outputs differ —
  /// exactly Word::operator!= applied per lane, limited to the low `lanes`
  /// bits.
  std::uint64_t outputDiffMask(const std::vector<LanePlanes>& a,
                               const std::vector<LanePlanes>& b,
                               int lanes) const;

 private:
  const Netlist* nl_;
  // Compiled CSR form; index g runs over gates in topological order.
  std::vector<std::uint8_t> op_;       // GateType
  std::vector<std::int32_t> outNet_;
  std::vector<std::int32_t> inBegin_;  // size gates+1; spans into inNets_
  std::vector<std::int32_t> inNets_;
  std::vector<std::int32_t> driverPos_;  // per net: compiled index of its
                                         // driver, or -1 (primary input)
};

}  // namespace vcad::gate
