// NetlistModule: wraps a gate-level netlist as a backplane module, so
// gate-level components participate in event-driven simulation alongside
// word-level (RTL) modules — the mixed-level system descriptions the paper
// supports.
//
// Ports are declared as *groups*: a group maps one connector (1 bit or a
// word) onto a contiguous run of netlist primary inputs/outputs. Factory
// helpers cover the two common layouts (one 1-bit port per pin; one word
// port per operand).
//
// On every input event the module re-evaluates the netlist with the current
// input configuration and emits only the output groups whose value changed
// (event-driven suppression). Per-scheduler state tracks the previous net
// snapshot, toggle counts, switching energy, and (optionally) the input
// pattern history used by dynamic power estimators.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "gate/incremental.hpp"
#include "gate/metrics.hpp"
#include "gate/netlist.hpp"

namespace vcad::gate {

class NetlistModule : public Module {
 public:
  /// Evaluation strategy per activation:
  ///  - FullPass: levelized full evaluation with exact activity accounting
  ///    (toggle counts, switching energy) — the default, required when the
  ///    module feeds power estimation.
  ///  - SelectiveTrace: event-driven incremental evaluation; much less work
  ///    per input change, but activity counters stay at zero (functional
  ///    simulation mode).
  enum class EvalMode { FullPass, SelectiveTrace };
  struct PortGroup {
    std::string name;
    Connector* conn = nullptr;
    int firstPin = 0;  // index into primaryInputs()/primaryOutputs()
    int width = 1;
  };

  NetlistModule(std::string name, std::shared_ptr<const Netlist> netlist,
                std::vector<PortGroup> inputs, std::vector<PortGroup> outputs,
                TechParams tech = {});

  const Netlist& netlist() const { return *netlist_; }
  const NetlistEvaluator& evaluator() const { return evaluator_; }
  const TechParams& tech() const { return tech_; }

  /// When enabled, each evaluated input configuration is appended to the
  /// per-scheduler pattern history (consumed by dynamic power estimators).
  void setRecordPatterns(bool on) { recordPatterns_ = on; }

  /// Selects the evaluation strategy (see EvalMode). Affects schedulers
  /// whose state is created after the call; set before simulating.
  void setEvalMode(EvalMode mode) { evalMode_ = mode; }
  EvalMode evalMode() const { return evalMode_; }

  /// Input events within one simulation instant are coalesced with a
  /// zero-delay self token, so simultaneous pin updates cause exactly one
  /// netlist evaluation (one pattern, glitch-free activity counting).
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;
  void processSelfEvent(const SelfToken& token, SimContext& ctx) override;

  /// Current full input word (one bit per netlist PI) as seen by `ctx`.
  Word currentInputs(const SimContext& ctx) const;

  /// Per-scheduler activity counters.
  std::uint64_t evaluations(const SimContext& ctx);
  std::uint64_t netToggles(const SimContext& ctx);
  double switchingEnergyPj(const SimContext& ctx);
  const std::vector<Word>& patternHistory(const SimContext& ctx);
  void clearPatternHistory(const SimContext& ctx);

 private:
  struct State : ModuleState {
    bool evalPending = false;
    bool hasPrev = false;
    std::vector<Logic> prevNets;
    Word lastOutputs;
    std::uint64_t evaluations = 0;
    std::uint64_t toggles = 0;
    double energyPj = 0.0;
    std::vector<Word> history;
    std::unique_ptr<IncrementalEvaluator> incremental;
  };

  State& stateOf(const SimContext& ctx) { return state<State>(ctx); }

  std::shared_ptr<const Netlist> netlist_;
  NetlistEvaluator evaluator_;
  TechParams tech_;
  bool recordPatterns_ = false;
  EvalMode evalMode_ = EvalMode::FullPass;
  std::vector<PortGroup> inGroups_;
  std::vector<PortGroup> outGroups_;
  std::vector<Port*> inPorts_;   // parallel to inGroups_
  std::vector<Port*> outPorts_;  // parallel to outGroups_
};

/// Builds a NetlistModule with one single-bit port per primary input/output,
/// wired to the given connectors in pin order.
std::unique_ptr<NetlistModule> makeBitLevelModule(
    std::string name, std::shared_ptr<const Netlist> netlist,
    const std::vector<Connector*>& inputConns,
    const std::vector<Connector*>& outputConns, TechParams tech = {});

}  // namespace vcad::gate
