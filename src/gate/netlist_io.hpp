// Text persistence for netlists: a small BLIF-flavoured structural format,
// so circuits can be stored, exchanged, and versioned outside C++ code.
//
//   # comment
//   .model adder           (optional)
//   .inputs a b cin
//   .outputs sum cout
//   .gate XOR t1 a b       (.gate TYPE <output-net> <input-nets...>)
//   .gate XOR sum t1 cin
//   ...
//   .end                   (optional)
//
// Net names are introduced implicitly by use; every non-input net must be
// driven by exactly one gate (checked by Netlist::validate on load).
#pragma once

#include <iosfwd>
#include <string>

#include "gate/netlist.hpp"

namespace vcad::gate {

/// Serializes a netlist to the text format.
void writeNetlist(std::ostream& os, const Netlist& nl,
                  const std::string& modelName = "top");
std::string netlistToString(const Netlist& nl,
                            const std::string& modelName = "top");

/// Parses the text format. Throws std::runtime_error with a line number on
/// malformed input; the returned netlist is validated.
Netlist parseNetlist(std::istream& is);
Netlist parseNetlist(const std::string& text);

/// The ISCAS-85 c17 benchmark circuit (6 NAND gates), the canonical tiny
/// test-generation example.
Netlist makeC17();

}  // namespace vcad::gate
