// Gate-level netlist: a directed acyclic graph of primitive gates over
// named single-bit nets.
//
// Every net has exactly one driver (a primary input or a gate output).
// Primary outputs are nets marked as observable. The netlist is the private
// implementation view of an IP component: it is what providers keep on their
// server and what accurate (gate-level) estimation and fault simulation
// require.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/logic.hpp"
#include "core/word.hpp"

namespace vcad::gate {

using NetId = int;
inline constexpr NetId kNoNet = -1;

enum class GateType {
  Buf,
  Not,
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Const0,
  Const1,
};

std::string toString(GateType t);

/// Number of inputs a gate type accepts: {min, max} (max -1 = unbounded).
std::pair<int, int> arityOf(GateType t);

/// Evaluates one gate over 4-valued inputs.
Logic evalGate(GateType t, const Logic* ins, int n);

inline Logic evalGate(GateType t, const std::vector<Logic>& ins) {
  return evalGate(t, ins.data(), static_cast<int>(ins.size()));
}

struct GateNode {
  GateType type;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
};

/// A single stuck-at fault on a net.
struct StuckFault {
  NetId net = kNoNet;
  Logic stuck = Logic::L0;  // L0 or L1

  bool operator==(const StuckFault& o) const {
    return net == o.net && stuck == o.stuck;
  }
  bool operator<(const StuckFault& o) const {
    return net != o.net ? net < o.net : stuck < o.stuck;
  }
};

class Netlist {
 public:
  /// Creates a fresh internal net. Auto-names it "n<k>" if name is empty.
  NetId addNet(std::string name = "");

  /// Creates a primary-input net.
  NetId addInput(std::string name);

  /// Marks an existing net as a primary output (order of calls defines the
  /// output bit order).
  void markOutput(NetId net);

  /// Adds a gate driving a fresh net; returns the output net id.
  NetId addGate(GateType type, std::vector<NetId> inputs,
                std::string outName = "");

  /// Adds a gate driving an existing (so far undriven) net.
  void addGateDriving(GateType type, std::vector<NetId> inputs, NetId out);

  // --- queries ---------------------------------------------------------

  int netCount() const { return static_cast<int>(nets_.size()); }
  int gateCount() const { return static_cast<int>(gates_.size()); }
  int inputCount() const { return static_cast<int>(inputs_.size()); }
  int outputCount() const { return static_cast<int>(outputs_.size()); }

  const std::vector<NetId>& primaryInputs() const { return inputs_; }
  const std::vector<NetId>& primaryOutputs() const { return outputs_; }
  const std::vector<GateNode>& gates() const { return gates_; }

  const std::string& netName(NetId id) const;
  NetId findNet(const std::string& name) const;  // kNoNet when absent
  bool isPrimaryInput(NetId id) const;
  bool isPrimaryOutput(NetId id) const;

  /// Gate index driving a net, or -1 for primary inputs.
  int driverOf(NetId id) const;

  /// Gate indices reading a net.
  const std::vector<int>& readersOf(NetId id) const;

  /// Fanout count of a net (number of gate inputs it feeds, plus 1 if it is
  /// a primary output).
  int fanoutOf(NetId id) const;

  /// Verifies structural sanity: every net driven exactly once (except
  /// primary inputs, driven by the environment), gate arities respected,
  /// no combinational cycles. Throws std::logic_error on violation.
  void validate() const;

  /// Gates in topological order (inputs before readers). Throws on cycles.
  std::vector<int> topoOrder() const;

  /// Logic level of each net (primary inputs = 0); computed on topo order.
  std::vector<int> levels() const;

 private:
  struct Net {
    std::string name;
    int driver = -1;            // gate index; -1 for PI / undriven
    bool isInput = false;
    bool isOutput = false;
    std::vector<int> readers;   // gate indices
  };

  std::vector<Net> nets_;
  std::vector<GateNode> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
};

/// Evaluates complete input-to-output passes over a netlist, optionally with
/// one injected stuck-at fault. The evaluator precomputes the topological
/// order once and is immutable afterwards, so it can be shared by threads.
class NetlistEvaluator {
 public:
  explicit NetlistEvaluator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Full evaluation. `inputs` bit i corresponds to primaryInputs()[i].
  /// Returns the value of every net.
  std::vector<Logic> evaluate(const Word& inputs,
                              std::optional<StuckFault> fault = {}) const;

  /// Allocation-friendly variant: writes every net value into `values`
  /// (resized to netCount()). Reusing `values` across calls keeps steady-
  /// state evaluation free of heap traffic — the path RMI-served single
  /// evaluations take.
  void evaluateInto(const Word& inputs, std::vector<Logic>& values,
                    std::optional<StuckFault> fault = {}) const;

  /// Extracts the primary-output word from a net-value vector.
  Word outputsOf(const std::vector<Logic>& netValues) const;

  /// Convenience: evaluate and return only the outputs.
  Word evalOutputs(const Word& inputs,
                   std::optional<StuckFault> fault = {}) const;

 private:
  const Netlist* nl_;
  std::vector<int> topo_;
};

}  // namespace vcad::gate
