#include "rtl/modules.hpp"

#include <stdexcept>

#include "core/connector.hpp"

namespace vcad::rtl {

// --- RandomPrimaryInput ------------------------------------------------

RandomPrimaryInput::RandomPrimaryInput(std::string name, int width,
                                       Connector& out, std::size_t count,
                                       SimTime period, std::uint64_t seed)
    : Module(std::move(name)),
      width_(width),
      count_(count),
      period_(period),
      seed_(seed) {
  if (out.width() != width) {
    throw std::invalid_argument("RandomPrimaryInput '" + this->name() +
                                "': connector width mismatch");
  }
  if (period == 0) {
    throw std::invalid_argument("RandomPrimaryInput '" + this->name() +
                                "': period must be positive");
  }
  out_ = &addOutput("out", out);
}

void RandomPrimaryInput::initialize(SimContext& ctx) {
  if (count_ > 0) selfSchedule(ctx, 0);
}

void RandomPrimaryInput::processSelfEvent(const SelfToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  if (!st.seeded) {
    // Every scheduler sees the same deterministic stream, so repeated or
    // concurrent simulations of one design are exactly reproducible.
    st.rng = Rng(seed_);
    st.seeded = true;
  }
  if (st.emitted >= count_) return;
  ++st.emitted;
  emit(ctx, *out_, Word::fromUint(width_, st.rng.next()));
  if (st.emitted < count_) selfSchedule(ctx, period_);
}

// --- PrimaryOutput ---------------------------------------------------------

PrimaryOutput::PrimaryOutput(std::string name, Connector& in)
    : Module(std::move(name)) {
  in_ = &addInput("in", in);
}

void PrimaryOutput::processInputEvent(const SignalToken& token,
                                      SimContext& ctx) {
  state<State>(ctx).samples.push_back(Sample{ctx.scheduler.now(), token.value()});
}

const std::vector<PrimaryOutput::Sample>& PrimaryOutput::history(
    const SimContext& ctx) {
  return state<State>(ctx).samples;
}

Word PrimaryOutput::last(const SimContext& ctx) {
  auto& samples = state<State>(ctx).samples;
  return samples.empty() ? Word::allX(in_->width()) : samples.back().value;
}

std::size_t PrimaryOutput::sampleCount(const SimContext& ctx) {
  return state<State>(ctx).samples.size();
}

// --- Register --------------------------------------------------------------

Register::Register(std::string name, Connector& d, Connector& q,
                   Connector* clk)
    : Module(std::move(name)) {
  if (d.width() != q.width()) {
    throw std::invalid_argument("Register '" + this->name() +
                                "': D/Q width mismatch");
  }
  d_ = &addInput("d", d);
  q_ = &addOutput("q", q);
  if (clk != nullptr) {
    if (clk->width() != 1) {
      throw std::invalid_argument("Register '" + this->name() +
                                  "': clock must be 1 bit wide");
    }
    clk_ = &addInput("clk", *clk);
  }
}

void Register::processInputEvent(const SignalToken& token, SimContext& ctx) {
  State& st = state<State>(ctx);
  if (clk_ == nullptr) {
    // Latch style: present the sampled input one tick later.
    if (&token.target() == d_) emit(ctx, *q_, token.value(), 1);
    return;
  }
  if (&token.target() == d_) {
    st.stored = token.value();
    return;
  }
  // Clock event: emit on rising edge only.
  const Logic now = token.value().scalar();
  const bool rising = (st.lastClk == Logic::L0 && now == Logic::L1);
  st.lastClk = now;
  if (rising && !st.stored.empty()) emit(ctx, *q_, st.stored);
}

// --- WordMultiplier ----------------------------------------------------

WordMultiplier::WordMultiplier(std::string name, int width, Connector& a,
                               Connector& b, Connector& o, SimTime latency)
    : Module(std::move(name)), width_(width), latency_(latency) {
  if (a.width() != width || b.width() != width || o.width() != 2 * width) {
    throw std::invalid_argument("WordMultiplier '" + this->name() +
                                "': connector widths must be w, w, 2w");
  }
  a_ = &addInput("a", a);
  b_ = &addInput("b", b);
  o_ = &addOutput("o", o);
}

void WordMultiplier::processInputEvent(const SignalToken&, SimContext& ctx) {
  const Word a = readInput(ctx, *a_);
  const Word b = readInput(ctx, *b_);
  if (!a.isFullyKnown() || !b.isFullyKnown()) {
    emit(ctx, *o_, Word::allX(2 * width_), latency_);
    return;
  }
  emit(ctx, *o_, Word::fromUint(2 * width_, a.toUint() * b.toUint()),
       latency_);
}

// --- WordAdder ---------------------------------------------------------

WordAdder::WordAdder(std::string name, int width, Connector& a, Connector& b,
                     Connector& s, SimTime latency)
    : Module(std::move(name)), width_(width), latency_(latency) {
  if (a.width() != width || b.width() != width || s.width() != width + 1) {
    throw std::invalid_argument("WordAdder '" + this->name() +
                                "': connector widths must be w, w, w+1");
  }
  a_ = &addInput("a", a);
  b_ = &addInput("b", b);
  s_ = &addOutput("s", s);
}

void WordAdder::processInputEvent(const SignalToken&, SimContext& ctx) {
  const Word a = readInput(ctx, *a_);
  const Word b = readInput(ctx, *b_);
  if (!a.isFullyKnown() || !b.isFullyKnown()) {
    emit(ctx, *s_, Word::allX(width_ + 1), latency_);
    return;
  }
  emit(ctx, *s_, Word::fromUint(width_ + 1, a.toUint() + b.toUint()),
       latency_);
}

// --- Alu ---------------------------------------------------------------

Alu::Alu(std::string name, int width, Connector& a, Connector& b,
         Connector& op, Connector& y)
    : Module(std::move(name)), width_(width) {
  if (a.width() != width || b.width() != width || y.width() != width) {
    throw std::invalid_argument("Alu '" + this->name() +
                                "': operand widths must match");
  }
  if (op.width() != 3) {
    throw std::invalid_argument("Alu '" + this->name() + "': op is 3 bits");
  }
  a_ = &addInput("a", a);
  b_ = &addInput("b", b);
  op_ = &addInput("op", op);
  y_ = &addOutput("y", y);
}

void Alu::processInputEvent(const SignalToken&, SimContext& ctx) {
  const Word a = readInput(ctx, *a_);
  const Word b = readInput(ctx, *b_);
  const Word op = readInput(ctx, *op_);
  if (!a.isFullyKnown() || !b.isFullyKnown() || !op.isFullyKnown()) {
    emit(ctx, *y_, Word::allX(width_));
    return;
  }
  const std::uint64_t av = a.toUint();
  const std::uint64_t bv = b.toUint();
  std::uint64_t r = 0;
  switch (static_cast<AluOp>(op.toUint())) {
    case AluOp::Add:
      r = av + bv;
      break;
    case AluOp::Sub:
      r = av - bv;
      break;
    case AluOp::And:
      r = av & bv;
      break;
    case AluOp::Or:
      r = av | bv;
      break;
    case AluOp::Xor:
      r = av ^ bv;
      break;
    case AluOp::Nor:
      r = ~(av | bv);
      break;
    case AluOp::Pass:
      r = av;
      break;
    default:
      emit(ctx, *y_, Word::allX(width_));
      return;
  }
  emit(ctx, *y_, Word::fromUint(width_, r));
}

// --- Mux2 --------------------------------------------------------------

Mux2::Mux2(std::string name, int width, Connector& a, Connector& b,
           Connector& sel, Connector& y)
    : Module(std::move(name)), width_(width) {
  if (a.width() != width || b.width() != width || y.width() != width ||
      sel.width() != 1) {
    throw std::invalid_argument("Mux2 '" + this->name() +
                                "': bad connector widths");
  }
  a_ = &addInput("a", a);
  b_ = &addInput("b", b);
  sel_ = &addInput("sel", sel);
  y_ = &addOutput("y", y);
}

void Mux2::processInputEvent(const SignalToken&, SimContext& ctx) {
  const Logic sel = readInput(ctx, *sel_).scalar();
  if (!isKnown(sel)) {
    emit(ctx, *y_, Word::allX(width_));
    return;
  }
  emit(ctx, *y_, readInput(ctx, sel == Logic::L1 ? *b_ : *a_));
}

// --- Memory ------------------------------------------------------------

Memory::Memory(std::string name, int addrBits, int dataBits, Connector& addr,
               Connector& wdata, Connector& we, Connector& rdata)
    : Module(std::move(name)), addrBits_(addrBits), dataBits_(dataBits) {
  if (addr.width() != addrBits || wdata.width() != dataBits ||
      rdata.width() != dataBits || we.width() != 1) {
    throw std::invalid_argument("Memory '" + this->name() +
                                "': connector width mismatch");
  }
  addr_ = &addInput("addr", addr);
  wdata_ = &addInput("wdata", wdata);
  we_ = &addInput("we", we);
  rdata_ = &addOutput("rdata", rdata);
}

void Memory::processInputEvent(const SignalToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  if (st.evalPending) return;
  st.evalPending = true;
  selfSchedule(ctx, 0);
}

void Memory::processSelfEvent(const SelfToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  st.evalPending = false;
  const Word addr = readInput(ctx, *addr_);
  if (!addr.isFullyKnown()) {
    emit(ctx, *rdata_, Word::allX(dataBits_));
    return;
  }
  const std::uint64_t a = addr.toUint();
  const Logic we = readInput(ctx, *we_).scalar();
  if (we == Logic::L1) {
    st.cells[a] = readInput(ctx, *wdata_);
  }
  auto it = st.cells.find(a);
  emit(ctx, *rdata_, it != st.cells.end() ? it->second : Word::allX(dataBits_));
}

Word Memory::peek(const SimContext& ctx, std::uint64_t address) {
  auto& cells = state<State>(ctx).cells;
  auto it = cells.find(address);
  return it != cells.end() ? it->second : Word::allX(dataBits_);
}

void Memory::poke(const SimContext& ctx, std::uint64_t address,
                  const Word& value) {
  if (value.width() != dataBits_) {
    throw std::invalid_argument("Memory::poke: width mismatch");
  }
  state<State>(ctx).cells[address] = value;
}

// --- ClockGenerator ----------------------------------------------------

ClockGenerator::ClockGenerator(std::string name, Connector& clk,
                               SimTime halfPeriod, std::size_t cycles)
    : Module(std::move(name)), halfPeriod_(halfPeriod), cycles_(cycles) {
  if (clk.width() != 1) {
    throw std::invalid_argument("ClockGenerator '" + this->name() +
                                "': clock connector must be 1 bit");
  }
  if (halfPeriod == 0) {
    throw std::invalid_argument("ClockGenerator '" + this->name() +
                                "': half period must be positive");
  }
  clk_ = &addOutput("clk", clk);
}

void ClockGenerator::initialize(SimContext& ctx) { selfSchedule(ctx, 0); }

void ClockGenerator::processSelfEvent(const SelfToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  emit(ctx, *clk_, Word::fromLogic(st.level));
  st.level = logicNot(st.level);
  ++st.edges;
  if (cycles_ == 0 || st.edges < 2 * cycles_) selfSchedule(ctx, halfPeriod_);
}

// --- Splitter / Merger -------------------------------------------------

Splitter::Splitter(std::string name, Connector& word,
                   std::vector<Connector*> bits)
    : Module(std::move(name)) {
  if (static_cast<int>(bits.size()) != word.width()) {
    throw std::invalid_argument("Splitter '" + this->name() +
                                "': need one bit connector per word bit");
  }
  in_ = &addInput("in", word);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == nullptr || bits[i]->width() != 1) {
      throw std::invalid_argument("Splitter '" + this->name() +
                                  "': branch connectors must be 1 bit");
    }
    bitPorts_.push_back(&addOutput("b" + std::to_string(i), *bits[i]));
  }
}

void Splitter::processInputEvent(const SignalToken& token, SimContext& ctx) {
  for (size_t i = 0; i < bitPorts_.size(); ++i) {
    emit(ctx, *bitPorts_[i],
         Word::fromLogic(token.value().bit(static_cast<int>(i))));
  }
}

Merger::Merger(std::string name, std::vector<Connector*> bits,
               Connector& word)
    : Module(std::move(name)) {
  if (static_cast<int>(bits.size()) != word.width()) {
    throw std::invalid_argument("Merger '" + this->name() +
                                "': need one bit connector per word bit");
  }
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == nullptr || bits[i]->width() != 1) {
      throw std::invalid_argument("Merger '" + this->name() +
                                  "': inputs must be 1 bit");
    }
    bitPorts_.push_back(&addInput("b" + std::to_string(i), *bits[i]));
  }
  out_ = &addOutput("out", word);
}

void Merger::processInputEvent(const SignalToken&, SimContext& ctx) {
  Word w(static_cast<int>(bitPorts_.size()));
  for (size_t i = 0; i < bitPorts_.size(); ++i) {
    w.setBit(static_cast<int>(i), readInput(ctx, *bitPorts_[i]).scalar());
  }
  emit(ctx, *out_, w);
}

}  // namespace vcad::rtl
