// Value-change-dump (VCD, IEEE 1364) export of simulation results, so
// waveforms recorded by the backplane can be inspected in any standard
// viewer (GTKWave etc.).
//
// Tracks are fed either directly (addChange) or from the sample history of
// PrimaryOutput observers after a run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "core/word.hpp"
#include "rtl/modules.hpp"

namespace vcad::rtl {

class VcdWriter {
 public:
  /// `timescale` is emitted verbatim, e.g. "1ns".
  explicit VcdWriter(std::string timescale = "1ns");

  /// Declares a track; returns its handle.
  int addTrack(const std::string& name, int width);

  /// Records a value change. Changes may arrive in any order; they are
  /// sorted by time at write-out. Identical consecutive values are
  /// deduplicated per track.
  void addChange(int track, SimTime time, const Word& value);

  /// Convenience: declares a track and feeds a PrimaryOutput's history.
  int addTrack(const std::string& name, PrimaryOutput& out,
               const SimContext& ctx);

  /// Emits the complete VCD document.
  void write(std::ostream& os) const;

  /// Writes to a file; throws std::runtime_error when the file can't be
  /// opened.
  void writeFile(const std::string& path) const;

  std::size_t trackCount() const { return tracks_.size(); }

 private:
  struct Change {
    SimTime time;
    Word value;
  };
  struct Track {
    std::string name;
    int width;
    std::string id;  // VCD short identifier
    std::vector<Change> changes;
  };

  static std::string idFor(int index);

  std::string timescale_;
  std::vector<Track> tracks_;
};

}  // namespace vcad::rtl
