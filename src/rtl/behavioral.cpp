#include "rtl/behavioral.hpp"

#include <stdexcept>

#include "core/connector.hpp"

namespace vcad::rtl {

// --- Activation ------------------------------------------------------------

BehavioralProcess::Activation::Activation(BehavioralProcess& self,
                                          SimContext& ctx, bool periodic)
    : self_(self), ctx_(ctx), periodic_(periodic) {
  inputs_.reserve(self.inPorts_.size());
  for (Port* p : self.inPorts_) {
    inputs_.push_back(self.readInput(ctx, *p));
  }
}

void BehavioralProcess::Activation::drive(std::size_t index, const Word& value,
                                          SimTime delay) {
  if (index >= self_.outPorts_.size()) {
    throw std::out_of_range("BehavioralProcess: bad output index");
  }
  self_.emit(ctx_, *self_.outPorts_[index], value, delay);
}

Word& BehavioralProcess::Activation::memory(std::size_t slot, int width) {
  auto& mem = self_.state<State>(ctx_).memory;
  auto it = mem.find(slot);
  if (it == mem.end()) {
    it = mem.emplace(slot, Word::allX(width)).first;
  }
  if (it->second.width() != width) {
    throw std::logic_error("BehavioralProcess: memory slot width conflict");
  }
  return it->second;
}

void BehavioralProcess::Activation::wakeAfter(SimTime delay) {
  self_.selfSchedule(ctx_, delay, kWakeTag);
}

void BehavioralProcess::Activation::stopPeriodic() {
  self_.state<State>(ctx_).periodicStopped = true;
}

SimTime BehavioralProcess::Activation::now() const {
  return ctx_.scheduler.now();
}

// --- BehavioralProcess -------------------------------------------------

BehavioralProcess::BehavioralProcess(
    std::string name, std::vector<std::pair<std::string, Connector*>> inputs,
    std::vector<std::pair<std::string, Connector*>> outputs,
    Behaviour behaviour, SimTime period)
    : Module(std::move(name)),
      behaviour_(std::move(behaviour)),
      period_(period) {
  if (!behaviour_) {
    throw std::invalid_argument("BehavioralProcess: null behaviour");
  }
  for (auto& [portName, conn] : inputs) {
    if (conn == nullptr) throw std::invalid_argument("null input connector");
    inPorts_.push_back(&addInput(portName, *conn));
  }
  for (auto& [portName, conn] : outputs) {
    if (conn == nullptr) throw std::invalid_argument("null output connector");
    outPorts_.push_back(&addOutput(portName, *conn));
  }
}

void BehavioralProcess::initialize(SimContext& ctx) {
  if (period_ > 0) selfSchedule(ctx, 0, kPeriodTag);
}

void BehavioralProcess::activate(SimContext& ctx, bool periodic) {
  Activation act(*this, ctx, periodic);
  behaviour_(act);
}

void BehavioralProcess::processInputEvent(const SignalToken&, SimContext& ctx) {
  State& st = state<State>(ctx);
  if (st.evalPending) return;
  st.evalPending = true;
  selfSchedule(ctx, 0, kEvalTag);
}

void BehavioralProcess::processSelfEvent(const SelfToken& token,
                                         SimContext& ctx) {
  switch (token.tag()) {
    case kEvalTag:
      state<State>(ctx).evalPending = false;
      activate(ctx, /*periodic=*/false);
      break;
    case kPeriodTag:
      activate(ctx, /*periodic=*/true);
      if (period_ > 0 && !state<State>(ctx).periodicStopped) {
        selfSchedule(ctx, period_, kPeriodTag);
      }
      break;
    case kWakeTag:
      activate(ctx, /*periodic=*/true);
      break;
    default:
      break;
  }
}

}  // namespace vcad::rtl
