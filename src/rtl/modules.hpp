// Word-level (RTL) module library: the local building blocks an IP user
// wires around purchased components — registers, stimulus sources, output
// observers, behavioral arithmetic, clocks.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/module.hpp"
#include "core/rng.hpp"

namespace vcad::rtl {

/// Autonomous random stimulus source. Self-triggers every `period` ticks and
/// emits a fresh uniformly random word, `count` times. This is the
/// "RandomPrimaryInput" of the paper's Figure 2.
class RandomPrimaryInput final : public Module {
 public:
  RandomPrimaryInput(std::string name, int width, Connector& out,
                     std::size_t count, SimTime period = 10,
                     std::uint64_t seed = 1);

  void initialize(SimContext& ctx) override;
  void processSelfEvent(const SelfToken& token, SimContext& ctx) override;

  std::size_t patternCount() const { return count_; }
  SimTime period() const { return period_; }

 private:
  struct State : ModuleState {
    Rng rng{1};
    bool seeded = false;
    std::size_t emitted = 0;
  };

  Port* out_;
  int width_;
  std::size_t count_;
  SimTime period_;
  std::uint64_t seed_;
};

/// Observation endpoint: records every word that reaches it, per scheduler.
class PrimaryOutput final : public Module {
 public:
  PrimaryOutput(std::string name, Connector& in);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

  struct Sample {
    SimTime time;
    Word value;
  };

  const std::vector<Sample>& history(const SimContext& ctx);
  Word last(const SimContext& ctx);
  std::size_t sampleCount(const SimContext& ctx);

 private:
  struct State : ModuleState {
    std::vector<Sample> samples;
  };

  Port* in_;
};

/// Edge-triggered register. With a clock connector, the D input is sampled
/// and presented on Q at every rising clock edge; without one, the register
/// degenerates to a 1-tick transport latch (the style used in Figure 2).
class Register final : public Module {
 public:
  Register(std::string name, Connector& d, Connector& q,
           Connector* clk = nullptr);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  struct State : ModuleState {
    Word stored;
    Logic lastClk = Logic::X;
  };

  Port* d_;
  Port* q_;
  Port* clk_ = nullptr;
};

/// Behavioral multiplier: O = A * B, with a configurable output latency.
/// This is the *abstract functional model* of the paper's MULT component —
/// the public part an IP provider is willing to disclose.
class WordMultiplier : public Module {
 public:
  WordMultiplier(std::string name, int width, Connector& a, Connector& b,
                 Connector& o, SimTime latency = 0);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 protected:
  Port* a_;
  Port* b_;
  Port* o_;
  int width_;
  SimTime latency_;
};

/// Behavioral adder: S = A + B (width+1 bits of output).
class WordAdder final : public Module {
 public:
  WordAdder(std::string name, int width, Connector& a, Connector& b,
            Connector& s, SimTime latency = 0);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  Port* a_;
  Port* b_;
  Port* s_;
  int width_;
  SimTime latency_;
};

/// Behavioral ALU over two operands with a 3-bit op input.
enum class AluOp : std::uint8_t { Add = 0, Sub, And, Or, Xor, Nor, Pass };

class Alu final : public Module {
 public:
  Alu(std::string name, int width, Connector& a, Connector& b, Connector& op,
      Connector& y);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  Port* a_;
  Port* b_;
  Port* op_;
  Port* y_;
  int width_;
};

/// Two-way word multiplexer: Y = sel ? B : A.
class Mux2 final : public Module {
 public:
  Mux2(std::string name, int width, Connector& a, Connector& b,
       Connector& sel, Connector& y);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  Port* a_;
  Port* b_;
  Port* sel_;
  Port* y_;
  int width_;
};

/// Word-addressable synchronous memory. Ports: addr, wdata, we (1 bit),
/// rdata. A write-enable event samples addr/wdata and stores; every event
/// also emits the (post-write) word at addr on rdata. Contents are
/// per-scheduler state, so concurrent simulations see independent memories.
class Memory final : public Module {
 public:
  Memory(std::string name, int addrBits, int dataBits, Connector& addr,
         Connector& wdata, Connector& we, Connector& rdata);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;
  void processSelfEvent(const SelfToken& token, SimContext& ctx) override;

  /// Direct (testbench) access to the per-scheduler contents.
  Word peek(const SimContext& ctx, std::uint64_t address);
  void poke(const SimContext& ctx, std::uint64_t address, const Word& value);

 private:
  struct State : ModuleState {
    bool evalPending = false;
    std::map<std::uint64_t, Word> cells;  // sparse; absent = all-X
  };

  Port* addr_;
  Port* wdata_;
  Port* we_;
  Port* rdata_;
  int addrBits_;
  int dataBits_;
};

/// Free-running clock: toggles its output every half `period`, `cycles`
/// times (0 = forever — guard simulations with runUntil). Implemented with
/// the self-trigger capability of tokens and schedulers.
class ClockGenerator final : public Module {
 public:
  ClockGenerator(std::string name, Connector& clk, SimTime halfPeriod,
                 std::size_t cycles);

  void initialize(SimContext& ctx) override;
  void processSelfEvent(const SelfToken& token, SimContext& ctx) override;

 private:
  struct State : ModuleState {
    Logic level = Logic::L0;
    std::size_t edges = 0;
  };

  Port* clk_;
  SimTime halfPeriod_;
  std::size_t cycles_;
};

/// Word-to-bits interface module: fans a word out to per-bit connectors.
/// Together with Merger, it bridges RTL and gate-level design regions
/// (mixed-level system descriptions).
class Splitter final : public Module {
 public:
  Splitter(std::string name, Connector& word, std::vector<Connector*> bits);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  Port* in_;
  std::vector<Port*> bitPorts_;
};

/// Bits-to-word interface module: assembles per-bit connectors into a word.
class Merger final : public Module {
 public:
  Merger(std::string name, std::vector<Connector*> bits, Connector& word);

  void processInputEvent(const SignalToken& token, SimContext& ctx) override;

 private:
  std::vector<Port*> bitPorts_;
  Port* out_;
};

}  // namespace vcad::rtl
