// Behavioral abstraction level — the paper reports "an implementation at
// the behavioral level" beyond gate and RTL, and lists higher abstraction
// levels as future work.
//
// A BehavioralProcess wraps an arbitrary user behaviour: it wakes on any
// input event (coalesced per simulation instant) and/or periodically, reads
// its input ports, may keep per-scheduler state in a small memory bank, and
// drives outputs with optional delays. This is the "custom module" escape
// hatch the paper sketches for abstract design representations (e.g. video
// streams into a DSP): the connector payload is still a Word, but the
// behaviour is unconstrained C++.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/module.hpp"

namespace vcad::rtl {

class BehavioralProcess final : public Module {
 public:
  /// Facade handed to the behaviour on every activation.
  class Activation {
   public:
    /// Current input values, in port-declaration order.
    const std::vector<Word>& inputs() const { return inputs_; }

    /// Drives output `index` (port-declaration order) after `delay` ticks.
    void drive(std::size_t index, const Word& value, SimTime delay = 0);

    /// Per-scheduler persistent memory slot (created on first access with
    /// the given width, all-X). Lets behaviours be stateful without
    /// breaking multi-scheduler isolation.
    Word& memory(std::size_t slot, int width);

    /// Requests another activation `delay` ticks from now even without new
    /// input events.
    void wakeAfter(SimTime delay);

    /// Stops the periodic self-trigger (for finite autonomous processes);
    /// input events still activate the behaviour.
    void stopPeriodic();

    SimTime now() const;
    bool periodicWake() const { return periodic_; }

   private:
    friend class BehavioralProcess;
    Activation(BehavioralProcess& self, SimContext& ctx, bool periodic);

    BehavioralProcess& self_;
    SimContext& ctx_;
    std::vector<Word> inputs_;
    bool periodic_;
  };

  using Behaviour = std::function<void(Activation&)>;

  /// `period` > 0 additionally self-triggers the behaviour every `period`
  /// ticks starting at t=0 (autonomous processes, e.g. traffic generators).
  BehavioralProcess(std::string name,
                    std::vector<std::pair<std::string, Connector*>> inputs,
                    std::vector<std::pair<std::string, Connector*>> outputs,
                    Behaviour behaviour, SimTime period = 0);

  void initialize(SimContext& ctx) override;
  void processInputEvent(const SignalToken& token, SimContext& ctx) override;
  void processSelfEvent(const SelfToken& token, SimContext& ctx) override;

 private:
  struct State : ModuleState {
    bool evalPending = false;
    bool periodicStopped = false;
    std::map<std::size_t, Word> memory;
  };

  void activate(SimContext& ctx, bool periodic);

  Behaviour behaviour_;
  SimTime period_;
  std::vector<Port*> inPorts_;
  std::vector<Port*> outPorts_;

  static constexpr int kEvalTag = 0;
  static constexpr int kPeriodTag = 1;
  static constexpr int kWakeTag = 2;
};

}  // namespace vcad::rtl
