// obs::Registry: the process-wide metrics registry behind every counter the
// simulator exposes (RMI channel ledgers, campaign accounting, scheduler and
// slot-arena activity).
//
// Hot-path increments are lock-free: each thread owns a shard of plain
// atomic arrays reached through a thread_local table, so add() is one
// relaxed atomic add with no shared cache line between threads. A snapshot
// aggregates the live shards plus the totals of shards retired by exited
// threads (worker pools churn threads per campaign; retirement keeps the
// shard list bounded by the number of *live* threads, not the number that
// ever existed).
//
// Metric names are interned once into dense ids; instrumentation sites cache
// the ids in function-local statics so steady-state recording never touches
// the name table. Capacities are fixed at compile time — a shard never
// reallocates, which is what makes concurrent snapshotting race-free — and
// exhausting a metric space throws loudly instead of silently dropping.
//
// Building with -DVCAD_OBS_TRACE=OFF defines VCAD_OBS_DISABLED and turns
// every recording call into an early return (kObsCompiledIn == false), so an
// observability-off build is bit-identical in behaviour.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vcad::obs {

#ifdef VCAD_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

class Registry {
 public:
  using MetricId = std::uint32_t;

  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxDoubles = 64;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 32;
  /// Log-scale bucket count: bucket 0 holds values below kHistogramBase,
  /// each next bucket spans a 4x range, the top bucket is a catch-all.
  static constexpr std::size_t kHistogramBuckets = 24;
  static constexpr double kHistogramBase = 1e-9;

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Intern a metric name (idempotent; same name -> same id). Throws
  /// std::length_error when the kind's fixed capacity is exhausted.
  MetricId counter(const std::string& name);
  MetricId doubleCounter(const std::string& name);
  MetricId gauge(const std::string& name);
  MetricId histogram(const std::string& name);

  /// Monotonic u64 counter increment (lock-free per-thread shard).
  void add(MetricId id, std::uint64_t delta = 1);
  /// Accumulating double (fee/time ledgers). Within one thread the
  /// additions land in call order, so a single-threaded run's total is
  /// bit-identical to the equivalent `double += x` sequence.
  void addDouble(MetricId id, double delta);
  /// Point-in-time gauge (process-wide, last-writer-wins).
  void setGauge(MetricId id, std::int64_t value);
  /// High-water-mark gauge: keeps the maximum ever set.
  void maxGauge(MetricId id, std::int64_t value);
  /// Histogram observation (log-4 buckets + count + sum).
  void observe(MetricId id, double value);

  struct HistogramData {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
  };

  /// Aggregated view over every shard (live + retired), keyed by name.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> doubles;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramData> histograms;

    std::uint64_t counterOr(const std::string& name,
                            std::uint64_t fallback = 0) const;
    double doubleOr(const std::string& name, double fallback = 0.0) const;
    std::int64_t gaugeOr(const std::string& name,
                         std::int64_t fallback = 0) const;

    /// {"counters":{...},"doubles":{...},"gauges":{...},"histograms":{...}}
    std::string toJson() const;
  };

  Snapshot snapshot() const;

  /// Zeroes every value (live shards, retired totals, gauges); interned
  /// names and ids survive. Callers are expected to be quiescent.
  void reset();

  static Registry& global();

  /// Which log-4 bucket a histogram observation lands in (exposed so tests
  /// can assert placement).
  static std::size_t bucketFor(double value);

  // Internal shard type; public only so the thread-exit holder can name it.
  struct Shard;

 private:
  Shard* localShard();
  void retire(const std::shared_ptr<Shard>& shard);
  friend struct LocalShardTable;

  std::uint64_t epochId_;  // guards against stale thread_local entries when
                           // a registry address is reused
  mutable std::mutex mutex_;
  std::map<std::string, MetricId> counterNames_;
  std::map<std::string, MetricId> doubleNames_;
  std::map<std::string, MetricId> gaugeNames_;
  std::map<std::string, MetricId> histogramNames_;
  std::vector<std::string> counterIndex_;
  std::vector<std::string> doubleIndex_;
  std::vector<std::string> gaugeIndex_;
  std::vector<std::string> histogramIndex_;
  std::vector<std::shared_ptr<Shard>> shards_;
  // Totals merged out of shards whose thread exited.
  std::array<std::uint64_t, kMaxCounters> retiredCounters_{};
  std::array<double, kMaxDoubles> retiredDoubles_{};
  std::array<HistogramData, kMaxHistograms> retiredHistograms_{};
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
};

}  // namespace vcad::obs
