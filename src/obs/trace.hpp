// obs::Tracer: scoped spans and instant events, serialized to Chrome
// trace-event JSON (loadable in chrome://tracing and Perfetto).
//
// Recording goes into per-thread ring buffers of fixed capacity, so a
// traced run's memory is bounded no matter how long it lasts — when a ring
// wraps, the oldest events are overwritten and counted as dropped. Rings of
// exited threads are folded into a capped retired store, so pool-heavy
// campaigns do not accumulate one ring per historical thread.
//
// Tracing is off by default at runtime (enabled() is one relaxed atomic
// load) and can be compiled out entirely with -DVCAD_OBS_TRACE=OFF, making
// every probe a constant-false branch.
//
// Span ids double as flow ids for cross-domain stitching: the client's
// RmiChannel span emits a flow-start ("s") event and ships its id in the
// request frame's span-context field; the provider's dispatch span adopts
// that id and emits the matching flow-finish ("f"), so one campaign renders
// as a single stitched trace spanning both administrative domains.
//
// Event name/category strings must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // kObsCompiledIn

namespace vcad::obs {

struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 6;

  enum class Phase : std::uint8_t {
    Complete,   // "X": a span with ts + dur
    Instant,    // "i": a point event
    FlowBegin,  // "s": flow start (client side of a stitched call)
    FlowEnd,    // "f": flow finish (provider side, same id)
  };

  const char* name = "";
  const char* category = "";
  Phase phase = Phase::Instant;
  std::uint32_t tid = 0;   // tracer-assigned dense thread index
  std::uint64_t seq = 0;   // per-thread record index (monotonicity proofs)
  std::uint64_t tsNs = 0;  // nanoseconds since the tracer's epoch
  std::uint64_t durNs = 0;  // Complete events only
  std::uint64_t id = 0;     // span/flow id; 0 = none
  std::uint8_t argCount = 0;
  std::array<TraceArg, kMaxArgs> args{};
};

class Tracer {
 public:
  /// Events retained per live thread before the ring wraps.
  static constexpr std::size_t kRingCapacity = 16384;
  /// Events retained from exited threads, FIFO-capped.
  static constexpr std::size_t kRetiredCapacity = 65536;

  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    if constexpr (!kObsCompiledIn) return false;
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Verbose mode additionally emits per-token / per-injection instant
  /// events — orders of magnitude more volume; keep off for overhead-bound
  /// runs.
  void setVerbose(bool on) { verbose_.store(on, std::memory_order_relaxed); }
  bool verbose() const {
    return enabled() && verbose_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since this tracer was constructed (steady clock).
  std::uint64_t nowNs() const;

  /// Mints a fresh nonzero span/flow id.
  std::uint64_t mintId() {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records an event (no-op while disabled). Fills tid and seq.
  void record(TraceEvent event);

  /// Convenience: records an Instant event.
  void instant(const char* name, const char* category,
               std::initializer_list<TraceArg> args = {});

  /// All retained events, sorted by timestamp (ties broken by tid, then
  /// per-thread sequence).
  std::vector<TraceEvent> collect() const;

  /// The most recent `n` retained events (by timestamp) — what a failing
  /// chaos run dumps.
  std::vector<TraceEvent> lastEvents(std::size_t n) const;

  /// Events lost to ring wraps and retired-store caps.
  std::uint64_t droppedEvents() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}.
  std::string toChromeJson() const;

  /// Drops every retained event (rings stay registered; counters rezeroed).
  void clear();

  static Tracer& global();

  struct Ring;

 private:
  Ring* localRing();
  void retire(const std::shared_ptr<Ring>& ring);
  void appendRingEvents(const Ring& ring, std::vector<TraceEvent>& out) const;
  friend struct LocalRingTable;

  std::uint64_t epochId_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> verbose_{false};
  std::atomic<std::uint64_t> nextId_{1};
  std::atomic<std::uint32_t> nextTid_{1};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::vector<TraceEvent> retired_;
  std::uint64_t retiredDropped_ = 0;
};

/// RAII span: records a Complete event covering the scope's lifetime.
/// Constructed against a disabled tracer it deactivates entirely (id() is 0
/// and nothing is recorded). With a nonzero `adoptId` the span joins an
/// existing flow: it reuses the id and emits the flow-finish event that
/// stitches it under the originating span.
class SpanScope {
 public:
  SpanScope(Tracer& tracer, const char* name, const char* category,
            std::uint64_t adoptId = 0);
  SpanScope(const char* name, const char* category, std::uint64_t adoptId = 0)
      : SpanScope(Tracer::global(), name, category, adoptId) {}
  ~SpanScope() { end(); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return id_; }

  /// Attaches a key/value annotation (silently capped at kMaxArgs).
  void arg(const char* key, double value);

  /// Emits the flow-start event carrying this span's id (the client side of
  /// cross-domain stitching; the adopting span emits the finish).
  void flowBegin();

  /// Records the Complete event now instead of at destruction.
  void end();

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  std::uint64_t startNs_ = 0;
  std::uint64_t id_ = 0;
  std::uint8_t argCount_ = 0;
  std::array<TraceArg, TraceEvent::kMaxArgs> args_{};
};

/// Human-readable rendering (failure reports): one line per event.
std::string renderEvents(const std::vector<TraceEvent>& events);

}  // namespace vcad::obs
