#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

namespace vcad::obs {

// --- shard -----------------------------------------------------------------

struct Registry::Shard {
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sumBits{0};  // IEEE-754 bits, CAS-accumulated
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };

  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxDoubles> doubleBits{};
  std::array<Hist, kMaxHistograms> hists{};
};

namespace {

double bitsToDouble(std::uint64_t bits) {
  double d;
  static_assert(sizeof(d) == sizeof(bits));
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t doubleToBits(double d) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// CAS accumulation of a double stored as bits. C++20's
/// atomic<double>::fetch_add is not universally available, and storing the
/// bit pattern sidesteps any question of atomic<double> lock-freedom.
void atomicAddDouble(std::atomic<std::uint64_t>& cell, double delta) {
  std::uint64_t expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(
      expected, doubleToBits(bitsToDouble(expected) + delta),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

/// Registries that are still alive, by (address, epoch). Thread-exit shard
/// retirement consults this so a shard whose registry died first (or whose
/// address was recycled by a newer registry) is simply abandoned — the
/// shared_ptr keeps the memory valid either way.
std::mutex& liveRegistryMutex() {
  static std::mutex m;
  return m;
}
std::set<std::pair<const Registry*, std::uint64_t>>& liveRegistries() {
  static std::set<std::pair<const Registry*, std::uint64_t>> s;
  return s;
}
std::atomic<std::uint64_t> nextRegistryEpoch{1};

}  // namespace

/// Per-thread table mapping registries to this thread's shard. The
/// destructor runs at thread exit and folds each shard's totals back into
/// its (still-live) registry.
struct LocalShardTable {
  struct Entry {
    Registry* registry;
    std::uint64_t epoch;
    std::shared_ptr<Registry::Shard> shard;
  };
  std::vector<Entry> entries;

  ~LocalShardTable() {
    for (Entry& e : entries) {
      bool alive;
      {
        std::lock_guard<std::mutex> lock(liveRegistryMutex());
        alive = liveRegistries().count({e.registry, e.epoch}) != 0;
      }
      if (alive) e.registry->retire(e.shard);
    }
  }
};

namespace {
thread_local LocalShardTable localShards;
}  // namespace

// --- registry --------------------------------------------------------------

Registry::Registry()
    : epochId_(nextRegistryEpoch.fetch_add(1, std::memory_order_relaxed)) {
  std::lock_guard<std::mutex> lock(liveRegistryMutex());
  liveRegistries().insert({this, epochId_});
}

Registry::~Registry() {
  std::lock_guard<std::mutex> lock(liveRegistryMutex());
  liveRegistries().erase({this, epochId_});
}

Registry::Shard* Registry::localShard() {
  for (auto it = localShards.entries.begin(); it != localShards.entries.end();
       ++it) {
    if (it->registry == this) {
      if (it->epoch == epochId_) return it->shard.get();
      // Same address, different registry: the entry is stale.
      localShards.entries.erase(it);
      break;
    }
  }
  auto shard = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(shard);
  }
  localShards.entries.push_back({this, epochId_, shard});
  return localShards.entries.back().shard.get();
}

void Registry::retire(const std::shared_ptr<Shard>& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    retiredCounters_[i] += shard->counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxDoubles; ++i) {
    retiredDoubles_[i] +=
        bitsToDouble(shard->doubleBits[i].load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    HistogramData& h = retiredHistograms_[i];
    h.count += shard->hists[i].count.load(std::memory_order_relaxed);
    h.sum +=
        bitsToDouble(shard->hists[i].sumBits.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] += shard->hists[i].buckets[b].load(std::memory_order_relaxed);
    }
  }
  for (auto it = shards_.begin(); it != shards_.end(); ++it) {
    if (it->get() == shard.get()) {
      shards_.erase(it);
      break;
    }
  }
}

namespace {
Registry::MetricId intern(std::map<std::string, Registry::MetricId>& names,
                          std::vector<std::string>& index,
                          const std::string& name, std::size_t capacity,
                          const char* kind, std::mutex& mutex) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = names.find(name);
  if (it != names.end()) return it->second;
  if (index.size() >= capacity) {
    throw std::length_error(std::string("obs::Registry: out of ") + kind +
                            " metric slots interning '" + name + "'");
  }
  const Registry::MetricId id =
      static_cast<Registry::MetricId>(index.size());
  index.push_back(name);
  names.emplace(name, id);
  return id;
}
}  // namespace

Registry::MetricId Registry::counter(const std::string& name) {
  return intern(counterNames_, counterIndex_, name, kMaxCounters, "counter",
                mutex_);
}

Registry::MetricId Registry::doubleCounter(const std::string& name) {
  return intern(doubleNames_, doubleIndex_, name, kMaxDoubles, "double",
                mutex_);
}

Registry::MetricId Registry::gauge(const std::string& name) {
  return intern(gaugeNames_, gaugeIndex_, name, kMaxGauges, "gauge", mutex_);
}

Registry::MetricId Registry::histogram(const std::string& name) {
  return intern(histogramNames_, histogramIndex_, name, kMaxHistograms,
                "histogram", mutex_);
}

void Registry::add(MetricId id, std::uint64_t delta) {
  if constexpr (!kObsCompiledIn) return;
  localShard()->counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::addDouble(MetricId id, double delta) {
  if constexpr (!kObsCompiledIn) return;
  atomicAddDouble(localShard()->doubleBits[id], delta);
}

void Registry::setGauge(MetricId id, std::int64_t value) {
  if constexpr (!kObsCompiledIn) return;
  gauges_[id].store(value, std::memory_order_relaxed);
}

void Registry::maxGauge(MetricId id, std::int64_t value) {
  if constexpr (!kObsCompiledIn) return;
  std::int64_t prev = gauges_[id].load(std::memory_order_relaxed);
  while (prev < value && !gauges_[id].compare_exchange_weak(
                             prev, value, std::memory_order_relaxed,
                             std::memory_order_relaxed)) {
  }
}

std::size_t Registry::bucketFor(double value) {
  if (!(value > kHistogramBase)) return 0;
  const double steps = std::log(value / kHistogramBase) / std::log(4.0);
  const auto bucket = static_cast<std::size_t>(steps) + 1;
  return bucket >= kHistogramBuckets ? kHistogramBuckets - 1 : bucket;
}

void Registry::observe(MetricId id, double value) {
  if constexpr (!kObsCompiledIn) return;
  Shard::Hist& h = localShard()->hists[id];
  h.count.fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(h.sumBits, value);
  h.buckets[bucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  std::array<std::uint64_t, kMaxCounters> counters = retiredCounters_;
  std::array<double, kMaxDoubles> doubles = retiredDoubles_;
  std::array<HistogramData, kMaxHistograms> hists = retiredHistograms_;
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < counterIndex_.size(); ++i) {
      counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < doubleIndex_.size(); ++i) {
      doubles[i] +=
          bitsToDouble(shard->doubleBits[i].load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < histogramIndex_.size(); ++i) {
      hists[i].count += shard->hists[i].count.load(std::memory_order_relaxed);
      hists[i].sum += bitsToDouble(
          shard->hists[i].sumBits.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        hists[i].buckets[b] +=
            shard->hists[i].buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  for (std::size_t i = 0; i < counterIndex_.size(); ++i) {
    snap.counters.emplace(counterIndex_[i], counters[i]);
  }
  for (std::size_t i = 0; i < doubleIndex_.size(); ++i) {
    snap.doubles.emplace(doubleIndex_[i], doubles[i]);
  }
  for (std::size_t i = 0; i < gaugeIndex_.size(); ++i) {
    snap.gauges.emplace(gaugeIndex_[i],
                        gauges_[i].load(std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < histogramIndex_.size(); ++i) {
    snap.histograms.emplace(histogramIndex_[i], hists[i]);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  retiredCounters_.fill(0);
  retiredDoubles_.fill(0.0);
  for (auto& h : retiredHistograms_) h = HistogramData{};
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& d : shard->doubleBits) d.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sumBits.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

// --- snapshot helpers ------------------------------------------------------

std::uint64_t Registry::Snapshot::counterOr(const std::string& name,
                                            std::uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double Registry::Snapshot::doubleOr(const std::string& name,
                                    double fallback) const {
  auto it = doubles.find(name);
  return it == doubles.end() ? fallback : it->second;
}

std::int64_t Registry::Snapshot::gaugeOr(const std::string& name,
                                         std::int64_t fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendJsonDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string Registry::Snapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"doubles\":{";
  first = true;
  for (const auto& [name, value] : doubles) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out.push_back(':');
    appendJsonDouble(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    appendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(h.count) + ",\"sum\":";
    appendJsonDouble(out, h.sum);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (b != 0) out.push_back(',');
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace vcad::obs
