#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace vcad::obs {

// --- per-thread rings ------------------------------------------------------

struct Tracer::Ring {
  explicit Ring(std::uint32_t threadIndex) : tid(threadIndex) {}

  std::uint32_t tid;
  mutable std::mutex mutex;  // uncontended on the record path (one writer);
                             // taken by collectors for a consistent copy
  std::vector<TraceEvent> buf;
  std::size_t head = 0;      // next overwrite position once full
  std::uint64_t total = 0;   // events ever recorded through this ring
};

namespace {

std::mutex& liveTracerMutex() {
  static std::mutex m;
  return m;
}
std::set<std::pair<const Tracer*, std::uint64_t>>& liveTracers() {
  static std::set<std::pair<const Tracer*, std::uint64_t>> s;
  return s;
}
std::atomic<std::uint64_t> nextTracerEpoch{1};

}  // namespace

struct LocalRingTable {
  struct Entry {
    Tracer* tracer;
    std::uint64_t epoch;
    std::shared_ptr<Tracer::Ring> ring;
  };
  std::vector<Entry> entries;

  ~LocalRingTable() {
    for (Entry& e : entries) {
      bool alive;
      {
        std::lock_guard<std::mutex> lock(liveTracerMutex());
        alive = liveTracers().count({e.tracer, e.epoch}) != 0;
      }
      if (alive) e.tracer->retire(e.ring);
    }
  }
};

namespace {
thread_local LocalRingTable localRings;
}  // namespace

// --- tracer ---------------------------------------------------------------

Tracer::Tracer()
    : epochId_(nextTracerEpoch.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  std::lock_guard<std::mutex> lock(liveTracerMutex());
  liveTracers().insert({this, epochId_});
}

Tracer::~Tracer() {
  std::lock_guard<std::mutex> lock(liveTracerMutex());
  liveTracers().erase({this, epochId_});
}

std::uint64_t Tracer::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Ring* Tracer::localRing() {
  for (auto it = localRings.entries.begin(); it != localRings.entries.end();
       ++it) {
    if (it->tracer == this) {
      if (it->epoch == epochId_) return it->ring.get();
      localRings.entries.erase(it);
      break;
    }
  }
  auto ring =
      std::make_shared<Ring>(nextTid_.fetch_add(1, std::memory_order_relaxed));
  ring->buf.reserve(kRingCapacity);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(ring);
  }
  localRings.entries.push_back({this, epochId_, ring});
  return localRings.entries.back().ring.get();
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  Ring* ring = localRing();
  std::lock_guard<std::mutex> lock(ring->mutex);
  event.tid = ring->tid;
  event.seq = ring->total++;
  if (ring->buf.size() < kRingCapacity) {
    ring->buf.push_back(event);
  } else {
    ring->buf[ring->head] = event;
    ring->head = (ring->head + 1) % kRingCapacity;
  }
}

void Tracer::instant(const char* name, const char* category,
                     std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = TraceEvent::Phase::Instant;
  ev.tsNs = nowNs();
  for (const TraceArg& a : args) {
    if (ev.argCount >= TraceEvent::kMaxArgs) break;
    ev.args[ev.argCount++] = a;
  }
  record(ev);
}

void Tracer::appendRingEvents(const Ring& ring,
                              std::vector<TraceEvent>& out) const {
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.buf.size() < kRingCapacity) {
    out.insert(out.end(), ring.buf.begin(), ring.buf.end());
  } else {
    // Oldest-first: [head, end) then [0, head).
    out.insert(out.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.head),
               ring.buf.end());
    out.insert(out.end(), ring.buf.begin(),
               ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.head));
  }
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = retired_;
    for (const auto& ring : rings_) appendRingEvents(*ring, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tsNs != b.tsNs) return a.tsNs < b.tsNs;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.seq < b.seq;
                   });
  return out;
}

std::vector<TraceEvent> Tracer::lastEvents(std::size_t n) const {
  std::vector<TraceEvent> all = collect();
  if (all.size() <= n) return all;
  return std::vector<TraceEvent>(all.end() - static_cast<std::ptrdiff_t>(n),
                                 all.end());
}

std::uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = retiredDropped_;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ringLock(ring->mutex);
    if (ring->total > ring->buf.size()) dropped += ring->total - ring->buf.size();
  }
  return dropped;
}

void Tracer::retire(const std::shared_ptr<Ring>& ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::vector<TraceEvent> events;
    appendRingEvents(*ring, events);
    retired_.insert(retired_.end(), events.begin(), events.end());
    std::lock_guard<std::mutex> ringLock(ring->mutex);
    retiredDropped_ += ring->total - events.size();
  }
  if (retired_.size() > kRetiredCapacity) {
    const std::size_t excess = retired_.size() - kRetiredCapacity;
    retired_.erase(retired_.begin(),
                   retired_.begin() + static_cast<std::ptrdiff_t>(excess));
    retiredDropped_ += excess;
  }
  for (auto it = rings_.begin(); it != rings_.end(); ++it) {
    if (it->get() == ring.get()) {
      rings_.erase(it);
      break;
    }
  }
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.clear();
  retiredDropped_ = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ringLock(ring->mutex);
    ring->buf.clear();
    ring->head = 0;
    ring->total = 0;
  }
}

namespace {

void appendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

void appendArgs(std::string& out, const TraceEvent& ev) {
  out += ",\"args\":{";
  for (std::uint8_t i = 0; i < ev.argCount; ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('"');
    appendEscaped(out, ev.args[i].key);
    out += "\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", ev.args[i].value);
    out += buf;
  }
  out.push_back('}');
}

void appendMicros(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::toChromeJson() const {
  const std::vector<TraceEvent> events = collect();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    appendEscaped(out, ev.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, ev.category);
    out += "\",\"pid\":1,\"tid\":" + std::to_string(ev.tid) + ",\"ts\":";
    appendMicros(out, ev.tsNs);
    switch (ev.phase) {
      case TraceEvent::Phase::Complete:
        out += ",\"ph\":\"X\",\"dur\":";
        appendMicros(out, ev.durNs);
        break;
      case TraceEvent::Phase::Instant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case TraceEvent::Phase::FlowBegin:
        out += ",\"ph\":\"s\"";
        break;
      case TraceEvent::Phase::FlowEnd:
        out += ",\"ph\":\"f\",\"bp\":\"e\"";
        break;
    }
    if (ev.id != 0 && ev.phase != TraceEvent::Phase::Instant) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(ev.id));
      out += ",\"id\":\"";
      out += buf;
      out += "\"";
    }
    appendArgs(out, ev);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

// --- spans ----------------------------------------------------------------

SpanScope::SpanScope(Tracer& tracer, const char* name, const char* category,
                     std::uint64_t adoptId) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  category_ = category;
  startNs_ = tracer.nowNs();
  if (adoptId != 0) {
    id_ = adoptId;
    // The finish half of the flow pair: stitches this span under the
    // originating (client-side) span that shipped the id.
    TraceEvent flow;
    flow.name = name;
    flow.category = category;
    flow.phase = TraceEvent::Phase::FlowEnd;
    flow.tsNs = startNs_;
    flow.id = id_;
    tracer.record(flow);
  } else {
    id_ = tracer.mintId();
  }
}

void SpanScope::arg(const char* key, double value) {
  if (tracer_ == nullptr || argCount_ >= TraceEvent::kMaxArgs) return;
  args_[argCount_++] = TraceArg{key, value};
}

void SpanScope::flowBegin() {
  if (tracer_ == nullptr) return;
  TraceEvent flow;
  flow.name = name_;
  flow.category = category_;
  flow.phase = TraceEvent::Phase::FlowBegin;
  flow.tsNs = tracer_->nowNs();
  flow.id = id_;
  tracer_->record(flow);
}

void SpanScope::end() {
  if (tracer_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.phase = TraceEvent::Phase::Complete;
  ev.tsNs = startNs_;
  ev.durNs = tracer_->nowNs() - startNs_;
  ev.id = id_;
  ev.argCount = argCount_;
  ev.args = args_;
  tracer_->record(ev);
  tracer_ = nullptr;
}

std::string renderEvents(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& ev : events) {
    char head[96];
    const char* ph = "?";
    switch (ev.phase) {
      case TraceEvent::Phase::Complete:
        ph = "X";
        break;
      case TraceEvent::Phase::Instant:
        ph = "i";
        break;
      case TraceEvent::Phase::FlowBegin:
        ph = "s";
        break;
      case TraceEvent::Phase::FlowEnd:
        ph = "f";
        break;
    }
    std::snprintf(head, sizeof(head), "  ts=%10.3fus tid=%-3u ph=%s ",
                  static_cast<double>(ev.tsNs) / 1000.0, ev.tid, ph);
    out += head;
    out += ev.name;
    if (ev.phase == TraceEvent::Phase::Complete) {
      char dur[40];
      std::snprintf(dur, sizeof(dur), " dur=%.3fus",
                    static_cast<double>(ev.durNs) / 1000.0);
      out += dur;
    }
    if (ev.id != 0) {
      char id[32];
      std::snprintf(id, sizeof(id), " id=0x%llx",
                    static_cast<unsigned long long>(ev.id));
      out += id;
    }
    for (std::uint8_t i = 0; i < ev.argCount; ++i) {
      char arg[64];
      std::snprintf(arg, sizeof(arg), " %s=%g", ev.args[i].key,
                    ev.args[i].value);
      out += arg;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace vcad::obs
