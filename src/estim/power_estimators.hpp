// Concrete estimators for the cost metrics of IP components — the three
// power estimators of the paper's Table 1 plus area/timing estimators.
//
//   constant          : a single precharacterized number (data-sheet style).
//                       Free, instant, ~25% error.
//   linear-regression : power predicted from input switching activity with
//                       coefficients fitted offline by the provider.
//                       Free, very fast, ~20% error.
//   gate-level-toggle : full toggle-count power evaluation on the private
//                       netlist (the PPP-simulator role). Accurate but slow,
//                       requires the provider's server, and costs a fee per
//                       pattern.
//
// The first two can be released with the component's public part and run on
// the user's machine; the third only ever runs where the netlist lives.
#pragma once

#include <memory>
#include <vector>

#include "core/estimation.hpp"
#include "gate/metrics.hpp"
#include "gate/netlist.hpp"

namespace vcad::estim {

/// Fixed-value estimator for any scalar parameter.
class ConstantEstimator final : public Estimator {
 public:
  ConstantEstimator(std::string name, double value, std::string unit,
                    double expectedErrorPct);

  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

 private:
  double value_;
  std::string unit_;
};

/// Coefficients of the activity-based linear power model:
/// power[mW] = intercept + slope * (average input toggles per transition).
struct LinearPowerModel {
  double interceptMw = 0.0;
  double slopeMwPerToggle = 0.0;
};

/// Offline provider-side characterization: simulates `trainingPatterns` on
/// the private netlist and least-squares fits power against input activity.
LinearPowerModel fitLinearPowerModel(const gate::Netlist& netlist,
                                     const std::vector<Word>& trainingPatterns,
                                     const gate::TechParams& tech = {});

/// Average gate-level power of random stimulus; the provider publishes this
/// as the "constant" estimate.
double characterizeAveragePowerMw(const gate::Netlist& netlist,
                                  const std::vector<Word>& trainingPatterns,
                                  const gate::TechParams& tech = {});

/// Applies a LinearPowerModel to a pattern history (averaging input-toggle
/// counts over consecutive pairs). Returns interceptMw when fewer than two
/// patterns are available.
double predictLinearPowerMw(const LinearPowerModel& model,
                            const std::vector<Word>& patterns);

/// Local estimator wrapping a fitted linear model. Reads the pattern
/// history from the estimation context.
class LinearRegressionPowerEstimator final : public Estimator {
 public:
  explicit LinearRegressionPowerEstimator(LinearPowerModel model,
                                          double expectedErrorPct = 20.0);

  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

  const LinearPowerModel& model() const { return model_; }

 private:
  LinearPowerModel model_;
};

/// Gate-level toggle-count power estimator: needs the private netlist.
/// When constructed with remote=true its metadata advertises the fee and the
/// unpredictable Internet latency (the Table 1 footnote).
class GateLevelPowerEstimator final : public Estimator {
 public:
  GateLevelPowerEstimator(std::shared_ptr<const gate::Netlist> netlist,
                          gate::TechParams tech = {}, bool remote = true,
                          double costPerPatternCents = 0.1);

  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

 private:
  std::shared_ptr<const gate::Netlist> netlist_;
  gate::TechParams tech_;
};

/// Peak (maximum per-transition) power from the private netlist — the
/// quantity sized against supply-grid constraints.
class GateLevelPeakPowerEstimator final : public Estimator {
 public:
  GateLevelPeakPowerEstimator(std::shared_ptr<const gate::Netlist> netlist,
                              gate::TechParams tech = {}, bool remote = true);
  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

 private:
  std::shared_ptr<const gate::Netlist> netlist_;
  gate::TechParams tech_;
};

/// I/O activity: average toggles per transition observed at the module's
/// own ports. Needs no implementation knowledge at all, so it always runs
/// locally.
class IoActivityEstimator final : public Estimator {
 public:
  IoActivityEstimator();
  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;
};

/// Exact area from the private netlist.
class GateLevelAreaEstimator final : public Estimator {
 public:
  explicit GateLevelAreaEstimator(std::shared_ptr<const gate::Netlist> netlist,
                                  gate::TechParams tech = {},
                                  bool remote = true);
  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

 private:
  std::shared_ptr<const gate::Netlist> netlist_;
  gate::TechParams tech_;
};

/// Critical-path delay from the private netlist.
class GateLevelTimingEstimator final : public Estimator {
 public:
  explicit GateLevelTimingEstimator(
      std::shared_ptr<const gate::Netlist> netlist, gate::TechParams tech = {},
      bool remote = true);
  std::unique_ptr<ParamValue> estimate(const EstimationContext& ctx) override;

 private:
  std::shared_ptr<const gate::Netlist> netlist_;
  gate::TechParams tech_;
};

/// Fixed-capacity input pattern buffer: amortizes RMI overhead by batching
/// patterns before shipping them to a remote estimator. Keeps a one-pattern
/// overlap between consecutive batches so transition counts stay exact
/// across flushes.
class PatternBuffer {
 public:
  explicit PatternBuffer(std::size_t capacity);

  /// Appends a pattern; returns true when the buffer reached capacity (the
  /// caller should flush).
  bool push(const Word& pattern);

  /// True when a flush would carry no new pattern (only the overlap seed).
  bool empty() const { return patterns_.size() <= (hasOverlap_ ? 1u : 0u); }
  std::size_t size() const { return patterns_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Returns the buffered batch and resets the buffer, retaining the last
  /// pattern as the overlap seed for the next batch.
  std::vector<Word> flush();

 private:
  std::size_t capacity_;
  std::vector<Word> patterns_;
  bool hasOverlap_ = false;
};

}  // namespace vcad::estim
