#include "estim/power_estimators.hpp"

#include <stdexcept>

namespace vcad::estim {

// --- ConstantEstimator -------------------------------------------------

ConstantEstimator::ConstantEstimator(std::string name, double value,
                                     std::string unit, double expectedErrorPct)
    : Estimator(EstimatorInfo{std::move(name), expectedErrorPct, 0.0, 0.0,
                              false, false}),
      value_(value),
      unit_(std::move(unit)) {}

std::unique_ptr<ParamValue> ConstantEstimator::estimate(
    const EstimationContext&) {
  return std::make_unique<ScalarValue>(value_, unit_);
}

// --- linear model fitting ----------------------------------------------

namespace {
double inputActivity(const std::vector<Word>& patterns) {
  if (patterns.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < patterns.size(); ++i) {
    total += Word::toggleCount(patterns[i - 1], patterns[i]);
  }
  return total / static_cast<double>(patterns.size() - 1);
}
}  // namespace

LinearPowerModel fitLinearPowerModel(const gate::Netlist& netlist,
                                     const std::vector<Word>& trainingPatterns,
                                     const gate::TechParams& tech) {
  if (trainingPatterns.size() < 3) {
    throw std::invalid_argument(
        "fitLinearPowerModel: need at least 3 training patterns");
  }
  // Per-transition samples: x = input toggles, y = power of that transition.
  // Energies come from the packed bit-parallel engine, 64 patterns per pass.
  const std::vector<double> energiesPj =
      gate::transitionEnergiesPj(netlist, trainingPatterns, tech);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < trainingPatterns.size(); ++i) {
    const double x =
        Word::toggleCount(trainingPatterns[i - 1], trainingPatterns[i]);
    const double y = energiesPj[i - 1] * 1e-12 * tech.clockHz * 1e3;  // mW
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  LinearPowerModel model;
  if (denom <= 1e-12) {
    // Degenerate activity (all transitions identical): constant model.
    model.interceptMw = sy / dn;
    model.slopeMwPerToggle = 0.0;
  } else {
    model.slopeMwPerToggle = (dn * sxy - sx * sy) / denom;
    model.interceptMw = (sy - model.slopeMwPerToggle * sx) / dn;
  }
  return model;
}

double characterizeAveragePowerMw(const gate::Netlist& netlist,
                                  const std::vector<Word>& trainingPatterns,
                                  const gate::TechParams& tech) {
  return gate::gateLevelPower(netlist, trainingPatterns, tech).avgPowerMw;
}

double predictLinearPowerMw(const LinearPowerModel& model,
                            const std::vector<Word>& patterns) {
  if (patterns.size() < 2) return model.interceptMw;
  return model.interceptMw + model.slopeMwPerToggle * inputActivity(patterns);
}

// --- LinearRegressionPowerEstimator --------------------------------------

LinearRegressionPowerEstimator::LinearRegressionPowerEstimator(
    LinearPowerModel model, double expectedErrorPct)
    : Estimator(EstimatorInfo{"linear-regression", expectedErrorPct, 0.0, 1e-6,
                              false, false}),
      model_(model) {}

std::unique_ptr<ParamValue> LinearRegressionPowerEstimator::estimate(
    const EstimationContext& ctx) {
  const std::vector<Word>* history = ctx.patternHistory;
  if (history == nullptr || history->size() < 2) {
    return std::make_unique<ScalarValue>(model_.interceptMw, "mW");
  }
  return std::make_unique<ScalarValue>(predictLinearPowerMw(model_, *history),
                                       "mW");
}

// --- GateLevelPowerEstimator ---------------------------------------------

GateLevelPowerEstimator::GateLevelPowerEstimator(
    std::shared_ptr<const gate::Netlist> netlist, gate::TechParams tech,
    bool remote, double costPerPatternCents)
    : Estimator(EstimatorInfo{"gate-level-toggle", 10.0, costPerPatternCents,
                              1e-4, remote, remote}),
      netlist_(std::move(netlist)),
      tech_(tech) {}

std::unique_ptr<ParamValue> GateLevelPowerEstimator::estimate(
    const EstimationContext& ctx) {
  const std::vector<Word>* history = ctx.patternHistory;
  if (history == nullptr || history->size() < 2) {
    return std::make_unique<NullValue>();
  }
  const gate::PowerResult res = gate::gateLevelPower(*netlist_, *history, tech_);
  return std::make_unique<ScalarValue>(res.avgPowerMw, "mW");
}

// --- peak power / I/O activity ----------------------------------------

GateLevelPeakPowerEstimator::GateLevelPeakPowerEstimator(
    std::shared_ptr<const gate::Netlist> netlist, gate::TechParams tech,
    bool remote)
    : Estimator(EstimatorInfo{"gate-level-peak", 10.0, 0.1, 1e-4, remote,
                              remote}),
      netlist_(std::move(netlist)),
      tech_(tech) {}

std::unique_ptr<ParamValue> GateLevelPeakPowerEstimator::estimate(
    const EstimationContext& ctx) {
  const std::vector<Word>* history = ctx.patternHistory;
  if (history == nullptr || history->size() < 2) {
    return std::make_unique<NullValue>();
  }
  const gate::PowerResult res = gate::gateLevelPower(*netlist_, *history, tech_);
  return std::make_unique<ScalarValue>(res.peakPowerMw, "mW");
}

IoActivityEstimator::IoActivityEstimator()
    : Estimator(EstimatorInfo{"io-activity", 0.0, 0.0, 1e-7, false, false}) {}

std::unique_ptr<ParamValue> IoActivityEstimator::estimate(
    const EstimationContext& ctx) {
  const std::vector<Word>* history = ctx.patternHistory;
  if (history == nullptr || history->size() < 2) {
    return std::make_unique<NullValue>();
  }
  double toggles = 0;
  for (std::size_t i = 1; i < history->size(); ++i) {
    toggles += Word::toggleCount((*history)[i - 1], (*history)[i]);
  }
  return std::make_unique<ScalarValue>(
      toggles / static_cast<double>(history->size() - 1),
      "toggles/transition");
}

// --- area / timing -----------------------------------------------------

GateLevelAreaEstimator::GateLevelAreaEstimator(
    std::shared_ptr<const gate::Netlist> netlist, gate::TechParams tech,
    bool remote)
    : Estimator(EstimatorInfo{"gate-level-area", 2.0, 0.0, 1e-5, remote,
                              remote}),
      netlist_(std::move(netlist)),
      tech_(tech) {}

std::unique_ptr<ParamValue> GateLevelAreaEstimator::estimate(
    const EstimationContext&) {
  return std::make_unique<ScalarValue>(gate::areaOf(*netlist_, tech_), "um2");
}

GateLevelTimingEstimator::GateLevelTimingEstimator(
    std::shared_ptr<const gate::Netlist> netlist, gate::TechParams tech,
    bool remote)
    : Estimator(EstimatorInfo{"gate-level-timing", 5.0, 0.0, 1e-5, remote,
                              remote}),
      netlist_(std::move(netlist)),
      tech_(tech) {}

std::unique_ptr<ParamValue> GateLevelTimingEstimator::estimate(
    const EstimationContext&) {
  return std::make_unique<ScalarValue>(gate::criticalPathNs(*netlist_, tech_),
                                       "ns");
}

// --- PatternBuffer -----------------------------------------------------

PatternBuffer::PatternBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity < 2) {
    throw std::invalid_argument("PatternBuffer capacity must be >= 2");
  }
  patterns_.reserve(capacity);
}

bool PatternBuffer::push(const Word& pattern) {
  patterns_.push_back(pattern);
  return patterns_.size() >= capacity_;
}

std::vector<Word> PatternBuffer::flush() {
  std::vector<Word> out = std::move(patterns_);
  patterns_.clear();
  if (!out.empty()) {
    // Overlap seed: the next batch's transitions continue from here.
    patterns_.push_back(out.back());
    hasOverlap_ = true;
  }
  return out;
}

}  // namespace vcad::estim
