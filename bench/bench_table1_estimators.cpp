// Table 1 of the paper: three estimators for the average power of the
// 16-bit multiplier MULT, compared on accuracy, cost, and CPU time.
//
//   constant          — precharacterized average (paper: 25% avg error, 90%
//                       RMS, free, negligible CPU)
//   linear regression — activity-based model (paper: 20% avg, 50% RMS,
//                       free, ~1 unit CPU)
//   gate-level toggle — accurate netlist evaluation on the provider server
//                       (paper: 10% avg, 20% RMS, 0.1 cents/pattern, ~100
//                       units CPU + unpredictable Internet latency)
//
// Ground truth here is the gate-level toggle evaluation itself (our
// simulator IS the reference; the paper's residual 10/20% is gate-level vs
// silicon). The claims under test are the *orderings*: accuracy improves,
// while CPU time and monetary cost grow, from constant to linear regression
// to gate-level; and RMS error exceeds average error for the cheap models.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "common.hpp"

namespace vcad::bench {
namespace {

constexpr int kWidth = 16;
constexpr int kTraining = 600;
constexpr int kWorkloads = 40;
constexpr int kPatternsPerWorkload = 60;

std::vector<Word> randomPatterns(Rng& rng, int count) {
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(2 * kWidth, rng.next()));
  }
  return out;
}

/// Workload generator spanning realistic activity regimes. Each workload
/// has its own per-bit toggle probability (a signal-activity level the
/// precharacterized constant cannot adapt to), and some workloads restrict
/// activity to narrow operand slices (spatial correlation the linear model
/// only partly captures).
std::vector<Word> makeWorkload(Rng& rng, int kind) {
  std::vector<Word> out;
  const double pFlip = 0.08 + 0.42 * rng.uniform();  // activity level
  std::uint64_t mask = ~0ULL >> (64 - 2 * kWidth);
  if (kind % 3 == 1) {
    // Narrow operands: only the low `bits` of each operand ever toggle.
    const int bits = 6 + static_cast<int>(rng.below(static_cast<std::uint64_t>(kWidth - 5)));
    const std::uint64_t opMask = (1ULL << bits) - 1;
    mask = (opMask << kWidth) | opMask;
  }
  std::uint64_t current = rng.next() & mask;
  for (int i = 0; i < kPatternsPerWorkload; ++i) {
    std::uint64_t flips = 0;
    for (int b = 0; b < 2 * kWidth; ++b) {
      if (rng.chance(pFlip)) flips |= 1ULL << b;
    }
    current = (current ^ flips) & mask;
    out.push_back(Word::fromUint(2 * kWidth, current));
  }
  return out;
}

struct Errors {
  double avgPct = 0.0;
  double rmsPct = 0.0;
};

Errors errorsOver(const std::vector<double>& relErrors) {
  Errors e;
  double sum = 0, sumSq = 0;
  for (double r : relErrors) {
    sum += std::abs(r);
    sumSq += r * r;
  }
  const double n = static_cast<double>(relErrors.size());
  e.avgPct = 100.0 * sum / n;
  e.rmsPct = 100.0 * std::sqrt(sumSq / n);
  return e;
}

double timePerPatternSec(const std::function<void()>& fn, int patterns,
                         int repeats) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) fn();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall / (static_cast<double>(repeats) * patterns);
}

void printTable1() {
  const gate::Netlist nl = gate::makeArrayMultiplier(kWidth);
  Rng rng(0xDAC1999);

  // Provider-side characterization (what ships with the spec).
  const auto training = randomPatterns(rng, kTraining);
  const double constantMw = estim::characterizeAveragePowerMw(nl, training);
  const estim::LinearPowerModel lin = estim::fitLinearPowerModel(nl, training);

  // Accuracy across heterogeneous workloads.
  std::vector<double> errConstant, errLinear;
  for (int w = 0; w < kWorkloads; ++w) {
    const auto workload = makeWorkload(rng, w);
    const double golden = gate::gateLevelPower(nl, workload).avgPowerMw;
    if (golden <= 1e-9) continue;  // fully idle workload: skip ratio
    errConstant.push_back((constantMw - golden) / golden);
    errLinear.push_back(
        (estim::predictLinearPowerMw(lin, workload) - golden) / golden);
  }
  const Errors ec = errorsOver(errConstant);
  const Errors el = errorsOver(errLinear);

  // CPU time per pattern.
  const auto probe = randomPatterns(rng, kPatternsPerWorkload);
  volatile double sink = 0;
  const double cpuConstant = timePerPatternSec(
      [&] { sink = sink + constantMw; }, kPatternsPerWorkload, 2000);
  const double cpuLinear = timePerPatternSec(
      [&] { sink = sink + estim::predictLinearPowerMw(lin, probe); },
      kPatternsPerWorkload, 200);
  const double cpuGate = timePerPatternSec(
      [&] { sink = sink + gate::gateLevelPower(nl, probe).avgPowerMw; },
      kPatternsPerWorkload, 5);

  std::printf("\nTable 1 — power estimators for the %d-bit multiplier "
              "(characterized on %d random patterns, evaluated on %d "
              "workloads x %d patterns)\n\n",
              kWidth, kTraining, kWorkloads, kPatternsPerWorkload);
  std::printf("%-22s | %-28s | %-28s | %-18s | %-22s\n", "Estimator",
              "avg error %  (paper/meas)", "RMS error %  (paper/meas)",
              "cost c/pat (paper)", "CPU per pattern (meas)");
  printRule(132);
  std::printf("%-22s | %10.0f / %-13.1f | %10.0f / %-13.1f | %18s | %18.3f us\n",
              "constant", 25.0, ec.avgPct, 90.0, ec.rmsPct, "0", cpuConstant * 1e6);
  std::printf("%-22s | %10.0f / %-13.1f | %10.0f / %-13.1f | %18s | %18.3f us\n",
              "linear regression", 20.0, el.avgPct, 50.0, el.rmsPct, "0",
              cpuLinear * 1e6);
  std::printf("%-22s | %10.0f / %-13s | %10.0f / %-13s | %18s | %18.3f us*\n",
              "gate-level toggle", 10.0, "0 (is truth)", 20.0, "0 (is truth)",
              "0.1", cpuGate * 1e6);
  printRule(132);
  std::printf("* runs on the provider's server: Internet round trips add an "
              "unpredictable amount of time (Table 1 footnote).\n");

  std::printf("\nshape checks (paper claim -> measured):\n");
  std::printf("  constant less accurate than regression  : %.1f%% > %.1f%% "
              "-> %s\n",
              ec.avgPct, el.avgPct, ec.avgPct > el.avgPct ? "OK" : "VIOLATED");
  std::printf("  RMS error exceeds average error         : const %.1f>%.1f, "
              "linreg %.1f>%.1f -> %s\n",
              ec.rmsPct, ec.avgPct, el.rmsPct, el.avgPct,
              ec.rmsPct > ec.avgPct && el.rmsPct > el.avgPct ? "OK"
                                                             : "VIOLATED");
  std::printf("  CPU: gate-level >> regression >> const  : %.3f >> %.3f >> "
              "%.3f us -> %s\n",
              cpuGate * 1e6, cpuLinear * 1e6, cpuConstant * 1e6,
              cpuGate > 10 * cpuLinear && cpuLinear > 2 * cpuConstant
                  ? "OK"
                  : "VIOLATED");
  std::printf("  only the accurate estimator costs money : 0 / 0 / 0.1 "
              "cents per pattern -> OK (fee schedule)\n");
}

void BM_ConstantEstimate(benchmark::State& state) {
  volatile double v = 25.0;
  for (auto _ : state) benchmark::DoNotOptimize(v + 0.0);
}
BENCHMARK(BM_ConstantEstimate);

void BM_LinearRegressionEstimate(benchmark::State& state) {
  const gate::Netlist nl = gate::makeArrayMultiplier(kWidth);
  Rng rng(1);
  const auto training = randomPatterns(rng, 200);
  const auto model = estim::fitLinearPowerModel(nl, training);
  const auto probe = randomPatterns(rng, kPatternsPerWorkload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estim::predictLinearPowerMw(model, probe));
  }
}
BENCHMARK(BM_LinearRegressionEstimate)->Unit(benchmark::kMicrosecond);

void BM_GateLevelEstimate(benchmark::State& state) {
  const gate::Netlist nl = gate::makeArrayMultiplier(kWidth);
  Rng rng(1);
  const auto probe = randomPatterns(rng, kPatternsPerWorkload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate::gateLevelPower(nl, probe).avgPowerMw);
  }
}
BENCHMARK(BM_GateLevelEstimate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  vcad::bench::printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
