// Ablation bench for the test-generation and fast-simulation extensions:
//
//   1. ATPG: compact test-set size vs. coverage target on the paper's
//      multiplier — how little pattern IP the user must develop (and can
//      keep private under the virtual protocol).
//   2. Compaction effectiveness: raw vs compacted pattern counts.
//   3. Selective-trace vs full-pass gate evaluation: work per input change.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "fault/atpg.hpp"
#include "gate/incremental.hpp"

namespace vcad::bench {
namespace {

void atpgCurve() {
  std::printf("\n[1] ATPG on the 8-bit array multiplier: compact tests vs "
              "coverage target\n");
  std::printf("    %-8s | %9s | %13s | %10s | %10s\n", "target", "patterns",
              "pre-compact", "coverage", "candidates");
  printRule(66);
  const gate::Netlist nl = gate::makeArrayMultiplier(8);
  for (double target : {0.70, 0.80, 0.90, 0.95, 0.99}) {
    fault::AtpgOptions opt;
    opt.targetCoverage = target;
    opt.maxPatterns = 20000;
    opt.giveUpAfterUseless = 2000;
    const auto res = fault::generateTests(nl, opt);
    std::printf("    %7.0f%% | %9zu | %13zu | %9.1f%% | %10zu\n",
                100 * target, res.patterns.size(), res.beforeCompaction,
                100 * res.coverage, res.candidatesTried);
  }
}

void compactionAblation() {
  std::printf("\n[2] static compaction across circuits (target 95%%)\n");
  std::printf("    %-12s | %7s | %13s | %9s | %9s\n", "circuit", "faults",
              "pre-compact", "compacted", "coverage");
  printRule(64);
  struct C {
    const char* name;
    gate::Netlist nl;
  };
  std::vector<C> circuits;
  circuits.push_back({"adder16", gate::makeRippleCarryAdder(16)});
  circuits.push_back({"mult6", gate::makeArrayMultiplier(6)});
  circuits.push_back({"parity32", gate::makeParityTree(32)});
  circuits.push_back({"mux4", gate::makeMux(4)});
  for (auto& c : circuits) {
    fault::AtpgOptions opt;
    opt.targetCoverage = 0.95;
    opt.maxPatterns = 20000;
    opt.giveUpAfterUseless = 2000;
    const auto res = fault::generateTests(c.nl, opt);
    std::printf("    %-12s | %7zu | %13zu | %9zu | %8.1f%%\n", c.name,
                res.faultCount, res.beforeCompaction, res.patterns.size(),
                100 * res.coverage);
  }
}

void selectiveTrace() {
  std::printf("\n[3] selective trace vs full pass: gate evaluations per "
              "single-bit input change (12-bit multiplier, 500 changes)\n");
  const gate::Netlist nl = gate::makeArrayMultiplier(12);
  gate::IncrementalEvaluator inc(nl);
  Rng rng(9);
  inc.setInputs(Word::fromUint(24, rng.next()));
  const std::uint64_t before = inc.gateEvals();
  const int changes = 500;
  for (int i = 0; i < changes; ++i) {
    inc.setInput(static_cast<int>(rng.below(24)),
                 rng.chance(0.5) ? Logic::L1 : Logic::L0);
  }
  const double perChange =
      static_cast<double>(inc.gateEvals() - before) / changes;
  std::printf("    selective trace: %6.1f gate evals/change;  full pass: "
              "%d;  speedup: %.1fx\n",
              perChange, nl.gateCount(),
              static_cast<double>(nl.gateCount()) / perChange);
}

void BM_FullPass(benchmark::State& state) {
  const gate::Netlist nl =
      gate::makeArrayMultiplier(static_cast<int>(state.range(0)));
  gate::NetlistEvaluator eval(nl);
  Rng rng(1);
  Word in = Word::fromUint(nl.inputCount(), rng.next());
  for (auto _ : state) {
    in.setBit(static_cast<int>(rng.below(static_cast<std::uint64_t>(nl.inputCount()))),
              rng.chance(0.5) ? Logic::L1 : Logic::L0);
    benchmark::DoNotOptimize(eval.evalOutputs(in));
  }
}
BENCHMARK(BM_FullPass)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_SelectiveTrace(benchmark::State& state) {
  const gate::Netlist nl =
      gate::makeArrayMultiplier(static_cast<int>(state.range(0)));
  gate::IncrementalEvaluator inc(nl);
  Rng rng(1);
  inc.setInputs(Word::fromUint(nl.inputCount(), rng.next()));
  for (auto _ : state) {
    inc.setInput(static_cast<int>(rng.below(static_cast<std::uint64_t>(nl.inputCount()))),
                 rng.chance(0.5) ? Logic::L1 : Logic::L0);
    benchmark::DoNotOptimize(inc.outputs());
  }
}
BENCHMARK(BM_SelectiveTrace)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_Atpg(benchmark::State& state) {
  const gate::Netlist nl =
      gate::makeArrayMultiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    fault::AtpgOptions opt;
    opt.targetCoverage = 0.9;
    benchmark::DoNotOptimize(fault::generateTests(nl, opt).patterns.size());
  }
}
BENCHMARK(BM_Atpg)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  std::printf("\nATPG and fast-simulation ablations\n");
  vcad::bench::atpgCurve();
  vcad::bench::compactionAblation();
  vcad::bench::selectiveTrace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
