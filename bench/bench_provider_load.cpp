// Closed-loop load benchmark for the multi-tenant provider front end:
// N tenant clients, each on its own Unix-domain socket + channel, hammer
// one MultiTenantProviderServer with blocking EvalFunction calls while
// the worker-pool size sweeps. Reports real-clock p50/p99 latency and
// throughput per (clients × workers) cell.
//
// Usage: bench_provider_load [--quick] [--json PATH] [--min-rps FLOOR]
//
// --min-rps gates CI: exit 1 unless at least one swept cell reaches the
// floor (a regression that tanks every configuration fails the lane).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "ip/multi_tenant_server.hpp"
#include "net/socket_transport.hpp"

namespace vcad::bench {
namespace {

std::string uniqueSocketPath() {
  static int counter = 0;
  return "bench_mt_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

struct Measurement {
  std::size_t clients = 0;
  std::size_t workers = 0;
  std::uint64_t requests = 0;
  double wallSec = 0.0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  std::uint64_t framesServed = 0;
  std::uint64_t sheds = 0;
  std::uint64_t queuePeakDepth = 0;

  double rps() const { return wallSec > 0.0 ? requests / wallSec : 0.0; }
};

/// One cell of the sweep: a fresh server with `workers` queue workers,
/// `clients` tenant threads each issuing `callsPerClient` blocking evals.
Measurement runCell(std::size_t clients, std::size_t workers,
                    int callsPerClient) {
  constexpr std::uint64_t kW = 8;
  ip::MultiTenantProviderServer::Config cfg;
  cfg.queue.workers = workers;
  // Ample queue: this bench measures service latency under contention,
  // not shedding (admission-control behaviour is the chaos suite's job).
  cfg.queue.maxQueueDepth = std::max<std::size_t>(64, 2 * clients);
  ip::MultiTenantProviderServer server(
      [](ip::TenantId) {
        auto shard = std::make_unique<ip::ProviderServer>("bench.host", nullptr);
        registerMultiplier(*shard);
        return std::unique_ptr<rmi::ServerEndpoint>(std::move(shard));
      },
      cfg);
  const std::string path = uniqueSocketPath();
  if (!server.listenUnix(path)) {
    std::fprintf(stderr, "cannot listen on %s\n", path.c_str());
    std::exit(1);
  }
  server.start();

  // Start barrier: every client connects, opens its session, and
  // instantiates before the measured window opens.
  std::mutex gateMutex;
  std::condition_variable gateCv;
  std::size_t ready = 0;
  bool go = false;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      auto transport = net::SocketTransport::connectUnix(path);
      if (transport == nullptr) {
        std::fprintf(stderr, "client %zu cannot connect\n", i);
        std::exit(1);
      }
      rmi::RmiChannel channel(std::move(transport),
                              net::NetworkProfile::localhost(), nullptr,
                              0x9000 + i);
      channel.setTenant(static_cast<ip::TenantId>(i + 1));
      ip::ProviderHandle provider(channel);
      rmi::Args ia;
      ia.addU64(kW);
      auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(ia),
                                "MultFastLowPower");
      if (!resp.ok()) {
        std::fprintf(stderr, "client %zu instantiate failed\n", i);
        std::exit(1);
      }
      const auto instance = resp.payload.readU64();
      {
        std::unique_lock<std::mutex> lock(gateMutex);
        if (++ready == clients) gateCv.notify_all();
        gateCv.wait(lock, [&] { return go; });
      }
      Rng rng(0xB00B5 + i);
      auto& mine = latencies[i];
      mine.reserve(static_cast<std::size_t>(callsPerClient));
      for (int n = 0; n < callsPerClient; ++n) {
        rmi::Args args;
        args.addWord(Word::fromUint(2 * kW, rng.next()));
        const auto t0 = std::chrono::steady_clock::now();
        auto r = provider.call(rmi::MethodId::EvalFunction, instance,
                               std::move(args));
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "client %zu eval failed\n", i);
          std::exit(1);
        }
        mine.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
    });
  }

  std::chrono::steady_clock::time_point start;
  {
    std::unique_lock<std::mutex> lock(gateMutex);
    gateCv.wait(lock, [&] { return ready == clients; });
    go = true;
    start = std::chrono::steady_clock::now();
    gateCv.notify_all();
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&all](double p) {
    if (all.empty()) return 0.0;
    const std::size_t idx = std::min(
        all.size() - 1, static_cast<std::size_t>(p * (all.size() - 1)));
    return all[idx] * 1e3;
  };

  Measurement m;
  m.clients = clients;
  m.workers = workers;
  m.requests = all.size();
  m.wallSec = wall;
  m.p50Ms = pct(0.50);
  m.p99Ms = pct(0.99);
  const auto stats = server.stats();
  m.framesServed = stats.framesServed;
  m.sheds = stats.shedTooManyPending + stats.shedOverloaded;
  m.queuePeakDepth = server.queueStats().peakDepth;
  server.stop();
  std::remove(path.c_str());
  return m;
}

void printTable(const std::vector<Measurement>& rows) {
  std::printf("\n%8s | %7s | %8s | %9s | %9s | %9s | %9s | %6s | %5s\n",
              "clients", "workers", "requests", "wall (ms)", "req/s",
              "p50 (ms)", "p99 (ms)", "served", "peak");
  for (int i = 0; i < 92; ++i) std::printf("-");
  std::printf("\n");
  for (const Measurement& m : rows) {
    std::printf("%8zu | %7zu | %8llu | %9.1f | %9.0f | %9.3f | %9.3f | "
                "%6llu | %5llu\n",
                m.clients, m.workers,
                static_cast<unsigned long long>(m.requests), m.wallSec * 1e3,
                m.rps(), m.p50Ms, m.p99Ms,
                static_cast<unsigned long long>(m.framesServed),
                static_cast<unsigned long long>(m.queuePeakDepth));
  }
}

void writeJson(const std::string& path, const std::vector<Measurement>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "  {\"clients\": %zu, \"workers\": %zu, \"requests\": %llu, "
                 "\"wall_sec\": %.6f, \"rps\": %.1f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"frames_served\": %llu, \"sheds\": %llu, "
                 "\"queue_peak_depth\": %llu}%s\n",
                 m.clients, m.workers,
                 static_cast<unsigned long long>(m.requests), m.wallSec,
                 m.rps(), m.p50Ms, m.p99Ms,
                 static_cast<unsigned long long>(m.framesServed),
                 static_cast<unsigned long long>(m.sheds),
                 static_cast<unsigned long long>(m.queuePeakDepth),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  using namespace vcad::bench;
  bool quick = false;
  std::string jsonPath;
  double minRps = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--min-rps") == 0 && i + 1 < argc) {
      minRps = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--min-rps FLOOR]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<std::size_t> clientCounts =
      quick ? std::vector<std::size_t>{8, 32}
            : std::vector<std::size_t>{1, 8, 32, 64};
  const std::vector<std::size_t> workerCounts =
      quick ? std::vector<std::size_t>{2, 8}
            : std::vector<std::size_t>{1, 4, 8, 16};
  const int callsPerClient = quick ? 50 : 200;

  std::printf("Multi-tenant provider load: %zu client counts x %zu worker "
              "counts, %d blocking evals/client (%s mode, %u hardware "
              "threads)\n",
              clientCounts.size(), workerCounts.size(), callsPerClient,
              quick ? "quick" : "full", std::thread::hardware_concurrency());

  std::vector<Measurement> rows;
  for (std::size_t clients : clientCounts) {
    for (std::size_t workers : workerCounts) {
      rows.push_back(runCell(clients, workers, callsPerClient));
      const Measurement& m = rows.back();
      std::printf("  %2zu clients x %2zu workers: %7.0f req/s, p50 %.3f ms, "
                  "p99 %.3f ms\n",
                  clients, workers, m.rps(), m.p50Ms, m.p99Ms);
    }
  }

  printTable(rows);
  if (!jsonPath.empty()) writeJson(jsonPath, rows);

  if (minRps > 0.0) {
    double best = 0.0;
    for (const Measurement& m : rows) best = std::max(best, m.rps());
    if (best < minRps) {
      std::fprintf(stderr,
                   "FAIL: best throughput %.0f req/s is below the %.0f "
                   "req/s floor\n",
                   best, minRps);
      return 1;
    }
    std::printf("throughput floor met: best %.0f req/s >= %.0f req/s\n", best,
                minRps);
  }
  return 0;
}
