// Figure 3 of the paper: real and CPU time versus pattern buffer size, for
// the estimator-remote scenario over the WAN, with the actual gate-level
// (PPP) power computation disabled so that all cost is RMI overhead.
//
// Claims under test:
//   - both real and CPU time DECREASE as the buffer grows (fewer RMI round
//     trips, less per-call marshalling);
//   - diminishing returns beyond ~50% of the data size (the per-call setup
//     overhead becomes small relative to the payload transfer time).
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace vcad::bench {
namespace {

constexpr std::size_t kPatterns = 100;
constexpr int kRepeats = 20;

struct Point {
  int bufferPct;
  double cpuMs;
  double realMs;
  std::uint64_t rmiCalls;
};

Point measure(int bufferPct) {
  const std::size_t capacity =
      std::max<std::size_t>(2, kPatterns * static_cast<std::size_t>(bufferPct) / 100);
  Figure2Run run(Scenario::EstimatorRemote, net::NetworkProfile::wan(),
                 kPatterns, capacity, /*stubPowerCompute=*/true);
  (void)run.run(2);  // warm-up
  const auto res = run.run(kRepeats);
  return Point{bufferPct, res.clientCpuSec * 1e3, res.realSec * 1e3,
               res.rmiCalls};
}

void printFigure3() {
  std::printf("\nFigure 3 — estimator remote over WAN, %zu patterns, PPP "
              "call disabled: time vs pattern buffer size\n\n",
              kPatterns);
  std::printf("%10s | %12s %13s | %9s\n", "buffer(%)", "CPU (ms)",
              "real (ms)", "RMI calls");
  printRule(56);
  std::vector<Point> points;
  for (int pct : {1, 2, 5, 10, 20, 30, 40, 50, 75, 100}) {
    points.push_back(measure(pct));
    const Point& p = points.back();
    std::printf("%10d | %12.3f %13.1f | %9llu\n", p.bufferPct, p.cpuMs,
                p.realMs, static_cast<unsigned long long>(p.rmiCalls));
  }
  printRule(56);

  const Point& smallest = points.front();
  const Point& half = points[7];  // 50%
  const Point& full = points.back();
  std::printf("\nshape checks (paper claim -> measured):\n");
  std::printf("  real time decreases with buffer size    : %.1f -> %.1f ms "
              "-> %s\n",
              smallest.realMs, full.realMs,
              full.realMs < smallest.realMs ? "OK" : "VIOLATED");
  std::printf("  CPU time decreases with buffer size     : %.3f -> %.3f ms "
              "-> %s\n",
              smallest.cpuMs, full.cpuMs,
              full.cpuMs < smallest.cpuMs + 0.05 ? "OK" : "VIOLATED");
  const double gainTo50 = smallest.realMs - half.realMs;
  const double gain50To100 = half.realMs - full.realMs;
  std::printf("  diminishing returns beyond 50%%          : gain 1..50%% = "
              "%.1f ms, gain 50..100%% = %.1f ms -> %s\n",
              gainTo50, gain50To100,
              gainTo50 > 2 * std::abs(gain50To100) ? "OK" : "VIOLATED");
}

void BM_BufferSweep(benchmark::State& state) {
  const int pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Point p = measure(pct);
    benchmark::DoNotOptimize(p.realMs);
    state.counters["sim_real_ms"] = p.realMs;
    state.counters["rmi_calls"] = static_cast<double>(p.rmiCalls);
  }
}
BENCHMARK(BM_BufferSweep)->Arg(5)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  vcad::bench::printFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
