// Virtual fault-simulation throughput: serial phase-2 injection engine vs
// the pooled worker engine (setInjectionWorkers) across a worker sweep, on
// multiplier IP campaigns. Reports wall time, injections/sec, speedup over
// serial, bit-identity of the CampaignResult, and the arena/scheduler
// metrics (slots leased, peak concurrent schedulers, pooled resets, lane
// balance).
//
// Usage: bench_virtual_sim [--quick] [--json PATH]
//
// Acceptance gate: on a host with >= 8 hardware threads, the pooled engine
// at 8 workers must reach >= 3x the serial phase-2 injection throughput on
// the mult16 campaign. On smaller hosts the sweep still runs (and the
// bit-identity check still applies) but the speedup gate is skipped — a
// pool cannot outrun the serial engine without cores to run on.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/rng.hpp"
#include "fault/block_design.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

namespace vcad::bench {
namespace {

std::shared_ptr<const gate::Netlist> share(gate::Netlist nl) {
  return std::make_shared<const gate::Netlist>(std::move(nl));
}

double wallOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// A single w-bit array multiplier as a fault-participating IP block; the
/// campaign's fault list is the multiplier's own collapsed list, so early
/// patterns carry hundreds of row injections — the phase-2 work the pool
/// shards.
fault::BlockDesign makeMultCampaign(int w) {
  fault::BlockDesign d;
  const int pis = 2 * w;
  for (int i = 0; i < pis; ++i) d.addPrimaryInput("pi" + std::to_string(i));
  const int m = d.addBlock("MULT", share(gate::makeArrayMultiplier(w)));
  for (int i = 0; i < pis; ++i) d.connect({-1, i}, m, i);
  for (int i = 0; i < 2 * w; ++i) d.markPrimaryOutput(m, i);
  return d;
}

std::vector<Word> randomPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(width, rng.next()));
  }
  return out;
}

struct Measurement {
  std::string name;         // campaign scenario
  std::size_t workers = 0;  // 0 = serial engine
  double wallSec = 0.0;
  std::uint64_t injections = 0;
  bool identical = true;  // CampaignResult matches the serial reference
  std::uint64_t slotsLeased = 0;
  std::uint32_t peakSchedulers = 0;
  std::uint64_t schedulerResets = 0;
  double laneBalance = 1.0;  // min/max lane injection share (1.0 = even)

  double injectionsPerSec() const {
    return wallSec > 0.0 ? static_cast<double>(injections) / wallSec : 0.0;
  }
};

bool sameCampaign(const fault::CampaignResult& a,
                  const fault::CampaignResult& b) {
  return a.faultList == b.faultList && a.detected == b.detected &&
         a.detectedAfterPattern == b.detectedAfterPattern &&
         a.detectionTablesRequested == b.detectionTablesRequested &&
         a.tableFetchRoundTrips == b.tableFetchRoundTrips &&
         a.tableCacheHits == b.tableCacheHits && a.injections == b.injections;
}

/// Runs the scenario serially, then across the worker sweep; returns one
/// Measurement per engine configuration (workers == 0 first).
std::vector<Measurement> sweepScenario(const std::string& name, int multBits,
                                       int patternCount) {
  const fault::BlockDesign d = makeMultCampaign(multBits);
  auto inst = d.instantiate();
  fault::LocalFaultBlock client(*inst.blockModules[0], /*dominance=*/true,
                                fault::FaultScope{false, true});
  std::vector<fault::FaultClient*> comps{&client};
  const auto pats =
      randomPatterns(d.primaryInputCount(), patternCount, 0xC0FFEE ^ multBits);

  std::vector<Measurement> rows;
  fault::CampaignResult serial;
  {
    Measurement m;
    m.name = name;
    m.workers = 0;
    m.wallSec = wallOf([&] {
      fault::VirtualFaultSimulator sim(*inst.circuit, comps, inst.piConns,
                                       inst.poConns);
      serial = sim.runPacked(pats);
    });
    m.injections = serial.injections;
    m.slotsLeased = serial.slotsLeased;
    m.peakSchedulers = serial.peakConcurrentSchedulers;
    m.schedulerResets = serial.schedulerResets;
    rows.push_back(m);
  }

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    Measurement m;
    m.name = name;
    m.workers = workers;
    fault::CampaignResult res;
    m.wallSec = wallOf([&] {
      fault::VirtualFaultSimulator sim(*inst.circuit, comps, inst.piConns,
                                       inst.poConns);
      sim.setInjectionWorkers(workers);
      res = sim.runPacked(pats);
    });
    m.injections = res.injections;
    m.identical = sameCampaign(res, serial);
    m.slotsLeased = res.slotsLeased;
    m.peakSchedulers = res.peakConcurrentSchedulers;
    m.schedulerResets = res.schedulerResets;
    if (!res.workerInjections.empty()) {
      std::uint64_t lo = res.workerInjections[0];
      std::uint64_t hi = res.workerInjections[0];
      for (std::uint64_t n : res.workerInjections) {
        lo = n < lo ? n : lo;
        hi = n > hi ? n : hi;
      }
      m.laneBalance = hi > 0 ? static_cast<double>(lo) /
                                   static_cast<double>(hi)
                             : 1.0;
    }
    rows.push_back(m);
  }
  return rows;
}

void printTable(const std::vector<Measurement>& rows) {
  std::printf("\n%-18s | %-7s | %9s | %10s | %11s | %7s | %5s | %4s | %6s | "
              "%7s | %4s\n",
              "campaign", "engine", "wall (ms)", "injections", "inj/sec",
              "speedup", "ident", "peak", "leased", "resets", "bal");
  for (int i = 0; i < 118; ++i) std::printf("-");
  std::printf("\n");
  double serialWall = 0.0;
  for (const Measurement& m : rows) {
    if (m.workers == 0) serialWall = m.wallSec;
    char engine[32];
    if (m.workers == 0) {
      std::snprintf(engine, sizeof engine, "serial");
    } else {
      std::snprintf(engine, sizeof engine, "pool-%zu", m.workers);
    }
    std::printf("%-18s | %-7s | %9.1f | %10llu | %11.0f | %6.2fx | %5s | "
                "%4u | %6llu | %7llu | %4.2f\n",
                m.name.c_str(), engine, m.wallSec * 1e3,
                static_cast<unsigned long long>(m.injections),
                m.injectionsPerSec(),
                m.wallSec > 0.0 ? serialWall / m.wallSec : 0.0,
                m.identical ? "YES" : "NO", m.peakSchedulers,
                static_cast<unsigned long long>(m.slotsLeased),
                static_cast<unsigned long long>(m.schedulerResets),
                m.laneBalance);
  }
}

void writeJson(const std::string& path, const std::vector<Measurement>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  double serialWall = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    if (m.workers == 0) serialWall = m.wallSec;
    std::fprintf(
        f,
        "  {\"campaign\": \"%s\", \"workers\": %zu, \"wall_sec\": %.6f, "
        "\"injections\": %llu, \"injections_per_sec\": %.1f, "
        "\"speedup\": %.3f, \"identical\": %s, \"slots_leased\": %llu, "
        "\"peak_schedulers\": %u, \"scheduler_resets\": %llu, "
        "\"lane_balance\": %.3f}%s\n",
        m.name.c_str(), m.workers, m.wallSec,
        static_cast<unsigned long long>(m.injections), m.injectionsPerSec(),
        m.wallSec > 0.0 ? serialWall / m.wallSec : 0.0,
        m.identical ? "true" : "false",
        static_cast<unsigned long long>(m.slotsLeased), m.peakSchedulers,
        static_cast<unsigned long long>(m.schedulerResets), m.laneBalance,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  using namespace vcad::bench;
  bool quick = false;
  std::string jsonPath;
  std::string obsPrefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obsPrefix = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH] [--obs PREFIX]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!obsPrefix.empty()) vcad::obs::Tracer::global().setEnabled(true);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Virtual fault simulation: serial vs pooled phase-2 injection "
              "(%s mode, %u hardware threads)\n",
              quick ? "quick" : "full", hw);

  std::vector<Measurement> rows;
  {
    const auto r = sweepScenario("campaign/mult8", 4, quick ? 12 : 48);
    rows.insert(rows.end(), r.begin(), r.end());
  }
  {
    // The paper-scale campaign: a 16-input array-multiplier IP. Heavy per
    // injection, so quick mode trims the pattern budget.
    const auto r = sweepScenario("campaign/mult16", 8, quick ? 4 : 16);
    rows.insert(rows.end(), r.begin(), r.end());
  }

  printTable(rows);
  if (!jsonPath.empty()) writeJson(jsonPath, rows);
  if (!obsPrefix.empty()) writeObsArtifacts(obsPrefix);

  int rc = 0;
  for (const Measurement& m : rows) {
    if (!m.identical) {
      std::fprintf(stderr,
                   "FAIL: %s pool-%zu CampaignResult differs from serial\n",
                   m.name.c_str(), m.workers);
      rc = 1;
    }
  }

  // Throughput gate, meaningful only when the host can actually run 8
  // injection lanes in parallel.
  if (hw >= 8) {
    double serialWall = 0.0;
    for (const Measurement& m : rows) {
      if (m.name == "campaign/mult16" && m.workers == 0) serialWall = m.wallSec;
      if (m.name == "campaign/mult16" && m.workers == 8) {
        const double speedup = m.wallSec > 0.0 ? serialWall / m.wallSec : 0.0;
        if (speedup < 3.0) {
          std::fprintf(stderr,
                       "FAIL: campaign/mult16 pool-8 speedup %.2fx < 3x\n",
                       speedup);
          rc = 1;
        }
      }
    }
  } else {
    std::printf("(speedup gate skipped: only %u hardware threads)\n", hw);
  }
  return rc;
}
