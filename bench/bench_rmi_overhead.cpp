// RMI-layer ablations:
//
//   1. Marshalling cost: request marshal/unmarshal as the pattern batch
//      grows (the per-event cost that makes the MR scenario 3x slower in
//      the paper's Table 2).
//   2. Security-filter overhead: the marshalling filter's scan per request.
//   3. Blocking vs non-blocking estimation: how much WAN latency the
//      new-thread (non-blocking) gate-level runs hide.
//   4. Per-profile single-call cost.
//   5. (--async) pipelined RPC: the completion queue's latency hiding as a
//      function of in-flight depth × network profile, written to
//      BENCH_rmi_async.json with --json.
#include <benchmark/benchmark.h>

#include <cstring>

#include "common.hpp"

namespace vcad::bench {
namespace {

rmi::Request makeBatchRequest(int nPatterns) {
  rmi::Request r;
  r.session = 1;
  r.instance = 1;
  r.method = rmi::MethodId::EstimatePower;
  std::vector<Word> batch;
  Rng rng(7);
  for (int i = 0; i < nPatterns; ++i) {
    batch.push_back(Word::fromUint(32, rng.next()));
  }
  r.args.addWordVector(batch);
  return r;
}

void blockingVsNonblocking() {
  std::printf("\n[3] blocking vs non-blocking remote estimation "
              "(ER over WAN, 100 patterns, buffer 5)\n");
  std::printf("    %-12s | %14s | %16s | %16s\n", "mode", "real (ms)",
              "blocked (ms)", "overlapped (ms)");
  printRule(70);
  for (bool nonblocking : {false, true}) {
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    PowerComputeStub stub(server);
    rmi::RmiChannel channel(stub, net::NetworkProfile::wan());
    ip::ProviderHandle provider(channel);

    const int w = 16;
    Circuit c("er");
    auto& A = c.makeWord(w);
    auto& B = c.makeWord(w);
    auto& O = c.makeWord(2 * w);
    c.make<rtl::RandomPrimaryInput>("INA", w, A, 100, 10, 1);
    c.make<rtl::RandomPrimaryInput>("INB", w, B, 100, 10, 2);
    ip::RemoteConfig cfg;
    cfg.patternBufferCapacity = 5;
    cfg.nonblockingEstimation = nonblocking;
    auto& mult = c.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", w,
        std::vector<std::pair<std::string, Connector*>>{{"a", &A}, {"b", &B}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &O}}, cfg);

    SimulationController sim(c);
    const auto start = std::chrono::steady_clock::now();
    sim.start();
    SimContext ctx{sim.scheduler(), nullptr};
    (void)mult.finishPowerEstimation(ctx);
    const double cpu =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const auto& st = channel.stats();
    // Bounds for the non-blocking case: if the overlapped calls serialize,
    // the client eventually waits for their sum; if they fully parallelize
    // and hide behind client work, only the longest single call can stall
    // the end of the run.
    const double worst = cpu + st.blockingWallSec +
                         std::max(0.0, st.nonblockingWallSec - cpu);
    const double best = cpu + st.blockingWallSec +
                        std::max(0.0, st.maxNonblockingCallSec - cpu);
    std::printf("    %-12s | %7.1f..%-7.1f | %16.1f | %16.1f\n",
                nonblocking ? "non-blocking" : "blocking", best * 1e3,
                worst * 1e3, st.blockingWallSec * 1e3,
                st.nonblockingWallSec * 1e3);
  }
  std::printf("    (non-blocking estimation still pays for the batches, but "
              "overlapped with simulation — the paper's latency hiding)\n");
}

void perProfileCost() {
  std::printf("\n[4] single-call simulated cost per network profile "
              "(5-pattern power batch)\n");
  std::printf("    %-10s | %14s\n", "profile", "sim stall (ms)");
  printRule(32);
  for (const auto& profile :
       {net::NetworkProfile::localhost(), net::NetworkProfile::lan(),
        net::NetworkProfile::wan()}) {
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    rmi::RmiChannel channel(server, profile);
    ip::ProviderHandle provider(channel);
    rmi::Args args;
    args.addU64(8);
    auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                              "MultFastLowPower");
    const auto id = resp.payload.readU64();
    const double before = channel.stats().blockingWallSec;
    rmi::Args pw;
    std::vector<Word> batch(5, Word::fromUint(16, 0xABCD));
    pw.addWordVector(batch);
    provider.call(rmi::MethodId::EstimatePower, id, std::move(pw));
    std::printf("    %-10s | %14.3f\n", profile.name.c_str(),
                (channel.stats().blockingWallSec - before) * 1e3);
  }
}

/// The --async sweep: N EstimatePower calls submitted to the completion
/// queue at each in-flight depth, drained with waitAny. The simulated
/// ledger gives the serialized cost (sum of per-call round trips) and the
/// longest single call; the pipelined estimate divides the serialized cost
/// across the in-flight depth, floored by that longest call — the
/// latency-hiding ratio is serialized/pipelined.
void asyncPipelineSweep(const char* jsonPath) {
  constexpr int kCalls = 32;
  constexpr int kBatch = 5;
  std::printf("\n[5] pipelined async RPC (%d-call EstimatePower drain, "
              "batch %d)\n",
              kCalls, kBatch);
  std::printf("    %-10s | %5s | %14s | %14s | %12s | %10s\n", "profile",
              "depth", "serialized(ms)", "pipelined(ms)", "hiding (x)",
              "real (ms)");
  printRule(80);
  std::string json = "{\"bench\":\"rmi_async\",\"calls\":" +
                     std::to_string(kCalls) + ",\"results\":[";
  bool first = true;
  for (const auto& profile :
       {net::NetworkProfile::localhost(), net::NetworkProfile::lan(),
        net::NetworkProfile::wan()}) {
    for (std::size_t depth : {1u, 2u, 4u, 8u}) {
      ip::ProviderServer server("provider.host", nullptr);
      registerMultiplier(server);
      PowerComputeStub stub(server);
      rmi::RmiChannel channel(stub, profile);
      ip::ProviderHandle provider(channel);
      rmi::Args args;
      args.addU64(16);
      auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                                "MultFastLowPower");
      const auto id = resp.payload.readU64();
      channel.resetStats();
      channel.setMaxInFlight(depth);

      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        rmi::Request request;
        request.method = rmi::MethodId::EstimatePower;
        request.session = provider.session();
        request.instance = id;
        std::vector<Word> batch(kBatch, Word::fromUint(16, 0xABCD + i));
        request.args.addWordVector(batch);
        (void)channel.submit(std::move(request));
      }
      int drained = 0;
      while (auto done = channel.waitAny()) {
        if (done->second.ok()) ++drained;
      }
      const double realSec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const auto& st = channel.stats();
      const double serialized = st.nonblockingWallSec;
      const double pipelined =
          std::max(st.maxNonblockingCallSec,
                   serialized / static_cast<double>(depth));
      const double hiding = pipelined > 0 ? serialized / pipelined : 1.0;
      std::printf("    %-10s | %5zu | %14.3f | %14.3f | %12.2f | %10.2f\n",
                  profile.name.c_str(), depth, serialized * 1e3,
                  pipelined * 1e3, hiding, realSec * 1e3);
      if (drained != kCalls) {
        std::fprintf(stderr, "drained %d of %d calls!\n", drained, kCalls);
      }
      char entry[320];
      std::snprintf(entry, sizeof(entry),
                    "%s{\"profile\":\"%s\",\"depth\":%zu,"
                    "\"serializedSimSec\":%.9f,\"pipelinedSimSec\":%.9f,"
                    "\"maxCallSimSec\":%.9f,\"latencyHidingRatio\":%.4f,"
                    "\"realSec\":%.6f,\"drained\":%d}",
                    first ? "" : ",", profile.name.c_str(), depth, serialized,
                    pipelined, st.maxNonblockingCallSec, hiding, realSec,
                    drained);
      json += entry;
      first = false;
    }
  }
  json += "]}";
  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath);
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", jsonPath);
    }
  }
  std::printf("    (pipelined = max(longest single call, serialized/depth): "
              "deeper in-flight windows hide proportionally more of the "
              "wire time, until one call's latency floors it)\n");
}

void BM_RequestMarshal(benchmark::State& state) {
  const rmi::Request req = makeBatchRequest(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    net::ByteBuffer wire = req.marshal();
    benchmark::DoNotOptimize(rmi::Request::unmarshal(wire));
  }
  state.counters["bytes"] = static_cast<double>(req.marshal().size());
}
BENCHMARK(BM_RequestMarshal)->Arg(1)->Arg(5)->Arg(20)->Arg(100)->Unit(
    benchmark::kMicrosecond);

void BM_SecurityFilter(benchmark::State& state) {
  const rmi::Request req = makeBatchRequest(static_cast<int>(state.range(0)));
  rmi::MarshalFilter filter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.admit(req));
  }
}
BENCHMARK(BM_SecurityFilter)->Arg(5)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_ChannelCall(benchmark::State& state) {
  ip::ProviderServer server("provider.host", nullptr);
  registerMultiplier(server);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ip::ProviderHandle provider(channel);
  rmi::Args args;
  args.addU64(8);
  auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                            "MultFastLowPower");
  const auto id = resp.payload.readU64();
  for (auto _ : state) {
    rmi::Args ev;
    ev.addWord(Word::fromUint(16, 0x1234));
    benchmark::DoNotOptimize(
        provider.call(rmi::MethodId::EvalFunction, id, std::move(ev)));
  }
}
BENCHMARK(BM_ChannelCall)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  bool asyncOnly = false;
  const char* jsonPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--async") == 0) {
      asyncOnly = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
  }
  if (asyncOnly) {
    std::printf("\nRMI async pipelining sweep\n");
    vcad::bench::asyncPipelineSweep(jsonPath);
    return 0;
  }
  std::printf("\nRMI overhead ablations\n");
  vcad::bench::blockingVsNonblocking();
  vcad::bench::perProfileCost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
