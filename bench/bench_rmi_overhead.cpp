// RMI-layer ablations:
//
//   1. Marshalling cost: request marshal/unmarshal as the pattern batch
//      grows (the per-event cost that makes the MR scenario 3x slower in
//      the paper's Table 2).
//   2. Security-filter overhead: the marshalling filter's scan per request.
//   3. Blocking vs non-blocking estimation: how much WAN latency the
//      new-thread (non-blocking) gate-level runs hide.
//   4. Per-profile single-call cost.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace vcad::bench {
namespace {

rmi::Request makeBatchRequest(int nPatterns) {
  rmi::Request r;
  r.session = 1;
  r.instance = 1;
  r.method = rmi::MethodId::EstimatePower;
  std::vector<Word> batch;
  Rng rng(7);
  for (int i = 0; i < nPatterns; ++i) {
    batch.push_back(Word::fromUint(32, rng.next()));
  }
  r.args.addWordVector(batch);
  return r;
}

void blockingVsNonblocking() {
  std::printf("\n[3] blocking vs non-blocking remote estimation "
              "(ER over WAN, 100 patterns, buffer 5)\n");
  std::printf("    %-12s | %14s | %16s | %16s\n", "mode", "real (ms)",
              "blocked (ms)", "overlapped (ms)");
  printRule(70);
  for (bool nonblocking : {false, true}) {
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    PowerComputeStub stub(server);
    rmi::RmiChannel channel(stub, net::NetworkProfile::wan());
    ip::ProviderHandle provider(channel);

    const int w = 16;
    Circuit c("er");
    auto& A = c.makeWord(w);
    auto& B = c.makeWord(w);
    auto& O = c.makeWord(2 * w);
    c.make<rtl::RandomPrimaryInput>("INA", w, A, 100, 10, 1);
    c.make<rtl::RandomPrimaryInput>("INB", w, B, 100, 10, 2);
    ip::RemoteConfig cfg;
    cfg.patternBufferCapacity = 5;
    cfg.nonblockingEstimation = nonblocking;
    auto& mult = c.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", w,
        std::vector<std::pair<std::string, Connector*>>{{"a", &A}, {"b", &B}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &O}}, cfg);

    SimulationController sim(c);
    const auto start = std::chrono::steady_clock::now();
    sim.start();
    SimContext ctx{sim.scheduler(), nullptr};
    (void)mult.finishPowerEstimation(ctx);
    const double cpu =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const auto& st = channel.stats();
    // Bounds for the non-blocking case: if the overlapped calls serialize,
    // the client eventually waits for their sum; if they fully parallelize
    // and hide behind client work, only the longest single call can stall
    // the end of the run.
    const double worst = cpu + st.blockingWallSec +
                         std::max(0.0, st.nonblockingWallSec - cpu);
    const double best = cpu + st.blockingWallSec +
                        std::max(0.0, st.maxNonblockingCallSec - cpu);
    std::printf("    %-12s | %7.1f..%-7.1f | %16.1f | %16.1f\n",
                nonblocking ? "non-blocking" : "blocking", best * 1e3,
                worst * 1e3, st.blockingWallSec * 1e3,
                st.nonblockingWallSec * 1e3);
  }
  std::printf("    (non-blocking estimation still pays for the batches, but "
              "overlapped with simulation — the paper's latency hiding)\n");
}

void perProfileCost() {
  std::printf("\n[4] single-call simulated cost per network profile "
              "(5-pattern power batch)\n");
  std::printf("    %-10s | %14s\n", "profile", "sim stall (ms)");
  printRule(32);
  for (const auto& profile :
       {net::NetworkProfile::localhost(), net::NetworkProfile::lan(),
        net::NetworkProfile::wan()}) {
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    rmi::RmiChannel channel(server, profile);
    ip::ProviderHandle provider(channel);
    rmi::Args args;
    args.addU64(8);
    auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                              "MultFastLowPower");
    const auto id = resp.payload.readU64();
    const double before = channel.stats().blockingWallSec;
    rmi::Args pw;
    std::vector<Word> batch(5, Word::fromUint(16, 0xABCD));
    pw.addWordVector(batch);
    provider.call(rmi::MethodId::EstimatePower, id, std::move(pw));
    std::printf("    %-10s | %14.3f\n", profile.name.c_str(),
                (channel.stats().blockingWallSec - before) * 1e3);
  }
}

void BM_RequestMarshal(benchmark::State& state) {
  const rmi::Request req = makeBatchRequest(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    net::ByteBuffer wire = req.marshal();
    benchmark::DoNotOptimize(rmi::Request::unmarshal(wire));
  }
  state.counters["bytes"] = static_cast<double>(req.marshal().size());
}
BENCHMARK(BM_RequestMarshal)->Arg(1)->Arg(5)->Arg(20)->Arg(100)->Unit(
    benchmark::kMicrosecond);

void BM_SecurityFilter(benchmark::State& state) {
  const rmi::Request req = makeBatchRequest(static_cast<int>(state.range(0)));
  rmi::MarshalFilter filter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.admit(req));
  }
}
BENCHMARK(BM_SecurityFilter)->Arg(5)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_ChannelCall(benchmark::State& state) {
  ip::ProviderServer server("provider.host", nullptr);
  registerMultiplier(server);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ip::ProviderHandle provider(channel);
  rmi::Args args;
  args.addU64(8);
  auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                            "MultFastLowPower");
  const auto id = resp.payload.readU64();
  for (auto _ : state) {
    rmi::Args ev;
    ev.addWord(Word::fromUint(16, 0x1234));
    benchmark::DoNotOptimize(
        provider.call(rmi::MethodId::EvalFunction, id, std::move(ev)));
  }
}
BENCHMARK(BM_ChannelCall)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  std::printf("\nRMI overhead ablations\n");
  vcad::bench::blockingVsNonblocking();
  vcad::bench::perProfileCost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
