// Packed-vs-scalar evaluation bench: measures the bit-parallel engine's
// throughput (patterns/sec) against the scalar NetlistEvaluator on the
// paper's circuits, plus the end-to-end serial fault-campaign speedup.
//
// Usage:
//   bench_packed_eval [--quick] [--json PATH]
//
// --quick shrinks pattern counts and circuit sizes for CI smoke runs;
// --json writes the measurements as a machine-readable JSON array (the CI
// artifact BENCH_packed_eval.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/rng.hpp"
#include "fault/serial_sim.hpp"
#include "gate/generators.hpp"
#include "gate/packed_eval.hpp"

namespace vcad::bench {
namespace {

std::vector<Word> randomPatterns(int width, std::size_t count,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(width, rng.next()));
  }
  return out;
}

double secondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Measurement {
  std::string name;
  std::size_t gates = 0;
  std::size_t patterns = 0;
  double scalarPatternsPerSec = 0.0;
  double packedPatternsPerSec = 0.0;

  double speedup() const {
    return scalarPatternsPerSec > 0.0
               ? packedPatternsPerSec / scalarPatternsPerSec
               : 0.0;
  }
};

/// Raw evaluation throughput: full-netlist passes per second, scalar
/// (evaluateInto with a reused scratch buffer — its best case) vs packed.
Measurement evalThroughput(const std::string& name, const gate::Netlist& nl,
                           std::size_t nPatterns) {
  Measurement m;
  m.name = name;
  m.gates = static_cast<std::size_t>(nl.gateCount());
  m.patterns = nPatterns;
  const auto patterns = randomPatterns(nl.inputCount(), nPatterns, 0xbe1c4);

  const gate::NetlistEvaluator eval(nl);
  std::vector<Logic> scratch;
  int sinkAcc = 0;
  volatile int sink = 0;
  const double scalarSec = secondsOf([&] {
    for (const Word& p : patterns) {
      eval.evaluateInto(p, scratch);
      sinkAcc += static_cast<int>(scratch.back());
    }
  });

  const gate::PackedEvaluator packed(nl);
  std::vector<gate::LanePlanes> planes;
  const double packedSec = secondsOf([&] {
    for (std::size_t base = 0; base < patterns.size();
         base += gate::PackedEvaluator::kLanes) {
      const std::size_t lanes = std::min<std::size_t>(
          gate::PackedEvaluator::kLanes, patterns.size() - base);
      packed.evaluate(packed.pack(patterns, base, lanes), planes);
      sinkAcc += static_cast<int>(planes.back().val);
    }
  });
  sink = sinkAcc;
  (void)sink;

  m.scalarPatternsPerSec = static_cast<double>(nPatterns) / scalarSec;
  m.packedPatternsPerSec = static_cast<double>(nPatterns) / packedSec;
  return m;
}

/// End-to-end serial fault campaign (collapsed faults, fault dropping):
/// packed run() vs the scalar reference runScalar().
Measurement campaignThroughput(const std::string& name,
                               const gate::Netlist& nl,
                               std::size_t nPatterns) {
  Measurement m;
  m.name = name;
  m.gates = static_cast<std::size_t>(nl.gateCount());
  m.patterns = nPatterns;
  const auto patterns = randomPatterns(nl.inputCount(), nPatterns, 0xbe1c5);

  fault::SerialFaultSimulator sim(nl, true);
  std::size_t packedDetected = 0, scalarDetected = 0;
  const double packedSec =
      secondsOf([&] { packedDetected = sim.run(patterns).detected.size(); });
  const double scalarSec = secondsOf(
      [&] { scalarDetected = sim.runScalar(patterns).detected.size(); });
  if (packedDetected != scalarDetected) {
    std::fprintf(stderr, "FATAL: %s packed/scalar campaign disagree\n",
                 name.c_str());
    std::exit(1);
  }
  m.scalarPatternsPerSec = static_cast<double>(nPatterns) / scalarSec;
  m.packedPatternsPerSec = static_cast<double>(nPatterns) / packedSec;
  return m;
}

void printTable(const std::vector<Measurement>& rows) {
  std::printf("\n%-28s %8s %9s %14s %14s %9s\n", "benchmark", "gates",
              "patterns", "scalar pat/s", "packed pat/s", "speedup");
  for (const Measurement& m : rows) {
    std::printf("%-28s %8zu %9zu %14.0f %14.0f %8.1fx\n", m.name.c_str(),
                m.gates, m.patterns, m.scalarPatternsPerSec,
                m.packedPatternsPerSec, m.speedup());
  }
}

void writeJson(const std::string& path, const std::vector<Measurement>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"gates\": %zu, \"patterns\": %zu, "
                 "\"scalar_patterns_per_sec\": %.1f, "
                 "\"packed_patterns_per_sec\": %.1f, \"speedup\": %.2f}%s\n",
                 m.name.c_str(), m.gates, m.patterns, m.scalarPatternsPerSec,
                 m.packedPatternsPerSec, m.speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  using namespace vcad::bench;
  bool quick = false;
  std::string jsonPath;
  std::string obsPrefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obsPrefix = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH] [--obs PREFIX]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!obsPrefix.empty()) vcad::obs::Tracer::global().setEnabled(true);

  const std::size_t evalPatterns = quick ? 64 * 32 : 64 * 512;
  std::vector<Measurement> rows;
  std::printf("Packed bit-parallel evaluation vs scalar (%s mode)\n",
              quick ? "quick" : "full");

  rows.push_back(evalThroughput("eval/adder16",
                                vcad::gate::makeRippleCarryAdder(16),
                                evalPatterns));
  rows.push_back(evalThroughput("eval/mult8", vcad::gate::makeArrayMultiplier(8),
                                evalPatterns));
  rows.push_back(evalThroughput("eval/mult16",
                                vcad::gate::makeArrayMultiplier(16),
                                quick ? 64 * 8 : evalPatterns));

  rows.push_back(campaignThroughput("campaign/mult4",
                                    vcad::gate::makeArrayMultiplier(4),
                                    quick ? 64 : 256));
  if (!quick) {
    rows.push_back(campaignThroughput(
        "campaign/mult6", vcad::gate::makeArrayMultiplier(6), 256));
  }

  printTable(rows);
  if (!jsonPath.empty()) writeJson(jsonPath, rows);
  if (!obsPrefix.empty()) writeObsArtifacts(obsPrefix);

  // Acceptance gate: the packed engine must be >= 10x scalar on the paper's
  // 16-bit multiplier (raw evaluation throughput).
  for (const Measurement& m : rows) {
    if (m.name == "eval/mult16" && m.speedup() < 10.0) {
      std::fprintf(stderr, "FAIL: eval/mult16 speedup %.1fx < 10x\n",
                   m.speedup());
      return 1;
    }
  }
  return 0;
}
