// Ablation bench for the unreliable-transport robustness layer:
//
//   1. Retry overhead per fault profile: simulated transport time and
//      retransmission counts for a fixed RMI workload under each shipped
//      FaultProfile, against the ideal-transport baseline.
//   2. Micro-costs of the mechanisms themselves: frame checksum seal/open
//      and the per-attempt fault-plan derivation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "net/faulty_transport.hpp"
#include "rmi/channel.hpp"

namespace vcad::bench {
namespace {

/// Minimal echo endpoint: the workload is pure transport.
class EchoEndpoint : public rmi::ServerEndpoint {
 public:
  rmi::Response dispatch(const rmi::Request& request) override {
    rmi::Response r;
    rmi::Args args = request.args;
    r.payload.writeWord(args.takeWord());
    return r;
  }
  std::string hostName() const override { return "bench.echo"; }
};

void profileOverheadTable() {
  constexpr int kCalls = 300;
  std::printf("\n[1] transport-fault overhead: %d echo calls over a WAN "
              "channel, per shipped profile (seed 1)\n",
              kCalls);
  std::printf("    %-10s | %8s | %8s | %8s | %9s | %11s | %9s\n", "profile",
              "retries", "timeouts", "replays", "corrupted", "network s",
              "failures");
  printRule(80);

  std::vector<net::FaultProfile> profiles = {net::FaultProfile::none()};
  for (const auto& p : net::FaultProfile::shipped()) profiles.push_back(p);

  for (const net::FaultProfile& profile : profiles) {
    EchoEndpoint server;
    net::FaultyTransport transport(profile, 1);
    rmi::RmiChannel channel(server, net::NetworkProfile::wan());
    channel.setFaultInjector(&transport);
    for (int i = 0; i < kCalls; ++i) {
      rmi::Request req;
      req.method = rmi::MethodId::EvalFunction;
      req.args.addWord(Word::fromUint(32, static_cast<std::uint64_t>(i)));
      (void)channel.call(req);
    }
    const rmi::ChannelStats& s = channel.stats();
    std::printf("    %-10s | %8llu | %8llu | %8llu | %9llu | %11.3f | %9llu\n",
                profile.name.c_str(),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.timeouts),
                static_cast<unsigned long long>(s.duplicatesSuppressed),
                static_cast<unsigned long long>(s.corruptedFramesDropped),
                s.networkSec,
                static_cast<unsigned long long>(s.transportFailures));
  }
}

void BM_SealOpenFrame(benchmark::State& state) {
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)),
                                    0x5A);
  for (auto _ : state) {
    std::vector<std::uint8_t> frame = payload;
    net::sealFrame(frame);
    benchmark::DoNotOptimize(net::openFrame(frame));
  }
}
BENCHMARK(BM_SealOpenFrame)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_FaultPlanDerivation(benchmark::State& state) {
  net::FaultyTransport transport(net::FaultProfile::lossy(), 42);
  std::uint64_t key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transport.peek(key++, 1));
  }
}
BENCHMARK(BM_FaultPlanDerivation)->Unit(benchmark::kNanosecond);

void BM_EchoCallOverTransport(benchmark::State& state) {
  // range(0): 0 = no transport installed, 1 = ideal profile through the
  // transport path, 2 = lossy profile (retries included).
  EchoEndpoint server;
  net::FaultyTransport ideal(net::FaultProfile::none(), 1);
  net::FaultyTransport lossy(net::FaultProfile::lossy(), 1);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  if (state.range(0) == 1) channel.setFaultInjector(&ideal);
  if (state.range(0) == 2) channel.setFaultInjector(&lossy);
  std::uint64_t i = 0;
  for (auto _ : state) {
    rmi::Request req;
    req.method = rmi::MethodId::EvalFunction;
    req.args.addWord(Word::fromUint(32, i++));
    benchmark::DoNotOptimize(channel.call(req));
  }
}
BENCHMARK(BM_EchoCallOverTransport)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  std::printf("\nUnreliable-transport robustness layer: overhead ablation\n");
  vcad::bench::profileOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
