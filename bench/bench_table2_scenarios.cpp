// Table 2 of the paper: CPU and real (wall) time for simulating 100 random
// patterns through the Figure 2 circuit with a pattern buffer of five, in
// three configurations (all local / estimator remote / multiplier remote)
// over three network environments (localhost / LAN / WAN).
//
// Our substrate is a simulated network on one machine, so absolute seconds
// differ from the Sun UltraSparc numbers; the *shape* is the claim under
// test:
//   - ER adds almost nothing to AL's CPU time;
//   - MR's CPU time is a large multiple of AL's (argument marshalling at
//     every event);
//   - CPU time is independent of the network environment;
//   - real time grows with network distance, dominated by the WAN;
//   - the MR run on the shared localhost is SLOWER in real time than over
//     the LAN (host contention), the paper's counter-intuitive data point.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace vcad::bench {
namespace {

constexpr std::size_t kPatterns = 100;
constexpr std::size_t kBuffer = 5;
constexpr int kRepeats = 12;

struct Row {
  const char* design;
  const char* host;
  Scenario scenario;
  net::NetworkProfile profile;
  double paperCpuSec;
  double paperRealSec;
};

Figure2Run::Result averagedRun(Scenario s, const net::NetworkProfile& p) {
  Figure2Run run(s, p, kPatterns, kBuffer);
  (void)run.run(2);  // warm-up
  return run.run(kRepeats);
}

void printTable2() {
  const std::vector<Row> rows = {
      {"All local", "NA", Scenario::AllLocal, net::NetworkProfile::ideal(), 13,
       15},
      {"Estimator remote", "Local", Scenario::EstimatorRemote,
       net::NetworkProfile::localhost(), 14, 21},
      {"Multiplier remote", "Local", Scenario::MultiplierRemote,
       net::NetworkProfile::localhost(), 38, 87},
      {"Estimator remote", "LAN", Scenario::EstimatorRemote,
       net::NetworkProfile::lan(), 14, 32},
      {"Multiplier remote", "LAN", Scenario::MultiplierRemote,
       net::NetworkProfile::lan(), 38, 65},
      {"Estimator remote", "WAN", Scenario::EstimatorRemote,
       net::NetworkProfile::wan(), 14, 168},
      {"Multiplier remote", "WAN", Scenario::MultiplierRemote,
       net::NetworkProfile::wan(), 38, 407},
  };

  std::printf("\nTable 2 — %zu random patterns, pattern buffer %zu "
              "(paper: Sun UltraSparc 1 seconds; here: measured client CPU + "
              "simulated network/server stall, milliseconds)\n\n",
              kPatterns, kBuffer);
  std::printf("%-19s %-6s | %12s %12s | %14s %14s | %9s %9s\n", "Design",
              "Host", "paper CPU(s)", "paper real(s)", "meas CPU(ms)",
              "meas real(ms)", "RMI calls", "bytes");
  printRule(110);

  double alCpu = 0, alReal = 0;
  std::vector<Figure2Run::Result> results;
  for (const Row& row : rows) {
    const auto res = averagedRun(row.scenario, row.profile);
    results.push_back(res);
    if (row.scenario == Scenario::AllLocal) {
      alCpu = res.clientCpuSec;
      alReal = res.realSec;
    }
    std::printf("%-19s %-6s | %12.0f %12.0f | %14.3f %14.3f | %9llu %9llu\n",
                row.design, row.host, row.paperCpuSec, row.paperRealSec,
                res.clientCpuSec * 1e3, res.realSec * 1e3,
                static_cast<unsigned long long>(res.rmiCalls),
                static_cast<unsigned long long>(res.bytes));
  }
  printRule(110);

  // --- shape checks --------------------------------------------------------
  const auto& erLocal = results[1];
  const auto& mrLocal = results[2];
  const auto& erLan = results[3];
  const auto& mrLan = results[4];
  const auto& erWan = results[5];
  const auto& mrWan = results[6];
  std::printf("\nshape checks (paper claim -> measured):\n");
  std::printf("  ER CPU ~= AL CPU (14 vs 13)        : %.3f vs %.3f ms -> %s\n",
              erWan.clientCpuSec * 1e3, alCpu * 1e3,
              erWan.clientCpuSec < 2.0 * alCpu + 1e-3 ? "OK" : "VIOLATED");
  std::printf("  MR CPU >> AL CPU (38 vs 13, ~2.9x) : %.1fx -> %s\n",
              mrWan.clientCpuSec / alCpu,
              mrWan.clientCpuSec > 1.5 * alCpu ? "OK" : "VIOLATED");
  const double cpuSpread =
      std::abs(mrLocal.clientCpuSec - mrWan.clientCpuSec) /
      std::max(mrLocal.clientCpuSec, mrWan.clientCpuSec);
  std::printf("  MR CPU independent of network      : spread %.0f%% -> %s\n",
              100 * cpuSpread, cpuSpread < 0.5 ? "OK" : "VIOLATED");
  std::printf("  real time: WAN > LAN (ER)          : %.1f > %.1f ms -> %s\n",
              erWan.realSec * 1e3, erLan.realSec * 1e3,
              erWan.realSec > erLan.realSec ? "OK" : "VIOLATED");
  std::printf("  real time: WAN > LAN (MR)          : %.1f > %.1f ms -> %s\n",
              mrWan.realSec * 1e3, mrLan.realSec * 1e3,
              mrWan.realSec > mrLan.realSec ? "OK" : "VIOLATED");
  std::printf("  MR local real > MR LAN real (87>65): %.1f > %.1f ms -> %s\n",
              mrLocal.realSec * 1e3, mrLan.realSec * 1e3,
              mrLocal.realSec > mrLan.realSec ? "OK" : "VIOLATED");
  std::printf("  AL real ~ AL CPU (15 vs 13)        : %.3f vs %.3f ms -> %s\n",
              alReal * 1e3, alCpu * 1e3,
              alReal < 1.2 * alCpu + 1e-3 ? "OK" : "VIOLATED");
  (void)erLocal;
}

// Micro-benchmarks of the per-scenario simulation cost.
void BM_Figure2(benchmark::State& state) {
  const auto scenario = static_cast<Scenario>(state.range(0));
  net::NetworkProfile profile = net::NetworkProfile::wan();
  if (scenario == Scenario::AllLocal) profile = net::NetworkProfile::ideal();
  for (auto _ : state) {
    Figure2Run run(scenario, profile, kPatterns, kBuffer);
    const auto res = run.run();
    benchmark::DoNotOptimize(res.samples);
    state.counters["sim_real_ms"] = res.realSec * 1e3;
    state.counters["rmi_calls"] = static_cast<double>(res.rmiCalls);
  }
}
BENCHMARK(BM_Figure2)
    ->Arg(static_cast<int>(Scenario::AllLocal))
    ->Arg(static_cast<int>(Scenario::EstimatorRemote))
    ->Arg(static_cast<int>(Scenario::MultiplierRemote))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  vcad::bench::printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
