// Ablation bench for virtual fault simulation (the paper's Figures 4/5
// mechanism, scaled up):
//
//   1. Virtual (detection-table) vs full-disclosure serial simulation:
//      identical detected fault sets, and the protocol cost of IP
//      protection (tables requested, injections run, bytes shipped when the
//      IP block is remote).
//   2. Fault collapsing ablation: fault-list and detection-table sizes with
//      no collapsing / equivalence only / equivalence + dominance.
//   3. Network-profile sweep for the remote case: what detection-table
//      traffic costs over localhost / LAN / WAN.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "common.hpp"
#include "fault/block_design.hpp"
#include "fault/dictionary.hpp"
#include "fault/parallel_campaign.hpp"
#include "fault/serial_sim.hpp"
#include "fault/virtual_sim.hpp"

namespace vcad::bench {
namespace {

using fault::BlockDesign;

std::shared_ptr<const gate::Netlist> share(gate::Netlist nl) {
  return std::make_shared<const gate::Netlist>(std::move(nl));
}

/// A mid-size 4-block design: adder feeding parity, mux and comparator.
BlockDesign makeDesign() {
  BlockDesign d;
  const int w = 4;
  for (int i = 0; i < 2 * w; ++i) d.addPrimaryInput("pi" + std::to_string(i));
  const int add = d.addBlock("ADD", share(gate::makeRippleCarryAdder(w)));
  const int par = d.addBlock("PAR", share(gate::makeParityTree(w + 1)));
  const int mux = d.addBlock("MUX", share(gate::makeMux(2)));
  const int cmp = d.addBlock("CMP", share(gate::makeComparator(2)));
  for (int i = 0; i < 2 * w; ++i) d.connect({-1, i}, add, i);
  for (int i = 0; i < w + 1; ++i) d.connect({add, i}, par, i);
  for (int i = 0; i < 4; ++i) d.connect({add, i}, mux, i);
  d.connect({add, 0}, mux, 4);
  d.connect({add, 3}, mux, 5);
  d.connect({add, 1}, cmp, 0);
  d.connect({-1, 0}, cmp, 1);
  d.connect({add, 2}, cmp, 2);
  d.connect({-1, 1}, cmp, 3);
  d.markPrimaryOutput(par, 0, "PARITY");
  d.markPrimaryOutput(mux, 0, "MUXOUT");
  d.markPrimaryOutput(cmp, 0, "EQ");
  d.markPrimaryOutput(add, w, "COUT");
  return d;
}

std::vector<Word> patterns(int width, int count) {
  Rng rng(0xFA117);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) out.push_back(Word::fromUint(width, rng.next()));
  return out;
}

double wallOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void virtualVsSerial() {
  const BlockDesign d = makeDesign();
  auto inst = d.instantiate();
  std::vector<std::unique_ptr<fault::LocalFaultBlock>> clients;
  for (int b = 0; b < d.blockCount(); ++b) {
    clients.push_back(std::make_unique<fault::LocalFaultBlock>(
        *inst.blockModules[static_cast<size_t>(b)], true,
        fault::FaultScope{false, true}));
  }
  std::vector<fault::FaultClient*> comps;
  for (auto& c : clients) comps.push_back(c.get());
  const auto pats = patterns(d.primaryInputCount(), 32);

  fault::CampaignResult vres;
  const double vWall = wallOf([&] {
    fault::VirtualFaultSimulator vsim(*inst.circuit, comps, inst.piConns,
                                      inst.poConns);
    vres = vsim.runPacked(pats);
  });

  const gate::Netlist flat = d.flatten();
  std::vector<gate::StuckFault> faults;
  for (const auto& qs : vres.faultList) {
    faults.push_back(fault::flatFaultOf(flat, qs));
  }
  fault::CampaignResult gold;
  const double sWall = wallOf([&] {
    fault::SerialFaultSimulator serial(flat, faults, vres.faultList);
    gold = serial.run(pats);
  });

  std::printf("\n[1] virtual vs full-disclosure serial (32 patterns, %zu "
              "faults, %d blocks)\n",
              vres.faultList.size(), d.blockCount());
  std::printf("    identical detected sets : %s (%zu faults, %.1f%% "
              "coverage)\n",
              vres.detected == gold.detected ? "YES" : "NO",
              vres.detected.size(), 100 * vres.coverage());
  std::printf("    identical drop order    : %s\n",
              vres.detectedAfterPattern == gold.detectedAfterPattern ? "YES"
                                                                     : "NO");
  std::printf("    virtual: %.1f ms (%llu tables fetched, %llu cache hits, "
              "%llu injections) | serial: %.1f ms (%llu evaluations)\n",
              vWall * 1e3,
              static_cast<unsigned long long>(vres.detectionTablesRequested),
              static_cast<unsigned long long>(vres.tableCacheHits),
              static_cast<unsigned long long>(vres.injections), sWall * 1e3,
              static_cast<unsigned long long>(gold.faultSimEvaluations));
  std::printf("    IP-protection overhead  : %.1fx wall time\n",
              vWall / sWall);
}

void collapsingAblation() {
  std::printf("\n[2] fault collapsing ablation (per block)\n");
  std::printf("    %-6s | %9s | %12s | %16s | %19s\n", "block", "raw",
              "equivalence", "equiv+dominance", "avg table rows");
  printRule(80);
  const BlockDesign d = makeDesign();
  for (int b = 0; b < d.blockCount(); ++b) {
    const gate::Netlist& nl = d.blockNetlist(b);
    const auto universe = fault::enumerateFaults(nl, false, true);
    const auto eq = fault::collapseEquivalent(nl, universe);
    const auto dom = fault::collapseDominance(nl, eq);
    // Average detection-table row count over all input configurations.
    gate::NetlistEvaluator ev(nl);
    double rows = 0;
    const int configs = 1 << nl.inputCount();
    for (int v = 0; v < configs; ++v) {
      rows += static_cast<double>(
          fault::buildDetectionTable(ev, dom,
                                     Word::fromUint(nl.inputCount(),
                                                    static_cast<std::uint64_t>(v)))
              .rows()
              .size());
    }
    std::printf("    %-6s | %9zu | %12zu | %16zu | %19.1f\n",
                d.blockName(b).c_str(), universe.size(), eq.size(), dom.size(),
                rows / configs);
  }
}

void remoteProfileSweep() {
  std::printf("\n[3] remote IP block: detection-table traffic by network "
              "profile (16 patterns on the multiplier IP)\n");
  std::printf("    %-10s | %9s | %12s | %14s\n", "profile", "RMI calls",
              "bytes", "sim stall (ms)");
  printRule(60);
  for (const auto& profile :
       {net::NetworkProfile::localhost(), net::NetworkProfile::lan(),
        net::NetworkProfile::wan()}) {
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    rmi::RmiChannel channel(server, profile);
    ip::ProviderHandle provider(channel);

    const int w = 4;
    Circuit c("remoteFault");
    auto& a = c.makeWord(w, "a");
    auto& b = c.makeWord(w, "b");
    auto& o = c.makeWord(2 * w, "o");
    ip::RemoteConfig cfg;
    cfg.collectPower = false;
    auto& mult = c.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", w,
        std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, cfg);
    ip::RemoteFaultClient client(mult);

    const auto before = channel.stats();
    (void)client.faultList();
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
      (void)client.detectionTable(Word::fromUint(2 * w, rng.next()));
    }
    const auto after = channel.stats();
    std::printf("    %-10s | %9llu | %12llu | %14.2f\n", profile.name.c_str(),
                static_cast<unsigned long long>(after.calls - before.calls),
                static_cast<unsigned long long>(
                    after.bytesSent + after.bytesReceived - before.bytesSent -
                    before.bytesReceived),
                (after.blockingWallSec - before.blockingWallSec) * 1e3);
  }
}

void staticVsDynamic() {
  // The paper's core quantitative argument: shipping complete detection
  // information up front (a fault dictionary) grows exponentially with the
  // component's inputs, while a typical campaign touches only a few input
  // configurations — so dynamic per-pattern tables are the right exchange.
  std::printf("\n[4] static fault dictionary vs dynamic protocol "
              "(multiplier IP, 32-pattern campaign)\n");
  std::printf("    %-6s | %8s | %15s | %17s | %9s\n", "width", "configs",
              "dictionary (B)", "dynamic bytes (B)", "ratio");
  printRule(68);
  for (int w = 2; w <= 5; ++w) {
    const gate::Netlist nl = gate::makeArrayMultiplier(w);
    const auto collapsed = fault::collapseAll(nl, true, false, false);
    const auto dict = fault::FaultDictionary::build(nl, collapsed, 16);

    // Dynamic traffic: run the campaign against a remote instance and count
    // real bytes on the channel.
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
    ip::ProviderHandle provider(channel);
    Circuit c("d");
    auto& a = c.makeWord(w);
    auto& b = c.makeWord(w);
    auto& o = c.makeWord(2 * w);
    ip::RemoteConfig cfg;
    cfg.collectPower = false;
    auto& mult = c.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", static_cast<std::uint64_t>(w),
        std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, cfg);
    ip::RemoteFaultClient client(mult);
    const auto before = channel.stats();
    (void)client.faultList();
    Rng rng(13);
    for (int p = 0; p < 32; ++p) {
      (void)client.detectionTable(Word::fromUint(2 * w, rng.next()));
    }
    const auto after = channel.stats();
    const std::size_t dynamicBytes =
        after.bytesSent + after.bytesReceived - before.bytesSent -
        before.bytesReceived;
    std::printf("    %6d | %8llu | %15zu | %17zu | %8.1fx\n", w,
                static_cast<unsigned long long>(dict.tableCount()),
                dict.sizeBytes(), dynamicBytes,
                static_cast<double>(dict.sizeBytes()) /
                    static_cast<double>(dynamicBytes));
  }
  std::printf("    (the dictionary doubles per extra input bit; dynamic "
              "traffic stays bounded by the patterns actually applied)\n");
}

/// A heavier design for the thread sweep: two chained 4-bit multipliers and
/// a parity tree. Large per-block fault lists mean hundreds of injection
/// jobs per early pattern — enough work to shard across a pool.
BlockDesign makeHeavyDesign() {
  BlockDesign d;
  for (int i = 0; i < 8; ++i) d.addPrimaryInput("pi" + std::to_string(i));
  const int m1 = d.addBlock("M1", share(gate::makeArrayMultiplier(4)));
  const int m2 = d.addBlock("M2", share(gate::makeArrayMultiplier(4)));
  const int par = d.addBlock("PAR", share(gate::makeParityTree(8)));
  for (int i = 0; i < 8; ++i) d.connect({-1, i}, m1, i);
  for (int i = 0; i < 8; ++i) d.connect({m1, i}, m2, i);
  for (int i = 0; i < 8; ++i) d.connect({m2, i}, par, i);
  for (int i = 0; i < 8; ++i) d.markPrimaryOutput(m2, i);
  d.markPrimaryOutput(par, 0, "PARITY");
  return d;
}

void parallelCampaignSweep() {
  // --- thread sweep: injection wall time on a heavy three-block design ----
  const BlockDesign d = makeHeavyDesign();
  auto inst = d.instantiate();
  std::vector<std::unique_ptr<fault::LocalFaultBlock>> clients;
  for (int b = 0; b < d.blockCount(); ++b) {
    clients.push_back(std::make_unique<fault::LocalFaultBlock>(
        *inst.blockModules[static_cast<size_t>(b)], true,
        fault::FaultScope{false, true}));
  }
  std::vector<fault::FaultClient*> comps;
  for (auto& c : clients) comps.push_back(c.get());
  const auto pats = patterns(d.primaryInputCount(), 64);

  fault::CampaignResult sres;
  const double serialWall = wallOf([&] {
    fault::VirtualFaultSimulator vsim(*inst.circuit, comps, inst.piConns,
                                      inst.poConns);
    sres = vsim.runPacked(pats);
  });

  std::printf("\n[5] parallel campaign: thread sweep (64 patterns, %zu "
              "faults, %llu serial injections, serial engine = %.1f ms, "
              "host has %u hardware threads)\n",
              sres.faultList.size(),
              static_cast<unsigned long long>(sres.injections),
              serialWall * 1e3, std::thread::hardware_concurrency());
  std::printf("    %-8s | %10s | %8s | %10s | %9s\n", "threads",
              "wall (ms)", "speedup", "injections", "identical");
  printRule(60);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    fault::ParallelCampaignConfig cfg;
    cfg.threads = threads;
    cfg.batchSize = 4;
    fault::CampaignResult pres;
    const double wall = wallOf([&] {
      fault::ParallelFaultSimulator psim(*inst.circuit, comps, inst.piConns,
                                         inst.poConns, cfg);
      pres = psim.runPacked(pats);
    });
    const bool identical = pres.detected == sres.detected &&
                           pres.detectedAfterPattern == sres.detectedAfterPattern;
    std::printf("    %8zu | %10.1f | %7.2fx | %10llu | %9s\n", threads,
                wall * 1e3, serialWall / wall,
                static_cast<unsigned long long>(pres.injections),
                identical ? "YES" : "NO");
  }

  // --- batch sweep: WAN round trips for the remote multiplier IP ----------
  std::printf("\n[6] parallel campaign: GetDetectionTables batch sweep "
              "(16 patterns on the multiplier IP, WAN profile)\n");
  std::printf("    %-6s | %11s | %9s | %12s | %14s\n", "batch",
              "round trips", "RMI calls", "bytes", "sim stall (ms)");
  printRule(66);
  for (std::size_t batch : {1u, 2u, 4u, 8u}) {
    ip::ProviderServer server("provider.host", nullptr);
    registerMultiplier(server);
    rmi::RmiChannel channel(server, net::NetworkProfile::wan());
    ip::ProviderHandle provider(channel);

    const int w = 4;
    Circuit c("remoteFault");
    auto& a = c.makeWord(w, "a");
    auto& b = c.makeWord(w, "b");
    auto& o = c.makeWord(2 * w, "o");
    ip::RemoteConfig rcfg;
    rcfg.collectPower = false;
    auto& mult = c.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", w,
        std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, rcfg);
    ip::RemoteFaultClient client(mult);

    std::vector<std::vector<Word>> pats2;
    Rng rng(21);
    for (int i = 0; i < 16; ++i) {
      pats2.push_back(
          {Word::fromUint(w, rng.next()), Word::fromUint(w, rng.next())});
    }
    fault::ParallelCampaignConfig cfg;
    cfg.threads = 1;  // isolate the batching effect
    cfg.batchSize = batch;
    fault::ParallelFaultSimulator psim(c, {&client}, {&a, &b}, {&o}, cfg);
    const auto before = channel.stats();
    const auto res = psim.run(pats2);
    const auto after = channel.stats();
    std::printf("    %6zu | %11llu | %9llu | %12llu | %14.2f\n", batch,
                static_cast<unsigned long long>(res.tableFetchRoundTrips),
                static_cast<unsigned long long>(after.calls - before.calls),
                static_cast<unsigned long long>(
                    after.bytesSent + after.bytesReceived - before.bytesSent -
                    before.bytesReceived),
                (after.blockingWallSec - before.blockingWallSec) * 1e3);
  }
  std::printf("    (one GetDetectionTables message pair serves the whole "
              "batch; stall shrinks with the per-call WAN latency)\n");
}

void BM_DetectionTable(benchmark::State& state) {
  const auto nl = gate::makeArrayMultiplier(static_cast<int>(state.range(0)));
  gate::NetlistEvaluator ev(nl);
  const auto collapsed = fault::collapseAll(nl, true, false, false);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::buildDetectionTable(
        ev, collapsed, Word::fromUint(nl.inputCount(), rng.next())));
  }
  state.counters["faults"] = static_cast<double>(collapsed.size());
}
BENCHMARK(BM_DetectionTable)->Arg(2)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

void BM_SerialFaultSim(benchmark::State& state) {
  const auto nl = gate::makeArrayMultiplier(4);
  const auto pats = patterns(nl.inputCount(), 16);
  for (auto _ : state) {
    fault::SerialFaultSimulator serial(nl, true);
    benchmark::DoNotOptimize(serial.run(pats).detected.size());
  }
}
BENCHMARK(BM_SerialFaultSim)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  std::printf("\nFault-simulation ablations (Figures 4/5 machinery at scale)\n");
  vcad::bench::virtualVsSerial();
  vcad::bench::collapsingAblation();
  vcad::bench::remoteProfileSweep();
  vcad::bench::staticVsDynamic();
  vcad::bench::parallelCampaignSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
