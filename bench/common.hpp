// Shared scenario builders for the benchmark harness: the paper's Figure 2
// circuit (random inputs -> registers -> 16-bit multiplier -> output) in the
// three evaluation configurations (AL: all local, ER: estimator remote,
// MR: multiplier remote), plus table-printing helpers.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_controller.hpp"
#include "estim/power_estimators.hpp"
#include "gate/generators.hpp"
#include "ip/remote_component.hpp"
#include "net/cpu_timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtl/modules.hpp"

namespace vcad::bench {

/// Writes the run's observability artifacts: the aggregated metrics
/// snapshot to "<prefix>_metrics.json" and the span/event stream to
/// "<prefix>_trace.json" in Chrome trace-event format (loadable in
/// chrome://tracing or ui.perfetto.dev). Call once at the end of main,
/// after enabling the tracer at startup with obs::Tracer::global()
/// .setEnabled(true).
inline void writeObsArtifacts(const std::string& prefix) {
  const auto writeFile = [](const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  };
  writeFile(prefix + "_metrics.json",
            obs::Registry::global().snapshot().toJson());
  writeFile(prefix + "_trace.json", obs::Tracer::global().toChromeJson());
}

inline ip::PublicPart multiplierPublicPart(std::uint64_t w) {
  ip::PublicPart pub;
  pub.functional = [w](const Word& in, const rmi::Sandbox&) {
    const int width = static_cast<int>(w);
    const Word a = in.slice(0, width);
    const Word b = in.slice(width, width);
    if (!a.isFullyKnown() || !b.isFullyKnown()) return Word::allX(2 * width);
    return Word::fromUint(2 * width, a.toUint() * b.toUint());
  };
  return pub;
}

/// Registers the paper's multiplier on a provider with full dynamic models.
inline void registerMultiplier(ip::ProviderServer& server,
                               double staticPowerMw = 25.0,
                               bool linearModel = false,
                               estim::LinearPowerModel lin = {}) {
  ip::IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.description = "high-performance low-power multiplier";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ip::ModelLevel::Static;
  spec.power = ip::ModelLevel::Dynamic;
  spec.timing = ip::ModelLevel::Dynamic;
  spec.area = ip::ModelLevel::Dynamic;
  spec.testability = ip::ModelLevel::Dynamic;
  spec.staticPowerMw = staticPowerMw;
  spec.hasLinearPowerModel = linearModel;
  spec.linearPower = lin;
  spec.fees.perPowerPatternCents = 0.1;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      multiplierPublicPart);
}

enum class Scenario { AllLocal, EstimatorRemote, MultiplierRemote };

inline const char* toString(Scenario s) {
  switch (s) {
    case Scenario::AllLocal:
      return "All local";
    case Scenario::EstimatorRemote:
      return "Estimator remote";
    case Scenario::MultiplierRemote:
      return "Multiplier remote";
  }
  return "?";
}

/// Endpoint decorator reproducing the paper's Figure-3 methodology: the
/// actual gate-level (PPP) power computation is disabled, so EstimatePower
/// answers instantly with a constant — all remaining cost is pure RMI
/// overhead (marshalling, wire time, dispatch). The paper's Table 2 also
/// reports times with the PPP estimation time excluded.
class PowerComputeStub final : public rmi::ServerEndpoint,
                               public ip::PublicPartSource {
 public:
  explicit PowerComputeStub(ip::ProviderServer& inner) : inner_(inner) {}

  ip::PublicPart downloadPublicPart(const std::string& component,
                                    std::uint64_t param) const override {
    return inner_.downloadPublicPart(component, param);
  }

  rmi::Response dispatch(const rmi::Request& request) override {
    if (request.method == rmi::MethodId::EstimatePower) {
      rmi::Args args = request.args;
      const auto patterns = args.takeWordVector();
      rmi::Response r;
      r.payload.writeDouble(25.0);
      r.payload.writeU64(patterns.size());
      return r;
    }
    return inner_.dispatch(request);
  }
  std::string hostName() const override { return inner_.hostName(); }

 private:
  ip::ProviderServer& inner_;
};

/// One Figure-2 run. Owns everything (provider, channel, circuit).
class Figure2Run {
 public:
  static constexpr int kWidth = 16;

  /// `serverWorkFactor` calibrates per-call provider compute to the
  /// paper's heavyweight (JVM + Verilog-XL) server, so the compute/
  /// communication ratio is era-faithful even though our netlist evaluator
  /// is orders of magnitude faster.
  Figure2Run(Scenario scenario, net::NetworkProfile profile,
             std::size_t nPatterns, std::size_t bufferCapacity,
             bool stubPowerCompute = true, int serverWorkFactor = 150)
      : scenario_(scenario) {
    server_ = std::make_unique<ip::ProviderServer>("provider.host", nullptr);
    server_->setComputeScale(serverWorkFactor);
    registerMultiplier(*server_);
    if (stubPowerCompute) {
      stub_ = std::make_unique<PowerComputeStub>(*server_);
    }
    channel_ = std::make_unique<rmi::RmiChannel>(
        stub_ != nullptr ? static_cast<rmi::ServerEndpoint&>(*stub_)
                         : static_cast<rmi::ServerEndpoint&>(*server_),
        std::move(profile));

    A_ = &c_.makeWord(kWidth, "A");
    AR_ = &c_.makeWord(kWidth, "AR");
    B_ = &c_.makeWord(kWidth, "B");
    BR_ = &c_.makeWord(kWidth, "BR");
    O_ = &c_.makeWord(2 * kWidth, "O");
    c_.make<rtl::RandomPrimaryInput>("INA", kWidth, *A_, nPatterns, 10, 0xA11CE);
    c_.make<rtl::Register>("REGA", *A_, *AR_);
    c_.make<rtl::RandomPrimaryInput>("INB", kWidth, *B_, nPatterns, 10, 0xB0B);
    c_.make<rtl::Register>("REGB", *B_, *BR_);

    if (scenario == Scenario::AllLocal) {
      // Classical design with no IP protection: the multiplier runs as a
      // plain local behavioral module; patterns still buffer locally so the
      // workload per pattern matches the remote cases.
      localMult_ = &c_.make<LocalBufferedMultiplier>(
          "MULT", kWidth, *AR_, *BR_, *O_, bufferCapacity);
    } else {
      provider_ = std::make_unique<ip::ProviderHandle>(*channel_);
      ip::RemoteConfig cfg;
      cfg.mode = scenario == Scenario::MultiplierRemote
                     ? ip::RemoteMode::FullyRemote
                     : ip::RemoteMode::EstimatorRemote;
      cfg.patternBufferCapacity = bufferCapacity;
      cfg.nonblockingEstimation = false;  // Table 2 / Figure 3 measure the
                                          // blocking RMI overhead
      cfg.collectPower = scenario == Scenario::EstimatorRemote;
      remoteMult_ = &c_.make<ip::RemoteComponent>(
          "MULT", *provider_, "MultFastLowPower", kWidth,
          std::vector<std::pair<std::string, Connector*>>{{"a", AR_},
                                                          {"b", BR_}},
          std::vector<std::pair<std::string, Connector*>>{{"o", O_}}, cfg);
    }
    out_ = &c_.make<rtl::PrimaryOutput>("OUT", *O_);
  }

  struct Result {
    double clientCpuSec = 0.0;   // client compute only (server time removed)
    double serverCpuSec = 0.0;
    double realSec = 0.0;        // client CPU + simulated stall
    std::uint64_t rmiCalls = 0;
    std::uint64_t bytes = 0;
    std::size_t samples = 0;
  };

  /// Runs the simulation `repeats` times and reports per-run averages.
  /// Compute is timed with a monotonic clock around the whole batch (the
  /// per-run cost sits below kernel CPU-accounting granularity).
  Result run(int repeats = 1) {
    const auto before = channel_->stats();
    const auto start = std::chrono::steady_clock::now();
    std::size_t samples = 0;
    for (int i = 0; i < repeats; ++i) {
      SimulationController sim(c_);
      sim.start();
      SimContext ctx{sim.scheduler(), nullptr};
      if (remoteMult_ != nullptr && scenario_ != Scenario::AllLocal) {
        (void)remoteMult_->finishPowerEstimation(ctx);
      }
      samples = out_->sampleCount(ctx);
      c_.clearSchedulerState(sim.scheduler().id());
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const auto after = channel_->stats();

    Result r;
    const double n = repeats;
    // The in-process server executes on the client thread; subtract its
    // measured compute to get the client-side CPU the paper reports. The
    // simulated network never sleeps, so wall time == compute time.
    r.serverCpuSec = (after.serverCpuSec - before.serverCpuSec) / n;
    r.clientCpuSec = wall / n - r.serverCpuSec;
    if (r.clientCpuSec < 0) r.clientCpuSec = 0;
    r.realSec = r.clientCpuSec +
                (after.blockingWallSec - before.blockingWallSec) / n +
                (after.nonblockingWallSec - before.nonblockingWallSec) / n;
    r.rmiCalls = (after.calls - before.calls) / static_cast<std::uint64_t>(repeats);
    r.bytes = (after.bytesSent + after.bytesReceived - before.bytesSent -
               before.bytesReceived) /
              static_cast<std::uint64_t>(repeats);
    r.samples = samples;
    return r;
  }

  rmi::RmiChannel& channel() { return *channel_; }
  ip::ProviderServer& server() { return *server_; }

 private:
  /// AL-mode multiplier: behavioral product plus the same local pattern
  /// buffering the remote flow performs (so AL vs ER compares fairly).
  class LocalBufferedMultiplier final : public Module {
   public:
    LocalBufferedMultiplier(std::string name, int width, Connector& a,
                            Connector& b, Connector& o, std::size_t cap)
        : Module(std::move(name)), width_(width), cap_(cap) {
      a_ = &addInput("a", a);
      b_ = &addInput("b", b);
      o_ = &addOutput("o", o);
    }
    void processInputEvent(const SignalToken&, SimContext& ctx) override {
      State& st = state<State>(ctx);
      if (st.pending) return;
      st.pending = true;
      selfSchedule(ctx, 0);
    }
    void processSelfEvent(const SelfToken&, SimContext& ctx) override {
      State& st = state<State>(ctx);
      st.pending = false;
      const Word a = readInput(ctx, *a_);
      const Word b = readInput(ctx, *b_);
      if (!st.buffer) st.buffer = std::make_unique<estim::PatternBuffer>(cap_);
      if (a.isFullyKnown() && b.isFullyKnown()) {
        if (st.buffer->push(Word::concat(b, a))) {
          (void)st.buffer->flush();  // local "estimation" batch boundary
        }
        emit(ctx, *o_, Word::fromUint(2 * width_, a.toUint() * b.toUint()));
      } else {
        emit(ctx, *o_, Word::allX(2 * width_));
      }
    }

   private:
    struct State : ModuleState {
      bool pending = false;
      std::unique_ptr<estim::PatternBuffer> buffer;
    };
    int width_;
    std::size_t cap_;
    Port* a_;
    Port* b_;
    Port* o_;
  };

  Scenario scenario_;
  std::unique_ptr<ip::ProviderServer> server_;
  std::unique_ptr<PowerComputeStub> stub_;
  std::unique_ptr<rmi::RmiChannel> channel_;
  std::unique_ptr<ip::ProviderHandle> provider_;
  Circuit c_{"figure2"};
  Connector* A_;
  Connector* AR_;
  Connector* B_;
  Connector* BR_;
  Connector* O_;
  Module* localMult_ = nullptr;
  ip::RemoteComponent* remoteMult_ = nullptr;
  rtl::PrimaryOutput* out_ = nullptr;
};

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace vcad::bench
