// Ablation bench for the *sequential* extension of virtual fault
// simulation (the paper: "extensions to general fault models and sequential
// circuits are also feasible").
//
//   1. Coverage vs. sequence length on canonical machines (counter, LFSR,
//      accumulator): sequential faults need cycles to excite and observe.
//   2. Protocol cost of the shadow-machine protocol when the machine is a
//      remote IP block, per network profile.
//   3. Fault dropping: shadow steps actually executed vs. the naive
//      |faults| x |cycles| bound.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common.hpp"
#include "fault/seq_fault.hpp"

namespace vcad::bench {
namespace {

std::vector<Word> stimulus(int width, int cycles, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < cycles; ++i) {
    // Keep enable mostly on so the machines make progress.
    Word w = Word::fromUint(width, rng.next());
    w.setBit(0, rng.chance(0.85) ? Logic::L1 : Logic::L0);
    out.push_back(w);
  }
  return out;
}

void coverageVsCycles() {
  std::printf("\n[1] coverage vs sequence length (local machines)\n");
  std::printf("    %-12s | %7s |", "machine", "faults");
  for (int cycles : {2, 5, 10, 20, 40}) std::printf(" %5d cy |", cycles);
  std::printf("\n");
  printRule(70);

  struct M {
    const char* name;
    gate::SeqNetlist machine;
  };
  std::vector<M> machines;
  machines.push_back({"counter8", gate::makeCounter(8)});
  machines.push_back({"lfsr8", gate::makeLfsr(8, 0b10111000)});
  machines.push_back({"accum4", gate::makeAccumulator(4)});

  for (auto& m : machines) {
    std::printf("    %-12s |", m.name);
    fault::LocalSeqFaultBlock probe(m.machine);
    std::printf(" %7zu |", probe.faultList().size());
    for (int cycles : {2, 5, 10, 20, 40}) {
      fault::LocalSeqFaultBlock block(m.machine);
      const auto res = fault::runSeqCampaign(
          block, stimulus(m.machine.inputBits(), cycles, 7));
      std::printf(" %7.1f%% |", 100 * res.coverage());
    }
    std::printf("\n");
  }
}

void remoteProtocolCost() {
  std::printf("\n[2] remote shadow-machine protocol cost (counter8, 20 "
              "cycles)\n");
  std::printf("    %-10s | %9s | %10s | %14s | %10s\n", "profile", "RMI calls",
              "bytes", "sim stall (ms)", "coverage");
  printRule(70);
  for (const auto& profile :
       {net::NetworkProfile::localhost(), net::NetworkProfile::lan(),
        net::NetworkProfile::wan()}) {
    ip::ProviderServer server("seq.provider", nullptr);
    ip::IpComponentSpec spec;
    spec.name = "CounterIp";
    spec.minWidth = 1;
    spec.maxWidth = 16;
    spec.testability = ip::ModelLevel::Dynamic;
    server.registerSequentialComponent(spec, [](std::uint64_t w) {
      return gate::makeCounter(static_cast<int>(w));
    });
    rmi::RmiChannel channel(server, profile);
    ip::ProviderHandle provider(channel);
    ip::RemoteSeqFaultClient remote(provider, "CounterIp", 8);
    const auto before = channel.stats();
    const auto res = fault::runSeqCampaign(remote, stimulus(1, 20, 7));
    const auto after = channel.stats();
    std::printf("    %-10s | %9llu | %10llu | %14.2f | %9.1f%%\n",
                profile.name.c_str(),
                static_cast<unsigned long long>(after.calls - before.calls),
                static_cast<unsigned long long>(
                    after.bytesSent + after.bytesReceived - before.bytesSent -
                    before.bytesReceived),
                (after.blockingWallSec - before.blockingWallSec) * 1e3,
                100 * res.coverage());
  }
}

void faultDropping() {
  std::printf("\n[3] sequential fault dropping\n");
  const gate::SeqNetlist machine = gate::makeLfsr(8, 0b10111000);
  fault::LocalSeqFaultBlock block(machine);
  const int cycles = 40;
  const auto res = fault::runSeqCampaign(block, stimulus(1, cycles, 11));
  const std::uint64_t naive =
      static_cast<std::uint64_t>(res.faultList.size()) * cycles;
  std::printf("    shadow steps executed : %llu of naive bound %llu "
              "(%.0f%% saved by dropping at first divergence)\n",
              static_cast<unsigned long long>(res.faultySteps),
              static_cast<unsigned long long>(naive),
              100.0 * (1.0 - static_cast<double>(res.faultySteps) /
                                 static_cast<double>(naive)));
}

void BM_SeqCampaignLocal(benchmark::State& state) {
  const gate::SeqNetlist machine =
      gate::makeCounter(static_cast<int>(state.range(0)));
  const auto seq = stimulus(1, 20, 5);
  for (auto _ : state) {
    fault::LocalSeqFaultBlock block(machine);
    benchmark::DoNotOptimize(fault::runSeqCampaign(block, seq).coverage());
  }
}
BENCHMARK(BM_SeqCampaignLocal)->Arg(4)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace vcad::bench

int main(int argc, char** argv) {
  std::printf("\nSequential virtual fault simulation (paper extension)\n");
  vcad::bench::coverageVsCycles();
  vcad::bench::remoteProtocolCost();
  vcad::bench::faultDropping();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
