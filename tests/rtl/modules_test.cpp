#include "rtl/modules.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "core/wiring.hpp"

namespace vcad::rtl {
namespace {

TEST(RandomPrimaryInput, EmitsExactlyCountPatterns) {
  Circuit top("top");
  auto& c = top.makeWord(16);
  top.make<RandomPrimaryInput>("in", 16, c, 25, 10, 7);
  auto& out = top.make<PrimaryOutput>("out", c);
  SimulationController sim(top);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  EXPECT_EQ(out.sampleCount(ctx), 25u);
  // Patterns arrive every `period` ticks starting at 0.
  EXPECT_EQ(out.history(ctx).front().time, 0u);
  EXPECT_EQ(out.history(ctx).back().time, 240u);
}

TEST(RandomPrimaryInput, DeterministicAcrossSchedulers) {
  Circuit top("top");
  auto& c = top.makeWord(16);
  top.make<RandomPrimaryInput>("in", 16, c, 10, 10, 42);
  auto& out = top.make<PrimaryOutput>("out", c);
  SimulationController s1(top), s2(top);
  s1.start();
  s2.start();
  SimContext c1{s1.scheduler(), nullptr}, c2{s2.scheduler(), nullptr};
  ASSERT_EQ(out.sampleCount(c1), out.sampleCount(c2));
  for (size_t i = 0; i < out.history(c1).size(); ++i) {
    EXPECT_EQ(out.history(c1)[i].value, out.history(c2)[i].value);
  }
}

TEST(RandomPrimaryInput, DifferentSeedsDifferentStreams) {
  Circuit top("top");
  auto& c1 = top.makeWord(32);
  auto& c2 = top.makeWord(32);
  top.make<RandomPrimaryInput>("in1", 32, c1, 5, 10, 1);
  top.make<RandomPrimaryInput>("in2", 32, c2, 5, 10, 2);
  auto& o1 = top.make<PrimaryOutput>("o1", c1);
  auto& o2 = top.make<PrimaryOutput>("o2", c2);
  SimulationController sim(top);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  bool anyDifferent = false;
  for (size_t i = 0; i < 5; ++i) {
    if (o1.history(ctx)[i].value != o2.history(ctx)[i].value) {
      anyDifferent = true;
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(RandomPrimaryInput, BadArgsRejected) {
  Circuit top("top");
  auto& c = top.makeWord(16);
  EXPECT_THROW(top.make<RandomPrimaryInput>("in", 8, c, 5),
               std::invalid_argument);
  EXPECT_THROW(top.make<RandomPrimaryInput>("in2", 16, top.makeWord(16), 5, 0),
               std::invalid_argument);
}

TEST(Register, LatchModeDelaysOneTick) {
  Circuit top("top");
  auto& d = top.makeWord(8);
  auto& q = top.makeWord(8);
  top.make<Register>("reg", d, q);
  SimulationController sim(top);
  sim.inject(d, Word::fromUint(8, 0x3C));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(), 1u);
  EXPECT_EQ(q.value(sim.scheduler().id()).toUint(), 0x3Cu);
}

TEST(Register, ClockedModeSamplesOnRisingEdgeOnly) {
  Circuit top("top");
  auto& d = top.makeWord(8);
  auto& q = top.makeWord(8);
  auto& clk = top.makeBit();
  top.make<Register>("reg", d, q, &clk);
  SimulationController sim(top);
  const auto id = sim.scheduler().id();

  sim.inject(d, Word::fromUint(8, 0xAA), 0);
  sim.inject(clk, Word::fromLogic(Logic::L0), 1);
  sim.inject(clk, Word::fromLogic(Logic::L1), 2);  // rising: captures 0xAA
  sim.inject(d, Word::fromUint(8, 0xBB), 3);
  sim.inject(clk, Word::fromLogic(Logic::L0), 4);  // falling: no capture
  sim.start();
  EXPECT_EQ(q.value(id).toUint(), 0xAAu);

  sim.inject(clk, Word::fromLogic(Logic::L1), 1);  // next rising edge
  sim.start();
  EXPECT_EQ(q.value(id).toUint(), 0xBBu);
}

TEST(Register, WidthMismatchRejected) {
  Circuit top("top");
  auto& d = top.makeWord(8);
  auto& q = top.makeWord(4);
  EXPECT_THROW(top.make<Register>("reg", d, q), std::invalid_argument);
}

TEST(WordMultiplier, ComputesProduct) {
  Circuit top("top");
  auto& a = top.makeWord(16);
  auto& b = top.makeWord(16);
  auto& o = top.makeWord(32);
  top.make<WordMultiplier>("mult", 16, a, b, o);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(16, 1234));
  sim.inject(b, Word::fromUint(16, 567));
  sim.start();
  EXPECT_EQ(o.value(sim.scheduler().id()).toUint(), 1234u * 567u);
}

TEST(WordMultiplier, UnknownOperandGivesX) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& o = top.makeWord(16);
  top.make<WordMultiplier>("mult", 8, a, b, o);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 5));
  sim.start();
  EXPECT_FALSE(o.value(sim.scheduler().id()).isFullyKnown());
}

TEST(WordMultiplier, LatencyDelaysResult) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& o = top.makeWord(16);
  top.make<WordMultiplier>("mult", 8, a, b, o, 5);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 3));
  sim.inject(b, Word::fromUint(8, 4));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(), 5u);
  EXPECT_EQ(o.value(sim.scheduler().id()).toUint(), 12u);
}

TEST(WordAdder, ComputesSumWithCarryWidth) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& s = top.makeWord(9);
  top.make<WordAdder>("add", 8, a, b, s);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 200));
  sim.inject(b, Word::fromUint(8, 100));
  sim.start();
  EXPECT_EQ(s.value(sim.scheduler().id()).toUint(), 300u);
}

TEST(Alu, AllOps) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& op = top.makeWord(3);
  auto& y = top.makeWord(8);
  top.make<Alu>("alu", 8, a, b, op, y);
  SimulationController sim(top);
  const auto id = sim.scheduler().id();
  const std::uint64_t av = 0xC5, bv = 0x3A;
  struct Case {
    AluOp op;
    std::uint64_t expect;
  };
  const Case cases[] = {
      {AluOp::Add, (av + bv) & 0xFF}, {AluOp::Sub, (av - bv) & 0xFF},
      {AluOp::And, av & bv},          {AluOp::Or, av | bv},
      {AluOp::Xor, av ^ bv},          {AluOp::Nor, ~(av | bv) & 0xFF},
      {AluOp::Pass, av},
  };
  for (const Case& c : cases) {
    sim.inject(a, Word::fromUint(8, av));
    sim.inject(b, Word::fromUint(8, bv));
    sim.inject(op, Word::fromUint(3, static_cast<std::uint64_t>(c.op)));
    sim.start();
    EXPECT_EQ(y.value(id).toUint(), c.expect)
        << "op=" << static_cast<int>(c.op);
  }
}

TEST(Mux2, SelectsOperand) {
  Circuit top("top");
  auto& a = top.makeWord(4);
  auto& b = top.makeWord(4);
  auto& sel = top.makeBit();
  auto& y = top.makeWord(4);
  top.make<Mux2>("mux", 4, a, b, sel, y);
  SimulationController sim(top);
  const auto id = sim.scheduler().id();
  sim.inject(a, Word::fromUint(4, 0x3));
  sim.inject(b, Word::fromUint(4, 0xC));
  sim.inject(sel, Word::fromLogic(Logic::L0));
  sim.start();
  EXPECT_EQ(y.value(id).toUint(), 0x3u);
  sim.inject(sel, Word::fromLogic(Logic::L1));
  sim.start();
  EXPECT_EQ(y.value(id).toUint(), 0xCu);
}

TEST(ClockGenerator, ProducesRequestedCycles) {
  Circuit top("top");
  auto& clk = top.makeBit();
  top.make<ClockGenerator>("clk", clk, 5, 3);
  struct EdgeCounter : Module {
    EdgeCounter(std::string n, Connector& in) : Module(std::move(n)) {
      addInput("in", in);
    }
    void processInputEvent(const SignalToken& t, SimContext&) override {
      if (t.value().scalar() == Logic::L1) ++rising;
      ++events;
    }
    int rising = 0;
    int events = 0;
  };
  auto& cnt = top.make<EdgeCounter>("cnt", clk);
  SimulationController sim(top);
  sim.start();
  EXPECT_EQ(cnt.rising, 3);
  EXPECT_EQ(cnt.events, 6);
  EXPECT_EQ(sim.scheduler().now(), 25u);
}

TEST(ClockGenerator, DrivesClockedRegisterPipeline) {
  // Clock + register: a full synchronous path.
  Circuit top("top");
  auto& clk = top.makeBit();
  auto& d = top.makeWord(8);
  auto& q = top.makeWord(8);
  top.make<ClockGenerator>("clk", clk, 5, 4);
  auto& fan = top.makeBit();
  top.make<Buffer>("clkbuf", clk, fan);
  top.make<Register>("reg", d, q, &fan);
  SimulationController sim(top);
  sim.inject(d, Word::fromUint(8, 0x77));
  sim.start();
  EXPECT_EQ(q.value(sim.scheduler().id()).toUint(), 0x77u);
}

TEST(SplitterMerger, RoundTripWord) {
  Circuit top("top");
  auto& in = top.makeWord(4);
  std::vector<Connector*> bits;
  for (int i = 0; i < 4; ++i) bits.push_back(&top.makeBit());
  auto& out = top.makeWord(4);
  top.make<Splitter>("split", in, bits);
  top.make<Merger>("merge", bits, out);
  SimulationController sim(top);
  sim.inject(in, Word::fromUint(4, 0xB));
  sim.start();
  EXPECT_EQ(out.value(sim.scheduler().id()).toUint(), 0xBu);
}

TEST(SplitterMerger, ShapeValidation) {
  Circuit top("top");
  auto& w = top.makeWord(4);
  std::vector<Connector*> tooFew{&top.makeBit()};
  EXPECT_THROW(top.make<Splitter>("s", w, tooFew), std::invalid_argument);
  EXPECT_THROW(top.make<Merger>("m", tooFew, w), std::invalid_argument);
}

}  // namespace
}  // namespace vcad::rtl
