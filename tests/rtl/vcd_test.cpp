#include "rtl/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"

namespace vcad::rtl {
namespace {

TEST(Vcd, HeaderAndDeclarations) {
  VcdWriter vcd("10ps");
  vcd.addTrack("clk", 1);
  vcd.addTrack("bus", 8);
  std::ostringstream os;
  vcd.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 10ps $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 \" bus [7:0] $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, ScalarAndVectorChanges) {
  VcdWriter vcd;
  const int clk = vcd.addTrack("clk", 1);
  const int bus = vcd.addTrack("bus", 4);
  vcd.addChange(clk, 0, Word::fromLogic(Logic::L0));
  vcd.addChange(bus, 0, Word::fromUint(4, 0xA));
  vcd.addChange(clk, 5, Word::fromLogic(Logic::L1));
  vcd.addChange(bus, 5, Word::fromString("1X0Z"));
  std::ostringstream os;
  vcd.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("#0\n"), std::string::npos);
  EXPECT_NE(out.find("0!"), std::string::npos);
  EXPECT_NE(out.find("b1010 \""), std::string::npos);
  EXPECT_NE(out.find("#5\n"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);
  EXPECT_NE(out.find("b1x0z \""), std::string::npos);
}

TEST(Vcd, DeduplicatesRepeatedValues) {
  VcdWriter vcd;
  const int t = vcd.addTrack("sig", 1);
  vcd.addChange(t, 0, Word::fromLogic(Logic::L1));
  vcd.addChange(t, 5, Word::fromLogic(Logic::L1));  // no change
  vcd.addChange(t, 9, Word::fromLogic(Logic::L0));
  std::ostringstream os;
  vcd.write(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("#5"), std::string::npos);  // silent timestep skipped
  EXPECT_NE(out.find("#9"), std::string::npos);
}

TEST(Vcd, WidthChecked) {
  VcdWriter vcd;
  const int t = vcd.addTrack("sig", 4);
  EXPECT_THROW(vcd.addChange(t, 0, Word::fromUint(8, 0)),
               std::invalid_argument);
  EXPECT_THROW(vcd.addTrack("bad", 0), std::invalid_argument);
}

TEST(Vcd, ManyTracksGetDistinctIds) {
  VcdWriter vcd;
  for (int i = 0; i < 200; ++i) {
    vcd.addTrack("t" + std::to_string(i), 1);
  }
  std::ostringstream os;
  vcd.write(os);
  // 200 > 94 forces multi-character identifiers; just check both extremes
  // declared.
  EXPECT_NE(os.str().find("t0 $end"), std::string::npos);
  EXPECT_NE(os.str().find("t199 $end"), std::string::npos);
}

TEST(Vcd, FromPrimaryOutputHistory) {
  Circuit top("top");
  auto& c = top.makeWord(8);
  top.make<RandomPrimaryInput>("in", 8, c, 10, 7, 3);
  auto& out = top.make<PrimaryOutput>("out", c);
  SimulationController sim(top);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};

  VcdWriter vcd;
  vcd.addTrack("stream", out, ctx);
  std::ostringstream os;
  vcd.write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("$var wire 8"), std::string::npos);
  EXPECT_NE(text.find("#0\n"), std::string::npos);
  EXPECT_NE(text.find("#63\n"), std::string::npos);  // last pattern at 9*7
}

}  // namespace
}  // namespace vcad::rtl
