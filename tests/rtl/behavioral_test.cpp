#include "rtl/behavioral.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "rtl/modules.hpp"

namespace vcad::rtl {
namespace {

TEST(Behavioral, CombinationalBehaviourFollowsInputs) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& y = top.makeWord(8);
  top.make<BehavioralProcess>(
      "max", std::vector<std::pair<std::string, Connector*>>{{"a", &a},
                                                             {"b", &b}},
      std::vector<std::pair<std::string, Connector*>>{{"y", &y}},
      [](BehavioralProcess::Activation& act) {
        const Word& x = act.inputs()[0];
        const Word& z = act.inputs()[1];
        if (!x.isFullyKnown() || !z.isFullyKnown()) return;
        act.drive(0, x.toUint() > z.toUint() ? x : z);
      });
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 12));
  sim.inject(b, Word::fromUint(8, 200));
  sim.start();
  EXPECT_EQ(y.value(sim.scheduler().id()).toUint(), 200u);
  sim.inject(a, Word::fromUint(8, 201));
  sim.start();
  EXPECT_EQ(y.value(sim.scheduler().id()).toUint(), 201u);
}

TEST(Behavioral, SimultaneousInputsCoalesceToOneActivation) {
  Circuit top("top");
  auto& a = top.makeWord(4);
  auto& b = top.makeWord(4);
  auto& y = top.makeWord(8);
  int activations = 0;
  top.make<BehavioralProcess>(
      "count",
      std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
      std::vector<std::pair<std::string, Connector*>>{{"y", &y}},
      [&activations](BehavioralProcess::Activation&) { ++activations; });
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(4, 1));
  sim.inject(b, Word::fromUint(4, 2));
  sim.start();
  EXPECT_EQ(activations, 1);
}

TEST(Behavioral, StatefulAccumulatorViaMemory) {
  Circuit top("top");
  auto& d = top.makeWord(8);
  auto& sum = top.makeWord(16);
  top.make<BehavioralProcess>(
      "acc", std::vector<std::pair<std::string, Connector*>>{{"d", &d}},
      std::vector<std::pair<std::string, Connector*>>{{"sum", &sum}},
      [](BehavioralProcess::Activation& act) {
        Word& mem = act.memory(0, 16);
        const std::uint64_t prev = mem.isFullyKnown() ? mem.toUint() : 0;
        if (!act.inputs()[0].isFullyKnown()) return;
        mem = Word::fromUint(16, prev + act.inputs()[0].toUint());
        act.drive(0, mem);
      });
  SimulationController sim(top);
  for (std::uint64_t v : {10u, 20u, 30u}) {
    sim.inject(d, Word::fromUint(8, v));
    sim.start();
  }
  EXPECT_EQ(sum.value(sim.scheduler().id()).toUint(), 60u);
}

TEST(Behavioral, MemoryIsPerScheduler) {
  Circuit top("top");
  auto& d = top.makeWord(8);
  auto& sum = top.makeWord(16);
  top.make<BehavioralProcess>(
      "acc", std::vector<std::pair<std::string, Connector*>>{{"d", &d}},
      std::vector<std::pair<std::string, Connector*>>{{"sum", &sum}},
      [](BehavioralProcess::Activation& act) {
        Word& mem = act.memory(0, 16);
        const std::uint64_t prev = mem.isFullyKnown() ? mem.toUint() : 0;
        mem = Word::fromUint(16, prev + act.inputs()[0].toUint());
        act.drive(0, mem);
      });
  SimulationController s1(top), s2(top);
  s1.inject(d, Word::fromUint(8, 5));
  s1.start();
  s2.inject(d, Word::fromUint(8, 7));
  s2.start();
  EXPECT_EQ(sum.value(s1.scheduler().id()).toUint(), 5u);
  EXPECT_EQ(sum.value(s2.scheduler().id()).toUint(), 7u);
}

TEST(Behavioral, PeriodicProcessGeneratesTraffic) {
  Circuit top("top");
  auto& y = top.makeWord(8);
  top.make<BehavioralProcess>(
      "gen", std::vector<std::pair<std::string, Connector*>>{},
      std::vector<std::pair<std::string, Connector*>>{{"y", &y}},
      [](BehavioralProcess::Activation& act) {
        Word& count = act.memory(0, 8);
        const std::uint64_t prev = count.isFullyKnown() ? count.toUint() : 0;
        if (prev >= 5) return;  // stop after five beats
        count = Word::fromUint(8, prev + 1);
        act.drive(0, count);
      },
      /*period=*/10);
  auto& out = top.make<PrimaryOutput>("out", y);
  SimulationController sim(top);
  sim.scheduler().runUntil(200);
  sim.initialize();
  sim.scheduler().runUntil(200);
  SimContext ctx{sim.scheduler(), nullptr};
  EXPECT_EQ(out.sampleCount(ctx), 5u);
  EXPECT_EQ(out.last(ctx).toUint(), 5u);
}

TEST(Behavioral, WakeAfterSchedulesExtraActivation) {
  Circuit top("top");
  auto& y = top.makeWord(8);
  auto& trigger = top.makeWord(1);
  top.make<BehavioralProcess>(
      "delayedEcho",
      std::vector<std::pair<std::string, Connector*>>{{"t", &trigger}},
      std::vector<std::pair<std::string, Connector*>>{{"y", &y}},
      [](BehavioralProcess::Activation& act) {
        if (act.periodicWake()) {
          act.drive(0, Word::fromUint(8, 99));
        } else {
          act.wakeAfter(25);  // respond later, autonomously
        }
      });
  SimulationController sim(top);
  sim.inject(trigger, Word::fromUint(1, 1));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(), 25u);
  EXPECT_EQ(y.value(sim.scheduler().id()).toUint(), 99u);
}

TEST(Behavioral, StopPeriodicEndsAutonomousProcess) {
  Circuit top("top");
  auto& y = top.makeWord(8);
  top.make<BehavioralProcess>(
      "finite", std::vector<std::pair<std::string, Connector*>>{},
      std::vector<std::pair<std::string, Connector*>>{{"y", &y}},
      [](BehavioralProcess::Activation& act) {
        Word& n = act.memory(0, 8);
        const std::uint64_t prev = n.isFullyKnown() ? n.toUint() : 0;
        n = Word::fromUint(8, prev + 1);
        act.drive(0, n);
        if (prev + 1 >= 3) act.stopPeriodic();
      },
      /*period=*/5);
  auto& out = top.make<PrimaryOutput>("out", y);
  SimulationController sim(top);
  sim.start();  // terminates because the process stops itself
  SimContext ctx{sim.scheduler(), nullptr};
  EXPECT_EQ(out.sampleCount(ctx), 3u);
  EXPECT_EQ(sim.scheduler().now(), 10u);
}

TEST(Behavioral, Validation) {
  Circuit top("top");
  auto& y = top.makeWord(8);
  EXPECT_THROW(
      top.make<BehavioralProcess>(
          "bad", std::vector<std::pair<std::string, Connector*>>{},
          std::vector<std::pair<std::string, Connector*>>{{"y", &y}}, nullptr),
      std::invalid_argument);
}

TEST(Behavioral, BadOutputIndexThrows) {
  Circuit top("top");
  auto& d = top.makeWord(4);
  auto& y = top.makeWord(4);
  top.make<BehavioralProcess>(
      "oops", std::vector<std::pair<std::string, Connector*>>{{"d", &d}},
      std::vector<std::pair<std::string, Connector*>>{{"y", &y}},
      [](BehavioralProcess::Activation& act) {
        act.drive(3, Word::fromUint(4, 0));
      });
  SimulationController sim(top);
  sim.inject(d, Word::fromUint(4, 1));
  EXPECT_THROW(sim.start(), std::out_of_range);
}

}  // namespace
}  // namespace vcad::rtl
