#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "rtl/modules.hpp"

namespace vcad::rtl {
namespace {

struct Rig {
  Circuit top{"top"};
  Connector* addr;
  Connector* wdata;
  Connector* we;
  Connector* rdata;
  Memory* mem;

  Rig(int addrBits = 4, int dataBits = 8) {
    addr = &top.makeWord(addrBits, "addr");
    wdata = &top.makeWord(dataBits, "wdata");
    we = &top.makeBit("we");
    rdata = &top.makeWord(dataBits, "rdata");
    mem = &top.make<Memory>("mem", addrBits, dataBits, *addr, *wdata, *we,
                            *rdata);
  }
};

TEST(Memory, WriteThenReadBack) {
  Rig rig;
  SimulationController sim(rig.top);
  const auto id = sim.scheduler().id();

  sim.inject(*rig.addr, Word::fromUint(4, 3));
  sim.inject(*rig.wdata, Word::fromUint(8, 0x5A));
  sim.inject(*rig.we, Word::fromLogic(Logic::L1));
  sim.start();
  EXPECT_EQ(rig.rdata->value(id).toUint(), 0x5Au);  // write-through read

  // Read another (never written) address: all-X.
  sim.inject(*rig.we, Word::fromLogic(Logic::L0));
  sim.inject(*rig.addr, Word::fromUint(4, 9));
  sim.start();
  EXPECT_FALSE(rig.rdata->value(id).isFullyKnown());

  // Back to the written address.
  sim.inject(*rig.addr, Word::fromUint(4, 3));
  sim.start();
  EXPECT_EQ(rig.rdata->value(id).toUint(), 0x5Au);
}

TEST(Memory, WriteEnableGatesStores) {
  Rig rig;
  SimulationController sim(rig.top);
  const auto id = sim.scheduler().id();
  sim.inject(*rig.addr, Word::fromUint(4, 1));
  sim.inject(*rig.wdata, Word::fromUint(8, 0x11));
  sim.inject(*rig.we, Word::fromLogic(Logic::L0));  // disabled
  sim.start();
  EXPECT_FALSE(rig.rdata->value(id).isFullyKnown());
  SimContext ctx{sim.scheduler(), nullptr};
  EXPECT_FALSE(rig.mem->peek(ctx, 1).isFullyKnown());
}

TEST(Memory, PeekAndPoke) {
  Rig rig;
  SimulationController sim(rig.top);
  SimContext ctx{sim.scheduler(), nullptr};
  rig.mem->poke(ctx, 7, Word::fromUint(8, 0xAB));
  EXPECT_EQ(rig.mem->peek(ctx, 7).toUint(), 0xABu);
  // A simulated read sees the poked value.
  sim.inject(*rig.addr, Word::fromUint(4, 7));
  sim.inject(*rig.we, Word::fromLogic(Logic::L0));
  sim.start();
  EXPECT_EQ(rig.rdata->value(sim.scheduler().id()).toUint(), 0xABu);
  EXPECT_THROW(rig.mem->poke(ctx, 0, Word::fromUint(4, 0)),
               std::invalid_argument);
}

TEST(Memory, ContentsArePerScheduler) {
  Rig rig;
  SimulationController s1(rig.top), s2(rig.top);
  SimContext c1{s1.scheduler(), nullptr}, c2{s2.scheduler(), nullptr};
  rig.mem->poke(c1, 0, Word::fromUint(8, 1));
  rig.mem->poke(c2, 0, Word::fromUint(8, 2));
  EXPECT_EQ(rig.mem->peek(c1, 0).toUint(), 1u);
  EXPECT_EQ(rig.mem->peek(c2, 0).toUint(), 2u);
}

TEST(Memory, OverwriteUpdatesCell) {
  Rig rig;
  SimulationController sim(rig.top);
  const auto id = sim.scheduler().id();
  for (std::uint64_t v : {0x01u, 0x02u, 0x03u}) {
    sim.inject(*rig.addr, Word::fromUint(4, 5));
    sim.inject(*rig.wdata, Word::fromUint(8, v));
    sim.inject(*rig.we, Word::fromLogic(Logic::L1));
    sim.start();
    EXPECT_EQ(rig.rdata->value(id).toUint(), v);
  }
}

TEST(Memory, WidthValidation) {
  Circuit top("top");
  auto& addr = top.makeWord(4);
  auto& wdata = top.makeWord(8);
  auto& weBad = top.makeWord(2);  // must be 1 bit
  auto& rdata = top.makeWord(8);
  EXPECT_THROW(top.make<Memory>("m", 4, 8, addr, wdata, weBad, rdata),
               std::invalid_argument);
}

}  // namespace
}  // namespace vcad::rtl
