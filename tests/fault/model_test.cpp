#include "fault/model.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

using gate::GateType;

TEST(FaultModel, SymbolNaming) {
  Netlist nl;
  const NetId a = nl.addInput("alpha");
  EXPECT_EQ(symbolOf(nl, {a, Logic::L0}), "alphasa0");
  EXPECT_EQ(symbolOf(nl, {a, Logic::L1}), "alphasa1");
}

TEST(FaultModel, EnumerateTwoPerNet) {
  const Netlist nl = gate::makeHalfAdder();  // 2 PIs + 2 gate nets
  EXPECT_EQ(enumerateFaults(nl).size(), 8u);
  EXPECT_EQ(enumerateFaults(nl, false, true).size(), 4u);
  EXPECT_EQ(enumerateFaults(nl, false, false).size(), 0u);
}

TEST(FaultModel, InverterChainCollapsesToOneClassPerPolarity) {
  // a -> NOT -> NOT -> NOT -> out: all faults collapse into exactly two
  // classes (one per polarity at the chain head).
  Netlist nl;
  NetId cur = nl.addInput("a");
  for (int i = 0; i < 3; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.markOutput(cur);
  const auto c = collapseEquivalent(nl, enumerateFaults(nl));
  EXPECT_EQ(c.size(), 2u);
  // Both representatives sit on the primary input (level 0).
  for (const StuckFault& f : c.representatives) {
    EXPECT_TRUE(nl.isPrimaryInput(f.net));
  }
}

TEST(FaultModel, AndGateEquivalence) {
  // AND(a, b) -> o: a-sa0 == b-sa0 == o-sa0 (one class of 3); other faults
  // stay separate. 6 faults -> 4 classes.
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId o = nl.addGate(GateType::And, {a, b}, "o");
  nl.markOutput(o);
  const auto c = collapseEquivalent(nl, enumerateFaults(nl));
  EXPECT_EQ(c.size(), 4u);
  const int repA0 = c.repIndexOf.at({a, Logic::L0});
  EXPECT_EQ(repA0, c.repIndexOf.at({b, Logic::L0}));
  EXPECT_EQ(repA0, c.repIndexOf.at({o, Logic::L0}));
  EXPECT_EQ(c.classes[static_cast<size_t>(repA0)].size(), 3u);
}

TEST(FaultModel, XorGateHasNoEquivalences) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.markOutput(nl.addGate(GateType::Xor, {a, b}));
  const auto c = collapseEquivalent(nl, enumerateFaults(nl));
  EXPECT_EQ(c.size(), 6u);
}

TEST(FaultModel, FanoutBlocksEquivalence) {
  // a feeds two gates: a-sa0 is NOT equivalent to either gate output fault.
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId x = nl.addGate(GateType::And, {a, b}, "x");
  const NetId y = nl.addGate(GateType::Or, {a, b}, "y");
  nl.markOutput(x);
  nl.markOutput(y);
  const auto c = collapseEquivalent(nl, enumerateFaults(nl));
  EXPECT_NE(c.repIndexOf.at({a, Logic::L0}), c.repIndexOf.at({x, Logic::L0}));
  // b also fans out to both gates, so nothing collapses at all.
  EXPECT_EQ(c.size(), 8u);
}

TEST(FaultModel, DominanceDropsOrOutputSa0) {
  // OR(x, y) where x, y are internal (driven by buffers off distinct PIs so
  // fanout rules keep the input faults alive).
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId x = nl.addGate(GateType::Buf, {a}, "x");
  const NetId y = nl.addGate(GateType::Buf, {b}, "y");
  const NetId o = nl.addGate(GateType::Or, {x, y}, "o");
  nl.markOutput(nl.addGate(GateType::Buf, {o}, "po"));  // keep o internal
  const auto universe = enumerateFaults(nl, false, false);  // internal only
  const auto eq = collapseEquivalent(nl, universe);
  const auto dom = collapseDominance(nl, eq);
  EXPECT_LT(dom.size(), eq.size());
  // o-sa0 must be gone; the input sa0 faults remain.
  EXPECT_EQ(dom.repIndexOf.at({o, Logic::L0}), -1);
  EXPECT_GE(dom.repIndexOf.at({x, Logic::L0}), 0);
  EXPECT_GE(dom.repIndexOf.at({y, Logic::L0}), 0);
}

TEST(FaultModel, CollapsedCountsOnMultiplier) {
  const Netlist nl = gate::makeArrayMultiplier(4);
  const auto universe = enumerateFaults(nl);
  const auto eq = collapseEquivalent(nl, universe);
  const auto dom = collapseDominance(nl, eq);
  EXPECT_LT(eq.size(), universe.size());
  EXPECT_LE(dom.size(), eq.size());
  // Every universe fault maps either to a surviving representative or to
  // dominance removal.
  for (const StuckFault& f : universe) {
    ASSERT_TRUE(dom.repIndexOf.count(f));
    const int r = dom.repIndexOf.at(f);
    EXPECT_GE(r, -1);
    EXPECT_LT(r, static_cast<int>(dom.size()));
  }
}

TEST(FaultModel, RepresentativesAreDeterministic) {
  const Netlist nl = gate::makeArrayMultiplier(3);
  const auto c1 = collapseAll(nl);
  const auto c2 = collapseAll(nl);
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.representatives[i], c2.representatives[i]);
  }
}

TEST(FaultModel, Ip1SymbolicFaultListHidesNothingButNames) {
  const Netlist ip1 = gate::makeIp1HalfAdder();
  const auto c = collapseAll(ip1, /*dominance=*/true, false, false);
  const auto symbols = symbolicFaultList(ip1, c);
  EXPECT_FALSE(symbols.empty());
  // All published faults sit on internal I* signals, never on ports.
  for (const std::string& s : symbols) {
    EXPECT_EQ(s[0], 'I') << s;
    EXPECT_EQ(s.substr(s.size() - 3, 2), "sa") << s;
  }
}

TEST(FaultModel, Ip1EquivalenceMatchesHandAnalysis) {
  // From the structure in generators.hpp: I2sa0 == I3sa0 (I2 only feeds the
  // AND producing I3), and I3sa1 == I4sa1 == I5sa1 (both ANDs feed the OR).
  const Netlist ip1 = gate::makeIp1HalfAdder();
  const auto c = collapseEquivalent(ip1, enumerateFaults(ip1, false, false));
  auto net = [&](const char* n) { return ip1.findNet(n); };
  EXPECT_EQ(c.repIndexOf.at({net("I2"), Logic::L0}),
            c.repIndexOf.at({net("I3"), Logic::L0}));
  EXPECT_EQ(c.repIndexOf.at({net("I3"), Logic::L1}),
            c.repIndexOf.at({net("I5"), Logic::L1}));
  EXPECT_EQ(c.repIndexOf.at({net("I4"), Logic::L1}),
            c.repIndexOf.at({net("I5"), Logic::L1}));
  EXPECT_EQ(c.repIndexOf.at({net("I1"), Logic::L0}),
            c.repIndexOf.at({net("I4"), Logic::L0}));
}

}  // namespace
}  // namespace vcad::fault
