// Sequential virtual fault simulation: local machine vs. the remote
// shadow-machine protocol must agree exactly, and the campaign semantics
// (detection latency, fault dropping) must hold.
#include "fault/seq_fault.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"
#include "ip/remote_component.hpp"

namespace vcad::fault {
namespace {

std::vector<Word> enableSequence(int cycles) {
  return std::vector<Word>(static_cast<size_t>(cycles), Word::fromUint(1, 1));
}

std::vector<Word> randomSequence(int width, int cycles, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < cycles; ++i) out.push_back(Word::fromUint(width, rng.next()));
  return out;
}

TEST(SeqFault, CounterCampaignDetectsMostFaults) {
  const gate::SeqNetlist c = gate::makeCounter(4);
  LocalSeqFaultBlock block(c);
  const auto res = runSeqCampaign(block, enableSequence(20));
  EXPECT_GT(res.faultList.size(), 0u);
  EXPECT_GT(res.coverage(), 0.6);
  EXPECT_EQ(res.goodSteps, 20u);
}

TEST(SeqFault, FaultDroppingBoundsShadowSteps) {
  const gate::SeqNetlist c = gate::makeCounter(4);
  LocalSeqFaultBlock block(c);
  const auto res = runSeqCampaign(block, enableSequence(30));
  // Without dropping, faultySteps would be |faults| * 30; with dropping it
  // must be strictly less whenever anything was detected early.
  ASSERT_GT(res.detectedCount(), 0u);
  EXPECT_LT(res.faultySteps, res.faultList.size() * 30);
}

TEST(SeqFault, DetectionLatencyRecorded) {
  const gate::SeqNetlist c = gate::makeCounter(4);
  LocalSeqFaultBlock block(c);
  const auto res = runSeqCampaign(block, enableSequence(25));
  // Some faults need the counter to reach particular states: not all are
  // detected in cycle 0.
  bool anyLate = false;
  for (const auto& [sym, cycle] : res.detectedAtCycle) {
    EXPECT_LT(cycle, 25u);
    if (cycle > 0) anyLate = true;
  }
  EXPECT_TRUE(anyLate);
}

TEST(SeqFault, LongerSequencesNeverLoseCoverage) {
  const gate::SeqNetlist l = gate::makeLfsr(5, 0b10100);
  LocalSeqFaultBlock shortBlock(l), longBlock(l);
  const auto seq40 = randomSequence(1, 40, 3);
  auto seq10 = std::vector<Word>(seq40.begin(), seq40.begin() + 10);
  const auto shortRes = runSeqCampaign(shortBlock, seq10);
  const auto longRes = runSeqCampaign(longBlock, seq40);
  EXPECT_GE(longRes.detectedCount(), shortRes.detectedCount());
  // Everything caught early is still caught (prefix property).
  for (const auto& [sym, cycle] : shortRes.detectedAtCycle) {
    ASSERT_TRUE(longRes.detectedAtCycle.count(sym)) << sym;
    EXPECT_EQ(longRes.detectedAtCycle.at(sym), cycle) << sym;
  }
}

TEST(SeqFault, UnknownSymbolRejected) {
  const gate::SeqNetlist c = gate::makeCounter(2);
  LocalSeqFaultBlock block(c);
  EXPECT_THROW(block.stepFaulty("nonsense", Word::fromUint(1, 1)),
               std::invalid_argument);
}

// --- remote protocol ------------------------------------------------------

struct RemoteRig {
  LogSink log;
  ip::ProviderServer server{"seq.provider", &log};
  rmi::RmiChannel channel{server, net::NetworkProfile::ideal(), &log};

  explicit RemoteRig(int width) {
    ip::IpComponentSpec spec;
    spec.name = "CounterIp";
    spec.minWidth = 1;
    spec.maxWidth = 16;
    spec.testability = ip::ModelLevel::Dynamic;
    spec.fees.perEvalCents = 0.01;
    server.registerSequentialComponent(spec, [](std::uint64_t w) {
      return gate::makeCounter(static_cast<int>(w));
    });
    (void)width;
  }
};

TEST(SeqFault, RemoteMatchesLocalExactly) {
  const int width = 4;
  RemoteRig rig(width);
  ip::ProviderHandle provider(rig.channel);
  ip::RemoteSeqFaultClient remote(provider, "CounterIp", width);

  const gate::SeqNetlist c = gate::makeCounter(width);
  LocalSeqFaultBlock local(c);

  EXPECT_EQ(remote.faultList(), local.faultList());

  const auto seq = enableSequence(18);
  const auto remoteRes = runSeqCampaign(remote, seq);
  const auto localRes = runSeqCampaign(local, seq);
  EXPECT_EQ(remoteRes.detectedAtCycle, localRes.detectedAtCycle);
  EXPECT_EQ(remoteRes.faultySteps, localRes.faultySteps);
}

TEST(SeqFault, RemoteChargesPerStep) {
  RemoteRig rig(3);
  ip::ProviderHandle provider(rig.channel);
  ip::RemoteSeqFaultClient remote(provider, "CounterIp", 3);
  const auto res = runSeqCampaign(remote, enableSequence(10));
  const double fees = rig.server.sessionFeesCents(provider.session());
  EXPECT_NEAR(fees, 0.01 * static_cast<double>(res.goodSteps + res.faultySteps),
              1e-9);
}

TEST(SeqFault, ServerCountsShadowSteps) {
  const gate::SeqNetlist machine = gate::makeCounter(3);
  ip::SeqPrivateComponent server(machine);
  EXPECT_EQ(server.stepCount(), 0u);
  server.reset("");
  server.step("", Word::fromUint(1, 1));
  const auto symbol = server.faultList().front();
  server.reset(symbol);
  server.step(symbol, Word::fromUint(1, 1));
  server.step(symbol, Word::fromUint(1, 1));
  EXPECT_EQ(server.stepCount(), 3u);
  EXPECT_EQ(server.inputBits(), 1);
  EXPECT_EQ(server.outputBits(), 3);
}

TEST(SeqFault, SequentialMethodsRejectedOnCombinationalInstance) {
  LogSink log;
  ip::ProviderServer server("p", &log);
  ip::IpComponentSpec spec;
  spec.name = "Comb";
  spec.minWidth = 2;
  spec.maxWidth = 8;
  spec.testability = ip::ModelLevel::Dynamic;
  server.registerComponent(
      spec,
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeRippleCarryAdder(static_cast<int>(w)));
      },
      nullptr);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ip::ProviderHandle provider(channel);
  rmi::Args args;
  args.addU64(4);
  auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                            "Comb");
  const auto id = resp.payload.readU64();
  rmi::Args step;
  step.addString("");
  step.addWord(Word::fromUint(8, 0));
  EXPECT_EQ(provider.call(rmi::MethodId::SeqStep, id, std::move(step)).status,
            rmi::Status::Error);
}

TEST(SeqFault, CombinationalMethodsRejectedOnSequentialInstance) {
  RemoteRig rig(3);
  ip::ProviderHandle provider(rig.channel);
  ip::RemoteSeqFaultClient remote(provider, "CounterIp", 3);
  rmi::Args ev;
  ev.addWord(Word::fromUint(4, 0));
  EXPECT_EQ(provider
                .call(rmi::MethodId::EvalFunction, remote.instanceId(),
                      std::move(ev))
                .status,
            rmi::Status::Error);
}

class SeqRandomMachines : public ::testing::TestWithParam<int> {};

TEST_P(SeqRandomMachines, RemoteEqualsLocalOnRandomMachines) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  const int stateBits = 3 + static_cast<int>(rng.below(3));
  const int inputBits = 2 + static_cast<int>(rng.below(2));
  const gate::SeqNetlist machine =
      gate::makeRandomMachine(rng, stateBits, inputBits, 2, 30);

  LogSink log;
  ip::ProviderServer server("p", &log);
  ip::IpComponentSpec spec;
  spec.name = "M";
  spec.minWidth = 1;
  spec.maxWidth = 1;
  spec.testability = ip::ModelLevel::Dynamic;
  server.registerSequentialComponent(
      spec, [&machine](std::uint64_t) { return machine; });
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ip::ProviderHandle provider(channel);
  ip::RemoteSeqFaultClient remote(provider, "M", 1);
  LocalSeqFaultBlock local(machine);

  const auto seq = randomSequence(inputBits, 25,
                                  static_cast<std::uint64_t>(GetParam()));
  const auto remoteRes = runSeqCampaign(remote, seq);
  const auto localRes = runSeqCampaign(local, seq);
  EXPECT_EQ(remoteRes.detectedAtCycle, localRes.detectedAtCycle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqRandomMachines, ::testing::Range(1, 7));

}  // namespace
}  // namespace vcad::fault
