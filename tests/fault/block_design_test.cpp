#include "fault/block_design.hpp"

#include <gtest/gtest.h>

#include "core/sim_controller.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

using gate::Netlist;
using gate::NetlistEvaluator;

std::shared_ptr<const Netlist> share(Netlist nl) {
  return std::make_shared<const Netlist>(std::move(nl));
}

/// Two half adders chained into a 2-bit incrementer-ish structure.
BlockDesign makeTwoBlockDesign() {
  BlockDesign d;
  const int a = d.addPrimaryInput("A");
  const int b = d.addPrimaryInput("B");
  const int c = d.addPrimaryInput("C");
  const int ha1 = d.addBlock("HA1", share(gate::makeHalfAdder()));
  const int ha2 = d.addBlock("HA2", share(gate::makeHalfAdder()));
  d.connect({-1, a}, ha1, 0);
  d.connect({-1, b}, ha1, 1);
  d.connect({ha1, 0}, ha2, 0);  // sum of HA1 into HA2
  d.connect({-1, c}, ha2, 1);
  d.markPrimaryOutput(ha2, 0, "S");      // final sum
  d.markPrimaryOutput(ha1, 1, "CARRY1");  // first carry
  d.markPrimaryOutput(ha2, 1, "CARRY2");
  return d;
}

TEST(BlockDesign, ValidateCatchesUndrivenInput) {
  BlockDesign d;
  d.addPrimaryInput("A");
  const int ha = d.addBlock("HA", share(gate::makeHalfAdder()));
  d.connect({-1, 0}, ha, 0);
  d.markPrimaryOutput(ha, 0);
  EXPECT_THROW(d.validate(), std::logic_error);  // input 1 undriven
}

TEST(BlockDesign, ValidateCatchesCycle) {
  BlockDesign d;
  const int b1 = d.addBlock("B1", share(gate::makeHalfAdder()));
  const int b2 = d.addBlock("B2", share(gate::makeHalfAdder()));
  const int a = d.addPrimaryInput("A");
  d.connect({-1, a}, b1, 0);
  d.connect({b2, 0}, b1, 1);
  d.connect({b1, 0}, b2, 0);
  d.connect({b1, 1}, b2, 1);
  d.markPrimaryOutput(b2, 1);
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(BlockDesign, DoubleDriveRejected) {
  BlockDesign d;
  const int a = d.addPrimaryInput("A");
  const int ha = d.addBlock("HA", share(gate::makeHalfAdder()));
  d.connect({-1, a}, ha, 0);
  EXPECT_THROW(d.connect({-1, a}, ha, 0), std::logic_error);
}

TEST(BlockDesign, FlattenPreservesBehaviour) {
  const BlockDesign d = makeTwoBlockDesign();
  const Netlist flat = d.flatten();
  EXPECT_EQ(flat.inputCount(), 3);
  EXPECT_EQ(flat.outputCount(), 3);
  NetlistEvaluator ev(flat);
  for (unsigned v = 0; v < 8; ++v) {
    const unsigned a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    const Word out = ev.evalOutputs(Word::fromUint(3, v));
    const unsigned s1 = a ^ b, c1 = a & b;
    EXPECT_EQ(out.bit(0), fromBool((s1 ^ c) != 0));  // S
    EXPECT_EQ(out.bit(1), fromBool(c1 != 0));        // CARRY1
    EXPECT_EQ(out.bit(2), fromBool((s1 & c) != 0));  // CARRY2
  }
}

TEST(BlockDesign, FlattenPrefixesInternalNetNames) {
  const BlockDesign d = makeTwoBlockDesign();
  const Netlist flat = d.flatten();
  EXPECT_NE(flat.findNet("HA1/sum"), gate::kNoNet);
  EXPECT_NE(flat.findNet("HA2/carry"), gate::kNoNet);
  EXPECT_NE(flat.findNet("A"), gate::kNoNet);
}

TEST(BlockDesign, InstantiationMatchesFlattenedNetlist) {
  const BlockDesign d = makeTwoBlockDesign();
  const Netlist flat = d.flatten();
  NetlistEvaluator ev(flat);
  auto inst = d.instantiate();
  ASSERT_EQ(inst.piConns.size(), 3u);
  ASSERT_EQ(inst.poConns.size(), 3u);

  for (unsigned v = 0; v < 8; ++v) {
    SimulationController sim(*inst.circuit);
    for (int i = 0; i < 3; ++i) {
      sim.inject(*inst.piConns[static_cast<size_t>(i)],
                 Word::fromLogic(fromBool(((v >> i) & 1) != 0)));
    }
    sim.start();
    const Word flatOut = ev.evalOutputs(Word::fromUint(3, v));
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(inst.poConns[static_cast<size_t>(j)]
                    ->value(sim.scheduler().id())
                    .scalar(),
                flatOut.bit(j))
          << "v=" << v << " out=" << j;
    }
    inst.circuit->clearSchedulerState(sim.scheduler().id());
  }
}

class RandomBlockDesigns : public ::testing::TestWithParam<int> {};

TEST_P(RandomBlockDesigns, FlattenAndInstantiateAgree) {
  // Random DAG of random blocks; flattened and instantiated realizations
  // must agree on every output for random stimuli.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  BlockDesign d;
  const int nPis = 4 + static_cast<int>(rng.below(4));
  for (int i = 0; i < nPis; ++i) d.addPrimaryInput("pi" + std::to_string(i));

  const int nBlocks = 2 + static_cast<int>(rng.below(4));
  std::vector<std::pair<int, int>> availableOutputs;  // (block, pin), -1=PI
  for (int i = 0; i < nPis; ++i) availableOutputs.emplace_back(-1, i);

  for (int b = 0; b < nBlocks; ++b) {
    const int ins = 2 + static_cast<int>(rng.below(3));
    const int gates = 4 + static_cast<int>(rng.below(12));
    const int outs = 1 + static_cast<int>(rng.below(3));
    Rng blockRng(rng.next());
    const int id = d.addBlock(
        "blk" + std::to_string(b),
        share(gate::makeRandomNetlist(blockRng, ins, gates, outs)));
    for (int pin = 0; pin < ins; ++pin) {
      const auto src = availableOutputs[rng.below(availableOutputs.size())];
      d.connect({src.first, src.second}, id, pin);
    }
    for (int pin = 0; pin < outs; ++pin) availableOutputs.emplace_back(id, pin);
  }
  // Mark the last block's outputs (and one random earlier pin) as POs.
  const int last = nBlocks - 1;
  for (int pin = 0; pin < d.blockNetlist(last).outputCount(); ++pin) {
    d.markPrimaryOutput(last, pin);
  }
  d.markPrimaryOutput(0, 0);

  const Netlist flat = d.flatten();
  NetlistEvaluator ev(flat);
  auto inst = d.instantiate();

  for (int iter = 0; iter < 10; ++iter) {
    const Word in = Word::fromUint(nPis, rng.next());
    SimulationController sim(*inst.circuit);
    for (int i = 0; i < nPis; ++i) {
      sim.inject(*inst.piConns[static_cast<size_t>(i)],
                 Word::fromLogic(in.bit(i)));
    }
    sim.start();
    const Word flatOut = ev.evalOutputs(in);
    for (int j = 0; j < flat.outputCount(); ++j) {
      EXPECT_EQ(inst.poConns[static_cast<size_t>(j)]
                    ->value(sim.scheduler().id())
                    .scalar(),
                flatOut.bit(j))
          << "iter=" << iter << " out=" << j;
    }
    inst.circuit->clearSchedulerState(sim.scheduler().id());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlockDesigns, ::testing::Range(1, 13));

}  // namespace
}  // namespace vcad::fault
