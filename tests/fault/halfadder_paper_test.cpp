// End-to-end reproduction of the paper's Figure 4 walkthrough: a half-adder
// design containing IP block IP1, fault-simulated virtually. The paper's
// claims checked here:
//  - IP1's detection table for inputs (1,0) groups sum-path faults under the
//    erroneous output 00 and the carry fault I6sa1 under 11;
//  - pattern ABCD=1100 does NOT detect the I3sa0-class fault (D=0 masks the
//    sum path at O1 = OIP1 AND D);
//  - pattern ABCD=1101 DOES detect it;
//  - faults sharing a detection-table row are detected together.
#include <gtest/gtest.h>

#include "fault/block_design.hpp"
#include "fault/serial_sim.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

using gate::GateType;
using gate::Netlist;

std::shared_ptr<const Netlist> share(Netlist nl) {
  return std::make_shared<const Netlist>(std::move(nl));
}

/// User-side front gate: E = AND(A, B).
Netlist makeFrontBlock() {
  Netlist nl;
  const auto a = nl.addInput("a");
  const auto b = nl.addInput("b");
  nl.markOutput(nl.addGate(GateType::And, {a, b}, "E"));
  nl.validate();
  return nl;
}

/// User-side back gates: O1 = AND(OIP1, D), O2 = BUF(OIP2).
Netlist makeBackBlock() {
  Netlist nl;
  const auto oip1 = nl.addInput("oip1");
  const auto d = nl.addInput("d");
  const auto oip2 = nl.addInput("oip2");
  nl.markOutput(nl.addGate(GateType::And, {oip1, d}, "O1"));
  nl.markOutput(nl.addGate(GateType::Buf, {oip2}, "O2"));
  nl.validate();
  return nl;
}

class PaperHalfAdder : public ::testing::Test {
 protected:
  PaperHalfAdder() {
    a_ = design_.addPrimaryInput("A");
    b_ = design_.addPrimaryInput("B");
    c_ = design_.addPrimaryInput("C");
    d_ = design_.addPrimaryInput("D");
    front_ = design_.addBlock("FRONT", share(makeFrontBlock()));
    ip1_ = design_.addBlock("IP1", share(gate::makeIp1HalfAdder()));
    back_ = design_.addBlock("BACK", share(makeBackBlock()));
    design_.connect({-1, a_}, front_, 0);
    design_.connect({-1, b_}, front_, 1);
    design_.connect({front_, 0}, ip1_, 0);  // E -> IIP1
    design_.connect({-1, c_}, ip1_, 1);     // C -> IIP2
    design_.connect({ip1_, 0}, back_, 0);   // OIP1
    design_.connect({-1, d_}, back_, 1);
    design_.connect({ip1_, 1}, back_, 2);  // OIP2
    design_.markPrimaryOutput(back_, 0, "O1");
    design_.markPrimaryOutput(back_, 1, "O2");

    inst_ = design_.instantiate();
    for (int blk : {front_, ip1_, back_}) {
      clients_.push_back(std::make_unique<LocalFaultBlock>(
          *inst_.blockModules[static_cast<size_t>(blk)]));
    }
  }

  VirtualFaultSimulator makeSim() {
    std::vector<FaultClient*> comps;
    for (auto& c : clients_) comps.push_back(c.get());
    return VirtualFaultSimulator(*inst_.circuit, comps, inst_.piConns,
                                 inst_.poConns);
  }

  /// Qualified symbol of the representative of IP1's I3sa0 fault.
  std::string i3sa0Symbol() {
    const Netlist& ip1 = design_.blockNetlist(ip1_);
    LocalFaultBlock& client = *clients_[1];
    const int rep =
        client.collapsed().repIndexOf.at({ip1.findNet("I3"), Logic::L0});
    return "IP1/" +
           symbolOf(ip1,
                    client.collapsed().representatives[static_cast<size_t>(rep)]);
  }

  BlockDesign design_;
  int a_, b_, c_, d_, front_, ip1_, back_;
  BlockDesign::Instantiation inst_;
  std::vector<std::unique_ptr<LocalFaultBlock>> clients_;
};

std::vector<Word> pattern(const std::string& abcd) {
  // "1100" means A=1,B=1,C=0,D=0.
  std::vector<Word> p;
  for (char ch : abcd) p.push_back(Word::fromLogic(logicFromChar(ch)));
  return p;
}

TEST_F(PaperHalfAdder, Ip1SeesInputsOneZeroUnderPattern1100) {
  SimulationController sim(*inst_.circuit);
  const auto pat = pattern("1100");
  for (size_t i = 0; i < pat.size(); ++i) sim.inject(*inst_.piConns[i], pat[i]);
  sim.start();
  const SimContext ctx{sim.scheduler(), nullptr};
  // E = AND(1,1) = 1, C = 0: IP1 input configuration is (IIP1,IIP2) = (1,0).
  EXPECT_EQ(clients_[1]->observedInputs(ctx).toString(), "01");
}

TEST_F(PaperHalfAdder, Pattern1100DoesNotDetectI3sa0) {
  auto sim = makeSim();
  const CampaignResult res = sim.run({pattern("1100")});
  EXPECT_EQ(res.detected.count(i3sa0Symbol()), 0u)
      << "D=0 must mask the sum-path error at O1";
}

TEST_F(PaperHalfAdder, Pattern1101DetectsI3sa0) {
  auto sim = makeSim();
  const CampaignResult res = sim.run({pattern("1101")});
  EXPECT_EQ(res.detected.count(i3sa0Symbol()), 1u);
}

TEST_F(PaperHalfAdder, CarryFaultI6sa1DetectedByBothPatterns) {
  // The 11 row flips O2 = BUF(OIP2) regardless of D.
  auto sim = makeSim();
  EXPECT_EQ(sim.run({pattern("1100")}).detected.count("IP1/I6sa1"), 1u);
  auto sim2 = makeSim();
  EXPECT_EQ(sim2.run({pattern("1101")}).detected.count("IP1/I6sa1"), 1u);
}

TEST_F(PaperHalfAdder, RowMatesDetectedTogether) {
  // All faults sharing the 00 row of IP1's (1,0) detection table are
  // detected by the same pattern 1101.
  LocalFaultBlock& ip1Client = *clients_[1];
  const DetectionTable t = ip1Client.detectionTable(Word::fromString("01"));
  const auto mates = t.faultsFor(Word::fromString("00"));
  ASSERT_FALSE(mates.empty());
  auto sim = makeSim();
  const CampaignResult res = sim.run({pattern("1101")});
  for (const std::string& m : mates) {
    EXPECT_EQ(res.detected.count("IP1/" + m), 1u) << m;
  }
}

TEST_F(PaperHalfAdder, ExhaustivePatternsReachFullCoverageOfExcitableFaults) {
  auto sim = makeSim();
  std::vector<std::vector<Word>> all;
  for (unsigned v = 0; v < 16; ++v) {
    std::string s;
    for (int bit = 3; bit >= 0; --bit) {
      s.push_back(((v >> bit) & 1) != 0 ? '1' : '0');
    }
    all.push_back(pattern(s));
  }
  const CampaignResult res = sim.run(all);
  // Exhaustive stimulus must match the full-disclosure serial simulator on
  // the very same fault set.
  const Netlist flat = design_.flatten();
  std::vector<gate::StuckFault> faults;
  std::vector<std::string> symbols;
  for (const std::string& qs : res.faultList) {
    faults.push_back(flatFaultOf(flat, qs));
    symbols.push_back(qs);
  }
  SerialFaultSimulator serial(flat, faults, symbols);
  std::vector<Word> flatPatterns;
  for (unsigned v = 0; v < 16; ++v) flatPatterns.push_back(Word::fromUint(4, v));
  const CampaignResult golden = serial.run(flatPatterns);
  EXPECT_EQ(res.detected, golden.detected);
}

TEST_F(PaperHalfAdder, CoverageIsMonotonic) {
  auto sim = makeSim();
  const CampaignResult res =
      sim.run({pattern("1100"), pattern("1101"), pattern("0110"),
               pattern("1011")});
  for (size_t i = 1; i < res.detectedAfterPattern.size(); ++i) {
    EXPECT_GE(res.detectedAfterPattern[i], res.detectedAfterPattern[i - 1]);
  }
}

}  // namespace
}  // namespace vcad::fault
