// Differential proof of the pooled phase-2 injection engine: for every
// worker count, cache mode, and randomized multi-block design, the pooled
// VirtualFaultSimulator must produce a CampaignResult bit-identical to the
// retained serial path — fault list, detected set, coverage curve, and the
// whole table/cache/round-trip/injection accounting — while leasing only
// its pinned pool of scheduler slots.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/slot_registry.hpp"
#include "fault/block_design.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

using gate::Netlist;

std::shared_ptr<const Netlist> share(Netlist nl) {
  return std::make_shared<const Netlist>(std::move(nl));
}

struct Scenario {
  BlockDesign design;
  BlockDesign::Instantiation inst;
  std::vector<std::unique_ptr<LocalFaultBlock>> clients;
  int nPis = 0;

  std::vector<FaultClient*> components() {
    std::vector<FaultClient*> out;
    for (auto& c : clients) out.push_back(c.get());
    return out;
  }
};

Scenario makeScenario(std::uint64_t seed) {
  auto s = Scenario{};
  Rng rng(seed);
  s.nPis = 4 + static_cast<int>(rng.below(3));
  for (int i = 0; i < s.nPis; ++i) {
    s.design.addPrimaryInput("pi" + std::to_string(i));
  }
  std::vector<std::pair<int, int>> sources;
  for (int i = 0; i < s.nPis; ++i) sources.emplace_back(-1, i);

  const int nBlocks = 2 + static_cast<int>(rng.below(3));
  for (int b = 0; b < nBlocks; ++b) {
    const int ins = 2 + static_cast<int>(rng.below(3));
    const int gates = 5 + static_cast<int>(rng.below(10));
    const int outs = 1 + static_cast<int>(rng.below(2));
    Rng blockRng(rng.next());
    const int id = s.design.addBlock(
        "blk" + std::to_string(b),
        share(gate::makeRandomNetlist(blockRng, ins, gates, outs)));
    for (int pin = 0; pin < ins; ++pin) {
      const auto src = sources[rng.below(sources.size())];
      s.design.connect({src.first, src.second}, id, pin);
    }
    for (int pin = 0; pin < outs; ++pin) sources.emplace_back(id, pin);
  }
  for (int b = 0; b < nBlocks; ++b) {
    for (int pin = 0; pin < s.design.blockNetlist(b).outputCount(); ++pin) {
      s.design.markPrimaryOutput(b, pin);
    }
  }
  s.inst = s.design.instantiate();
  for (int b = 0; b < nBlocks; ++b) {
    s.clients.push_back(std::make_unique<LocalFaultBlock>(
        *s.inst.blockModules[static_cast<size_t>(b)], /*dominance=*/true,
        FaultScope{false, true}));
  }
  return s;
}

std::vector<Word> packedPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(width, rng.next()));
  }
  return out;
}

void expectIdenticalCampaigns(const CampaignResult& pooled,
                              const CampaignResult& serial,
                              const std::string& label) {
  EXPECT_EQ(pooled.faultList, serial.faultList) << label;
  EXPECT_EQ(pooled.detected, serial.detected) << label;
  EXPECT_EQ(pooled.detectedAfterPattern, serial.detectedAfterPattern) << label;
  EXPECT_EQ(pooled.detectionTablesRequested, serial.detectionTablesRequested)
      << label;
  EXPECT_EQ(pooled.tableFetchRoundTrips, serial.tableFetchRoundTrips) << label;
  EXPECT_EQ(pooled.tableCacheHits, serial.tableCacheHits) << label;
  EXPECT_EQ(pooled.injections, serial.injections) << label;
}

class PooledInjection : public ::testing::TestWithParam<int> {};

TEST_P(PooledInjection, BitIdenticalToSerialAcrossWorkerCounts) {
  const int seed = GetParam();
  Scenario s = makeScenario(static_cast<std::uint64_t>(seed) * 104729);
  const auto patterns =
      packedPatterns(s.nPis, 12, static_cast<std::uint64_t>(seed));

  VirtualFaultSimulator serialSim(*s.inst.circuit, s.components(),
                                  s.inst.piConns, s.inst.poConns);
  const CampaignResult serial = serialSim.runSerialInjection(
      unpackPatterns(patterns, static_cast<std::size_t>(s.nPis)));
  EXPECT_GT(serial.injections, 0u);

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    VirtualFaultSimulator sim(*s.inst.circuit, s.components(), s.inst.piConns,
                              s.inst.poConns);
    sim.setInjectionWorkers(workers);
    const CampaignResult pooled = sim.runPacked(patterns);
    const std::string label =
        "seed=" + std::to_string(seed) + " workers=" + std::to_string(workers);
    expectIdenticalCampaigns(pooled, serial, label);

    // Pool-shape metrics: every injection is attributed to a lane, and the
    // whole campaign ran on its pinned slots (workers + the fault-free
    // controller) — reset-and-reuse, not slot churn.
    EXPECT_EQ(pooled.injectionWorkers, workers) << label;
    ASSERT_EQ(pooled.workerInjections.size(),
              workers > 1 ? workers : std::size_t{1})
        << label;
    std::uint64_t laneSum = 0;
    for (std::uint64_t n : pooled.workerInjections) laneSum += n;
    EXPECT_EQ(laneSum, pooled.injections) << label;
    EXPECT_EQ(pooled.slotsLeased, (workers > 1 ? workers : 1u) + 1u) << label;
    EXPECT_LE(pooled.peakConcurrentSchedulers,
              static_cast<std::uint32_t>(workers) + 1u)
        << label;
    EXPECT_GT(pooled.schedulerResets, 0u) << label;

    // A finished campaign leaves no live state in any arena slot.
    for (std::uint32_t slot = 0; slot < SlotRegistry::kCapacity; ++slot) {
      if (s.inst.circuit->residualStateCount(slot) != 0) {
        ADD_FAILURE() << label << ": residual state in slot " << slot;
      }
    }
  }
}

TEST_P(PooledInjection, BitIdenticalWithoutTableCache) {
  const int seed = GetParam();
  Scenario s = makeScenario(static_cast<std::uint64_t>(seed) * 7919);
  const auto patterns =
      packedPatterns(s.nPis, 8, static_cast<std::uint64_t>(seed) + 99);

  VirtualFaultSimulator serialSim(*s.inst.circuit, s.components(),
                                  s.inst.piConns, s.inst.poConns);
  serialSim.setTableCache(false);
  const CampaignResult serial = serialSim.runPacked(patterns);
  EXPECT_EQ(serial.tableCacheHits, 0u);

  VirtualFaultSimulator sim(*s.inst.circuit, s.components(), s.inst.piConns,
                            s.inst.poConns);
  sim.setTableCache(false);
  sim.setInjectionWorkers(4);
  const CampaignResult pooled = sim.runPacked(patterns);
  expectIdenticalCampaigns(pooled, serial, "uncached seed=" +
                                               std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PooledInjection, ::testing::Range(1, 7));

TEST(PooledInjection, SerialPathReportsArenaMetricsToo) {
  Scenario s = makeScenario(31337);
  const auto patterns = packedPatterns(s.nPis, 6, 5);
  VirtualFaultSimulator sim(*s.inst.circuit, s.components(), s.inst.piConns,
                            s.inst.poConns);
  const CampaignResult res = sim.runPacked(patterns);
  // One fault-free controller per pattern plus one per injection — all
  // recycled through the registry, never exceeding a handful concurrently.
  EXPECT_EQ(res.slotsLeased, res.injections + patterns.size());
  EXPECT_GT(res.peakConcurrentSchedulers, 0u);
  EXPECT_LE(res.peakConcurrentSchedulers, 4u);
  EXPECT_EQ(res.injectionWorkers, 0u);
  EXPECT_TRUE(res.workerInjections.empty());
}

}  // namespace
}  // namespace vcad::fault
