#include "fault/dictionary.hpp"

#include <gtest/gtest.h>

#include "fault/block_design.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

TEST(Dictionary, MatchesDynamicTablesExactly) {
  const gate::Netlist ip1 = gate::makeIp1HalfAdder();
  const auto collapsed = collapseAll(ip1, true, false, false);
  const auto dict = FaultDictionary::build(ip1, collapsed);
  gate::NetlistEvaluator eval(ip1);
  ASSERT_EQ(dict.tableCount(), 4u);
  for (unsigned v = 0; v < 4; ++v) {
    const Word in = Word::fromUint(2, v);
    const DetectionTable& fromDict = dict.tableFor(in);
    const DetectionTable dynamic = buildDetectionTable(eval, collapsed, in);
    ASSERT_EQ(fromDict.rows().size(), dynamic.rows().size()) << v;
    for (size_t r = 0; r < dynamic.rows().size(); ++r) {
      EXPECT_EQ(fromDict.rows()[r].faultyOutput, dynamic.rows()[r].faultyOutput);
      EXPECT_EQ(fromDict.rows()[r].faults, dynamic.rows()[r].faults);
    }
  }
}

TEST(Dictionary, SizeGrowsExponentiallyWithInputs) {
  std::size_t prev = 0;
  for (int w = 2; w <= 4; ++w) {
    const gate::Netlist nl = gate::makeArrayMultiplier(w);
    const auto collapsed = collapseAll(nl, true, false, false);
    const auto dict = FaultDictionary::build(nl, collapsed);
    EXPECT_EQ(dict.tableCount(), 1ULL << (2 * w));
    EXPECT_GT(dict.sizeBytes(), 3 * prev)  // ~4x tables, larger each
        << "width " << w;
    prev = dict.sizeBytes();
  }
}

TEST(Dictionary, ExponentialWallEnforced) {
  const gate::Netlist big = gate::makeArrayMultiplier(16);  // 32 inputs
  const auto collapsed = collapseAll(big, true, false, false);
  EXPECT_THROW(FaultDictionary::build(big, collapsed, 16),
               std::invalid_argument);
}

TEST(Dictionary, RejectsUnknownInputs) {
  const gate::Netlist ip1 = gate::makeIp1HalfAdder();
  const auto dict =
      FaultDictionary::build(ip1, collapseAll(ip1, true, false, false));
  Word in(2);
  in.setBit(0, Logic::L1);  // bit 1 still X
  EXPECT_THROW(dict.tableFor(in), std::invalid_argument);
  EXPECT_THROW(dict.tableFor(Word::fromUint(3, 0)), std::invalid_argument);
}

TEST(Dictionary, SerializationRoundTrip) {
  const gate::Netlist ha = gate::makeHalfAdder();
  const auto dict =
      FaultDictionary::build(ha, collapseAll(ha, true, true, true));
  net::ByteBuffer buf;
  dict.serialize(buf);
  EXPECT_EQ(buf.size(), dict.sizeBytes());
  const auto back = FaultDictionary::deserialize(buf);
  EXPECT_EQ(back.inputBits(), dict.inputBits());
  EXPECT_EQ(back.tableCount(), dict.tableCount());
  EXPECT_EQ(back.faultList(), dict.faultList());
  for (unsigned v = 0; v < 4; ++v) {
    const Word in = Word::fromUint(2, v);
    EXPECT_EQ(back.tableFor(in).rows().size(),
              dict.tableFor(in).rows().size());
  }
}

TEST(Dictionary, CampaignWithDictionaryClientMatchesDynamic) {
  // The same virtual fault campaign, once with on-demand tables and once
  // from a shipped dictionary: identical detections.
  BlockDesign d;
  const int a = d.addPrimaryInput("A");
  const int b = d.addPrimaryInput("B");
  const int c = d.addPrimaryInput("C");
  const int ha1 = d.addBlock(
      "HA1", std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder()));
  const int ha2 = d.addBlock(
      "HA2", std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder()));
  d.connect({-1, a}, ha1, 0);
  d.connect({-1, b}, ha1, 1);
  d.connect({ha1, 0}, ha2, 0);
  d.connect({-1, c}, ha2, 1);
  d.markPrimaryOutput(ha1, 1, "C1");
  d.markPrimaryOutput(ha2, 0, "S");
  d.markPrimaryOutput(ha2, 1, "C2");
  auto inst = d.instantiate();

  LocalFaultBlock dyn1(*inst.blockModules[0]);
  LocalFaultBlock dyn2(*inst.blockModules[1]);
  const gate::Netlist& ip1 = d.blockNetlist(0);
  const auto dict =
      FaultDictionary::build(ip1, collapseAll(ip1, true, false, false));
  DictionaryFaultClient lib1(*inst.blockModules[0], dict);
  DictionaryFaultClient lib2(*inst.blockModules[1], dict);

  std::vector<Word> pats;
  for (unsigned v = 0; v < 8; ++v) pats.push_back(Word::fromUint(3, v));

  VirtualFaultSimulator dynSim(*inst.circuit, {&dyn1, &dyn2}, inst.piConns,
                               inst.poConns);
  VirtualFaultSimulator dictSim(*inst.circuit, {&lib1, &lib2}, inst.piConns,
                                inst.poConns);
  const auto dynRes = dynSim.runPacked(pats);
  const auto dictRes = dictSim.runPacked(pats);
  EXPECT_EQ(dynRes.detected, dictRes.detected);
  EXPECT_EQ(dynRes.faultList, dictRes.faultList);
}

}  // namespace
}  // namespace vcad::fault
