// Property tests of the central claim: virtual fault simulation (detection
// tables + injection, no netlist disclosure) detects exactly the same faults
// as a classic full-disclosure serial fault simulator run on the flattened
// design.
#include <gtest/gtest.h>

#include "fault/block_design.hpp"
#include "fault/serial_sim.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

using gate::Netlist;

std::shared_ptr<const Netlist> share(Netlist nl) {
  return std::make_shared<const Netlist>(std::move(nl));
}

struct Scenario {
  BlockDesign design;
  BlockDesign::Instantiation inst;
  std::vector<std::unique_ptr<LocalFaultBlock>> clients;
  int nPis = 0;

  std::vector<FaultClient*> components() {
    std::vector<FaultClient*> out;
    for (auto& c : clients) out.push_back(c.get());
    return out;
  }
};

/// Builds a random multi-block design whose blocks publish internal+output
/// faults, so the fault universe maps 1:1 onto the flattened netlist.
Scenario makeScenario(std::uint64_t seed, bool dominance) {
  auto s = Scenario{};
  Rng rng(seed);
  s.nPis = 4 + static_cast<int>(rng.below(3));
  for (int i = 0; i < s.nPis; ++i) {
    s.design.addPrimaryInput("pi" + std::to_string(i));
  }
  std::vector<std::pair<int, int>> sources;
  for (int i = 0; i < s.nPis; ++i) sources.emplace_back(-1, i);

  const int nBlocks = 2 + static_cast<int>(rng.below(3));
  for (int b = 0; b < nBlocks; ++b) {
    const int ins = 2 + static_cast<int>(rng.below(3));
    const int gates = 5 + static_cast<int>(rng.below(10));
    const int outs = 1 + static_cast<int>(rng.below(2));
    Rng blockRng(rng.next());
    const int id = s.design.addBlock(
        "blk" + std::to_string(b),
        share(gate::makeRandomNetlist(blockRng, ins, gates, outs)));
    for (int pin = 0; pin < ins; ++pin) {
      const auto src = sources[rng.below(sources.size())];
      s.design.connect({src.first, src.second}, id, pin);
    }
    for (int pin = 0; pin < outs; ++pin) sources.emplace_back(id, pin);
  }
  for (int b = 0; b < nBlocks; ++b) {
    for (int pin = 0; pin < s.design.blockNetlist(b).outputCount(); ++pin) {
      s.design.markPrimaryOutput(b, pin);
    }
  }
  s.inst = s.design.instantiate();
  for (int b = 0; b < nBlocks; ++b) {
    s.clients.push_back(std::make_unique<LocalFaultBlock>(
        *s.inst.blockModules[static_cast<size_t>(b)], dominance,
        FaultScope{false, true}));
  }
  return s;
}

std::vector<Word> packedPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(width, rng.next()));
  }
  return out;
}

class VirtualVsSerial
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(VirtualVsSerial, IdenticalDetectedSets) {
  const auto [seed, dominance] = GetParam();
  Scenario s = makeScenario(static_cast<std::uint64_t>(seed) * 104729,
                            dominance);
  const auto patterns =
      packedPatterns(s.nPis, 12, static_cast<std::uint64_t>(seed));

  VirtualFaultSimulator vsim(*s.inst.circuit, s.components(), s.inst.piConns,
                             s.inst.poConns);
  const CampaignResult vres = vsim.runPacked(patterns);

  const Netlist flat = s.design.flatten();
  std::vector<gate::StuckFault> faults;
  for (const std::string& qs : vres.faultList) {
    faults.push_back(flatFaultOf(flat, qs));
  }
  SerialFaultSimulator serial(flat, faults, vres.faultList);
  const CampaignResult gold = serial.run(patterns);

  EXPECT_EQ(vres.detected, gold.detected)
      << "seed=" << seed << " dominance=" << dominance;
  // Per-pattern cumulative counts must match too (same drop order).
  EXPECT_EQ(vres.detectedAfterPattern, gold.detectedAfterPattern);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VirtualVsSerial,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Bool()));

TEST(VirtualFaultSim, FaultDroppingReducesInjections) {
  Scenario s = makeScenario(424242, true);
  const auto patterns = packedPatterns(s.nPis, 10, 99);
  VirtualFaultSimulator vsim(*s.inst.circuit, s.components(), s.inst.piConns,
                             s.inst.poConns);
  const CampaignResult res = vsim.runPacked(patterns);

  // Replaying the SAME pattern list: with fault dropping, already-detected
  // rows are skipped, so injections cannot exceed the first run's.
  VirtualFaultSimulator vsim2(*s.inst.circuit, s.components(), s.inst.piConns,
                              s.inst.poConns);
  auto doubled = patterns;
  doubled.insert(doubled.end(), patterns.begin(), patterns.end());
  const CampaignResult res2 = vsim2.runPacked(doubled);
  EXPECT_LT(res2.injections, 2 * res.injections);
  EXPECT_EQ(res2.detected, res.detected);  // nothing new from a replay
}

TEST(VirtualFaultSim, AccountsProtocolEffort) {
  Scenario s = makeScenario(777, true);
  const auto patterns = packedPatterns(s.nPis, 5, 5);
  VirtualFaultSimulator vsim(*s.inst.circuit, s.components(), s.inst.piConns,
                             s.inst.poConns);
  const CampaignResult res = vsim.runPacked(patterns);
  // With the client-side table cache, fetches + hits account for every
  // (pattern, component) pair; repeated input configurations hit the cache.
  EXPECT_EQ(res.detectionTablesRequested + res.tableCacheHits,
            patterns.size() * s.clients.size());
  EXPECT_GT(res.injections, 0u);
  EXPECT_GT(res.faultList.size(), 0u);
  EXPECT_LE(res.detected.size(), res.faultList.size());

  // Disabling the cache fetches a table every time.
  VirtualFaultSimulator uncached(*s.inst.circuit, s.components(),
                                 s.inst.piConns, s.inst.poConns);
  uncached.setTableCache(false);
  const CampaignResult res2 = uncached.runPacked(patterns);
  EXPECT_EQ(res2.detectionTablesRequested,
            patterns.size() * s.clients.size());
  EXPECT_EQ(res2.tableCacheHits, 0u);
  EXPECT_EQ(res2.detected, res.detected);  // identical outcome either way
}

TEST(VirtualFaultSim, RejectsEmptyConfiguration) {
  Circuit c("c");
  EXPECT_THROW(VirtualFaultSimulator(c, {}, {}, {}), std::invalid_argument);
}

TEST(VirtualFaultSim, PackedPatternWidthChecked) {
  Scenario s = makeScenario(31337, true);
  VirtualFaultSimulator vsim(*s.inst.circuit, s.components(), s.inst.piConns,
                             s.inst.poConns);
  EXPECT_THROW(vsim.runPacked({Word::fromUint(s.nPis + 1, 0)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vcad::fault
