// Tests of the parallel campaign engine: bit-identical equivalence to the
// serial VirtualFaultSimulator over property-swept generated block designs,
// batched GetDetectionTables traffic against a real provider, and a
// concurrent stress run (parallel injections + async channel noise) that
// must stay clean under -DVCAD_SANITIZE=thread.
#include "fault/parallel_campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fault/block_design.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "ip/provider_server.hpp"
#include "ip/remote_component.hpp"

namespace vcad::fault {
namespace {

using gate::Netlist;

std::shared_ptr<const Netlist> share(Netlist nl) {
  return std::make_shared<const Netlist>(std::move(nl));
}

struct Scenario {
  BlockDesign design;
  BlockDesign::Instantiation inst;
  std::vector<std::unique_ptr<LocalFaultBlock>> clients;
  int nPis = 0;

  std::vector<FaultClient*> components() {
    std::vector<FaultClient*> out;
    for (auto& c : clients) out.push_back(c.get());
    return out;
  }
};

/// Same generator as virtual_sim_test: a random multi-block design whose
/// blocks publish internal+output faults.
Scenario makeScenario(std::uint64_t seed, bool dominance) {
  auto s = Scenario{};
  Rng rng(seed);
  s.nPis = 4 + static_cast<int>(rng.below(3));
  for (int i = 0; i < s.nPis; ++i) {
    s.design.addPrimaryInput("pi" + std::to_string(i));
  }
  std::vector<std::pair<int, int>> sources;
  for (int i = 0; i < s.nPis; ++i) sources.emplace_back(-1, i);

  const int nBlocks = 2 + static_cast<int>(rng.below(3));
  for (int b = 0; b < nBlocks; ++b) {
    const int ins = 2 + static_cast<int>(rng.below(3));
    const int gates = 5 + static_cast<int>(rng.below(10));
    const int outs = 1 + static_cast<int>(rng.below(2));
    Rng blockRng(rng.next());
    const int id = s.design.addBlock(
        "blk" + std::to_string(b),
        share(gate::makeRandomNetlist(blockRng, ins, gates, outs)));
    for (int pin = 0; pin < ins; ++pin) {
      const auto src = sources[rng.below(sources.size())];
      s.design.connect({src.first, src.second}, id, pin);
    }
    for (int pin = 0; pin < outs; ++pin) sources.emplace_back(id, pin);
  }
  for (int b = 0; b < nBlocks; ++b) {
    for (int pin = 0; pin < s.design.blockNetlist(b).outputCount(); ++pin) {
      s.design.markPrimaryOutput(b, pin);
    }
  }
  s.inst = s.design.instantiate();
  for (int b = 0; b < nBlocks; ++b) {
    s.clients.push_back(std::make_unique<LocalFaultBlock>(
        *s.inst.blockModules[static_cast<size_t>(b)], dominance,
        FaultScope{false, true}));
  }
  return s;
}

std::vector<Word> packedPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(width, rng.next()));
  }
  return out;
}

class ParallelVsSerial : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(ParallelVsSerial, IdenticalCoverageAcrossThreadAndBatchSweep) {
  const auto [seed, dominance] = GetParam();
  Scenario s = makeScenario(static_cast<std::uint64_t>(seed) * 104729,
                            dominance);
  const auto patterns =
      packedPatterns(s.nPis, 10, static_cast<std::uint64_t>(seed));

  VirtualFaultSimulator serial(*s.inst.circuit, s.components(), s.inst.piConns,
                               s.inst.poConns);
  const CampaignResult gold = serial.runPacked(patterns);

  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t batch : {1u, 3u}) {
      ParallelCampaignConfig cfg;
      cfg.threads = threads;
      cfg.batchSize = batch;
      ParallelFaultSimulator psim(*s.inst.circuit, s.components(),
                                  s.inst.piConns, s.inst.poConns, cfg);
      const CampaignResult res = psim.runPacked(patterns);
      const std::string label = "seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads) +
                                " batch=" + std::to_string(batch);
      // The acceptance contract: fault list, detected set and per-pattern
      // coverage curve are bit-identical to serial.
      EXPECT_EQ(res.faultList, gold.faultList) << label;
      EXPECT_EQ(res.detected, gold.detected) << label;
      EXPECT_EQ(res.detectedAfterPattern, gold.detectedAfterPattern) << label;
      // Cache accounting matches serial: fetches + hits cover every
      // (pattern, component) pair, batching only amortizes round trips.
      EXPECT_EQ(res.detectionTablesRequested + res.tableCacheHits,
                patterns.size() * s.clients.size())
          << label;
      EXPECT_EQ(res.detectionTablesRequested, gold.detectionTablesRequested)
          << label;
      EXPECT_LE(res.tableFetchRoundTrips, res.detectionTablesRequested)
          << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelVsSerial,
    ::testing::Combine(::testing::Range(1, 7), ::testing::Bool()));

TEST(ParallelCampaign, UncachedModeStillMatchesSerial) {
  Scenario s = makeScenario(918273, true);
  const auto patterns = packedPatterns(s.nPis, 8, 42);
  VirtualFaultSimulator serial(*s.inst.circuit, s.components(), s.inst.piConns,
                               s.inst.poConns);
  const CampaignResult gold = serial.runPacked(patterns);

  ParallelCampaignConfig cfg;
  cfg.threads = 4;
  cfg.batchSize = 4;
  cfg.cacheTables = false;
  ParallelFaultSimulator psim(*s.inst.circuit, s.components(), s.inst.piConns,
                              s.inst.poConns, cfg);
  const CampaignResult res = psim.runPacked(patterns);
  EXPECT_EQ(res.detected, gold.detected);
  EXPECT_EQ(res.detectedAfterPattern, gold.detectedAfterPattern);
  EXPECT_EQ(res.detectionTablesRequested,
            patterns.size() * s.clients.size());
  EXPECT_EQ(res.tableCacheHits, 0u);
  // One round trip per (batch, component) instead of per (pattern, component).
  EXPECT_EQ(res.tableFetchRoundTrips, 2u * s.clients.size());
}

TEST(ParallelCampaign, RejectsEmptyConfiguration) {
  Circuit c("c");
  EXPECT_THROW(ParallelFaultSimulator(c, {}, {}, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Remote half: the campaign against a real provider over an RmiChannel.
// ---------------------------------------------------------------------------

void registerMultiplier(ip::ProviderServer& server) {
  ip::IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ip::ModelLevel::Static;
  spec.power = ip::ModelLevel::Dynamic;
  spec.timing = ip::ModelLevel::Dynamic;
  spec.area = ip::ModelLevel::Dynamic;
  spec.testability = ip::ModelLevel::Dynamic;
  spec.fees.perDetectionTableCents = 0.05;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t w) {
        return std::make_shared<const Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      [](std::uint64_t w) {
        ip::PublicPart pub;
        pub.functional = [w](const Word& in, const rmi::Sandbox&) {
          const int width = static_cast<int>(w);
          const Word a = in.slice(0, width);
          const Word b = in.slice(width, width);
          if (!a.isFullyKnown() || !b.isFullyKnown()) {
            return Word::allX(2 * width);
          }
          return Word::fromUint(2 * width, a.toUint() * b.toUint());
        };
        return pub;
      });
}

/// A provider, a channel and a circuit holding one remote multiplier IP.
struct RemoteRig {
  static constexpr int kW = 3;

  ip::ProviderServer server;
  rmi::RmiChannel channel;
  ip::ProviderHandle provider;
  Circuit circuit;
  ip::RemoteComponent* mult = nullptr;
  std::unique_ptr<ip::RemoteFaultClient> client;
  std::vector<Connector*> pis;
  std::vector<Connector*> pos;

  explicit RemoteRig(const net::NetworkProfile& profile)
      : server("provider.host", nullptr),
        channel(server, profile),
        provider(channel),
        circuit("remoteFault") {
    registerMultiplier(server);  // before the RemoteComponent instantiates
    auto& a = circuit.makeWord(kW, "a");
    auto& b = circuit.makeWord(kW, "b");
    auto& o = circuit.makeWord(2 * kW, "o");
    ip::RemoteConfig cfg;
    cfg.collectPower = false;
    mult = &circuit.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", kW,
        std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, cfg);
    client = std::make_unique<ip::RemoteFaultClient>(*mult);
    pis = {&a, &b};
    pos = {&o};
  }

  std::vector<FaultClient*> components() { return {client.get()}; }
};

std::vector<std::vector<Word>> remotePatterns(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Word>> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({Word::fromUint(RemoteRig::kW, rng.next()),
                   Word::fromUint(RemoteRig::kW, rng.next())});
  }
  return out;
}

TEST(ParallelCampaign, RemoteBatchingMatchesSerialWithFewerCalls) {
  const auto patterns = remotePatterns(9, 0xBEEF);

  RemoteRig serialRig(net::NetworkProfile::wan());
  VirtualFaultSimulator serial(serialRig.circuit, serialRig.components(),
                               serialRig.pis, serialRig.pos);
  const auto serialCallsBefore = serialRig.channel.stats().calls;
  const CampaignResult gold = serial.run(patterns);
  const auto serialCalls = serialRig.channel.stats().calls - serialCallsBefore;

  RemoteRig batchRig(net::NetworkProfile::wan());
  ParallelCampaignConfig cfg;
  cfg.threads = 2;
  cfg.batchSize = 3;
  ParallelFaultSimulator psim(batchRig.circuit, batchRig.components(),
                              batchRig.pis, batchRig.pos, cfg);
  const auto batchCallsBefore = batchRig.channel.stats().calls;
  const CampaignResult res = psim.run(patterns);
  const auto batchCalls = batchRig.channel.stats().calls - batchCallsBefore;

  EXPECT_EQ(res.faultList, gold.faultList);
  EXPECT_EQ(res.detected, gold.detected);
  EXPECT_EQ(res.detectedAfterPattern, gold.detectedAfterPattern);
  EXPECT_GT(res.detected.size(), 0u);

  // Same number of tables crosses the wire, but buffered into fewer message
  // pairs — so fewer channel calls and identical provider fees.
  EXPECT_EQ(res.detectionTablesRequested, gold.detectionTablesRequested);
  EXPECT_LT(res.tableFetchRoundTrips, gold.tableFetchRoundTrips);
  EXPECT_LT(batchCalls, serialCalls);
  EXPECT_DOUBLE_EQ(batchRig.channel.stats().feesCents,
                   serialRig.channel.stats().feesCents);
  EXPECT_EQ(batchRig.mult->remoteErrors(), 0u);
}

TEST(ParallelCampaign, ConcurrentCampaignWithAsyncChannelNoise) {
  // Stress for the thread-safety contract: a 4-thread injection campaign
  // shares its channel with a burst of concurrent callAsync traffic. The
  // channel serializes dispatch, so the run must be clean (TSan-verified
  // under -DVCAD_SANITIZE=thread) and every request must succeed.
  RemoteRig rig(net::NetworkProfile::ideal());
  const auto patterns = remotePatterns(6, 7);

  std::atomic<bool> stop{false};
  std::atomic<int> noiseFailures{0};
  std::thread noise([&] {
    while (!stop.load()) {
      auto fut =
          rig.provider.callAsync(rmi::MethodId::GetCatalog, 0, rmi::Args{});
      if (!fut.get().ok()) ++noiseFailures;
    }
  });

  ParallelCampaignConfig cfg;
  cfg.threads = 4;
  cfg.batchSize = 2;
  ParallelFaultSimulator psim(rig.circuit, rig.components(), rig.pis, rig.pos,
                              cfg);
  const CampaignResult res = psim.run(patterns);
  stop.store(true);
  noise.join();

  EXPECT_GT(res.faultList.size(), 0u);
  EXPECT_GT(res.detected.size(), 0u);
  EXPECT_EQ(noiseFailures.load(), 0);
  EXPECT_EQ(rig.mult->remoteErrors(), 0u);
  EXPECT_EQ(rig.channel.stats().securityRejections, 0u);
}

}  // namespace
}  // namespace vcad::fault
