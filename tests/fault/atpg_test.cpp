#include "fault/atpg.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

double coverageOf(const gate::Netlist& nl, const std::vector<Word>& patterns) {
  SerialFaultSimulator serial(nl, true);
  const auto res = serial.run(patterns);
  return res.coverage();
}

TEST(Atpg, ReachesTargetCoverageOnAdder) {
  const gate::Netlist nl = gate::makeRippleCarryAdder(8);
  AtpgOptions opt;
  opt.targetCoverage = 0.95;
  const AtpgResult res = generateTests(nl, opt);
  EXPECT_GE(res.coverage, 0.95);
  EXPECT_FALSE(res.patterns.empty());
  // The reported coverage must match an independent fault simulation.
  EXPECT_NEAR(coverageOf(nl, res.patterns), res.coverage, 1e-9);
}

TEST(Atpg, CompactionNeverLosesCoverage) {
  const gate::Netlist nl = gate::makeArrayMultiplier(5);
  AtpgOptions opt;
  opt.targetCoverage = 0.9;
  const AtpgResult res = generateTests(nl, opt);
  EXPECT_LE(res.patterns.size(), res.beforeCompaction);
  EXPECT_GE(res.coverage, 0.9);
}

TEST(Atpg, CompactTestsDropsRedundantPatterns) {
  const gate::Netlist nl = gate::makeHalfAdder();
  const auto collapsed = collapseAll(nl);
  // Duplicates and weak patterns interleaved with the strong ones.
  std::vector<Word> patterns{
      Word::fromUint(2, 0b00), Word::fromUint(2, 0b00), Word::fromUint(2, 0b01),
      Word::fromUint(2, 0b01), Word::fromUint(2, 0b10), Word::fromUint(2, 0b11),
  };
  const auto compact =
      compactTests(nl, collapsed.representatives, patterns);
  EXPECT_LT(compact.size(), patterns.size());
  // Coverage preserved.
  SerialFaultSimulator full(nl, collapsed.representatives,
                            symbolicFaultList(nl, collapsed));
  SerialFaultSimulator reduced(nl, collapsed.representatives,
                               symbolicFaultList(nl, collapsed));
  EXPECT_EQ(full.run(patterns).detected, reduced.run(compact).detected);
}

TEST(Atpg, DeterministicForFixedSeed) {
  const gate::Netlist nl = gate::makeParityTree(8);
  const AtpgResult a = generateTests(nl);
  const AtpgResult b = generateTests(nl);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.coverage, b.coverage);
}

TEST(Atpg, BudgetRespected) {
  const gate::Netlist nl = gate::makeArrayMultiplier(4);
  AtpgOptions opt;
  opt.maxPatterns = 10;
  opt.targetCoverage = 1.0;
  const AtpgResult res = generateTests(nl, opt);
  EXPECT_LE(res.candidatesTried, 10u);
}

class AtpgSweep : public ::testing::TestWithParam<int> {};

TEST_P(AtpgSweep, RandomCircuitsGetUsefulTests) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 16807);
  const gate::Netlist nl = gate::makeRandomNetlist(
      rng, 5 + static_cast<int>(rng.below(5)),
      20 + static_cast<int>(rng.below(60)), 3);
  AtpgOptions opt;
  opt.targetCoverage = 0.85;
  opt.seed = rng.next();
  const AtpgResult res = generateTests(nl, opt);
  // Random logic contains redundant/unobservable faults, so there is no
  // absolute coverage floor; the meaningful property is that the compact
  // set achieves what brute-force random testing achieves.
  std::vector<Word> brute;
  Rng bruteRng(99);
  for (int i = 0; i < 500; ++i) {
    brute.push_back(Word::fromUint(nl.inputCount(), bruteRng.next()));
  }
  const double achievable = coverageOf(nl, brute);
  EXPECT_GE(res.coverage, 0.9 * achievable) << "seed " << GetParam();
  EXPECT_LE(res.patterns.size(), brute.size());
  // Compact set is never larger than the fault count.
  EXPECT_LE(res.patterns.size(), res.faultCount);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtpgSweep, ::testing::Range(1, 9));

TEST(Atpg, GeneratedTestsDriveVirtualFaultSimulation) {
  // End-to-end: ATPG-generated (private, user-owned) patterns reach the
  // same coverage through the virtual protocol as through full disclosure.
  const gate::Netlist ip1 = gate::makeIp1HalfAdder();
  const AtpgResult tests = generateTests(ip1, {1.0, 64, 64, 99});
  EXPECT_GT(tests.coverage, 0.99);
}

}  // namespace
}  // namespace vcad::fault
