#include "fault/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fault/block_design.hpp"
#include "fault/seq_fault.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

CampaignResult smallCampaign() {
  BlockDesign d;
  const int a = d.addPrimaryInput("A");
  const int b = d.addPrimaryInput("B");
  const int ip1 = d.addBlock(
      "IP1", std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder()));
  d.connect({-1, a}, ip1, 0);
  d.connect({-1, b}, ip1, 1);
  d.markPrimaryOutput(ip1, 0, "S");
  d.markPrimaryOutput(ip1, 1, "C");
  auto inst = d.instantiate();
  LocalFaultBlock client(*inst.blockModules[0]);
  VirtualFaultSimulator sim(*inst.circuit, {&client}, inst.piConns,
                            inst.poConns);
  std::vector<Word> pats;
  for (unsigned v = 0; v < 4; ++v) pats.push_back(Word::fromUint(2, v));
  return sim.runPacked(pats);
}

TEST(Report, MarkdownContainsAllSections) {
  const CampaignResult res = smallCampaign();
  std::ostringstream os;
  writeMarkdownReport(os, res, "IP1 sign-off");
  const std::string text = os.str();
  EXPECT_NE(text.find("# IP1 sign-off"), std::string::npos);
  EXPECT_NE(text.find("faults (collapsed): " +
                      std::to_string(res.faultList.size())),
            std::string::npos);
  EXPECT_NE(text.find("## Coverage curve"), std::string::npos);
  EXPECT_NE(text.find("cache hits"), std::string::npos);
  EXPECT_NE(text.find("## Undetected faults"), std::string::npos);
  // Exhaustive patterns on the exposed half adder detect everything.
  EXPECT_NE(text.find("(none)"), std::string::npos);
}

TEST(Report, CsvHasOneRowPerPattern) {
  const CampaignResult res = smallCampaign();
  std::ostringstream os;
  writeCoverageCsv(os, res);
  const std::string text = os.str();
  // Header + 4 patterns.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  EXPECT_NE(text.find("pattern_index,detected,total,coverage_pct"),
            std::string::npos);
}

TEST(Report, SequentialReportIncludesLatency) {
  const gate::SeqNetlist machine = gate::makeCounter(3);
  LocalSeqFaultBlock block(machine);
  const auto res = runSeqCampaign(
      block, std::vector<Word>(15, Word::fromUint(1, 1)));
  std::ostringstream os;
  writeMarkdownReport(os, res, "counter3");
  const std::string text = os.str();
  EXPECT_NE(text.find("# counter3"), std::string::npos);
  EXPECT_NE(text.find("shadow-machine steps"), std::string::npos);
  EXPECT_NE(text.find("detection latency"), std::string::npos);
}

TEST(Report, UndetectedFaultsListed) {
  // One useless pattern leaves faults undetected; they must be named.
  BlockDesign d;
  const int a = d.addPrimaryInput("A");
  const int b = d.addPrimaryInput("B");
  const int ip1 = d.addBlock(
      "IP1", std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder()));
  d.connect({-1, a}, ip1, 0);
  d.connect({-1, b}, ip1, 1);
  d.markPrimaryOutput(ip1, 0, "S");
  d.markPrimaryOutput(ip1, 1, "C");
  auto inst = d.instantiate();
  LocalFaultBlock client(*inst.blockModules[0]);
  VirtualFaultSimulator sim(*inst.circuit, {&client}, inst.piConns,
                            inst.poConns);
  const auto res = sim.runPacked({Word::fromUint(2, 0)});
  ASSERT_LT(res.detected.size(), res.faultList.size());
  std::ostringstream os;
  writeMarkdownReport(os, res);
  EXPECT_NE(os.str().find("- `IP1/"), std::string::npos);
}

}  // namespace
}  // namespace vcad::fault
