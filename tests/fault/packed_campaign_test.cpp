// Campaign-level golden tests for the packed bit-parallel engine: every
// consumer (serial campaigns, detection-table batches, dictionaries, ATPG,
// the parallel virtual campaign) must produce results bit-identical to the
// scalar reference paths.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/atpg.hpp"
#include "fault/block_design.hpp"
#include "fault/dictionary.hpp"
#include "fault/parallel_campaign.hpp"
#include "fault/serial_sim.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

using gate::Netlist;

std::vector<Word> randomPatterns(Rng& rng, int width, std::size_t n,
                                 int unknownPct = 0) {
  std::vector<Word> out;
  out.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    Word w(width);
    for (int i = 0; i < width; ++i) {
      if (rng.below(100) < static_cast<std::uint64_t>(unknownPct)) {
        w.setBit(i, rng.below(2) == 0 ? Logic::X : Logic::Z);
      } else {
        w.setBit(i, rng.below(2) == 0 ? Logic::L0 : Logic::L1);
      }
    }
    out.push_back(std::move(w));
  }
  return out;
}

void expectCampaignsIdentical(const CampaignResult& packed,
                              const CampaignResult& scalar,
                              const std::string& label) {
  EXPECT_EQ(packed.faultList, scalar.faultList) << label;
  EXPECT_EQ(packed.detected, scalar.detected) << label;
  EXPECT_EQ(packed.detectedAfterPattern, scalar.detectedAfterPattern) << label;
  EXPECT_EQ(packed.faultSimEvaluations, scalar.faultSimEvaluations) << label;
}

TEST(PackedSerialCampaign, BitIdenticalToScalarOnFixedCircuits) {
  Rng rng(0x5eed01);
  const Netlist circuits[] = {gate::makeHalfAdder(),
                              gate::makeRippleCarryAdder(4),
                              gate::makeArrayMultiplier(3)};
  // Pattern counts straddling the 64-lane block boundary.
  for (const std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    for (const Netlist& nl : circuits) {
      const auto patterns = randomPatterns(rng, nl.inputCount(), n);
      SerialFaultSimulator sim(nl);
      expectCampaignsIdentical(
          sim.run(patterns), sim.runScalar(patterns),
          "n=" + std::to_string(n) + " inputs=" +
              std::to_string(nl.inputCount()));
    }
  }
}

TEST(PackedSerialCampaign, BitIdenticalOnRandomNetlistsWithUnknowns) {
  Rng rng(0x5eed02);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen(rng.next());
    const Netlist nl =
        gate::makeRandomNetlist(gen, 3 + static_cast<int>(rng.below(6)),
                                10 + static_cast<int>(rng.below(40)),
                                1 + static_cast<int>(rng.below(3)));
    const auto patterns =
        randomPatterns(rng, nl.inputCount(), 90, trial % 2 == 0 ? 0 : 20);
    SerialFaultSimulator sim(nl, /*dominance=*/trial % 2 == 0);
    expectCampaignsIdentical(sim.run(patterns), sim.runScalar(patterns),
                             "trial=" + std::to_string(trial));
  }
}

TEST(PackedDetectionTables, BatchMatchesScalarBuilderPerConfig) {
  Rng rng(0x5eed03);
  for (int trial = 0; trial < 6; ++trial) {
    Rng gen(rng.next());
    const Netlist nl = gate::makeRandomNetlist(
        gen, 4 + static_cast<int>(rng.below(4)), 25, 2);
    const gate::NetlistEvaluator eval(nl);
    const gate::PackedEvaluator packed(nl);
    const CollapsedFaults collapsed = collapseAll(nl);
    // More than one block, with X/Z-carrying configurations mixed in.
    const auto inputs =
        randomPatterns(rng, nl.inputCount(), 70, trial % 2 == 0 ? 0 : 30);

    const auto tables = buildDetectionTables(packed, collapsed, inputs);
    ASSERT_EQ(tables.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const DetectionTable scalar =
          buildDetectionTable(eval, collapsed, inputs[i]);
      EXPECT_EQ(tables[i].inputs(), scalar.inputs());
      EXPECT_EQ(tables[i].faultFreeOutput(), scalar.faultFreeOutput());
      ASSERT_EQ(tables[i].rows().size(), scalar.rows().size()) << i;
      for (std::size_t r = 0; r < scalar.rows().size(); ++r) {
        EXPECT_EQ(tables[i].rows()[r].faultyOutput,
                  scalar.rows()[r].faultyOutput);
        EXPECT_EQ(tables[i].rows()[r].faults, scalar.rows()[r].faults);
      }
    }
  }
}

TEST(PackedDictionary, BuildMatchesScalarTablePerConfiguration) {
  // 7 inputs = 128 configurations: exercises a full 64-lane block plus a
  // second one.
  Rng gen(0x5eed04);
  const Netlist nl = gate::makeRandomNetlist(gen, 7, 30, 2);
  const gate::NetlistEvaluator eval(nl);
  const CollapsedFaults collapsed =
      collapseAll(nl, true, /*includePrimaryInputs=*/false,
                  /*includePrimaryOutputNets=*/false);
  const FaultDictionary dict = FaultDictionary::build(nl, collapsed);
  ASSERT_EQ(dict.tableCount(), 128u);
  for (std::uint64_t v = 0; v < 128; ++v) {
    const Word in = Word::fromUint(7, v);
    const DetectionTable scalar = buildDetectionTable(eval, collapsed, in);
    const DetectionTable& packed = dict.tableFor(in);
    net::ByteBuffer a, b;
    packed.serialize(a);
    scalar.serialize(b);
    EXPECT_EQ(a.bytes(), b.bytes()) << "config " << v;
  }
}

/// The pre-packed random-ATPG loop, verbatim, as the golden reference.
AtpgResult scalarGenerateTests(const Netlist& netlist,
                               const AtpgOptions& options) {
  const CollapsedFaults collapsed = collapseAll(netlist);
  gate::NetlistEvaluator eval(netlist);
  Rng rng(options.seed);

  AtpgResult res;
  res.faultCount = collapsed.size();
  if (collapsed.representatives.empty()) return res;

  const auto detectsWhich = [&](const std::vector<bool>& detected,
                                const Word& pattern) {
    const Word golden = eval.evalOutputs(pattern);
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < collapsed.representatives.size(); ++i) {
      if (detected[i]) continue;
      if (eval.evalOutputs(pattern, collapsed.representatives[i]) != golden) {
        hits.push_back(i);
      }
    }
    return hits;
  };

  std::vector<bool> detected(collapsed.size(), false);
  std::size_t detectedCount = 0;
  int uselessStreak = 0;
  while (static_cast<int>(res.candidatesTried) < options.maxPatterns &&
         uselessStreak < options.giveUpAfterUseless) {
    const Word candidate = Word::fromUint(netlist.inputCount(), rng.next());
    ++res.candidatesTried;
    const auto hits = detectsWhich(detected, candidate);
    if (hits.empty()) {
      ++uselessStreak;
      continue;
    }
    uselessStreak = 0;
    for (std::size_t i : hits) detected[i] = true;
    detectedCount += hits.size();
    res.patterns.push_back(candidate);
    if (static_cast<double>(detectedCount) >=
        options.targetCoverage * static_cast<double>(collapsed.size())) {
      break;
    }
  }

  res.beforeCompaction = res.patterns.size();
  res.patterns =
      compactTests(netlist, collapsed.representatives, res.patterns);
  std::vector<bool> finalDetected(collapsed.size(), false);
  std::size_t finalCount = 0;
  for (const Word& p : res.patterns) {
    for (std::size_t i : detectsWhich(finalDetected, p)) {
      finalDetected[i] = true;
      ++finalCount;
    }
  }
  res.coverage =
      static_cast<double>(finalCount) / static_cast<double>(collapsed.size());
  return res;
}

TEST(PackedAtpg, GenerateTestsBitIdenticalToScalarLoop) {
  Rng rng(0x5eed05);
  for (int trial = 0; trial < 6; ++trial) {
    Rng gen(rng.next());
    const Netlist nl = gate::makeRandomNetlist(
        gen, 4 + static_cast<int>(rng.below(5)),
        15 + static_cast<int>(rng.below(40)), 2);
    AtpgOptions opt;
    opt.seed = rng.next();
    // Sweep stop conditions across block boundaries: tight candidate
    // budgets, small useless streaks, and coverage targets that trip
    // mid-block.
    opt.maxPatterns = trial % 2 == 0 ? 100 : 1000;
    opt.giveUpAfterUseless = trial % 3 == 0 ? 10 : 100;
    opt.targetCoverage = trial % 2 == 0 ? 0.8 : 1.0;

    const AtpgResult packed = generateTests(nl, opt);
    const AtpgResult scalar = scalarGenerateTests(nl, opt);
    const std::string label = "trial=" + std::to_string(trial);
    EXPECT_EQ(packed.patterns, scalar.patterns) << label;
    EXPECT_EQ(packed.coverage, scalar.coverage) << label;
    EXPECT_EQ(packed.faultCount, scalar.faultCount) << label;
    EXPECT_EQ(packed.candidatesTried, scalar.candidatesTried) << label;
    EXPECT_EQ(packed.beforeCompaction, scalar.beforeCompaction) << label;
  }
}

TEST(PackedAtpg, AdderCoverageStaysHigh) {
  const Netlist nl = gate::makeRippleCarryAdder(4);
  AtpgOptions opt;
  opt.targetCoverage = 1.0;
  const AtpgResult res = generateTests(nl, opt);
  EXPECT_GE(res.coverage, 0.95);
  EXPECT_FALSE(res.patterns.empty());
  EXPECT_LE(res.patterns.size(), res.beforeCompaction);
}

// --- parallel campaign with pack-width-aligned batches --------------------

std::shared_ptr<const Netlist> share(Netlist nl) {
  return std::make_shared<const Netlist>(std::move(nl));
}

struct Scenario {
  BlockDesign design;
  BlockDesign::Instantiation inst;
  std::vector<std::unique_ptr<LocalFaultBlock>> clients;
  int nPis = 0;

  std::vector<FaultClient*> components() {
    std::vector<FaultClient*> out;
    for (auto& c : clients) out.push_back(c.get());
    return out;
  }
};

Scenario makeScenario(std::uint64_t seed) {
  auto s = Scenario{};
  Rng rng(seed);
  s.nPis = 4 + static_cast<int>(rng.below(3));
  for (int i = 0; i < s.nPis; ++i) {
    s.design.addPrimaryInput("pi" + std::to_string(i));
  }
  std::vector<std::pair<int, int>> sources;
  for (int i = 0; i < s.nPis; ++i) sources.emplace_back(-1, i);

  const int nBlocks = 2 + static_cast<int>(rng.below(3));
  for (int b = 0; b < nBlocks; ++b) {
    const int ins = 2 + static_cast<int>(rng.below(3));
    const int gates = 5 + static_cast<int>(rng.below(10));
    const int outs = 1 + static_cast<int>(rng.below(2));
    Rng blockRng(rng.next());
    const int id = s.design.addBlock(
        "blk" + std::to_string(b),
        share(gate::makeRandomNetlist(blockRng, ins, gates, outs)));
    for (int pin = 0; pin < ins; ++pin) {
      const auto src = sources[rng.below(sources.size())];
      s.design.connect({src.first, src.second}, id, pin);
    }
    for (int pin = 0; pin < outs; ++pin) sources.emplace_back(id, pin);
  }
  for (int b = 0; b < nBlocks; ++b) {
    for (int pin = 0; pin < s.design.blockNetlist(b).outputCount(); ++pin) {
      s.design.markPrimaryOutput(b, pin);
    }
  }
  s.inst = s.design.instantiate();
  for (int b = 0; b < nBlocks; ++b) {
    s.clients.push_back(std::make_unique<LocalFaultBlock>(
        *s.inst.blockModules[static_cast<size_t>(b)], true,
        FaultScope{false, true}));
  }
  return s;
}

TEST(PackAlignedBatches, ConfigRoundsBatchSizeUpToLaneMultiple) {
  Scenario s = makeScenario(0x5eed06);
  for (const auto& [requested, expected] :
       {std::pair<std::size_t, std::size_t>{1, 64},
        {63, 64},
        {64, 64},
        {65, 128}}) {
    ParallelCampaignConfig cfg;
    cfg.batchSize = requested;
    cfg.alignBatchesToPackWidth = true;
    ParallelFaultSimulator sim(*s.inst.circuit, s.components(),
                               s.inst.piConns, s.inst.poConns, cfg);
    EXPECT_EQ(sim.config().batchSize, expected);
  }
}

TEST(PackAlignedBatches, ThreadSweepBitIdenticalToSerialVirtual) {
  Scenario s = makeScenario(0x5eed07);
  Rng rng(0x5eed08);
  const auto patterns = randomPatterns(rng, s.nPis, 80);

  VirtualFaultSimulator serial(*s.inst.circuit, s.components(),
                               s.inst.piConns, s.inst.poConns);
  const CampaignResult gold = serial.runPacked(patterns);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelCampaignConfig cfg;
    cfg.threads = threads;
    cfg.batchSize = 8;  // rounds up to 64: > one full lane block per fetch
    cfg.alignBatchesToPackWidth = true;
    ParallelFaultSimulator psim(*s.inst.circuit, s.components(),
                                s.inst.piConns, s.inst.poConns, cfg);
    const CampaignResult res = psim.runPacked(patterns);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(res.faultList, gold.faultList) << label;
    EXPECT_EQ(res.detected, gold.detected) << label;
    EXPECT_EQ(res.detectedAfterPattern, gold.detectedAfterPattern) << label;
  }
}

}  // namespace
}  // namespace vcad::fault
