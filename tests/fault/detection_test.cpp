#include "fault/detection.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"

namespace vcad::fault {
namespace {

class Ip1Detection : public ::testing::Test {
 protected:
  Ip1Detection()
      : nl_(gate::makeIp1HalfAdder()),
        eval_(nl_),
        collapsed_(collapseAll(nl_, /*dominance=*/true, false, false)) {}

  Netlist nl_;
  gate::NetlistEvaluator eval_;
  CollapsedFaults collapsed_;
};

TEST_F(Ip1Detection, TableAtOneZeroMatchesPaperShape) {
  // The paper's Figure 4(b): for IIP1=1, IIP2=0 the table has two erroneous
  // rows — outputs (OIP1,OIP2) = 00 caused by sum-path sa0 faults, and 11
  // caused by the carry-path fault I6sa1.
  const DetectionTable t =
      buildDetectionTable(eval_, collapsed_, Word::fromString("01"));
  EXPECT_EQ(t.faultFreeOutput().toString(), "01");  // OIP2=0, OIP1=1
  ASSERT_EQ(t.rows().size(), 2u);

  const auto sumRow = t.faultsFor(Word::fromString("00"));
  ASSERT_FALSE(sumRow.empty());
  // I3sa0 collapses onto I2sa0 in our structure; its class representative
  // must cause the 00 error.
  const int i3sa0Rep =
      collapsed_.repIndexOf.at({nl_.findNet("I3"), Logic::L0});
  ASSERT_GE(i3sa0Rep, 0);
  const std::string i3Symbol = symbolOf(
      nl_, collapsed_.representatives[static_cast<size_t>(i3sa0Rep)]);
  EXPECT_NE(std::find(sumRow.begin(), sumRow.end(), i3Symbol), sumRow.end());

  const auto carryRow = t.faultsFor(Word::fromString("11"));
  ASSERT_EQ(carryRow.size(), 1u);
  EXPECT_EQ(carryRow[0], "I6sa1");
}

TEST_F(Ip1Detection, UnexcitedFaultsAbsent) {
  const DetectionTable t =
      buildDetectionTable(eval_, collapsed_, Word::fromString("01"));
  // I6sa0 cannot be excited when the fault-free carry is already 0.
  EXPECT_EQ(t.faultyOutputFor("I6sa0"), nullptr);
  // I6sa1 is excited and maps to output 11.
  const Word* out = t.faultyOutputFor("I6sa1");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->toString(), "11");
}

TEST_F(Ip1Detection, AllInputConfigurationsProduceConsistentTables) {
  for (unsigned v = 0; v < 4; ++v) {
    const Word in = Word::fromUint(2, v);
    const DetectionTable t = buildDetectionTable(eval_, collapsed_, in);
    EXPECT_EQ(t.inputs(), in);
    for (const auto& row : t.rows()) {
      EXPECT_NE(row.faultyOutput, t.faultFreeOutput());
      EXPECT_FALSE(row.faults.empty());
      // Re-simulating each listed fault must reproduce the row's output.
      for (const std::string& sym : row.faults) {
        // Find the representative with this symbol.
        bool found = false;
        for (const StuckFault& f : collapsed_.representatives) {
          if (symbolOf(nl_, f) == sym) {
            EXPECT_EQ(eval_.evalOutputs(in, f), row.faultyOutput);
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << sym;
      }
    }
  }
}

TEST_F(Ip1Detection, SerializationRoundTrip) {
  const DetectionTable t =
      buildDetectionTable(eval_, collapsed_, Word::fromString("01"));
  net::ByteBuffer buf;
  t.serialize(buf);
  const DetectionTable back = DetectionTable::deserialize(buf);
  EXPECT_EQ(back.inputs(), t.inputs());
  EXPECT_EQ(back.faultFreeOutput(), t.faultFreeOutput());
  ASSERT_EQ(back.rows().size(), t.rows().size());
  for (size_t i = 0; i < t.rows().size(); ++i) {
    EXPECT_EQ(back.rows()[i].faultyOutput, t.rows()[i].faultyOutput);
    EXPECT_EQ(back.rows()[i].faults, t.rows()[i].faults);
  }
}

TEST_F(Ip1Detection, IsAParamValue) {
  const DetectionTable t =
      buildDetectionTable(eval_, collapsed_, Word::fromString("01"));
  const ParamValue& v = t;  // DetectionTable is a parameter value
  EXPECT_FALSE(v.isNull());
  EXPECT_NE(v.toString().find("DetectionTable"), std::string::npos);
  EXPECT_THROW(v.asDouble(), std::logic_error);
}

TEST(DetectionTable, ExcitedFaultCountOnMultiplier) {
  const Netlist nl = gate::makeArrayMultiplier(3);
  gate::NetlistEvaluator eval(nl);
  const auto collapsed = collapseAll(nl, true, false, false);
  const DetectionTable t =
      buildDetectionTable(eval, collapsed, Word::fromUint(6, 0b101011));
  EXPECT_GT(t.excitedFaultCount(), 0u);
  EXPECT_LE(t.excitedFaultCount(), collapsed.size());
  // Row outputs are unique.
  for (size_t i = 0; i < t.rows().size(); ++i) {
    for (size_t j = i + 1; j < t.rows().size(); ++j) {
      EXPECT_NE(t.rows()[i].faultyOutput, t.rows()[j].faultyOutput);
    }
  }
}

}  // namespace
}  // namespace vcad::fault
