#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "estim/power_estimators.hpp"
#include "gate/generators.hpp"

namespace vcad::estim {
namespace {

std::vector<Word> randomPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) out.push_back(Word::fromUint(width, rng.next()));
  return out;
}

TEST(PeakPower, AtLeastAveragePower) {
  auto nl = std::make_shared<const gate::Netlist>(gate::makeArrayMultiplier(6));
  GateLevelPeakPowerEstimator peak(nl);
  GateLevelPowerEstimator avg(nl);
  const auto patterns = randomPatterns(12, 60, 5);
  EstimationContext ctx;
  ctx.patternHistory = &patterns;
  EXPECT_GE(peak.estimate(ctx)->asDouble(), avg.estimate(ctx)->asDouble());
}

TEST(PeakPower, NullWithoutHistory) {
  auto nl = std::make_shared<const gate::Netlist>(gate::makeHalfAdder());
  GateLevelPeakPowerEstimator peak(nl);
  EstimationContext ctx;
  EXPECT_TRUE(peak.estimate(ctx)->isNull());
}

TEST(PeakPower, SingleBurstDominatesQuietStream) {
  auto nl = std::make_shared<const gate::Netlist>(gate::makeArrayMultiplier(8));
  GateLevelPeakPowerEstimator peak(nl);
  GateLevelPowerEstimator avg(nl);
  // Mostly idle with one all-bits burst: peak stays high, average drops.
  std::vector<Word> patterns(40, Word::fromUint(16, 0));
  patterns[20] = Word::fromUint(16, 0xFFFF);
  EstimationContext ctx;
  ctx.patternHistory = &patterns;
  const double p = peak.estimate(ctx)->asDouble();
  const double a = avg.estimate(ctx)->asDouble();
  EXPECT_GT(p, 5 * a);
}

TEST(IoActivity, CountsPortToggles) {
  IoActivityEstimator est;
  std::vector<Word> patterns{Word::fromUint(8, 0x00), Word::fromUint(8, 0xFF),
                             Word::fromUint(8, 0xFF), Word::fromUint(8, 0x0F)};
  EstimationContext ctx;
  ctx.patternHistory = &patterns;
  // Transitions: 8 toggles, 0 toggles, 4 toggles -> average 4.
  EXPECT_DOUBLE_EQ(est.estimate(ctx)->asDouble(), 4.0);
  EXPECT_FALSE(est.info().remote);  // needs no implementation knowledge
}

TEST(IoActivity, NullWithoutHistory) {
  IoActivityEstimator est;
  EstimationContext ctx;
  EXPECT_TRUE(est.estimate(ctx)->isNull());
}

}  // namespace
}  // namespace vcad::estim
