#include "estim/power_estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "gate/generators.hpp"

namespace vcad::estim {
namespace {

std::vector<Word> randomPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) out.push_back(Word::fromUint(width, rng.next()));
  return out;
}

TEST(ConstantEstimator, ReturnsFixedValue) {
  ConstantEstimator est("constant", 25.0, "mW", 25.0);
  EstimationContext ctx;
  auto v = est.estimate(ctx);
  EXPECT_DOUBLE_EQ(v->asDouble(), 25.0);
  EXPECT_FALSE(est.info().remote);
  EXPECT_DOUBLE_EQ(est.info().costPerUseCents, 0.0);
}

TEST(LinearModel, FitRecoversActivityDependence) {
  const auto nl = gate::makeArrayMultiplier(8);
  const auto training = randomPatterns(16, 300, 11);
  const LinearPowerModel model = fitLinearPowerModel(nl, training);
  // More input activity must predict more power for a multiplier.
  EXPECT_GT(model.slopeMwPerToggle, 0.0);
}

TEST(LinearModel, PredictionTracksGateLevelWithinAdvertisedError) {
  const auto nl = gate::makeArrayMultiplier(8);
  const auto training = randomPatterns(16, 400, 21);
  const LinearPowerModel model = fitLinearPowerModel(nl, training);
  // Evaluate on held-out random data: linear model should be within ~35%
  // of the gate-level value for random stimulus (it is a crude model; the
  // paper quotes 20% average error for its regression estimator).
  const auto test = randomPatterns(16, 200, 77);
  const double golden = gate::gateLevelPower(nl, test).avgPowerMw;
  const double predicted = predictLinearPowerMw(model, test);
  EXPECT_GT(golden, 0.0);
  EXPECT_LT(std::abs(predicted - golden) / golden, 0.35);
}

TEST(LinearModel, DegenerateActivityFallsBackToConstant) {
  const auto nl = gate::makeHalfAdder();
  // All-identical patterns: zero activity everywhere.
  const std::vector<Word> constant(10, Word::fromUint(2, 0b11));
  const LinearPowerModel model = fitLinearPowerModel(nl, constant);
  EXPECT_DOUBLE_EQ(model.slopeMwPerToggle, 0.0);
  EXPECT_DOUBLE_EQ(model.interceptMw, 0.0);
}

TEST(LinearModel, RequiresTrainingData) {
  const auto nl = gate::makeHalfAdder();
  EXPECT_THROW(fitLinearPowerModel(nl, {Word::fromUint(2, 0)}),
               std::invalid_argument);
}

TEST(LinearRegressionEstimator, UsesPatternHistory) {
  const auto nl = gate::makeArrayMultiplier(6);
  const auto training = randomPatterns(12, 200, 5);
  LinearRegressionPowerEstimator est(fitLinearPowerModel(nl, training));

  const auto lowActivity = std::vector<Word>(20, Word::fromUint(12, 0));
  std::vector<Word> highActivity;
  for (int i = 0; i < 20; ++i) {
    highActivity.push_back(Word::fromUint(12, i % 2 == 0 ? 0xFFF : 0x000));
  }
  EstimationContext low, high;
  low.patternHistory = &lowActivity;
  high.patternHistory = &highActivity;
  EXPECT_GT(est.estimate(high)->asDouble(), est.estimate(low)->asDouble());
}

TEST(GateLevelEstimator, MatchesDirectComputation) {
  auto nl = std::make_shared<const gate::Netlist>(gate::makeArrayMultiplier(6));
  GateLevelPowerEstimator est(nl);
  const auto patterns = randomPatterns(12, 50, 3);
  EstimationContext ctx;
  ctx.patternHistory = &patterns;
  const double direct = gate::gateLevelPower(*nl, patterns).avgPowerMw;
  EXPECT_DOUBLE_EQ(est.estimate(ctx)->asDouble(), direct);
}

TEST(GateLevelEstimator, NullWithoutHistory) {
  auto nl = std::make_shared<const gate::Netlist>(gate::makeHalfAdder());
  GateLevelPowerEstimator est(nl);
  EstimationContext ctx;
  EXPECT_TRUE(est.estimate(ctx)->isNull());
}

TEST(GateLevelEstimator, AdvertisesRemoteFeeAndLatencyFlag) {
  auto nl = std::make_shared<const gate::Netlist>(gate::makeHalfAdder());
  GateLevelPowerEstimator est(nl, {}, /*remote=*/true, 0.1);
  EXPECT_TRUE(est.info().remote);
  EXPECT_TRUE(est.info().unpredictableLatency);
  EXPECT_DOUBLE_EQ(est.info().costPerUseCents, 0.1);
}

TEST(Table1Ordering, AccuracyRanksGateLevelBestConstantWorst) {
  // The paper's Table 1 ranks the estimators by error: constant (25%) >
  // linear regression (20%) > gate-level (exact here, 10% advertised).
  const auto nl = gate::makeArrayMultiplier(8);
  const auto training = randomPatterns(16, 300, 1);
  const double constant = characterizeAveragePowerMw(nl, training);
  const LinearPowerModel lin = fitLinearPowerModel(nl, training);

  // A biased workload (mostly-idle input stream) separates the estimators.
  std::vector<Word> workload;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    workload.push_back(Word::fromUint(16, rng.chance(0.15) ? rng.next() : 0));
  }
  const double golden = gate::gateLevelPower(nl, workload).avgPowerMw;
  const double errConstant = std::abs(constant - golden) / golden;
  const double errLinear =
      std::abs(predictLinearPowerMw(lin, workload) - golden) / golden;
  EXPECT_LT(errLinear, errConstant);
}

TEST(GateLevelAreaTiming, ScaleWithWidth) {
  auto nl8 = std::make_shared<const gate::Netlist>(gate::makeArrayMultiplier(8));
  auto nl16 =
      std::make_shared<const gate::Netlist>(gate::makeArrayMultiplier(16));
  GateLevelAreaEstimator a8(nl8), a16(nl16);
  GateLevelTimingEstimator t8(nl8), t16(nl16);
  EstimationContext ctx;
  EXPECT_GT(a16.estimate(ctx)->asDouble(), a8.estimate(ctx)->asDouble());
  EXPECT_GT(t16.estimate(ctx)->asDouble(), t8.estimate(ctx)->asDouble());
}

TEST(PatternBuffer, SignalsFullAtCapacity) {
  PatternBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.push(Word::fromUint(4, 1)));
  EXPECT_FALSE(buf.push(Word::fromUint(4, 2)));
  EXPECT_TRUE(buf.push(Word::fromUint(4, 3)));
  EXPECT_FALSE(buf.empty());
}

TEST(PatternBuffer, FlushKeepsOverlapSeed) {
  PatternBuffer buf(3);
  buf.push(Word::fromUint(4, 1));
  buf.push(Word::fromUint(4, 2));
  buf.push(Word::fromUint(4, 3));
  const auto batch1 = buf.flush();
  EXPECT_EQ(batch1.size(), 3u);
  EXPECT_TRUE(buf.empty());  // only the overlap seed remains
  buf.push(Word::fromUint(4, 4));
  EXPECT_FALSE(buf.empty());
  const auto batch2 = buf.flush();
  ASSERT_EQ(batch2.size(), 2u);
  // Overlap: batch2 starts with batch1's last pattern, so transition 3->4
  // is preserved across the flush boundary.
  EXPECT_EQ(batch2[0].toUint(), 3u);
  EXPECT_EQ(batch2[1].toUint(), 4u);
}

TEST(PatternBuffer, CapacityValidated) {
  EXPECT_THROW(PatternBuffer(1), std::invalid_argument);
}

}  // namespace
}  // namespace vcad::estim
