// Differential tests for the packed bit-parallel evaluator: every lane of
// every packed pass must decode to exactly what the scalar NetlistEvaluator
// computes — for random netlists, X/Z-heavy input blocks, and random
// stuck-at faults.
#include "gate/packed_eval.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "gate/generators.hpp"
#include "gate/metrics.hpp"
#include "gate/netlist.hpp"

namespace vcad::gate {
namespace {

/// Random 4-valued word. `unknownPct` of bits (in [0,100]) become X or Z.
Word randomWord(Rng& rng, int width, int unknownPct) {
  Word w(width);
  for (int i = 0; i < width; ++i) {
    if (rng.below(100) < static_cast<std::uint64_t>(unknownPct)) {
      w.setBit(i, rng.below(2) == 0 ? Logic::X : Logic::Z);
    } else {
      w.setBit(i, rng.below(2) == 0 ? Logic::L0 : Logic::L1);
    }
  }
  return w;
}

std::vector<Word> randomBlock(Rng& rng, int width, std::size_t n,
                              int unknownPct) {
  std::vector<Word> block;
  block.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    block.push_back(randomWord(rng, width, unknownPct));
  }
  return block;
}

void expectAllLanesMatchScalar(const Netlist& nl,
                               const std::vector<Word>& patterns,
                               const StuckFault* fault) {
  const NetlistEvaluator eval(nl);
  const PackedEvaluator packed(nl);
  std::optional<StuckFault> scalarFault;
  if (fault != nullptr) scalarFault = *fault;

  std::vector<LanePlanes> planes;
  std::vector<Logic> scalar;
  for (std::size_t base = 0; base < patterns.size();
       base += PackedEvaluator::kLanes) {
    const std::size_t lanes =
        std::min<std::size_t>(PackedEvaluator::kLanes, patterns.size() - base);
    packed.evaluate(packed.pack(patterns, base, lanes), planes, fault);
    for (std::size_t l = 0; l < lanes; ++l) {
      eval.evaluateInto(patterns[base + l], scalar, scalarFault);
      for (NetId n = 0; n < nl.netCount(); ++n) {
        ASSERT_EQ(packed.netValue(planes, n, static_cast<int>(l)),
                  scalar[static_cast<std::size_t>(n)])
            << "net " << nl.netName(n) << " lane " << l << " pattern "
            << patterns[base + l].toString();
      }
      ASSERT_EQ(packed.outputsOf(planes, static_cast<int>(l)),
                eval.outputsOf(scalar));
    }
  }
}

TEST(PackedEval, HalfAdderExhaustiveFullyKnown) {
  const Netlist nl = makeHalfAdder();
  std::vector<Word> patterns;
  for (unsigned v = 0; v < 4; ++v) {
    patterns.push_back(Word::fromUint(2, v));
  }
  expectAllLanesMatchScalar(nl, patterns, nullptr);
}

TEST(PackedEval, RandomNetlistsRandomBlocksMatchScalar) {
  Rng rng(0xbeef01);
  for (int trial = 0; trial < 20; ++trial) {
    const int nIn = 2 + static_cast<int>(rng.below(10));
    const int nGates = 5 + static_cast<int>(rng.below(60));
    const int nOut = 1 + static_cast<int>(rng.below(4));
    Rng gen(rng.next());
    const Netlist nl = makeRandomNetlist(gen, nIn, nGates, nOut);
    // Mixed blocks: fully known, X/Z-sprinkled, and X/Z-heavy.
    const int unknownPct = trial % 3 == 0 ? 0 : (trial % 3 == 1 ? 15 : 60);
    const auto patterns = randomBlock(rng, nIn, 100, unknownPct);
    expectAllLanesMatchScalar(nl, patterns, nullptr);
  }
}

TEST(PackedEval, RandomStuckFaultsMatchScalar) {
  Rng rng(0xbeef02);
  for (int trial = 0; trial < 15; ++trial) {
    const int nIn = 3 + static_cast<int>(rng.below(8));
    Rng gen(rng.next());
    const Netlist nl = makeRandomNetlist(gen, nIn, 40, 3);
    const auto patterns = randomBlock(rng, nIn, 80, trial % 2 == 0 ? 0 : 25);
    for (int f = 0; f < 8; ++f) {
      const StuckFault fault{
          static_cast<NetId>(rng.below(static_cast<std::uint64_t>(
              nl.netCount()))),
          rng.below(2) == 0 ? Logic::L0 : Logic::L1};
      expectAllLanesMatchScalar(nl, patterns, &fault);
    }
  }
}

TEST(PackedEval, FaultOnPrimaryInputNetMatchesScalar) {
  const Netlist nl = makeRippleCarryAdder(4);
  Rng rng(0xbeef03);
  const auto patterns = randomBlock(rng, nl.inputCount(), 64, 10);
  for (NetId pi : nl.primaryInputs()) {
    const StuckFault sa0{pi, Logic::L0};
    const StuckFault sa1{pi, Logic::L1};
    expectAllLanesMatchScalar(nl, patterns, &sa0);
    expectAllLanesMatchScalar(nl, patterns, &sa1);
  }
}

TEST(PackedEval, OutputDiffMaskMatchesWordInequality) {
  Rng rng(0xbeef04);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen(rng.next());
    const Netlist nl = makeRandomNetlist(gen, 6, 30, 3);
    const NetlistEvaluator eval(nl);
    const PackedEvaluator packed(nl);
    const auto patterns = randomBlock(rng, 6, 50, 20);
    const StuckFault fault{
        static_cast<NetId>(rng.below(static_cast<std::uint64_t>(
            nl.netCount()))),
        rng.below(2) == 0 ? Logic::L0 : Logic::L1};

    std::vector<LanePlanes> golden, faulty;
    for (std::size_t base = 0; base < patterns.size();
         base += PackedEvaluator::kLanes) {
      const std::size_t lanes = std::min<std::size_t>(
          PackedEvaluator::kLanes, patterns.size() - base);
      const auto block = packed.pack(patterns, base, lanes);
      packed.evaluate(block, golden);
      packed.evaluate(block, faulty, &fault);
      const std::uint64_t diff =
          packed.outputDiffMask(golden, faulty, static_cast<int>(lanes));
      for (std::size_t l = 0; l < lanes; ++l) {
        const bool scalarDiff =
            eval.evalOutputs(patterns[base + l], fault) !=
            eval.evalOutputs(patterns[base + l]);
        ASSERT_EQ((diff >> l) & 1u, scalarDiff ? 1u : 0u)
            << "lane " << l << " of block at " << base;
      }
    }
  }
}

TEST(PackedEval, PackRejectsBadShapes) {
  const Netlist nl = makeHalfAdder();
  const PackedEvaluator packed(nl);
  std::vector<Word> patterns(70, Word::fromUint(2, 1));
  EXPECT_THROW(packed.pack(patterns, 0, 65), std::invalid_argument);
  EXPECT_THROW(packed.pack(patterns, 60, 20), std::out_of_range);
  std::vector<Word> wrongWidth{Word::fromUint(3, 1)};
  EXPECT_THROW(packed.pack(wrongWidth, 0, 1), std::invalid_argument);
}

TEST(EvalGateSpan, MatchesVectorOverload) {
  Rng rng(0xbeef05);
  const GateType types[] = {GateType::And,  GateType::Or,  GateType::Nand,
                            GateType::Nor,  GateType::Xor, GateType::Xnor,
                            GateType::Not,  GateType::Buf};
  const Logic values[] = {Logic::L0, Logic::L1, Logic::X, Logic::Z};
  for (int trial = 0; trial < 500; ++trial) {
    const GateType t = types[rng.below(8)];
    const auto [lo, hi] = arityOf(t);
    const int n = hi < 0 ? lo + static_cast<int>(rng.below(4)) : lo;
    std::vector<Logic> ins;
    for (int i = 0; i < n; ++i) ins.push_back(values[rng.below(4)]);
    EXPECT_EQ(evalGate(t, ins), evalGate(t, ins.data(), n));
  }
  EXPECT_THROW(evalGate(GateType::Not, nullptr, 0), std::invalid_argument);
  const Logic three[] = {Logic::L0, Logic::L1, Logic::X};
  EXPECT_THROW(evalGate(GateType::Xor, three, 3), std::invalid_argument);
}

TEST(EvaluateInto, MatchesEvaluateAndReusesBuffer) {
  Rng rng(0xbeef06);
  Rng gen(rng.next());
  const Netlist nl = makeRandomNetlist(gen, 5, 25, 3);
  const NetlistEvaluator eval(nl);
  std::vector<Logic> scratch;
  for (int i = 0; i < 30; ++i) {
    const Word in = randomWord(rng, 5, 20);
    eval.evaluateInto(in, scratch);
    EXPECT_EQ(scratch, eval.evaluate(in));
    const StuckFault fault{static_cast<NetId>(rng.below(
                               static_cast<std::uint64_t>(nl.netCount()))),
                           Logic::L1};
    eval.evaluateInto(in, scratch, fault);
    EXPECT_EQ(scratch, eval.evaluate(in, fault));
  }
}

TEST(PackedPower, GateLevelPowerBitIdenticalToScalar) {
  Rng rng(0xbeef07);
  const Netlist mult = makeArrayMultiplier(4);
  const auto patterns = randomBlock(rng, mult.inputCount(), 200, 0);
  const PowerResult packed = gateLevelPower(mult, patterns);
  const PowerResult scalar = gateLevelPowerScalar(mult, patterns);
  EXPECT_EQ(packed.avgPowerMw, scalar.avgPowerMw);    // exact, incl. FP
  EXPECT_EQ(packed.peakPowerMw, scalar.peakPowerMw);  // exact, incl. FP
  EXPECT_EQ(packed.totalToggles, scalar.totalToggles);
  EXPECT_EQ(packed.transitions, scalar.transitions);
}

TEST(PackedPower, UnknownHeavyPatternsStillBitIdentical) {
  Rng rng(0xbeef08);
  for (int trial = 0; trial < 5; ++trial) {
    Rng gen(rng.next());
    const Netlist nl = makeRandomNetlist(gen, 7, 50, 4);
    const auto patterns = randomBlock(rng, 7, 130, 40);
    const PowerResult packed = gateLevelPower(nl, patterns);
    const PowerResult scalar = gateLevelPowerScalar(nl, patterns);
    EXPECT_EQ(packed.avgPowerMw, scalar.avgPowerMw);
    EXPECT_EQ(packed.peakPowerMw, scalar.peakPowerMw);
    EXPECT_EQ(packed.totalToggles, scalar.totalToggles);
    EXPECT_EQ(packed.transitions, scalar.transitions);
  }
}

TEST(PackedPower, TransitionEnergiesMatchScalarPairwise) {
  Rng rng(0xbeef09);
  Rng gen(rng.next());
  const Netlist nl = makeRandomNetlist(gen, 6, 40, 3);
  const NetlistEvaluator eval(nl);
  const auto patterns = randomBlock(rng, 6, 90, 15);
  const std::vector<double> energies = transitionEnergiesPj(nl, patterns);
  ASSERT_EQ(energies.size(), patterns.size() - 1);
  for (std::size_t i = 1; i < patterns.size(); ++i) {
    const double scalar = transitionEnergyPj(nl, eval.evaluate(patterns[i - 1]),
                                             eval.evaluate(patterns[i]));
    EXPECT_EQ(energies[i - 1], scalar) << "transition " << i - 1;
  }
}

}  // namespace
}  // namespace vcad::gate
