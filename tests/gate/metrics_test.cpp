#include "gate/metrics.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"

namespace vcad::gate {
namespace {

TEST(Metrics, AreaGrowsWithDesignSize) {
  const double a4 = areaOf(makeArrayMultiplier(4));
  const double a8 = areaOf(makeArrayMultiplier(8));
  const double a16 = areaOf(makeArrayMultiplier(16));
  EXPECT_GT(a8, a4);
  EXPECT_GT(a16, a8);
  // Array multiplier area is roughly quadratic in width.
  EXPECT_NEAR(a16 / a4, 16.0, 6.0);
}

TEST(Metrics, AreaOfKnownNetlist) {
  // Half adder: one XOR (2 inputs) + one AND (2 inputs).
  TechParams tech;
  EXPECT_DOUBLE_EQ(areaOf(makeHalfAdder(), tech), 4 * tech.areaPerInputUm2);
}

TEST(Metrics, CriticalPathGrowsWithWidth) {
  const double d4 = criticalPathNs(makeRippleCarryAdder(4));
  const double d16 = criticalPathNs(makeRippleCarryAdder(16));
  EXPECT_GT(d16, d4);
}

TEST(Metrics, CriticalPathOfInverterChain) {
  Netlist nl;
  NetId cur = nl.addInput("a");
  for (int i = 0; i < 10; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.markOutput(cur);
  TechParams tech;
  EXPECT_DOUBLE_EQ(criticalPathNs(nl, tech), 10 * tech.delayPerLevelNs);
}

TEST(Metrics, NetCapIncludesFanout) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  nl.markOutput(nl.addGate(GateType::Not, {a}));
  nl.markOutput(nl.addGate(GateType::Buf, {a}));
  TechParams tech;
  EXPECT_DOUBLE_EQ(netCapfF(nl, a, tech),
                   tech.capBasefF + 2 * tech.capPerFanoutfF);
}

TEST(Metrics, TogglesCountsChangesAndUnknowns) {
  std::vector<Logic> prev{Logic::L0, Logic::L1, Logic::L0, Logic::X};
  std::vector<Logic> curr{Logic::L0, Logic::L0, Logic::X, Logic::X};
  // bit1 flips, bit2 becomes X (pessimistic toggle), bit3 X->X (toggle).
  EXPECT_EQ(toggles(prev, curr), 3u);
}

TEST(Metrics, ZeroEnergyForIdenticalPatterns) {
  const Netlist nl = makeArrayMultiplier(4);
  NetlistEvaluator ev(nl);
  const auto snap = ev.evaluate(Word::fromUint(8, 0x35));
  EXPECT_DOUBLE_EQ(transitionEnergyPj(nl, snap, snap), 0.0);
}

TEST(Metrics, EnergyPositiveForDifferentPatterns) {
  const Netlist nl = makeArrayMultiplier(4);
  NetlistEvaluator ev(nl);
  const auto s1 = ev.evaluate(Word::fromUint(8, 0x00));
  const auto s2 = ev.evaluate(Word::fromUint(8, 0xFF));
  EXPECT_GT(transitionEnergyPj(nl, s1, s2), 0.0);
}

TEST(Metrics, GateLevelPowerOnConstantSequenceIsZero) {
  const Netlist nl = makeArrayMultiplier(4);
  const std::vector<Word> patterns(5, Word::fromUint(8, 0x12));
  const PowerResult res = gateLevelPower(nl, patterns);
  EXPECT_DOUBLE_EQ(res.avgPowerMw, 0.0);
  EXPECT_EQ(res.totalToggles, 0u);
  EXPECT_EQ(res.transitions, 4u);
}

TEST(Metrics, GateLevelPowerScalesWithActivity) {
  const Netlist nl = makeArrayMultiplier(8);
  // Low activity: toggle one input bit; high activity: invert everything.
  std::vector<Word> low, high;
  for (int i = 0; i < 20; ++i) {
    low.push_back(Word::fromUint(16, (i % 2 == 0) ? 0x0001 : 0x0000));
    high.push_back(Word::fromUint(16, (i % 2 == 0) ? 0xFFFF : 0x0000));
  }
  const PowerResult pl = gateLevelPower(nl, low);
  const PowerResult ph = gateLevelPower(nl, high);
  EXPECT_GT(ph.avgPowerMw, pl.avgPowerMw);
  EXPECT_GE(ph.peakPowerMw, ph.avgPowerMw);
}

TEST(Metrics, PowerOnShortSequenceIsZero) {
  const Netlist nl = makeHalfAdder();
  EXPECT_DOUBLE_EQ(gateLevelPower(nl, {}).avgPowerMw, 0.0);
  EXPECT_DOUBLE_EQ(gateLevelPower(nl, {Word::fromUint(2, 1)}).avgPowerMw, 0.0);
}

TEST(Metrics, SnapshotSizeMismatchThrows) {
  const Netlist nl = makeHalfAdder();
  std::vector<Logic> tooShort{Logic::L0};
  EXPECT_THROW(transitionEnergyPj(nl, tooShort, tooShort),
               std::invalid_argument);
  EXPECT_THROW(toggles({Logic::L0}, {Logic::L0, Logic::L1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vcad::gate
