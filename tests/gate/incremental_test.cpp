#include "gate/incremental.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "gate/generators.hpp"

namespace vcad::gate {
namespace {

TEST(Incremental, MatchesFullEvaluationOnAdder) {
  const Netlist nl = makeRippleCarryAdder(8);
  NetlistEvaluator full(nl);
  IncrementalEvaluator inc(nl);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Word in = Word::fromUint(16, rng.next());
    inc.setInputs(in);
    EXPECT_EQ(inc.outputs(), full.evalOutputs(in)) << i;
  }
}

TEST(Incremental, SingleBitChangeEvaluatesFewGates) {
  const Netlist nl = makeArrayMultiplier(8);  // ~1500 gates
  IncrementalEvaluator inc(nl);
  inc.setInputs(Word::fromUint(16, 0x0000));
  // Toggling one bit of an operand that is all-zero touches only the
  // partial products of that bit (the other operand gates stay 0).
  const std::size_t touched = inc.setInput(0, Logic::L1);
  EXPECT_GT(touched, 0u);
  EXPECT_LT(touched, static_cast<std::size_t>(nl.gateCount()) / 4);
}

TEST(Incremental, NoChangeNoWork) {
  const Netlist nl = makeRippleCarryAdder(4);
  IncrementalEvaluator inc(nl);
  inc.setInputs(Word::fromUint(8, 0x5A));
  EXPECT_EQ(inc.setInputs(Word::fromUint(8, 0x5A)), 0u);
  EXPECT_EQ(inc.setInput(0, Logic::L0), 0u);  // already 0
}

TEST(Incremental, ResetRestoresAllX) {
  const Netlist nl = makeHalfAdder();
  IncrementalEvaluator inc(nl);
  inc.setInputs(Word::fromUint(2, 0b11));
  EXPECT_EQ(inc.outputs().toString(), "10");
  inc.reset();
  EXPECT_FALSE(inc.outputs().isFullyKnown());
}

TEST(Incremental, ConstCellsSettleAtConstruction) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId one = nl.addGate(GateType::Const1, {}, "one");
  nl.markOutput(nl.addGate(GateType::And, {a, one}, "o"));
  IncrementalEvaluator inc(nl);
  EXPECT_EQ(inc.value(one), Logic::L1);
  inc.setInput(0, Logic::L1);
  EXPECT_EQ(inc.outputs().bit(0), Logic::L1);
}

TEST(Incremental, BadArgumentsRejected) {
  const Netlist nl = makeHalfAdder();
  IncrementalEvaluator inc(nl);
  EXPECT_THROW(inc.setInput(5, Logic::L0), std::out_of_range);
  EXPECT_THROW(inc.setInputs(Word::fromUint(3, 0)), std::invalid_argument);
}

class IncrementalProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalProperty, RandomNetlistsMatchFullEvaluation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271);
  const int nIn = 4 + static_cast<int>(rng.below(8));
  const Netlist nl =
      makeRandomNetlist(rng, nIn, 20 + static_cast<int>(rng.below(80)),
                        2 + static_cast<int>(rng.below(3)));
  NetlistEvaluator full(nl);
  IncrementalEvaluator inc(nl);
  Word current(nIn);
  for (int step = 0; step < 60; ++step) {
    if (rng.chance(0.3)) {
      // Full random word.
      current = Word::fromUint(nIn, rng.next());
      inc.setInputs(current);
    } else {
      // Single-bit twiddle (the selective-trace fast path).
      const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(nIn)));
      const Logic v = rng.chance(0.5) ? Logic::L1 : Logic::L0;
      current.setBit(bit, v);
      inc.setInput(bit, v);
    }
    EXPECT_EQ(inc.outputs(), full.evalOutputs(current))
        << "seed=" << GetParam() << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty, ::testing::Range(1, 13));

TEST(Incremental, SelectiveTraceBeatsFullEvaluationOnWorkCount) {
  // Random single-bit changes on a big multiplier: selective trace must
  // evaluate far fewer gates than #gates x #changes.
  const Netlist nl = makeArrayMultiplier(12);
  IncrementalEvaluator inc(nl);
  Rng rng(5);
  inc.setInputs(Word::fromUint(24, rng.next()));
  const std::uint64_t before = inc.gateEvals();
  const int changes = 200;
  for (int i = 0; i < changes; ++i) {
    inc.setInput(static_cast<int>(rng.below(24)),
                 rng.chance(0.5) ? Logic::L1 : Logic::L0);
  }
  const std::uint64_t work = inc.gateEvals() - before;
  const std::uint64_t fullWork =
      static_cast<std::uint64_t>(nl.gateCount()) * changes;
  EXPECT_LT(work, fullWork / 2);
}

}  // namespace
}  // namespace vcad::gate
