#include "gate/generators.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace vcad::gate {
namespace {

Word packOperands(int width, std::uint64_t a, std::uint64_t b) {
  // Generators declare inputs as a0..aw-1 then b0..bw-1.
  return Word::concat(Word::fromUint(width, b), Word::fromUint(width, a));
}

TEST(Generators, HalfAdderTruthTable) {
  const Netlist nl = makeHalfAdder();
  NetlistEvaluator ev(nl);
  for (unsigned v = 0; v < 4; ++v) {
    const Word out = ev.evalOutputs(Word::fromUint(2, v));
    const unsigned a = v & 1, b = (v >> 1) & 1;
    EXPECT_EQ(out.bit(0), fromBool((a ^ b) != 0)) << "sum for " << v;
    EXPECT_EQ(out.bit(1), fromBool((a & b) != 0)) << "carry for " << v;
  }
}

TEST(Generators, FullAdderTruthTable) {
  const Netlist nl = makeFullAdder();
  NetlistEvaluator ev(nl);
  for (unsigned v = 0; v < 8; ++v) {
    const Word out = ev.evalOutputs(Word::fromUint(3, v));
    const unsigned total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(out.bit(0), fromBool((total & 1) != 0));
    EXPECT_EQ(out.bit(1), fromBool(total >= 2));
  }
}

class AdderSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdderSweep, MatchesIntegerAddition) {
  const int width = GetParam();
  const Netlist nl = makeRippleCarryAdder(width);
  NetlistEvaluator ev(nl);
  Rng rng(42 + static_cast<std::uint64_t>(width));
  const std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const Word out = ev.evalOutputs(packOperands(width, a, b));
    ASSERT_EQ(out.width(), width + 1);
    EXPECT_EQ(out.toUint(), a + b) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 13, 16, 24, 31));

class MultiplierSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierSweep, MatchesIntegerMultiplication) {
  const int width = GetParam();
  const Netlist nl = makeArrayMultiplier(width);
  NetlistEvaluator ev(nl);
  Rng rng(7 + static_cast<std::uint64_t>(width));
  const std::uint64_t mask = (1ULL << width) - 1;
  for (int iter = 0; iter < 40; ++iter) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const Word out = ev.evalOutputs(packOperands(width, a, b));
    ASSERT_EQ(out.width(), 2 * width);
    EXPECT_EQ(out.toUint(), a * b) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

TEST(Generators, MultiplierExhaustive4x4) {
  const Netlist nl = makeArrayMultiplier(4);
  NetlistEvaluator ev(nl);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      EXPECT_EQ(ev.evalOutputs(packOperands(4, a, b)).toUint(), a * b);
    }
  }
}

class ParitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ParitySweep, MatchesPopcountParity) {
  const int width = GetParam();
  const Netlist nl = makeParityTree(width);
  NetlistEvaluator ev(nl);
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t v =
        rng.next() & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
    const Word out = ev.evalOutputs(Word::fromUint(width, v));
    EXPECT_EQ(out.bit(0), fromBool((__builtin_popcountll(v) & 1) != 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ParitySweep,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33));

class MuxSweep : public ::testing::TestWithParam<int> {};

TEST_P(MuxSweep, SelectsTheAddressedInput) {
  const int selBits = GetParam();
  const int n = 1 << selBits;
  const Netlist nl = makeMux(selBits);
  NetlistEvaluator ev(nl);
  Rng rng(5);
  for (int sel = 0; sel < n; ++sel) {
    const std::uint64_t data = rng.next() & ((1ULL << n) - 1);
    Word in(n + selBits);
    for (int i = 0; i < n; ++i) in.setBit(i, fromBool(((data >> i) & 1) != 0));
    for (int i = 0; i < selBits; ++i) {
      in.setBit(n + i, fromBool(((sel >> i) & 1) != 0));
    }
    EXPECT_EQ(ev.evalOutputs(in).bit(0), fromBool(((data >> sel) & 1) != 0));
  }
}

INSTANTIATE_TEST_SUITE_P(SelBits, MuxSweep, ::testing::Values(1, 2, 3, 4));

class ComparatorSweep : public ::testing::TestWithParam<int> {};

TEST_P(ComparatorSweep, EqualityOnly) {
  const int width = GetParam();
  const Netlist nl = makeComparator(width);
  NetlistEvaluator ev(nl);
  Rng rng(11);
  const std::uint64_t mask = (1ULL << width) - 1;
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.chance(0.5) ? a : (rng.next() & mask);
    // Comparator inputs interleave a_i, b_i in declaration order.
    Word in(2 * width);
    for (int i = 0; i < width; ++i) {
      in.setBit(2 * i, fromBool(((a >> i) & 1) != 0));
      in.setBit(2 * i + 1, fromBool(((b >> i) & 1) != 0));
    }
    EXPECT_EQ(ev.evalOutputs(in).bit(0), fromBool(a == b));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ComparatorSweep,
                         ::testing::Values(1, 4, 8, 16));

TEST(Generators, Ip1MatchesHalfAdderBehaviour) {
  const Netlist ip1 = makeIp1HalfAdder();
  NetlistEvaluator ev(ip1);
  for (unsigned v = 0; v < 4; ++v) {
    const unsigned a = v & 1, b = (v >> 1) & 1;
    const Word out = ev.evalOutputs(Word::fromUint(2, v));
    EXPECT_EQ(out.bit(0), fromBool((a ^ b) != 0));  // OIP1 = sum
    EXPECT_EQ(out.bit(1), fromBool((a & b) != 0));  // OIP2 = carry
  }
}

TEST(Generators, Ip1HasPaperInternalSignals) {
  const Netlist ip1 = makeIp1HalfAdder();
  for (const char* name : {"I1", "I2", "I3", "I4", "I5", "I6"}) {
    EXPECT_NE(ip1.findNet(name), kNoNet) << name;
  }
  EXPECT_NE(ip1.findNet("IIP1"), kNoNet);
  EXPECT_NE(ip1.findNet("OIP2"), kNoNet);
}

TEST(Generators, RandomNetlistIsValidAndDeterministic) {
  Rng r1(123), r2(123);
  const Netlist a = makeRandomNetlist(r1, 8, 50, 5);
  const Netlist b = makeRandomNetlist(r2, 8, 50, 5);
  EXPECT_EQ(a.gateCount(), 50);
  EXPECT_EQ(a.inputCount(), 8);
  EXPECT_EQ(a.outputCount(), 5);
  // Determinism: same seed, same structure, same behaviour.
  NetlistEvaluator ea(a), eb(b);
  Rng stim(77);
  for (int i = 0; i < 20; ++i) {
    const Word in = Word::fromUint(8, stim.next() & 0xFF);
    EXPECT_EQ(ea.evalOutputs(in), eb.evalOutputs(in));
  }
}

TEST(Generators, BadShapesRejected) {
  Rng rng(1);
  EXPECT_THROW(makeRippleCarryAdder(0), std::invalid_argument);
  EXPECT_THROW(makeArrayMultiplier(0), std::invalid_argument);
  EXPECT_THROW(makeArrayMultiplier(33), std::invalid_argument);
  EXPECT_THROW(makeParityTree(1), std::invalid_argument);
  EXPECT_THROW(makeMux(0), std::invalid_argument);
  EXPECT_THROW(makeComparator(0), std::invalid_argument);
  EXPECT_THROW(makeRandomNetlist(rng, 1, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace vcad::gate
