#include "gate/seq_netlist.hpp"

#include <gtest/gtest.h>

namespace vcad::gate {
namespace {

Word en(bool on) { return Word::fromUint(1, on ? 1 : 0); }

TEST(SeqNetlist, ShapeAccessors) {
  const SeqNetlist c = makeCounter(4);
  EXPECT_EQ(c.stateBits(), 4);
  EXPECT_EQ(c.inputBits(), 1);   // enable
  EXPECT_EQ(c.outputBits(), 4);  // counter value
  EXPECT_EQ(c.resetState().toUint(), 0u);
}

TEST(SeqNetlist, PackSplitRoundTrip) {
  const SeqNetlist c = makeCounter(4);
  const Word packed = c.packInputs(Word::fromUint(4, 0xA), en(true));
  EXPECT_EQ(packed.width(), 5);
  EXPECT_EQ(packed.slice(0, 4).toUint(), 0xAu);  // state in low bits
  EXPECT_EQ(packed.bit(4), Logic::L1);
}

TEST(SeqNetlist, BadShapesRejected) {
  EXPECT_THROW(makeCounter(0), std::invalid_argument);
  EXPECT_THROW(makeLfsr(1, 1), std::invalid_argument);
  EXPECT_THROW(makeLfsr(8, 0), std::invalid_argument);  // no taps
  EXPECT_THROW(makeAccumulator(0), std::invalid_argument);
  const SeqNetlist c = makeCounter(2);
  EXPECT_THROW(c.packInputs(Word::fromUint(3, 0), en(true)),
               std::invalid_argument);
}

TEST(SeqEvaluator, CounterCountsWhenEnabled) {
  const SeqNetlist c = makeCounter(4);
  SeqEvaluator ev(c);
  // Output reflects the state *before* the clock edge.
  EXPECT_EQ(ev.step(en(true)).toUint(), 0u);
  EXPECT_EQ(ev.step(en(true)).toUint(), 1u);
  EXPECT_EQ(ev.step(en(false)).toUint(), 2u);  // hold
  EXPECT_EQ(ev.step(en(true)).toUint(), 2u);
  EXPECT_EQ(ev.step(en(true)).toUint(), 3u);
}

TEST(SeqEvaluator, CounterWrapsAround) {
  const SeqNetlist c = makeCounter(3);
  SeqEvaluator ev(c);
  Word last;
  for (int i = 0; i < 9; ++i) last = ev.step(en(true));
  EXPECT_EQ(last.toUint(), 0u);  // 8 increments wrap the 3-bit counter
}

TEST(SeqEvaluator, ResetRestoresInitialState) {
  const SeqNetlist c = makeCounter(4);
  SeqEvaluator ev(c);
  for (int i = 0; i < 5; ++i) ev.step(en(true));
  ev.reset();
  EXPECT_EQ(ev.step(en(true)).toUint(), 0u);
}

TEST(SeqEvaluator, LfsrVisitsManyStatesAndHolds) {
  // Maximal-length taps for width 4: x^4 + x^3 + 1 -> taps on bits 3, 2.
  const SeqNetlist l = makeLfsr(4, 0b1100);
  SeqEvaluator ev(l);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 15; ++i) seen.insert(ev.step(en(true)).toUint());
  EXPECT_GE(seen.size(), 8u);  // cycles through many distinct states
  const std::uint64_t held = ev.step(en(false)).toUint();
  EXPECT_EQ(ev.step(en(false)).toUint(), held);  // disabled: frozen
}

TEST(SeqEvaluator, AccumulatorSums) {
  const int w = 8;
  const SeqNetlist a = makeAccumulator(w);
  SeqEvaluator ev(a);
  auto input = [&](bool enable, std::uint64_t d) {
    Word in(w + 1);
    in.setBit(0, fromBool(enable));
    for (int i = 0; i < w; ++i) in.setBit(1 + i, fromBool(((d >> i) & 1) != 0));
    return in;
  };
  ev.step(input(true, 10));
  ev.step(input(true, 20));
  ev.step(input(false, 99));                       // disabled: ignored
  EXPECT_EQ(ev.step(input(true, 0)).toUint(), 30u);  // observe 10+20
}

TEST(SeqEvaluator, PersistentFaultCorruptsStateOverTime) {
  const SeqNetlist c = makeCounter(4);
  // Stuck the enable-gated toggle of bit 0 at 0: the counter can never
  // leave even states via bit 0.
  const NetId t0 = c.comb().findNet("t0");
  ASSERT_NE(t0, kNoNet);
  SeqEvaluator good(c);
  SeqEvaluator bad(c, StuckFault{t0, Logic::L0});
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    if (good.step(en(true)) != bad.step(en(true))) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(SeqEvaluator, RunFromResetIsDeterministic) {
  Rng rng(31);
  const SeqNetlist m = makeRandomMachine(rng, 4, 3, 2, 25);
  std::vector<Word> inputs;
  Rng stim(7);
  for (int i = 0; i < 30; ++i) inputs.push_back(Word::fromUint(3, stim.next()));
  SeqEvaluator a(m), b(m);
  EXPECT_EQ(a.run(inputs), b.run(inputs));
}

}  // namespace
}  // namespace vcad::gate
