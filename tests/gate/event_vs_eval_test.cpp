// Cross-validation property: the event-driven backplane realization of a
// netlist (NetlistModule fed by injected events) must compute exactly the
// same outputs as the direct levelized evaluator, for random netlists and
// random stimulus — including repeated and partially-overlapping updates.
#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "gate/generators.hpp"
#include "gate/netlist_module.hpp"

namespace vcad::gate {
namespace {

class EventVsEval : public ::testing::TestWithParam<int> {};

TEST_P(EventVsEval, RandomNetlistsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503);
  const int nIn = 3 + static_cast<int>(rng.below(6));
  const int nOut = 1 + static_cast<int>(rng.below(4));
  const int nGates = 10 + static_cast<int>(rng.below(40));
  auto nl = std::make_shared<Netlist>(makeRandomNetlist(rng, nIn, nGates, nOut));
  NetlistEvaluator eval(*nl);

  Circuit top("top");
  std::vector<Connector*> ins, outs;
  for (int i = 0; i < nIn; ++i) ins.push_back(&top.makeBit());
  for (int i = 0; i < nOut; ++i) outs.push_back(&top.makeBit());
  top.adopt(makeBitLevelModule("dut", nl, ins, outs));

  SimulationController sim(top);
  Word current(nIn);
  for (int step = 0; step < 25; ++step) {
    // Update a random, possibly partial, subset of inputs.
    const int updates = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(nIn)));
    for (int u = 0; u < updates; ++u) {
      const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(nIn)));
      const Logic v = rng.chance(0.5) ? Logic::L1 : Logic::L0;
      current.setBit(bit, v);
      sim.inject(*ins[static_cast<size_t>(bit)], Word::fromLogic(v));
    }
    sim.start();
    const Word golden = eval.evalOutputs(current);
    for (int j = 0; j < nOut; ++j) {
      EXPECT_EQ(outs[static_cast<size_t>(j)]->value(sim.scheduler().id()).scalar(),
                golden.bit(j))
          << "seed=" << GetParam() << " step=" << step << " out=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventVsEval, ::testing::Range(1, 11));

class SelectiveTraceMode : public ::testing::TestWithParam<int> {};

TEST_P(SelectiveTraceMode, MatchesFullPassThroughTheBackplane) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 69621);
  const int nIn = 3 + static_cast<int>(rng.below(5));
  const int nOut = 1 + static_cast<int>(rng.below(3));
  auto nl = std::make_shared<Netlist>(
      makeRandomNetlist(rng, nIn, 15 + static_cast<int>(rng.below(35)), nOut));

  // Two module instances over the same netlist, one per mode.
  Circuit top("top");
  std::vector<Connector*> insA, outsA, insB, outsB;
  for (int i = 0; i < nIn; ++i) {
    insA.push_back(&top.makeBit());
    insB.push_back(&top.makeBit());
  }
  for (int i = 0; i < nOut; ++i) {
    outsA.push_back(&top.makeBit());
    outsB.push_back(&top.makeBit());
  }
  auto& full = static_cast<NetlistModule&>(
      top.adopt(makeBitLevelModule("full", nl, insA, outsA)));
  auto& fast = static_cast<NetlistModule&>(
      top.adopt(makeBitLevelModule("fast", nl, insB, outsB)));
  fast.setEvalMode(NetlistModule::EvalMode::SelectiveTrace);
  (void)full;

  SimulationController sim(top);
  for (int step = 0; step < 30; ++step) {
    const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(nIn)));
    const Logic v = rng.chance(0.5) ? Logic::L1 : Logic::L0;
    sim.inject(*insA[static_cast<size_t>(bit)], Word::fromLogic(v));
    sim.inject(*insB[static_cast<size_t>(bit)], Word::fromLogic(v));
    sim.start();
    for (int j = 0; j < nOut; ++j) {
      EXPECT_EQ(outsA[static_cast<size_t>(j)]->value(sim.scheduler().id()),
                outsB[static_cast<size_t>(j)]->value(sim.scheduler().id()))
          << "seed=" << GetParam() << " step=" << step << " out=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectiveTraceMode, ::testing::Range(1, 9));

}  // namespace
}  // namespace vcad::gate
