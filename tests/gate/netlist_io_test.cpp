#include "gate/netlist_io.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "fault/atpg.hpp"
#include "gate/generators.hpp"

namespace vcad::gate {
namespace {

TEST(NetlistIo, WriteParseRoundTripPreservesBehaviour) {
  const Netlist orig = makeRippleCarryAdder(6);
  const Netlist back = parseNetlist(netlistToString(orig, "adder"));
  EXPECT_EQ(back.inputCount(), orig.inputCount());
  EXPECT_EQ(back.outputCount(), orig.outputCount());
  EXPECT_EQ(back.gateCount(), orig.gateCount());
  NetlistEvaluator a(orig), b(back);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const Word in = Word::fromUint(orig.inputCount(), rng.next());
    EXPECT_EQ(a.evalOutputs(in), b.evalOutputs(in));
  }
}

TEST(NetlistIo, ParsesHandWrittenText) {
  const Netlist nl = parseNetlist(R"(
# a half adder
.model ha
.inputs a b
.outputs sum carry
.gate XOR sum a b      # sum bit
.gate AND carry a b
.end
)");
  EXPECT_EQ(nl.inputCount(), 2);
  EXPECT_EQ(nl.outputCount(), 2);
  NetlistEvaluator ev(nl);
  EXPECT_EQ(ev.evalOutputs(Word::fromUint(2, 0b11)).toString(), "10");
}

TEST(NetlistIo, OutputsMayBeDeclaredBeforeGates) {
  const Netlist nl = parseNetlist(
      ".outputs o\n.inputs a\n.gate NOT o a\n");
  EXPECT_EQ(nl.outputCount(), 1);
}

TEST(NetlistIo, ErrorsCarryLineNumbers) {
  try {
    parseNetlist(".inputs a\n.gate FROB o a\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST(NetlistIo, RejectsDoubleDrive) {
  EXPECT_THROW(parseNetlist(".inputs a b\n"
                            ".outputs o\n"
                            ".gate AND o a b\n"
                            ".gate OR o a b\n"),
               std::runtime_error);
}

TEST(NetlistIo, RejectsUndrivenNets) {
  // 'ghost' is read but never driven: validate() on load must fail.
  EXPECT_THROW(parseNetlist(".inputs a\n"
                            ".outputs o\n"
                            ".gate AND o a ghost\n"),
               std::logic_error);
}

TEST(NetlistIo, RejectsUnknownOutput) {
  EXPECT_THROW(parseNetlist(".inputs a\n.outputs nope\n.gate NOT x a\n"),
               std::runtime_error);
}

TEST(NetlistIo, RejectsUnknownDirective) {
  EXPECT_THROW(parseNetlist(".bogus\n"), std::runtime_error);
}

TEST(NetlistIo, RejectsDuplicateInputs) {
  EXPECT_THROW(parseNetlist(".inputs a\n.inputs b\n"), std::runtime_error);
  EXPECT_THROW(parseNetlist(".inputs a a\n"), std::runtime_error);
}

class IoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTrip, RandomNetlists) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9973);
  const Netlist orig = makeRandomNetlist(
      rng, 4 + static_cast<int>(rng.below(6)),
      10 + static_cast<int>(rng.below(60)), 1 + static_cast<int>(rng.below(4)));
  const Netlist back = parseNetlist(netlistToString(orig));
  NetlistEvaluator a(orig), b(back);
  for (int i = 0; i < 15; ++i) {
    const Word in = Word::fromUint(orig.inputCount(), rng.next());
    EXPECT_EQ(a.evalOutputs(in), b.evalOutputs(in)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTrip, ::testing::Range(1, 9));

// --- c17 ---------------------------------------------------------------

TEST(C17, StructureMatchesIscas) {
  const Netlist c17 = makeC17();
  EXPECT_EQ(c17.inputCount(), 5);
  EXPECT_EQ(c17.outputCount(), 2);
  EXPECT_EQ(c17.gateCount(), 6);
  for (const GateNode& g : c17.gates()) {
    EXPECT_EQ(g.type, GateType::Nand);
  }
}

TEST(C17, KnownResponses) {
  const Netlist c17 = makeC17();
  NetlistEvaluator ev(c17);
  // Inputs in declaration order N1 N2 N3 N6 N7 (bit0=N1).
  // All-zeros: N10=1, N11=1, N16=1, N19=1 -> N22=NAND(1,1)=0, N23=0.
  const Word out0 = ev.evalOutputs(Word::fromUint(5, 0b00000));
  EXPECT_EQ(out0.bit(0), Logic::L0);  // N22
  EXPECT_EQ(out0.bit(1), Logic::L0);  // N23
  // N1=N3=1 others 0: N10=NAND(1,1)=0 -> N22=1.
  const Word out1 = ev.evalOutputs(Word::fromUint(5, 0b00101));
  EXPECT_EQ(out1.bit(0), Logic::L1);
}

TEST(C17, FullCoverageWithAtpg) {
  // c17 is fully testable: ATPG must reach 100% of collapsed faults.
  const Netlist c17 = makeC17();
  fault::AtpgOptions opt;
  opt.targetCoverage = 1.0;
  const auto res = fault::generateTests(c17, opt);
  EXPECT_DOUBLE_EQ(res.coverage, 1.0);
  EXPECT_LE(res.patterns.size(), 10u);
}

}  // namespace
}  // namespace vcad::gate
